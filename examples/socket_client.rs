//! End-to-end wire-protocol walkthrough: start an [`AsyncCacheServer`] on
//! a Unix-domain socket, connect a [`WireClient`], answer query batches,
//! apply a document edit over the wire (version-checked), read tenant
//! stats, and drain gracefully.
//!
//! ```text
//! cargo run --example socket_client
//! ```

use std::sync::Arc;

use xpath_views::engine::{AsyncCacheServer, ShardedViewCache};
use xpath_views::maintain::Edit;
use xpath_views::net::{WireClient, WireRoute};
use xpath_views::prelude::*;
use xpath_views::workload::{site_doc, site_intersect_catalog};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A cache over the site document with the overlapping-view catalog:
    // some queries hit single views, some need multi-view intersections.
    let catalog = site_intersect_catalog();
    let cache = ShardedViewCache::new(site_doc(6, 6, 4));
    for (name, def) in catalog.views.iter() {
        println!("view {name:<12} = {def}");
        cache.add_view(name, def.clone());
    }
    let cache = Arc::new(cache);

    // Serve it: 2 CPU workers, any number of connections.
    let server = AsyncCacheServer::start(Arc::clone(&cache), 2);
    let path = std::env::temp_dir().join(format!("xpv-example-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    server.listen_unix(&path)?;
    println!("\nserving on unix://{} (window {})", path.display(), server.conn_window());

    // Connect and answer a batch. The handshake grants a credit window;
    // `WireClient` tracks it so pipelined sends self-throttle.
    let mut client = WireClient::connect_unix(&path)?;
    let queries: Vec<Pattern> = catalog.queries.iter().map(|(_, q)| q.clone()).collect();
    let answers = client.answer_batch("example-tenant", &queries)?;
    println!("\nanswers:");
    for (q, a) in queries.iter().zip(&answers) {
        let route = match &a.route {
            WireRoute::Direct => "direct".to_string(),
            WireRoute::ViaView { view, .. } => format!("view {view}"),
            WireRoute::Intersect { views, .. } => format!("intersection {views:?}"),
        };
        println!("  {q}: {} node(s)  [{route}]", a.nodes.len());
    }

    // Update the document over the wire: graft an item under the first
    // region and check the acked version.
    let doc = cache.document();
    let region = *doc
        .children(doc.root())
        .iter()
        .find(|&&n| doc.label(n).name() == "region")
        .expect("site documents have regions");
    let graft = TreeBuilder::root("item", |b| {
        b.leaf("name");
        b.leaf("bids");
    });
    let report = client
        .apply_edits("example-tenant", &[Edit::InsertSubtree { parent: region, subtree: graft }])?
        .expect("valid edit");
    println!(
        "\nedit applied: doc version {} ({} views refreshed, {} routes dropped)",
        report.doc_version, report.views_refreshed, report.routes_dropped
    );
    assert_eq!(report.doc_version, cache.doc_version());

    // Post-edit answers stay consistent with the server's own cache.
    let after = client.answer_batch("example-tenant", &queries)?;
    for (q, a) in queries.iter().zip(&after) {
        assert_eq!(a.nodes, cache.answer(q).nodes, "wire and in-process answers agree for {q}");
    }
    println!("post-edit answers verified against the in-process cache");

    // Tenant accounting is shared with the in-process API.
    let stats = client.tenant_stats("example-tenant")?.expect("tenant seen");
    println!(
        "\ntenant stats: {} queries in {} batches, {} edits applied",
        stats.queries, stats.batches, stats.updates_applied
    );

    // Clean close, then graceful server drain.
    client.goodbye()?;
    server.shutdown();
    println!("drained cleanly");
    Ok(())
}
