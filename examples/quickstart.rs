//! Quickstart: rewrite a query over a materialized view and verify the
//! answer on a document.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use xpath_views::prelude::*;

fn main() {
    // A document: a tiny library.
    let doc = parse_xml(
        "<lib>\
           <shelf><book><title/><author/></book><book><title/></book></shelf>\
           <shelf><box><book><title/><author/></book></box></shelf>\
         </lib>",
    )
    .expect("well-formed XML");

    // The view that has been materialized, and a new query.
    let view = parse_xpath("lib//book").expect("view parses");
    let query = parse_xpath("lib//book[author]/title").expect("query parses");

    // 1. Decide rewritability.
    let planner = RewritePlanner::default();
    let rewriting = match planner.decide(&query, &view) {
        RewriteAnswer::Rewriting(rw) => {
            println!("rewriting found: R = {}", rw.pattern());
            println!("  method:    {:?}", rw.method);
            if let Some(cond) = &rw.condition {
                println!("  condition: {cond} ({})", cond.source());
            }
            rw.pattern().clone()
        }
        RewriteAnswer::NoRewriting(reason) => {
            panic!("no rewriting: {reason:?}");
        }
        RewriteAnswer::Unknown(info) => {
            panic!("planner could not decide: {info:?}");
        }
    };

    // 2. The algebra behind it: R ∘ V ≡ P (Proposition 2.4 makes this the
    //    same as "applying R to the view result answers P").
    let composed = compose(&rewriting, &view).expect("composition is nonempty");
    assert!(equivalent(&composed, &query));
    println!("verified:  R ∘ V = {composed}  ≡  P = {query}");

    // 3. Materialize the view and answer the query from it.
    let materialized = MaterializedView::materialize("books", view, &doc);
    println!("view 'books' materialized: {} subtree(s)", materialized.len());
    let via_view = materialized.apply_virtual(&rewriting, &doc);
    let direct = evaluate(&query, &doc);
    assert_eq!(via_view, direct);
    println!(
        "query answered from the view: {} node(s), identical to direct evaluation",
        via_view.len()
    );
    for n in &via_view {
        println!("  answer subtree: {}", to_xml(&doc.subtree(*n).0));
    }
}
