//! Walks through the paper's Figures 1–4 (reconstructions), printing each
//! pattern and re-verifying every claim the text makes about them.
//!
//! ```sh
//! cargo run --example paper_figures
//! ```

use xpath_views::prelude::*;
use xpath_views::rewrite::{figure1, figure2, figure3, figure4, RewritePlanner};

fn main() {
    let planner = RewritePlanner::default();

    println!("— Figure 1: a rewriting example —");
    let f1 = figure1();
    println!("  V = {}", f1.v);
    println!("  P = {}", f1.p);
    println!("  R = {}", f1.r);
    let rv = compose(&f1.r, &f1.v).expect("composes");
    println!("  R∘V = {rv}");
    assert!(equivalent(&rv, &f1.p));
    println!("  ✓ R∘V ≡ P (R is a rewriting of P using V)");

    println!("\n— Figure 2: the natural candidates —");
    let f2 = figure2();
    println!("  P≥1      = {}", f2.cand_base);
    println!("  P≥1_r//  = {}", f2.cand_relaxed);
    let base = compose(&f2.cand_base, &f2.v).expect("composes");
    let relaxed = compose(&f2.cand_relaxed, &f2.v).expect("composes");
    assert!(!equivalent(&base, &f2.p));
    assert!(equivalent(&relaxed, &f2.p));
    println!("  ✓ P≥1 is NOT a rewriting; P≥1_r// IS (Theorem 4.10's example)");

    println!("\n— Figure 3: branch relaxation (Lemma 4.12) —");
    let f3 = figure3();
    println!("  B      = {}", f3.b);
    println!("  B_r//  = {}", f3.b_relaxed);
    println!("  B′     = {}", f3.b_prime);
    assert!(equivalent(&f3.b, &f3.b_relaxed));
    assert!(equivalent(&f3.b, &f3.b_prime));
    println!("  ✓ B ≡ B_r// ≡ B′");

    println!("\n— Figure 4: correlation, extension, lifting —");
    let f4 = figure4();
    println!("  V  = {}", f4.v);
    for (name, p) in [("P1", &f4.p1), ("P2", &f4.p2), ("P3", &f4.p3)] {
        let ans = planner.decide(p, &f4.v);
        let r = ans.rewriting().expect("rewriting exists");
        println!("  {name} = {p:<24} rewriting: {r}");
    }
    println!("  V+*          = {}", f4.v_ext);
    println!("  P2+µ         = {}", f4.p2_ext);
    println!("  (P2+µ)^(4→)  = {}", f4.p2_ext_lifted);
    // Theorem 5.9 transfer on the natural candidate of P2.
    let r = f4.p2.sub_pattern_geq(3);
    let r_tr = r.extend(xpath_views::pattern::NodeTest::Label(f4.mu)).lift_output(1);
    let lhs = compose(&r, &f4.v).expect("composes");
    let rhs = compose(&r_tr, &f4.v_ext).expect("composes");
    assert!(equivalent(&lhs, &f4.p2));
    assert!(equivalent(&rhs, &f4.p2_ext_lifted));
    println!("  ✓ Theorem 5.9: R rewrites P2 using V ⟺ (R+µ)^(1→) rewrites (P2+µ)^(4→) using V+*");

    println!("\nall figure claims verified");
}
