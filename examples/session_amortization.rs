//! The oracle/session/batch API end to end: repeated traffic against a
//! `ViewCache` is planned once and served from the plan memo thereafter.
//!
//! Run with `cargo run --release --example session_amortization`.

use xpath_views::prelude::*;

fn main() {
    // A document and a pool of materialized views.
    let doc = TreeBuilder::root("site", |b| {
        for _ in 0..4 {
            b.child("region", |b| {
                b.child("item", |b| {
                    b.leaf("name");
                    b.child("desc", |b| {
                        b.leaf("keyword");
                    });
                });
            });
        }
    });
    let mut cache = ViewCache::new(doc);
    cache.add_view("items", parse_xpath("site/region/item").unwrap());
    cache.add_view("keywords", parse_xpath("site//keyword").unwrap());

    // A repeated workload slice, answered in one pass.
    let hot = parse_xpath("site/region/item/name").unwrap();
    let cold = parse_xpath("site//desc/keyword").unwrap();
    let batch: Vec<Pattern> =
        vec![hot.clone(), cold.clone(), hot.clone(), hot.clone(), cold.clone(), hot.clone()];
    let answers = cache.answer_batch(&batch);
    for (q, a) in batch.iter().zip(&answers) {
        println!("{q}  ->  {} node(s) via {:?}", a.nodes.len(), a.route);
    }

    let s = cache.stats();
    println!("\nstats: {s}");
    assert_eq!(s.plan_memo_misses, 2, "two distinct queries planned once each");
    assert_eq!(s.plan_memo_hits, 4, "four repeats served from the plan memo");

    // The same sharing, one level down: a PlanningSession memoizes the
    // containment oracle across decide() calls.
    let session = RewritePlanner::default().session();
    let p = parse_xpath("a[b]//*/e[d]").unwrap();
    let v = parse_xpath("a[b]/*").unwrap();
    let (_, first) = session.decide_with_stats(&p, &v);
    let (answer, second) = session.decide_with_stats(&p, &v);
    println!(
        "\nsession: first decide misses={} coNP={}, repeat decide hits={} coNP={}",
        first.memo_misses, first.canonical_runs, second.memo_hits, second.canonical_runs
    );
    assert_eq!(second.canonical_runs, 0);
    println!("rewriting: {}", answer.rewriting().expect("figure-2 instance rewrites"));
}
