//! A study of the planner across fragments: how often each completeness
//! condition fires, how often rewritings exist, and how often the paper's
//! machinery leaves an instance undecided (the certificate-free zone).
//!
//! ```sh
//! cargo run --release --example fragment_study [instances-per-fragment]
//! ```

use std::collections::BTreeMap;

use xpath_views::prelude::*;
use xpath_views::rewrite::{find_condition, RewritePlanner};
use xpath_views::workload::{Fragment, PatternGen, PatternGenConfig};

fn main() {
    let per_fragment: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(300);

    let planner = RewritePlanner::without_fallback();
    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "fragment", "instances", "rewrite", "no-rw", "unknown", "cond%"
    );

    let mut condition_histogram: BTreeMap<String, usize> = BTreeMap::new();
    for (name, fragment) in [
        ("XP{//,[]}", Fragment::NoWildcard),
        ("XP{[],*}", Fragment::NoDescendant),
        ("XP{//,*}", Fragment::NoBranch),
        ("XP{//,[],*}", Fragment::Full),
    ] {
        let cfg = PatternGenConfig { depth: (1, 4), fragment, ..Default::default() };
        let mut gen = PatternGen::new(cfg, 0xCAFE);
        let (mut rw, mut no_rw, mut unknown, mut with_cond) = (0usize, 0usize, 0usize, 0usize);
        for _ in 0..per_fragment {
            let (p, v) = gen.instance();
            if let Some(cond) = find_condition(&p, &v, 3) {
                with_cond += 1;
                *condition_histogram.entry(cond.source().to_string()).or_default() += 1;
            }
            match planner.decide(&p, &v) {
                RewriteAnswer::Rewriting(_) => rw += 1,
                RewriteAnswer::NoRewriting(_) => no_rw += 1,
                RewriteAnswer::Unknown(_) => unknown += 1,
            }
        }
        println!(
            "{name:<14} {per_fragment:>9} {rw:>9} {no_rw:>9} {unknown:>9} {:>8.0}%",
            100.0 * with_cond as f64 / per_fragment as f64
        );
    }

    println!("\ncompleteness certificates by source (all fragments):");
    let total: usize = condition_histogram.values().sum();
    for (source, count) in &condition_histogram {
        println!("  {source:<38} {count:>7}  ({:.1}%)", 100.0 * *count as f64 / total as f64);
    }

    println!(
        "\nNote: on the three sub-fragments every instance must be decided\n\
         (the paper proves the conditions cover them); 'unknown' may only\n\
         appear in XP{{//,[],*}}."
    );
}
