//! The caching scenario that motivates the paper (Section 1): a server keeps
//! materialized XPath views; incoming queries are answered from the cache
//! whenever an *equivalent* rewriting exists, with complete (not
//! best-effort) rewritability decisions.
//!
//! ```sh
//! cargo run --example xml_cache
//! ```

use xpath_views::engine::Route;
use xpath_views::prelude::*;
use xpath_views::workload::{site_catalog, site_doc};

fn main() {
    // A synthetic XMark-shaped auction site (see xpv-workload).
    let doc = site_doc(8, 12, 42);
    println!("document: {} nodes", doc.len());

    let catalog = site_catalog();
    let mut cache = ViewCache::new(doc);
    for (name, def) in &catalog.views {
        let n = cache.add_view(name, def.clone());
        println!("materialized view {name:<14} = {def:<40} ({n} answers)");
    }

    println!("\n{:<22} {:>8} {:<12} rewriting", "query", "answers", "route");
    for (name, query) in &catalog.queries {
        let answer = cache.answer(query);
        // Every answer must equal direct evaluation — the cache is sound.
        assert_eq!(answer.nodes, cache.answer_direct(query), "cache soundness for {name}");
        let (route, rw) = match &answer.route {
            Route::ViaView { view, rewriting } => (format!("view:{view}"), rewriting.clone()),
            Route::Intersect { views, compensation } => {
                (format!("∩{views:?}"), compensation.clone())
            }
            Route::Direct => ("direct".to_string(), String::new()),
        };
        println!("{name:<22} {:>8} {route:<12} {rw}", answer.nodes.len());
    }

    let stats = cache.stats();
    println!("\ncache stats: {stats}");
    assert!(stats.view_hits >= 3, "the catalog is built to hit the cache");
}
