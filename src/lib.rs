//! # xpath-views
//!
//! A from-scratch Rust reproduction of **“On Rewriting XPath Queries Using
//! Views”** (Afrati, Chirkova, Gergatsoulis, Kimelfeld, Pavlaki, Sagiv —
//! EDBT 2009).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`model`] — labels, XML trees, XML parsing ([`xpv_model`]);
//! * [`pattern`] — tree patterns for `XP{//,[],*}`, parser/printer and the
//!   paper's structural operations ([`xpv_pattern`]);
//! * [`semantics`] — embeddings, evaluation, canonical models and the
//!   containment/equivalence decision procedures ([`xpv_semantics`]);
//! * [`rewrite`] — natural rewriting candidates, completeness conditions,
//!   the planner, and the brute-force decision procedure ([`xpv_core`]);
//! * [`intersect`] — multi-view **intersection** rewriting: subset
//!   selection over a view pool, exact intersection patterns, and node-set
//!   evaluation ([`xpv_intersect`] — the sound part of the paper's open
//!   problem 5, after Cautis et al.);
//! * [`maintain`] — the document **edit log** and incremental view
//!   maintenance under tree updates ([`xpv_maintain`]);
//! * [`net`] — the hand-rolled async runtime (epoll reactor + executor)
//!   and the framed xpv **wire protocol** with credit-based backpressure
//!   ([`xpv_net`]);
//! * [`obs`] — the dependency-free observability layer: lock-free
//!   counters and log-bucketed latency histograms, request-lifecycle
//!   trace spans with global sampling, and the metrics-snapshot text
//!   exposition ([`xpv_obs`] — `xpv stats` / `xpv top` read it over the
//!   wire);
//! * [`engine`] — materialized views and answering queries using views
//!   ([`xpv_engine`]);
//! * [`workload`] — generators for patterns, documents, rewriting
//!   scenarios, and document edit streams ([`xpv_workload`]).
//!
//! ## The containment oracle and planning sessions
//!
//! Every decision in this workspace bottoms out in the coNP canonical-model
//! containment test (Section 2.2 of the paper). All layers route it through
//! a shared, memoizing [`ContainmentOracle`](semantics::ContainmentOracle):
//! patterns are interned to structural keys
//! ([`PatternInterner`](pattern::PatternInterner), stable under sibling
//! reordering) and both homomorphism witnesses and full verdicts are cached.
//!
//! * One-shot calls (`contained(p, q)`, `planner.decide(p, v)`) run the
//!   staged procedure without a memo — same behavior as before the oracle
//!   existed, and verdict-identical to a fresh oracle.
//! * Repeated traffic goes through a
//!   [`PlanningSession`](rewrite::PlanningSession)
//!   (`planner.session()`), which shares every verdict across calls.
//! * [`ViewCache`](engine::ViewCache) holds a session for its lifetime plus
//!   a per-query **plan memo**: the second arrival of a query skips planning
//!   entirely — zero containment calls — and
//!   [`ViewCache::answer_batch`](engine::ViewCache::answer_batch) answers a
//!   workload slice in one pass, planning in-batch duplicates once.
//!   `CacheStats` / `PlannerStats` expose the memo-hit counters;
//!   `set_memo_enabled(false)` is the ablation knob.
//!
//! ## Concurrent serving
//!
//! The whole decision path takes `&self`: the oracle shards its memos by
//! interned-pattern fingerprint, and
//! [`ShardedViewCache`](engine::ShardedViewCache) shards the plan memo the
//! same way over a copy-on-write view pool (LRU-bounded, with per-view
//! dependency invalidation on `add_view`). Worker threads answer
//! concurrently through one cache — byte-identical to the single-threaded
//! `ViewCache` — and the serving front-end is **async end to end**:
//! [`AsyncCacheServer`](engine::AsyncCacheServer) multiplexes any number
//! of wire-protocol connections (TCP / Unix-domain, `xpv listen`) onto a
//! fixed CPU worker pool with per-connection credit windows, while
//! [`CacheServer`](engine::CacheServer) keeps the blocking in-process API
//! as a thin wrapper over the same pool, with per-tenant stats
//! (`xpv serve-bench --transport {inproc,unix,tcp}` drives both from the
//! command line).
//!
//! ## Document updates
//!
//! The cached document is not frozen:
//! [`apply_edits`](engine::ShardedViewCache::apply_edits) applies a
//! transactional batch of tree edits ([`maintain::Edit`]) and refreshes
//! every registered view **incrementally** from the edits' affected
//! regions, invalidating only the plan-memo routes whose participants'
//! answers actually changed (`xpv update-bench` ablates incremental vs
//! full-recompute maintenance from the command line).
//!
//! ```
//! use xpath_views::prelude::*;
//!
//! let mut session = RewritePlanner::default().session();
//! let p = parse_xpath("a[b]//*/e[d]").unwrap();
//! let v = parse_xpath("a[b]/*").unwrap();
//! let (_, cold) = session.decide_with_stats(&p, &v);
//! let (_, warm) = session.decide_with_stats(&p, &v);
//! assert!(cold.memo_misses > 0 && warm.memo_misses == 0);
//! assert_eq!(warm.canonical_runs, 0);
//! ```
//!
//! ## Quickstart
//!
//! ```
//! use xpath_views::prelude::*;
//!
//! // The view that has been materialized, and the new query.
//! let v = parse_xpath("a[b]/*").unwrap();
//! let p = parse_xpath("a[b]//*/e[d]").unwrap();
//!
//! // Decide rewritability and fetch the rewriting.
//! let planner = RewritePlanner::default();
//! match planner.decide(&p, &v) {
//!     RewriteAnswer::Rewriting(rw) => {
//!         // Applying rw.pattern() to V(t) equals applying p to t, for all t.
//!         assert_eq!(rw.pattern().to_string(), "*//e[d]");
//!     }
//!     other => panic!("expected a rewriting, got {other:?}"),
//! }
//! ```

pub use xpv_core as rewrite;
pub use xpv_engine as engine;
pub use xpv_intersect as intersect;
pub use xpv_maintain as maintain;
pub use xpv_model as model;
pub use xpv_net as net;
pub use xpv_obs as obs;
pub use xpv_pattern as pattern;
pub use xpv_semantics as semantics;
pub use xpv_workload as workload;

/// The most common imports in one place.
pub mod prelude {
    pub use xpv_core::{
        BruteForceConfig, Condition, PlannerStats, PlanningSession, RewriteAnswer, RewritePlanner,
        Rewriting,
    };
    pub use xpv_engine::{
        AsyncCacheServer, CacheServer, CacheStats, MaterializedView, Route, ShardedViewCache,
        TenantStats, ViewCache,
    };
    pub use xpv_intersect::{IntersectAnswer, IntersectConfig};
    pub use xpv_model::{parse_xml, to_xml, Label, NodeId, Tree, TreeBuilder};
    pub use xpv_pattern::{
        compose, parse_xpath, to_xpath, Axis, NodeTest, PatId, Pattern, PatternBuilder,
        PatternInterner, PatternKey,
    };
    pub use xpv_semantics::{
        contained, equivalent, evaluate, evaluate_weak, weakly_contained, weakly_equivalent,
        ContainmentOracle, OracleStats,
    };
    pub use xpv_workload::{PatternGen, PatternGenConfig, TreeGen, TreeGenConfig};
}
