//! # xpath-views
//!
//! A from-scratch Rust reproduction of **“On Rewriting XPath Queries Using
//! Views”** (Afrati, Chirkova, Gergatsoulis, Kimelfeld, Pavlaki, Sagiv —
//! EDBT 2009).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`model`] — labels, XML trees, XML parsing ([`xpv_model`]);
//! * [`pattern`] — tree patterns for `XP{//,[],*}`, parser/printer and the
//!   paper's structural operations ([`xpv_pattern`]);
//! * [`semantics`] — embeddings, evaluation, canonical models and the
//!   containment/equivalence decision procedures ([`xpv_semantics`]);
//! * [`rewrite`] — natural rewriting candidates, completeness conditions,
//!   the planner, and the brute-force decision procedure ([`xpv_core`]);
//! * [`engine`] — materialized views and answering queries using views
//!   ([`xpv_engine`]);
//! * [`workload`] — generators for patterns, documents and rewriting
//!   scenarios ([`xpv_workload`]).
//!
//! ## Quickstart
//!
//! ```
//! use xpath_views::prelude::*;
//!
//! // The view that has been materialized, and the new query.
//! let v = parse_xpath("a[b]/*").unwrap();
//! let p = parse_xpath("a[b]//*/e[d]").unwrap();
//!
//! // Decide rewritability and fetch the rewriting.
//! let planner = RewritePlanner::default();
//! match planner.decide(&p, &v) {
//!     RewriteAnswer::Rewriting(rw) => {
//!         // Applying rw.pattern() to V(t) equals applying p to t, for all t.
//!         assert_eq!(rw.pattern().to_string(), "*//e[d]");
//!     }
//!     other => panic!("expected a rewriting, got {other:?}"),
//! }
//! ```

pub use xpv_core as rewrite;
pub use xpv_engine as engine;
pub use xpv_model as model;
pub use xpv_pattern as pattern;
pub use xpv_semantics as semantics;
pub use xpv_workload as workload;

/// The most common imports in one place.
pub mod prelude {
    pub use xpv_core::{BruteForceConfig, Condition, RewriteAnswer, RewritePlanner, Rewriting};
    pub use xpv_engine::{MaterializedView, ViewCache};
    pub use xpv_model::{parse_xml, to_xml, Label, NodeId, Tree, TreeBuilder};
    pub use xpv_pattern::{
        compose, parse_xpath, to_xpath, Axis, NodeTest, PatId, Pattern, PatternBuilder,
    };
    pub use xpv_semantics::{
        contained, equivalent, evaluate, evaluate_weak, weakly_contained, weakly_equivalent,
    };
    pub use xpv_workload::{PatternGen, PatternGenConfig, TreeGen, TreeGenConfig};
}
