//! `bench-gate` — CI regression gate over the committed bench baselines.
//!
//! ```text
//! bench-gate [--baseline-dir DIR] [--fresh-dir DIR] [--tolerance F]
//! ```
//!
//! Compares freshly produced `BENCH_serving.json`, `BENCH_updates.json`,
//! `BENCH_obs.json`, `BENCH_eval.json`, and `BENCH_throughput.json` (in
//! `--fresh-dir`, default `.`) against the committed copies in
//! `--baseline-dir` (default `baselines/`) and exits non-zero when a
//! headline number regresses past the tolerance band:
//!
//! * **serving** — best qps across the sweep's runs must stay within
//!   `1 - F` of the baseline's best, and the cold-miss arm's
//!   `ablation_arms_agree` must be `true` (correctness, never
//!   tolerance-banded);
//! * **updates** — `speedup_primary_vs_full` must stay within `1 - F`
//!   of baseline, and `verified_identical` must be `true`;
//! * **obs** — `within_budget` must be `true`, and
//!   `always_on_overhead_pct` may not exceed the baseline by more than
//!   `F × 100` percentage points;
//! * **eval** — the best fused-path qps (`flat_fused` / `flat_fused_arena`
//!   rows) must stay within `1 - F` of baseline, with
//!   `verified_identical` `true`;
//! * **throughput** — the plan-miss fast path: `speedup_filter_on_vs_off`
//!   within `1 - F` of baseline, `sig_reject_rate ≥ 0.9` (the filter must
//!   keep rejecting ~all useless candidates before any oracle call), and
//!   `answers_identical` `true`.
//!
//! The default tolerance is deliberately wide (`0.5` — CI machines are
//! not the machines the baselines were measured on); the gate exists to
//! catch step-function regressions, not single-digit noise. The parsing
//! is a dependency-free key scan, not a JSON parser: the bench writers
//! in `xpv` emit one `"key": value` pair per headline metric, which is
//! all the gate needs.

use std::process::ExitCode;

/// Every number attached to `"key":` anywhere in the document.
fn scan_numbers(json: &str, key: &str) -> Vec<f64> {
    let needle = format!("\"{key}\":");
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(at) = rest.find(&needle) {
        rest = &rest[at + needle.len()..];
        let trimmed = rest.trim_start();
        let end = trimmed
            .find(|c: char| !(c.is_ascii_digit() || c == '-' || c == '+' || c == '.' || c == 'e'))
            .unwrap_or(trimmed.len());
        if let Ok(v) = trimmed[..end].parse::<f64>() {
            out.push(v);
        }
    }
    out
}

/// The first boolean attached to `"key":`, if any.
fn scan_bool(json: &str, key: &str) -> Option<bool> {
    let needle = format!("\"{key}\":");
    let rest = &json[json.find(&needle)? + needle.len()..];
    let trimmed = rest.trim_start();
    if trimmed.starts_with("true") {
        Some(true)
    } else if trimmed.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

fn read(dir: &str, name: &str) -> Result<String, String> {
    let path = std::path::Path::new(dir).join(name);
    std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))
}

struct Gate {
    failures: Vec<String>,
}

impl Gate {
    /// `fresh` must stay within `1 - tolerance` of `base` (higher is
    /// better for every ratio the gate checks).
    fn check_floor(&mut self, what: &str, base: f64, fresh: f64, tolerance: f64) {
        let floor = base * (1.0 - tolerance);
        let verdict = if fresh >= floor { "ok" } else { "REGRESSED" };
        println!(
            "{what:<40} base {base:>12.3}  fresh {fresh:>12.3}  floor {floor:>12.3}  {verdict}"
        );
        if fresh < floor {
            self.failures.push(format!("{what}: {fresh:.3} < floor {floor:.3} (base {base:.3})"));
        }
    }

    fn require(&mut self, what: &str, ok: bool) {
        println!("{what:<40} {}", if ok { "ok" } else { "FAILED" });
        if !ok {
            self.failures.push(what.to_string());
        }
    }
}

fn run(baseline_dir: &str, fresh_dir: &str, tolerance: f64) -> Result<Vec<String>, String> {
    let mut gate = Gate { failures: Vec::new() };

    // --- serving: best qps across the sweep -----------------------------
    let base = read(baseline_dir, "BENCH_serving.json")?;
    let fresh = read(fresh_dir, "BENCH_serving.json")?;
    let best = |json: &str| scan_numbers(json, "qps").into_iter().fold(0.0, f64::max);
    let (base_qps, fresh_qps) = (best(&base), best(&fresh));
    if base_qps <= 0.0 || fresh_qps <= 0.0 {
        return Err("BENCH_serving.json: no qps values found".to_string());
    }
    gate.check_floor("serving: best qps", base_qps, fresh_qps, tolerance);
    gate.require(
        "serving: cold_miss ablation_arms_agree",
        scan_bool(&fresh, "ablation_arms_agree") == Some(true),
    );

    // --- updates: incremental-maintenance speedup + correctness ---------
    let base = read(baseline_dir, "BENCH_updates.json")?;
    let fresh = read(fresh_dir, "BENCH_updates.json")?;
    let speedup = |json: &str| scan_numbers(json, "speedup_primary_vs_full").first().copied();
    match (speedup(&base), speedup(&fresh)) {
        (Some(b), Some(f)) => gate.check_floor("updates: speedup_primary_vs_full", b, f, tolerance),
        _ => return Err("BENCH_updates.json: no speedup_primary_vs_full found".to_string()),
    }
    gate.require(
        "updates: verified_identical",
        scan_bool(&fresh, "verified_identical") == Some(true),
    );

    // --- obs: tracing budget --------------------------------------------
    let base = read(baseline_dir, "BENCH_obs.json")?;
    let fresh = read(fresh_dir, "BENCH_obs.json")?;
    gate.require("obs: within_budget", scan_bool(&fresh, "within_budget") == Some(true));
    let overhead = |json: &str| scan_numbers(json, "always_on_overhead_pct").first().copied();
    if let (Some(b), Some(f)) = (overhead(&base), overhead(&fresh)) {
        let ceiling = b + tolerance * 100.0;
        let ok = f <= ceiling;
        println!(
            "{:<40} base {b:>+11.3}%  fresh {f:>+11.3}%  ceiling {ceiling:>+10.3}%  {}",
            "obs: always_on_overhead_pct",
            if ok { "ok" } else { "REGRESSED" }
        );
        if !ok {
            gate.failures.push(format!("obs overhead {f:+.3}% exceeds ceiling {ceiling:+.3}%"));
        }
    } else {
        return Err("BENCH_obs.json: no always_on_overhead_pct found".to_string());
    }

    // --- eval: fused flat matcher (arena lane included) -----------------
    let base = read(baseline_dir, "BENCH_eval.json")?;
    let fresh = read(fresh_dir, "BENCH_eval.json")?;
    // All qps rows describe fused/flat paths except the reference row;
    // best-of keeps the gate robust to which variant wins on a given box.
    let best_qps = |json: &str| scan_numbers(json, "qps").into_iter().fold(0.0, f64::max);
    let (base_eval, fresh_eval) = (best_qps(&base), best_qps(&fresh));
    if base_eval <= 0.0 || fresh_eval <= 0.0 {
        return Err("BENCH_eval.json: no qps values found".to_string());
    }
    gate.check_floor("eval: best qps", base_eval, fresh_eval, tolerance);
    gate.require("eval: verified_identical", scan_bool(&fresh, "verified_identical") == Some(true));

    // --- throughput: plan-miss fast path --------------------------------
    let base = read(baseline_dir, "BENCH_throughput.json")?;
    let fresh = read(fresh_dir, "BENCH_throughput.json")?;
    let sig_speedup = |json: &str| scan_numbers(json, "speedup_filter_on_vs_off").first().copied();
    match (sig_speedup(&base), sig_speedup(&fresh)) {
        (Some(b), Some(f)) => {
            gate.check_floor("throughput: speedup_filter_on_vs_off", b, f, tolerance)
        }
        _ => return Err("BENCH_throughput.json: no speedup_filter_on_vs_off found".to_string()),
    }
    let reject_rate = scan_numbers(&fresh, "sig_reject_rate").first().copied().unwrap_or(0.0);
    gate.require(
        "throughput: sig_reject_rate >= 0.9",
        // A hard floor, not tolerance-banded: the filter's necessary
        // conditions either reject the foreign-catalog pool or they don't.
        reject_rate >= 0.9,
    );
    gate.require(
        "throughput: answers_identical",
        scan_bool(&fresh, "answers_identical") == Some(true),
    );

    Ok(gate.failures)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline_dir = "baselines".to_string();
    let mut fresh_dir = ".".to_string();
    let mut tolerance = 0.5f64;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let value = match it.next() {
            Some(v) => v,
            None => {
                eprintln!("error: {flag}: missing value");
                return ExitCode::FAILURE;
            }
        };
        match flag.as_str() {
            "--baseline-dir" => baseline_dir = value.clone(),
            "--fresh-dir" => fresh_dir = value.clone(),
            "--tolerance" => match value.parse::<f64>() {
                Ok(v) if (0.0..1.0).contains(&v) => tolerance = v,
                _ => {
                    eprintln!("error: --tolerance: expected a fraction in [0, 1)");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!(
                    "error: unknown flag {other}\nusage: bench-gate [--baseline-dir DIR] \
                     [--fresh-dir DIR] [--tolerance F]"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    println!("bench-gate: baselines from {baseline_dir}/, fresh from {fresh_dir}/, tolerance {tolerance}");
    match run(&baseline_dir, &fresh_dir, tolerance) {
        Ok(failures) if failures.is_empty() => {
            println!("bench-gate: all headline metrics within the tolerance band");
            ExitCode::SUCCESS
        }
        Ok(failures) => {
            for f in &failures {
                eprintln!("bench-gate regression: {f}");
            }
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench-gate error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scanners_pull_headline_values() {
        let json = r#"{ "qps": 1000.5, "runs": [ { "qps": 2000 }, { "qps": 1500.25 } ],
                        "within_budget": true, "speedup_primary_vs_full": 1.245,
                        "always_on_overhead_pct": -5.810 }"#;
        assert_eq!(scan_numbers(json, "qps"), vec![1000.5, 2000.0, 1500.25]);
        assert_eq!(scan_bool(json, "within_budget"), Some(true));
        assert_eq!(scan_numbers(json, "always_on_overhead_pct"), vec![-5.810]);
        assert_eq!(scan_bool(json, "missing"), None);
        assert!(scan_numbers(json, "missing").is_empty());
    }

    #[test]
    fn floor_check_flags_regressions_only() {
        let mut gate = Gate { failures: Vec::new() };
        gate.check_floor("metric", 100.0, 80.0, 0.5); // floor 50: ok
        assert!(gate.failures.is_empty());
        gate.check_floor("metric", 100.0, 40.0, 0.5); // floor 50: regressed
        assert_eq!(gate.failures.len(), 1);
    }
}
