//! `xpv` — command-line front end for the xpath-views library.
//!
//! ```text
//! xpv rewrite  <QUERY> <VIEW>        decide rewritability, print R + certificate
//! xpv intersect <QUERY> <VIEW> <VIEW>...
//!                                    rewrite the query over a multi-view
//!                                    intersection from the given pool
//! xpv contain  <P1> <P2>             decide P1 ⊑ P2 (and the reverse)
//! xpv eval     <QUERY> <FILE.xml>    evaluate a query over a document ('-' = stdin)
//! xpv reduce   <PATTERN>             remove redundant branches
//! xpv figures                        verify the paper's figures
//! xpv serve-bench [--threads N] [--shards S] [--memo-cap M]
//!                 [--queries Q] [--tenants T] [--no-intersect] [--no-flat]
//!                 [--no-sig-filter] [--no-arena]
//!                 [--transport inproc|unix|tcp] [--pipeline P] [--sweep]
//!                                    drive the serving front-end with a
//!                                    Zipf workload (overlapping-view
//!                                    catalog) over the chosen transport and
//!                                    print throughput; --sweep ablates
//!                                    transports x threads {1,2,4,8}, runs
//!                                    the cold-cache/high-miss plan arm
//!                                    (sig filter on vs off over a large
//!                                    derived-view pool, all ablation arms
//!                                    verified identical) and writes
//!                                    BENCH_serving.json
//! xpv listen   (--tcp ADDR | --unix PATH) [--workers N] [--window W]
//!              [--xml FILE] [--view NAME=DEF]...
//!                                    serve the wire protocol until killed
//!                                    (default: the site document with the
//!                                    overlapping-view catalog)
//! xpv client   (--tcp ADDR | --unix PATH) [--tenant T] [--stats] QUERY...
//!                                    answer a query batch over a socket and
//!                                    print nodes + routes
//! xpv stats    (--tcp ADDR | --unix PATH)
//!                                    fetch the server's full metrics
//!                                    snapshot (every family: oracle, cache,
//!                                    tenants, maintain, net, server) and
//!                                    print the text exposition
//! xpv top      (--tcp ADDR | --unix PATH) [--interval S] [--count N]
//!              [--filter PREFIX] [--sort-rate]
//!                                    live metrics from the server-side
//!                                    history sampler: redraw every S
//!                                    seconds with per-tick rates and
//!                                    sparklines (N = 0 runs until
//!                                    killed); --filter keeps metric
//!                                    names starting with PREFIX,
//!                                    --sort-rate orders by rate instead
//!                                    of name
//! xpv dump     (--tcp ADDR | --unix PATH) [--out FILE] [--traces N]
//!                                    pull the server's flight-recorder
//!                                    artifact — live metrics, history
//!                                    window, watchdog alerts, drained
//!                                    trace spans, config — and print it
//!                                    (or write it to FILE); draining is
//!                                    destructive server-side
//! xpv obs-bench [--queries Q] [--repeat R] [--max-overhead PCT]
//!                                    measure the observability layer's
//!                                    serving overhead (tracing off /
//!                                    sampled 1-in-64 / always-on, with
//!                                    the 1 s history sampler running)
//!                                    plus disabled-span and
//!                                    histogram-record costs; writes
//!                                    BENCH_obs.json and fails if
//!                                    always-on costs more than PCT
//!                                    percent (default 10)
//! xpv update-bench [--edits N] [--edit-mix I:D:R] [--edit-locality H:P]
//!                  [--batches B] [--queries Q] [--repeat R] [--seed S]
//!                  [--no-coalesce] [--no-parallel-regions]
//!                                    ablate view maintenance — full
//!                                    recompute vs per-edit vs coalesced
//!                                    (tree / flat / parallel regions) —
//!                                    under a bursty Zipf edit stream
//!                                    (H hot subtrees absorb P% of edits);
//!                                    writes BENCH_updates.json
//! xpv eval-bench [--nodes N] [--distinct D] [--queries Q] [--labels L]
//!                [--repeat R] [--seed S]
//!                                    ablate the evaluation core: reference
//!                                    Tree matcher vs the word-parallel flat
//!                                    matcher, fused batch vs per-query,
//!                                    scratch pool on/off, and the fused
//!                                    path writing into the reusable answer
//!                                    arena; writes BENCH_eval.json
//! ```
//!
//! Patterns use the fragment's XPath syntax: `a[b]//c[.//d]/e`.

use std::io::Read;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use xpath_views::engine::{metrics_from_wire, AsyncCacheServer, CacheServer, ShardedViewCache};
use xpath_views::intersect::plan_intersection_in;
use xpath_views::net::{WireClient, WireRoute};
use xpath_views::obs::{HistogramSummary, SampleValue};
use xpath_views::prelude::*;
use xpath_views::rewrite::{figure1, figure2, figure3, figure4, NoRewriteReason};
use xpath_views::semantics::remove_redundant_branches;
use xpath_views::workload::{
    bib_catalog, catalog_zipf_stream, derived_view_pool, edit_batches, edit_stream_clustered,
    run_socket_load, site_catalog, site_doc, site_intersect_catalog, EditLocality, EditMix,
};

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!(
        "usage:\n  xpv rewrite <QUERY> <VIEW>\n  xpv intersect <QUERY> <VIEW> <VIEW>...\n  \
         xpv contain <P1> <P2>\n  \
         xpv eval <QUERY> <FILE.xml|->\n  xpv reduce <PATTERN>\n  xpv figures\n  \
         xpv serve-bench [--threads N] [--shards S] [--memo-cap M] [--queries Q] [--tenants T] \
         [--no-intersect] [--no-flat] [--no-sig-filter] [--no-arena] \
         [--transport inproc|unix|tcp] [--pipeline P] [--sweep]\n  \
         xpv listen (--tcp ADDR | --unix PATH) [--workers N] [--window W] [--xml FILE] \
         [--view NAME=DEF]...\n  \
         xpv client (--tcp ADDR | --unix PATH) [--tenant T] [--stats] QUERY...\n  \
         xpv stats (--tcp ADDR | --unix PATH)\n  \
         xpv top (--tcp ADDR | --unix PATH) [--interval S] [--count N] [--filter PREFIX] \
         [--sort-rate]\n  \
         xpv dump (--tcp ADDR | --unix PATH) [--out FILE] [--traces N]\n  \
         xpv obs-bench [--queries Q] [--repeat R] [--max-overhead PCT]\n  \
         xpv update-bench [--edits N] [--edit-mix I:D:R] [--edit-locality H:P] [--batches B] \
         [--queries Q] [--repeat R] [--seed S] [--no-coalesce] [--no-parallel-regions]\n  \
         xpv eval-bench [--nodes N] [--distinct D] [--queries Q] [--labels L] [--repeat R] \
         [--seed S]"
    );
    ExitCode::FAILURE
}

fn parse(label: &str, s: &str) -> Result<Pattern, String> {
    parse_xpath(s).map_err(|e| format!("{label}: {e}"))
}

fn cmd_rewrite(query: &str, view: &str) -> Result<ExitCode, String> {
    let p = parse("query", query)?;
    let v = parse("view", view)?;
    match RewritePlanner::default().decide(&p, &v) {
        RewriteAnswer::Rewriting(rw) => {
            println!("rewriting: {}", rw.pattern());
            println!("method:    {:?}", rw.method);
            if let Some(c) = &rw.condition {
                println!("condition: {c}  [{}]", c.source());
            }
            let rv = compose(rw.pattern(), &v).expect("verified rewriting composes");
            println!("check:     R∘V = {rv} ≡ P");
            Ok(ExitCode::SUCCESS)
        }
        RewriteAnswer::NoRewriting(reason) => {
            match reason {
                NoRewriteReason::ViewDeeperThanQuery => {
                    println!("no rewriting: the view is deeper than the query (Prop 3.1)")
                }
                NoRewriteReason::KNodeLabelClash { query_k_test, view_out_test } => println!(
                    "no rewriting: k-node test {query_k_test} clashes with out(V) test \
                     {view_out_test} (Prop 3.1(3))"
                ),
                NoRewriteReason::CandidatesFailUnderCondition(c) => println!(
                    "no rewriting: natural candidates fail and the instance is covered by \
                     {c} [{}]",
                    c.source()
                ),
            }
            Ok(ExitCode::from(2))
        }
        RewriteAnswer::Unknown(info) => {
            println!(
                "undecided: no completeness condition applies{}",
                if info.no_small_rewriting {
                    "; no rewriting up to the brute-force size budget"
                } else {
                    ""
                }
            );
            Ok(ExitCode::from(3))
        }
    }
}

/// Plans `query` over the intersection of a view pool: picks a small view
/// subset whose node-set intersection supports a verified compensation.
fn cmd_intersect(query: &str, views: &[String]) -> Result<ExitCode, String> {
    let p = parse("query", query)?;
    let pool: Vec<Pattern> = views.iter().map(|v| parse("view", v)).collect::<Result<_, _>>()?;
    let refs: Vec<&Pattern> = pool.iter().collect();
    let session = RewritePlanner::default().session();

    // Report single-view coverage first, so the intersection's added value
    // is visible.
    let singles: Vec<usize> =
        (0..refs.len()).filter(|&i| session.decide(&p, refs[i]).rewriting().is_some()).collect();
    if !singles.is_empty() {
        println!(
            "note: view(s) {:?} already rewrite the query individually",
            singles.iter().map(|&i| views[i].as_str()).collect::<Vec<_>>()
        );
    }

    let (answer, stats) = plan_intersection_in(&session, &p, &refs, &IntersectConfig::default());
    println!("search:       {stats}");
    match answer {
        Some(ans) => {
            let names: Vec<&str> = ans.views.iter().map(|&i| views[i].as_str()).collect();
            println!("participants: {names:?}");
            println!("intersection: {}", ans.intersection);
            println!("compensation: {}", ans.compensation);
            let rm = compose(&ans.compensation, &ans.intersection)
                .expect("verified compensation composes");
            println!("check:        R∘M = {rm} ≡ P");
            Ok(ExitCode::SUCCESS)
        }
        None => {
            println!(
                "no intersection rewriting found (tree-expressible subsets up to arity {}, \
                 budget {})",
                IntersectConfig::default().max_arity,
                IntersectConfig::default().max_candidates
            );
            Ok(ExitCode::from(2))
        }
    }
}

fn cmd_contain(a: &str, b: &str) -> Result<ExitCode, String> {
    let p1 = parse("P1", a)?;
    let p2 = parse("P2", b)?;
    let fwd = contained(&p1, &p2);
    let bwd = contained(&p2, &p1);
    println!("P1 ⊑ P2: {fwd}");
    println!("P2 ⊑ P1: {bwd}");
    println!(
        "verdict: {}",
        match (fwd, bwd) {
            (true, true) => "equivalent",
            (true, false) => "P1 strictly contained in P2",
            (false, true) => "P2 strictly contained in P1",
            (false, false) => "incomparable",
        }
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_eval(query: &str, file: &str) -> Result<ExitCode, String> {
    let p = parse("query", query)?;
    let xml = if file == "-" {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf).map_err(|e| format!("stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?
    };
    let doc = parse_xml(&xml).map_err(|e| format!("{file}: {e}"))?;
    let answers = evaluate(&p, &doc);
    println!("{} answer(s)", answers.len());
    for n in answers {
        println!("{}", to_xml(&doc.subtree(n).0));
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_reduce(pattern: &str) -> Result<ExitCode, String> {
    let p = parse("pattern", pattern)?;
    let r = remove_redundant_branches(&p);
    println!("{r}");
    if r.len() < p.len() {
        eprintln!("removed {} redundant node(s)", p.len() - r.len());
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_figures() -> Result<ExitCode, String> {
    let f1 = figure1();
    let rv = compose(&f1.r, &f1.v).expect("composes");
    assert!(equivalent(&rv, &f1.p));
    println!("figure 1: R = {} rewrites P = {} using V = {}", f1.r, f1.p, f1.v);
    let f2 = figure2();
    assert!(!equivalent(&compose(&f2.cand_base, &f2.v).expect("composes"), &f2.p));
    assert!(equivalent(&compose(&f2.cand_relaxed, &f2.v).expect("composes"), &f2.p));
    println!("figure 2: P≥1 = {} fails; P≥1_r// = {} succeeds", f2.cand_base, f2.cand_relaxed);
    let f3 = figure3();
    assert!(equivalent(&f3.b, &f3.b_prime) && equivalent(&f3.b, &f3.b_relaxed));
    println!("figure 3: B ≡ B_r// ≡ B′ for B = {}", f3.b);
    let f4 = figure4();
    let planner = RewritePlanner::default();
    for (name, p) in [("P1", &f4.p1), ("P2", &f4.p2), ("P3", &f4.p3)] {
        let r = planner.decide(p, &f4.v).rewriting().expect("rewriting").clone();
        println!("figure 4: {name} = {p} rewritten by {r}");
    }
    println!("all figure claims verified");
    Ok(ExitCode::SUCCESS)
}

/// Which seam carries the bench traffic to the cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Transport {
    /// The in-process compatibility transport (`CacheServer::submit`).
    Inproc,
    /// The wire protocol over a Unix-domain socket.
    Unix,
    /// The wire protocol over loopback TCP.
    Tcp,
}

impl Transport {
    fn parse(s: &str) -> Result<Transport, String> {
        match s {
            "inproc" => Ok(Transport::Inproc),
            "unix" => Ok(Transport::Unix),
            "tcp" => Ok(Transport::Tcp),
            other => Err(format!("--transport: expected inproc|unix|tcp, got {other}")),
        }
    }

    fn name(self) -> &'static str {
        match self {
            Transport::Inproc => "inproc",
            Transport::Unix => "unix",
            Transport::Tcp => "tcp",
        }
    }
}

/// Ablation knobs for `serve-bench`, parsed from `--flag value` pairs plus
/// the booleans `--no-intersect`, `--no-flat`, `--no-sig-filter`,
/// `--no-arena` and `--sweep`.
struct ServeBenchOpts {
    threads: usize,
    shards: usize,
    memo_cap: usize,
    queries: usize,
    tenants: usize,
    intersect: bool,
    flat: bool,
    sig_filter: bool,
    arena: bool,
    transport: Transport,
    pipeline: usize,
    sweep: bool,
}

impl ServeBenchOpts {
    fn parse(args: &[String]) -> Result<ServeBenchOpts, String> {
        let mut opts = ServeBenchOpts {
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            shards: 16,
            memo_cap: 0,
            queries: 2000,
            tenants: 4,
            intersect: true,
            flat: true,
            sig_filter: true,
            arena: true,
            transport: Transport::Inproc,
            pipeline: 4,
            sweep: false,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            if flag == "--no-intersect" {
                opts.intersect = false;
                continue;
            }
            if flag == "--no-flat" {
                opts.flat = false;
                continue;
            }
            if flag == "--no-sig-filter" {
                opts.sig_filter = false;
                continue;
            }
            if flag == "--no-arena" {
                opts.arena = false;
                continue;
            }
            if flag == "--sweep" {
                opts.sweep = true;
                continue;
            }
            let value = it.next().ok_or_else(|| format!("{flag}: missing value"))?;
            if flag == "--transport" {
                opts.transport = Transport::parse(value)?;
                continue;
            }
            let value = value.parse::<usize>().map_err(|e| format!("{flag}: {e}"))?;
            match flag.as_str() {
                "--threads" => opts.threads = value.max(1),
                "--shards" => opts.shards = value.max(1),
                "--memo-cap" => opts.memo_cap = value,
                "--queries" => opts.queries = value.max(1),
                "--tenants" => opts.tenants = value.max(1),
                "--pipeline" => opts.pipeline = value.max(1),
                other => return Err(format!("unknown serve-bench flag {other}")),
            }
        }
        Ok(opts)
    }
}

/// One serve-bench measurement, including the run's per-phase latency
/// histograms (drawn from the cache's observability registry after the
/// load completes — socket transports populate the admission / encode /
/// flush phases on top of plan / eval / batch).
struct ServeRun {
    answered: usize,
    elapsed: std::time::Duration,
    phases: Vec<(&'static str, HistogramSummary)>,
}

impl ServeRun {
    fn qps(&self) -> f64 {
        self.answered as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// The phase histograms a serving run can populate, in pipeline order.
const SERVE_PHASES: [&str; 6] = [
    "xpv_phase_admission_us",
    "xpv_phase_plan_us",
    "xpv_phase_eval_us",
    "xpv_phase_batch_us",
    "xpv_phase_encode_us",
    "xpv_phase_flush_us",
];

/// Pulls the non-empty phase histograms out of a cache's snapshot.
fn phase_summaries(
    cache: &ShardedViewCache,
    names: &[&'static str],
) -> Vec<(&'static str, HistogramSummary)> {
    let snap = cache.metrics_snapshot();
    names
        .iter()
        .filter_map(|&name| match snap.get(name)?.value {
            SampleValue::Histogram(h) if h.count > 0 => Some((name, h)),
            _ => None,
        })
        .collect()
}

/// The short phase key (`xpv_phase_eval_us` → `eval`) for tables/JSON.
fn phase_key(name: &str) -> &str {
    name.strip_prefix("xpv_phase_").and_then(|n| n.strip_suffix("_us")).unwrap_or(name)
}

/// Renders phase summaries as one JSON object:
/// `{ "eval": { "count": …, "p50": …, "p99": …, "max": … }, … }`.
fn phase_json(phases: &[(&'static str, HistogramSummary)]) -> String {
    let fields: Vec<String> = phases
        .iter()
        .map(|(name, h)| {
            format!(
                "\"{}\": {{ \"count\": {}, \"p50\": {}, \"p99\": {}, \"max\": {} }}",
                phase_key(name),
                h.count,
                h.p50,
                h.p99,
                h.max
            )
        })
        .collect();
    format!("{{ {} }}", fields.join(", "))
}

fn build_serving_cache(opts: &ServeBenchOpts) -> Arc<ShardedViewCache> {
    let catalog = site_intersect_catalog();
    let cache = ShardedViewCache::new(site_doc(12, 12, 7))
        .with_shards(opts.shards)
        .with_memo_cap(opts.memo_cap);
    cache.set_intersect_enabled(opts.intersect);
    cache.set_flat_enabled(opts.flat);
    cache.set_sig_filter_enabled(opts.sig_filter);
    cache.set_arena_enabled(opts.arena);
    for (name, def) in catalog.views.iter() {
        cache.add_view(name, def.clone());
    }
    Arc::new(cache)
}

/// Runs the Zipf stream through one transport at one thread count; the
/// server is torn down (drained) before returning.
fn run_serving(
    opts: &ServeBenchOpts,
    transport: Transport,
    threads: usize,
    stream: &[Pattern],
    detail: bool,
) -> Result<ServeRun, String> {
    let cache = build_serving_cache(opts);
    let batch_size = (stream.len() / (opts.tenants * 8)).max(1);
    let run = match transport {
        Transport::Inproc => {
            let server = CacheServer::start(Arc::clone(&cache), threads);
            let start = Instant::now();
            let tickets: Vec<_> = stream
                .chunks(batch_size)
                .enumerate()
                .map(|(i, chunk)| {
                    server.submit(&format!("tenant-{}", i % opts.tenants), chunk.to_vec())
                })
                .collect();
            let mut answered = 0usize;
            for ticket in tickets {
                answered += ticket.wait().len();
            }
            let elapsed = start.elapsed();
            if detail {
                print_serving_detail(&cache, &server.tenants());
            }
            ServeRun { answered, elapsed, phases: phase_summaries(&cache, &SERVE_PHASES) }
        }
        Transport::Unix | Transport::Tcp => {
            let server = AsyncCacheServer::start(Arc::clone(&cache), threads);
            let report = match transport {
                Transport::Unix => {
                    let path = std::env::temp_dir()
                        .join(format!("xpv-serve-bench-{}.sock", std::process::id()));
                    let _ = std::fs::remove_file(&path);
                    server.listen_unix(&path).map_err(|e| format!("listen unix: {e}"))?;
                    run_socket_load(
                        || WireClient::connect_unix(&path),
                        opts.tenants,
                        stream,
                        batch_size,
                        opts.pipeline,
                        "tenant-",
                    )
                }
                _ => {
                    let addr =
                        server.listen_tcp("127.0.0.1:0").map_err(|e| format!("listen tcp: {e}"))?;
                    let addr = addr.to_string();
                    run_socket_load(
                        || WireClient::connect_tcp(&addr),
                        opts.tenants,
                        stream,
                        batch_size,
                        opts.pipeline,
                        "tenant-",
                    )
                }
            }
            .map_err(|e| format!("socket load: {e}"))?;
            if detail {
                print_serving_detail(&cache, &server.tenants());
            }
            server.shutdown();
            ServeRun {
                answered: report.answered,
                elapsed: report.elapsed,
                phases: phase_summaries(&cache, &SERVE_PHASES),
            }
        }
    };
    Ok(run)
}

fn print_serving_detail(cache: &ShardedViewCache, tenants: &[(String, TenantStats)]) {
    println!("cache:  {}", cache.stats());
    println!("oracle: {}", cache.session().oracle().stats());
    println!("plan memo entries: {}", cache.plan_memo_len());
    for (tenant, stats) in tenants {
        println!("{tenant}: {stats}");
    }
}

/// The cold-cache / high-miss arm of `serve-bench --sweep`: a large pool
/// of views derived from the site + bib catalogs (most provably useless
/// for any given query), the plan memo disabled so **every** arrival is a
/// plan miss, and the four signature-filter × arena ablation arms. The
/// headline is the cold-planning speedup with the filter on vs off; all
/// four arms must return identical nodes and routes (an `Err` — a failed
/// bench run — otherwise). Returns the `cold_miss` JSON object for
/// `BENCH_serving.json`.
fn cold_miss_arm(queries: usize) -> Result<String, String> {
    use xpath_views::model::AnswerArena;

    let site = site_catalog();
    let bib = bib_catalog();
    // A multi-tenant-shaped pool: a few views derived from this tenant's
    // catalog plus a large block derived from a foreign one — the
    // candidates a cold planner must wade through but that can never
    // rewrite a site query.
    let mut pool = derived_view_pool(&[&site], 1, 0xC01D);
    pool.extend(derived_view_pool(&[&bib], 9, 0xC01D ^ 1));
    let stream = catalog_zipf_stream(&site, queries, 0x21F);
    let build = |sig: bool| {
        let cache = ShardedViewCache::new(site_doc(12, 12, 7)).with_shards(4);
        cache.set_memo_enabled(false);
        cache.set_sig_filter_enabled(sig);
        for (name, def) in &pool {
            cache.add_view(name, def.clone());
        }
        cache
    };
    struct Arm {
        qps: f64,
        plan_us: f64,
        answers: Vec<(Vec<NodeId>, Route)>,
        stats: CacheStats,
    }
    let mut arms: Vec<Arm> = Vec::new();
    for (sig, arena_lane) in [(true, false), (true, true), (false, false), (false, true)] {
        let cache = build(sig);
        let start = Instant::now();
        let (elapsed, plan, answers) = if arena_lane {
            let mut arena = AnswerArena::new();
            let refs = cache.answer_batch_refs(&stream, &mut arena);
            let elapsed = start.elapsed();
            let plan: std::time::Duration = refs.iter().map(|a| a.planning).sum();
            let answers = refs
                .into_iter()
                .map(|a| (arena.get(a.nodes).to_vec(), (*a.route).clone()))
                .collect();
            (elapsed, plan, answers)
        } else {
            let answers = cache.answer_batch(&stream);
            let elapsed = start.elapsed();
            let plan: std::time::Duration = answers.iter().map(|a| a.planning).sum();
            (elapsed, plan, answers.into_iter().map(|a| (a.nodes, a.route)).collect())
        };
        arms.push(Arm {
            qps: stream.len() as f64 / elapsed.as_secs_f64().max(1e-9),
            plan_us: plan.as_secs_f64() * 1e6,
            answers,
            stats: cache.stats(),
        });
    }
    for (i, arm) in arms.iter().enumerate().skip(1) {
        if arm.answers != arms[0].answers {
            return Err(format!(
                "cold-miss ablation arm {i} disagrees with the reference arm on answers/routes"
            ));
        }
    }
    // Planning is the phase the filter attacks (evaluation is identical
    // across arms); best-of the two lanes per filter setting.
    let plan_on_us = arms[0].plan_us.min(arms[1].plan_us);
    let plan_off_us = arms[2].plan_us.min(arms[3].plan_us);
    let plan_speedup = plan_off_us / plan_on_us.max(1e-9);
    let qps_on = arms[0].qps.max(arms[1].qps);
    let qps_off = arms[2].qps.max(arms[3].qps);
    let s = &arms[0].stats;
    let candidates = s.sig_rejects + s.sig_passes;
    let reject_rate = if candidates > 0 { s.sig_rejects as f64 / candidates as f64 } else { 0.0 };
    println!(
        "cold-miss arm: {} views, {} queries — cold planning {:.0} µs sig-filter on vs \
         {:.0} µs off ({:.2}x), {:.0} vs {:.0} q/s overall, {}/{} candidates sig-rejected \
         ({:.1}%), all arms identical",
        pool.len(),
        stream.len(),
        plan_on_us,
        plan_off_us,
        plan_speedup,
        qps_on,
        qps_off,
        s.sig_rejects,
        candidates,
        reject_rate * 100.0,
    );
    Ok(format!(
        concat!(
            "{{\n",
            "    \"pool_views\": {},\n",
            "    \"queries\": {},\n",
            "    \"plan_us_sig_on\": {:.1},\n",
            "    \"plan_us_sig_off\": {:.1},\n",
            "    \"speedup_plan_sig_on_vs_off\": {:.3},\n",
            "    \"qps_sig_on\": {:.1},\n",
            "    \"qps_sig_off\": {:.1},\n",
            "    \"sig_rejects\": {},\n",
            "    \"sig_passes\": {},\n",
            "    \"sig_reject_rate\": {:.4},\n",
            "    \"ablation_arms_agree\": true\n",
            "  }}"
        ),
        pool.len(),
        stream.len(),
        plan_on_us,
        plan_off_us,
        plan_speedup,
        qps_on,
        qps_off,
        s.sig_rejects,
        s.sig_passes,
        reject_rate,
    ))
}

/// Drives the serving front-end with the overlapping-view Zipf workload
/// (single-view hits, multi-view intersection routes, and direct queries)
/// over the chosen transport — the ablation entry point for
/// thread/shard/memo-cap/intersect/transport sweeps without touching
/// bench code. `--sweep` measures transports × threads ∈ {1,2,4,8} and
/// writes `BENCH_serving.json` (archived by CI next to the other bench
/// summaries).
fn cmd_serve_bench(args: &[String]) -> Result<ExitCode, String> {
    let opts = ServeBenchOpts::parse(args)?;
    let catalog = site_intersect_catalog();
    let stream = catalog_zipf_stream(&catalog, opts.queries, 0x21F);

    if !opts.sweep {
        let run = run_serving(&opts, opts.transport, opts.threads, &stream, true)?;
        println!(
            "served {} queries over {} on {} workers / {} shards (memo cap {}, intersect {}, \
             flat {}, sig-filter {}, arena {}) in {:.1} ms — {:.0} q/s",
            run.answered,
            opts.transport.name(),
            opts.threads,
            opts.shards,
            if opts.memo_cap == 0 { "∞".to_string() } else { opts.memo_cap.to_string() },
            if opts.intersect { "on" } else { "off" },
            if opts.flat { "on" } else { "off" },
            if opts.sig_filter { "on" } else { "off" },
            if opts.arena { "on" } else { "off" },
            run.elapsed.as_secs_f64() * 1e3,
            run.qps(),
        );
        if !run.phases.is_empty() {
            println!("phase latency (µs):     count      p50      p99      max");
            for (name, h) in &run.phases {
                println!(
                    "  {:<18} {:>8}  {:>7}  {:>7}  {:>7}",
                    phase_key(name),
                    h.count,
                    h.p50,
                    h.p99,
                    h.max
                );
            }
        }
        return Ok(ExitCode::SUCCESS);
    }

    let thread_counts = [1usize, 2, 4, 8];
    let transports = [Transport::Inproc, Transport::Unix, Transport::Tcp];
    let mut rows = String::new();
    println!("transport  threads  queries     ms      q/s");
    for transport in transports {
        for threads in thread_counts {
            let run = run_serving(&opts, transport, threads, &stream, false)?;
            println!(
                "{:<9}  {:>7}  {:>7}  {:>8.1}  {:>7.0}",
                transport.name(),
                threads,
                run.answered,
                run.elapsed.as_secs_f64() * 1e3,
                run.qps(),
            );
            if !rows.is_empty() {
                rows.push_str(",\n");
            }
            rows.push_str(&format!(
                "    {{ \"transport\": \"{}\", \"threads\": {}, \"answered\": {}, \
                 \"ms\": {:.3}, \"qps\": {:.1}, \"phase_us\": {} }}",
                transport.name(),
                threads,
                run.answered,
                run.elapsed.as_secs_f64() * 1e3,
                run.qps(),
                phase_json(&run.phases),
            ));
        }
    }
    let cold_miss = cold_miss_arm(opts.queries.min(240))?;
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"serving_transports_zipf_site\",\n",
            "  \"queries\": {},\n",
            "  \"tenants\": {},\n",
            "  \"pipeline\": {},\n",
            "  \"hardware_threads\": {},\n",
            "  \"cold_miss\": {},\n",
            "  \"runs\": [\n{}\n  ]\n",
            "}}\n"
        ),
        opts.queries,
        opts.tenants,
        opts.pipeline,
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        cold_miss,
        rows,
    );
    std::fs::write("BENCH_serving.json", &json).map_err(|e| format!("BENCH_serving.json: {e}"))?;
    println!("wrote BENCH_serving.json");
    Ok(ExitCode::SUCCESS)
}

/// Knobs for `xpv listen`.
struct ListenOpts {
    tcp: Option<String>,
    unix: Option<String>,
    workers: usize,
    window: Option<u32>,
    xml: Option<String>,
    views: Vec<(String, Pattern)>,
}

impl ListenOpts {
    fn parse(args: &[String]) -> Result<ListenOpts, String> {
        let mut opts = ListenOpts {
            tcp: None,
            unix: None,
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            window: None,
            xml: None,
            views: Vec::new(),
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let value = it.next().ok_or_else(|| format!("{flag}: missing value"))?;
            match flag.as_str() {
                "--tcp" => opts.tcp = Some(value.clone()),
                "--unix" => opts.unix = Some(value.clone()),
                "--workers" => {
                    opts.workers = parse_num(flag, value)?.max(1);
                }
                "--window" => opts.window = Some(parse_num(flag, value)? as u32),
                "--xml" => opts.xml = Some(value.clone()),
                "--view" => {
                    let (name, def) = value
                        .split_once('=')
                        .ok_or_else(|| format!("--view: expected NAME=DEF, got {value}"))?;
                    opts.views.push((name.to_string(), parse("view", def)?));
                }
                other => return Err(format!("unknown listen flag {other}")),
            }
        }
        if opts.tcp.is_none() && opts.unix.is_none() {
            return Err("listen: need --tcp ADDR or --unix PATH".to_string());
        }
        Ok(opts)
    }
}

/// Serves the wire protocol until the process is killed. Without `--xml`
/// / `--view`, serves the site document with the overlapping-view catalog
/// (the serve-bench workload), so a fresh checkout can demo end to end.
fn cmd_listen(args: &[String]) -> Result<ExitCode, String> {
    let opts = ListenOpts::parse(args)?;
    let (doc, views) = match &opts.xml {
        Some(file) => {
            let xml = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
            (parse_xml(&xml).map_err(|e| format!("{file}: {e}"))?, opts.views.clone())
        }
        None => {
            let catalog = site_intersect_catalog();
            let mut views = opts.views.clone();
            if views.is_empty() {
                views = catalog.views.iter().map(|(n, d)| (n.to_string(), d.clone())).collect();
            }
            (site_doc(12, 12, 7), views)
        }
    };
    let cache = Arc::new(ShardedViewCache::new(doc));
    for (name, def) in &views {
        let n = cache.add_view(name, def.clone());
        println!("view {name} = {def}  ({n} answers materialized)");
    }
    let server = AsyncCacheServer::start(cache, opts.workers);
    if let Some(window) = opts.window {
        server.set_conn_window(window);
    }
    if let Some(addr) = &opts.tcp {
        let bound = server.listen_tcp(addr).map_err(|e| format!("listen {addr}: {e}"))?;
        println!(
            "listening on tcp://{bound} ({} workers, window {})",
            server.workers(),
            server.conn_window()
        );
    }
    if let Some(path) = &opts.unix {
        let _ = std::fs::remove_file(path);
        server
            .listen_unix(std::path::Path::new(path))
            .map_err(|e| format!("listen {path}: {e}"))?;
        println!(
            "listening on unix://{path} ({} workers, window {})",
            server.workers(),
            server.conn_window()
        );
    }
    loop {
        std::thread::park();
    }
}

/// Knobs for `xpv client`.
struct ClientOpts {
    tcp: Option<String>,
    unix: Option<String>,
    tenant: String,
    stats: bool,
    queries: Vec<Pattern>,
}

impl ClientOpts {
    fn parse(args: &[String]) -> Result<ClientOpts, String> {
        let mut opts = ClientOpts {
            tcp: None,
            unix: None,
            tenant: "cli".to_string(),
            stats: false,
            queries: Vec::new(),
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--stats" => opts.stats = true,
                "--tcp" | "--unix" | "--tenant" => {
                    let value = it.next().ok_or_else(|| format!("{arg}: missing value"))?;
                    match arg.as_str() {
                        "--tcp" => opts.tcp = Some(value.clone()),
                        "--unix" => opts.unix = Some(value.clone()),
                        _ => opts.tenant = value.clone(),
                    }
                }
                query => opts.queries.push(parse("query", query)?),
            }
        }
        if opts.tcp.is_none() && opts.unix.is_none() {
            return Err("client: need --tcp ADDR or --unix PATH".to_string());
        }
        if opts.queries.is_empty() && !opts.stats {
            return Err("client: need at least one query (or --stats)".to_string());
        }
        Ok(opts)
    }
}

/// Connects to an `xpv listen` server, answers one query batch, and
/// prints each query's node count and serving route.
fn cmd_client(args: &[String]) -> Result<ExitCode, String> {
    let opts = ClientOpts::parse(args)?;
    let mut client = match (&opts.tcp, &opts.unix) {
        (Some(addr), _) => WireClient::connect_tcp(addr).map_err(|e| format!("{addr}: {e}"))?,
        (None, Some(path)) => WireClient::connect_unix(std::path::Path::new(path))
            .map_err(|e| format!("{path}: {e}"))?,
        (None, None) => unreachable!("parse enforces an endpoint"),
    };
    if !opts.queries.is_empty() {
        let answers =
            client.answer_batch(&opts.tenant, &opts.queries).map_err(|e| format!("batch: {e}"))?;
        for (q, a) in opts.queries.iter().zip(&answers) {
            let route = match &a.route {
                WireRoute::Direct => "direct".to_string(),
                WireRoute::ViaView { view, rewriting } => format!("view {view} via {rewriting}"),
                WireRoute::Intersect { views, compensation } => {
                    format!("intersection {views:?} via {compensation}")
                }
            };
            println!("{q}: {} node(s)  [{route}]", a.nodes.len());
        }
    }
    if opts.stats {
        match client.tenant_stats(&opts.tenant).map_err(|e| format!("stats: {e}"))? {
            Some(s) => println!(
                "tenant {}: {} queries in {} batches ({} via views, {} via intersections, \
                 {} direct)",
                opts.tenant, s.queries, s.batches, s.view_hits, s.intersect_hits, s.direct
            ),
            None => println!("tenant {}: not seen by this server yet", opts.tenant),
        }
    }
    client.goodbye().map_err(|e| format!("goodbye: {e}"))?;
    Ok(ExitCode::SUCCESS)
}

/// Endpoint and cadence knobs shared by `xpv stats`, `xpv top`, and
/// `xpv dump`.
struct StatsOpts {
    tcp: Option<String>,
    unix: Option<String>,
    interval: f64,
    count: usize,
    /// `xpv top --filter`: keep metric names starting with this prefix.
    filter: Option<String>,
    /// `xpv top --sort-rate`: order rows by rate instead of name.
    sort_rate: bool,
    /// `xpv dump --out`: write the artifact here instead of stdout.
    out: Option<String>,
    /// `xpv dump --traces`: print at most this many trace spans.
    traces: usize,
}

impl StatsOpts {
    fn parse(args: &[String]) -> Result<StatsOpts, String> {
        let mut opts = StatsOpts {
            tcp: None,
            unix: None,
            interval: 2.0,
            count: 0,
            filter: None,
            sort_rate: false,
            out: None,
            traces: 20,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            if flag == "--sort-rate" {
                opts.sort_rate = true;
                continue;
            }
            let value = it.next().ok_or_else(|| format!("{flag}: missing value"))?;
            match flag.as_str() {
                "--tcp" => opts.tcp = Some(value.clone()),
                "--unix" => opts.unix = Some(value.clone()),
                "--interval" => {
                    opts.interval =
                        value.parse::<f64>().map_err(|e| format!("--interval: {e}"))?.max(0.1)
                }
                "--count" => opts.count = parse_num(flag, value)?,
                "--filter" => opts.filter = Some(value.clone()),
                "--out" => opts.out = Some(value.clone()),
                "--traces" => opts.traces = parse_num(flag, value)?,
                other => return Err(format!("unknown flag {other}")),
            }
        }
        if opts.tcp.is_none() && opts.unix.is_none() {
            return Err("need --tcp ADDR or --unix PATH".to_string());
        }
        Ok(opts)
    }

    fn connect(&self) -> Result<WireClient, String> {
        match (&self.tcp, &self.unix) {
            (Some(addr), _) => WireClient::connect_tcp(addr).map_err(|e| format!("{addr}: {e}")),
            (None, Some(path)) => WireClient::connect_unix(std::path::Path::new(path))
                .map_err(|e| format!("{path}: {e}")),
            (None, None) => unreachable!("parse enforces an endpoint"),
        }
    }
}

/// Fetches an `xpv listen` server's full metrics snapshot over the
/// `StatsV2` frames and prints the text exposition — every family the
/// server accounts (oracle, cache, per-tenant, maintain, net, server
/// gauges, phase histograms) in one sorted listing.
fn cmd_stats(args: &[String]) -> Result<ExitCode, String> {
    let opts = StatsOpts::parse(args).map_err(|e| format!("stats: {e}"))?;
    let mut client = opts.connect()?;
    let metrics = client.metrics().map_err(|e| format!("stats: {e}"))?;
    print!("{}", metrics_from_wire(&metrics).to_text());
    client.goodbye().map_err(|e| format!("goodbye: {e}"))?;
    Ok(ExitCode::SUCCESS)
}

/// Renders `values` as a unicode sparkline scaled to the slice maximum
/// (an all-zero window renders flat).
fn sparkline(values: &[u64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().max().unwrap_or(0);
    values
        .iter()
        .map(|&v| {
            if max == 0 {
                BARS[0]
            } else {
                BARS[((v as u128 * (BARS.len() as u128 - 1)) / max as u128) as usize]
            }
        })
        .collect()
}

/// One value per retained point, chosen by series kind: counter → delta,
/// gauge → level, histogram → interval p99 (`values[3]`).
fn headline_values(series: &xpath_views::net::WireSeries) -> Vec<u64> {
    let at = match series.kind {
        xpath_views::net::METRIC_HISTOGRAM => 3,
        _ => 0,
    };
    series.points.iter().map(|p| p.values.get(at).copied().unwrap_or(0)).collect()
}

/// Live metrics from the **server-side history sampler**: every
/// `--interval` seconds one `HistoryReq` fetches the retained rings and
/// each series renders as its latest value, its per-tick rate (counter
/// deltas over the sampler interval), and a sparkline of the window
/// (`--count 0` runs until killed). `--filter` keeps names starting
/// with the prefix; `--sort-rate` orders by rate, busiest first. One
/// connection and one credit are reused across refreshes.
fn cmd_top(args: &[String]) -> Result<ExitCode, String> {
    const SPARK_POINTS: usize = 32;
    let opts = StatsOpts::parse(args).map_err(|e| format!("top: {e}"))?;
    let mut client = opts.connect()?;
    let mut iteration = 0usize;
    loop {
        let fetched = Instant::now();
        let (interval_us, mut series) = client.history().map_err(|e| format!("top: {e}"))?;
        if interval_us == 0 {
            return Err(
                "top: server runs no history sampler (started with the sampler disabled); \
                 use `xpv stats` for a one-shot snapshot"
                    .to_string(),
            );
        }
        if let Some(prefix) = &opts.filter {
            series.retain(|s| s.name.starts_with(prefix.as_str()));
        }
        let tick_secs = interval_us as f64 / 1e6;
        let mut rows: Vec<(String, u64, f64, String)> = series
            .iter()
            .map(|s| {
                let values = headline_values(s);
                let last = values.last().copied().unwrap_or(0);
                let rate = match s.kind {
                    xpath_views::net::METRIC_COUNTER => last as f64 / tick_secs,
                    _ => 0.0,
                };
                let window = &values[values.len().saturating_sub(SPARK_POINTS)..];
                (s.name.clone(), last, rate, sparkline(window))
            })
            .collect();
        if opts.sort_rate {
            rows.sort_by(|a, b| b.2.total_cmp(&a.2).then_with(|| a.0.cmp(&b.0)));
        }
        // Clear the screen and home the cursor for a top-style redraw.
        print!("\x1b[2J\x1b[H");
        println!(
            "xpv top — {} series, sampler tick {tick_secs:.1}s, refresh {:.1}s (iteration {})",
            rows.len(),
            opts.interval,
            iteration + 1,
        );
        for (name, last, rate, spark) in &rows {
            println!("{name:<52} {last:>12}  {rate:>10.1}/s  {spark}");
        }
        iteration += 1;
        if opts.count > 0 && iteration >= opts.count {
            break;
        }
        let elapsed = fetched.elapsed().as_secs_f64();
        if elapsed < opts.interval {
            std::thread::sleep(std::time::Duration::from_secs_f64(opts.interval - elapsed));
        }
    }
    client.goodbye().map_err(|e| format!("goodbye: {e}"))?;
    Ok(ExitCode::SUCCESS)
}

/// Pulls the flight-recorder artifact (`DebugDumpReq`) and renders it as
/// text: watchdog alerts, config state, the history window (sparklines),
/// up to `--traces` drained spans, and the live metric exposition.
/// `--out FILE` writes the rendering to a file instead of stdout.
fn cmd_dump(args: &[String]) -> Result<ExitCode, String> {
    use std::fmt::Write as _;

    let opts = StatsOpts::parse(args).map_err(|e| format!("dump: {e}"))?;
    let mut client = opts.connect()?;
    let dump = client.debug_dump().map_err(|e| format!("dump: {e}"))?;
    client.goodbye().map_err(|e| format!("goodbye: {e}"))?;

    let mut text = String::new();
    let _ = writeln!(text, "# xpv flight-recorder dump");
    let _ = writeln!(text, "\n## alerts ({})", dump.alerts.len());
    for a in &dump.alerts {
        let state = if a.firing { "FIRING" } else { "ok" };
        let _ = writeln!(
            text,
            "{:<24} {:<16} {:<7} fired_total={} since_tick={} {}",
            a.name, a.kind, state, a.fired_total, a.since_tick, a.detail
        );
    }
    let _ = writeln!(text, "\n## config");
    for (k, v) in &dump.config {
        let _ = writeln!(text, "{k} = {v}");
    }
    let tick_secs = dump.interval_us as f64 / 1e6;
    let _ = writeln!(text, "\n## history ({} series, tick {tick_secs:.1}s)", dump.series.len());
    for s in &dump.series {
        let values = headline_values(s);
        let last = values.last().copied().unwrap_or(0);
        let _ = writeln!(text, "{:<52} {last:>12}  {}", s.name, sparkline(&values));
    }
    let shown = dump.traces.len().min(opts.traces);
    let _ = writeln!(text, "\n## traces ({} drained, showing {shown})", dump.traces.len());
    for t in dump.traces.iter().take(opts.traces) {
        let phases: Vec<String> = t.phases.iter().map(|(p, us)| format!("{p}={us}us")).collect();
        let _ = writeln!(text, "{:<16} {:>8}us  {}", t.kind, t.total_us, phases.join(" "));
    }
    let _ = writeln!(text, "\n## metrics");
    let _ = write!(text, "{}", metrics_from_wire(&dump.metrics).to_text());

    match &opts.out {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| format!("dump: {path}: {e}"))?;
            println!(
                "wrote {path} ({} alerts, {} series, {} traces)",
                dump.alerts.len(),
                dump.series.len(),
                dump.traces.len()
            );
        }
        None => print!("{text}"),
    }
    Ok(ExitCode::SUCCESS)
}

/// Knobs for `xpv obs-bench`.
struct ObsBenchOpts {
    queries: usize,
    repeat: usize,
    max_overhead: f64,
}

impl ObsBenchOpts {
    fn parse(args: &[String]) -> Result<ObsBenchOpts, String> {
        let mut opts = ObsBenchOpts { queries: 4000, repeat: 5, max_overhead: 10.0 };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let value = it.next().ok_or_else(|| format!("{flag}: missing value"))?;
            match flag.as_str() {
                "--queries" => opts.queries = parse_num(flag, value)?.max(1),
                "--repeat" => opts.repeat = parse_num(flag, value)?.max(1),
                "--max-overhead" => {
                    opts.max_overhead =
                        value.parse::<f64>().map_err(|e| format!("--max-overhead: {e}"))?
                }
                other => return Err(format!("unknown obs-bench flag {other}")),
            }
        }
        Ok(opts)
    }
}

/// Measures what the observability layer costs on the serving hot path:
/// the Zipf serve mix is answered through a warmed [`ShardedViewCache`]
/// with tracing **off** (sampling 0), **sampled** (the 1-in-64 default),
/// and **always-on** (sampling 1), best-of-`--repeat` each — with the
/// 1 s history sampler recording throughout, so the budget covers the
/// watchdog too — plus two microbenches (disabled-span construction,
/// histogram record). Writes `BENCH_obs.json` and fails when the
/// always-on overhead exceeds `--max-overhead` percent — the regression
/// gate CI runs.
fn cmd_obs_bench(args: &[String]) -> Result<ExitCode, String> {
    use xpath_views::obs::{
        drain_trace_events, set_trace_sampling, Registry, Sampler, SamplerConfig, Span,
        DEFAULT_TRACE_SAMPLING,
    };

    let opts = ObsBenchOpts::parse(args)?;
    let catalog = site_intersect_catalog();
    let stream = catalog_zipf_stream(&catalog, opts.queries, 0x0B5);
    let build = || {
        let cache = Arc::new(ShardedViewCache::new(site_doc(12, 12, 7)));
        for (name, def) in catalog.views.iter() {
            cache.add_view(name, def.clone());
        }
        // Warm the plan memo so the timed passes measure the steady
        // state the sampling knob actually guards.
        let _ = cache.answer_batch(&stream);
        cache
    };

    let modes: [(&str, u32); 3] = [("off", 0), ("sampled_1_in_64", 64), ("always_on", 1)];
    let mut results: Vec<(&str, f64, usize)> = Vec::new();
    for (name, sampling) in modes {
        set_trace_sampling(sampling);
        let cache = build();
        // The production default: a 1 s history sampler walking the
        // registry while the timed passes run.
        let source_cache = Arc::clone(&cache);
        let sampler = Sampler::start(
            Arc::clone(cache.obs_registry()),
            move || source_cache.metrics_snapshot(),
            SamplerConfig::default(),
        );
        let mut best = f64::INFINITY;
        let mut answered = 0usize;
        for _ in 0..opts.repeat {
            let start = Instant::now();
            answered = cache.answer_batch(&stream).len();
            best = best.min(start.elapsed().as_secs_f64());
            // Drain outside the timed region so ring occupancy cannot
            // snowball across repeats.
            let _ = drain_trace_events();
        }
        sampler.stop();
        results.push((name, best * 1e3, answered));
    }
    set_trace_sampling(DEFAULT_TRACE_SAMPLING);

    // Microbench: a disabled span (sampling off) and one histogram
    // record — the two costs the crate docs budget.
    const MICRO_ITERS: u64 = 1_000_000;
    set_trace_sampling(0);
    let mut span_ns = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..MICRO_ITERS {
            let span = Span::begin("obs-bench");
            std::hint::black_box(&span);
            span.finish();
        }
        span_ns = span_ns.min(start.elapsed().as_nanos() as f64 / MICRO_ITERS as f64);
    }
    set_trace_sampling(DEFAULT_TRACE_SAMPLING);
    let registry = Registry::new();
    let hist = registry.histogram("obs_bench_record_ns");
    let mut hist_ns = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for i in 0..MICRO_ITERS {
            hist.record(i);
        }
        hist_ns = hist_ns.min(start.elapsed().as_nanos() as f64 / MICRO_ITERS as f64);
    }

    let off_ms = results[0].1;
    let overhead = |ms: f64| if off_ms > 0.0 { (ms - off_ms) / off_ms * 100.0 } else { 0.0 };
    println!("answered {} queries per pass (best of {})", results[0].2, opts.repeat);
    println!("tracing mode          ms      overhead");
    let mut rows = String::new();
    for &(name, ms, answered) in &results {
        println!("{:<17} {:>8.2}  {:>+7.2}%", name, ms, overhead(ms));
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{ \"mode\": \"{}\", \"ms\": {:.3}, \"answered\": {}, \
             \"overhead_pct\": {:.3} }}",
            name,
            ms,
            answered,
            overhead(ms),
        ));
    }
    println!("disabled span: {span_ns:.1} ns/op   histogram record: {hist_ns:.1} ns/op");
    let always_pct = overhead(results[2].1);
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"obs_overhead_zipf_site\",\n",
            "  \"queries\": {},\n",
            "  \"repeat\": {},\n",
            "  \"max_overhead_pct\": {:.1},\n",
            "  \"history_sampler\": \"1s\",\n",
            "  \"always_on_overhead_pct\": {:.3},\n",
            "  \"span_disabled_ns\": {:.2},\n",
            "  \"histogram_record_ns\": {:.2},\n",
            "  \"within_budget\": {},\n",
            "  \"runs\": [\n{}\n  ]\n",
            "}}\n"
        ),
        opts.queries,
        opts.repeat,
        opts.max_overhead,
        always_pct,
        span_ns,
        hist_ns,
        always_pct <= opts.max_overhead,
        rows,
    );
    std::fs::write("BENCH_obs.json", &json).map_err(|e| format!("BENCH_obs.json: {e}"))?;
    println!("wrote BENCH_obs.json");
    if always_pct > opts.max_overhead {
        return Err(format!(
            "always-on tracing costs {always_pct:.2}% (budget {:.1}%)",
            opts.max_overhead
        ));
    }
    Ok(ExitCode::SUCCESS)
}

/// Knobs for `update-bench`, parsed from `--flag value` pairs plus the
/// boolean ablation switches `--no-coalesce` / `--no-parallel-regions`.
struct UpdateBenchOpts {
    edits: usize,
    mix: EditMix,
    locality: EditLocality,
    batches: usize,
    queries: usize,
    repeat: usize,
    seed: u64,
    coalesce: bool,
    parallel_regions: bool,
}

impl UpdateBenchOpts {
    fn parse(args: &[String]) -> Result<UpdateBenchOpts, String> {
        let mut opts = UpdateBenchOpts {
            edits: 400,
            mix: EditMix::default(),
            locality: EditLocality::default(),
            batches: 20,
            queries: 600,
            repeat: 3,
            seed: 0x21F,
            coalesce: true,
            parallel_regions: true,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--no-coalesce" => {
                    opts.coalesce = false;
                    continue;
                }
                "--no-parallel-regions" => {
                    opts.parallel_regions = false;
                    continue;
                }
                _ => {}
            }
            let value = it.next().ok_or_else(|| format!("{flag}: missing value"))?;
            match flag.as_str() {
                "--edits" => opts.edits = parse_num(flag, value)?.max(1),
                "--batches" => opts.batches = parse_num(flag, value)?.max(1),
                "--queries" => opts.queries = parse_num(flag, value)?.max(1),
                "--repeat" => opts.repeat = parse_num(flag, value)?.max(1),
                "--seed" => opts.seed = parse_num(flag, value)? as u64,
                "--edit-mix" => opts.mix = value.parse::<EditMix>()?,
                "--edit-locality" => opts.locality = value.parse::<EditLocality>()?,
                other => return Err(format!("unknown update-bench flag {other}")),
            }
        }
        Ok(opts)
    }
}

fn parse_num(flag: &str, value: &str) -> Result<usize, String> {
    value.parse::<usize>().map_err(|e| format!("{flag}: {e}"))
}

/// One maintenance configuration under test in `update-bench`.
struct UpdateArm {
    name: &'static str,
    cache: ShardedViewCache,
    update: std::time::Duration,
    maintain: xpath_views::engine::MaintainStats,
    routes_dropped: u64,
}

/// Ablates the maintenance pipeline — full re-materialization, the legacy
/// per-edit incremental path, batch coalescing, the flat region matcher,
/// and the parallel region fan-out — under a **bursty** (Zipf-skewed,
/// cluster-localized) edit stream, verifying byte-identical answers across
/// every arm and against direct evaluation after each batch, and writes
/// the machine-readable grid to `BENCH_updates.json` (archived by CI).
/// `--no-coalesce` / `--no-parallel-regions` drop the corresponding arms
/// (the last surviving arm is the primary whose stats are reported); each
/// arm's wall clock is the minimum over `--repeat` fresh-cache runs.
fn cmd_update_bench(args: &[String]) -> Result<ExitCode, String> {
    let opts = UpdateBenchOpts::parse(args)?;
    let catalog = site_intersect_catalog();
    let doc = site_doc(12, 12, 7);

    type ArmSetup = fn(&ShardedViewCache);
    let mut specs: Vec<(&'static str, ArmSetup)> = vec![
        ("full", |c| c.set_incremental_maintenance(false)),
        ("per_edit", |c| c.set_coalesce_enabled(false)),
    ];
    if opts.coalesce {
        specs.push(("coalesced", |c| {
            c.set_flat_enabled(false);
            c.set_parallel_regions(false);
        }));
        specs.push(("coalesced_flat", |c| c.set_parallel_regions(false)));
        if opts.parallel_regions {
            specs.push(("coalesced_flat_parallel", |_| {}));
        }
    }
    let build = |setup: fn(&ShardedViewCache)| {
        let cache = ShardedViewCache::new(doc.clone());
        setup(&cache);
        for (vname, def) in catalog.views.iter() {
            cache.add_view(vname, def.clone());
        }
        cache
    };

    let stream = catalog_zipf_stream(&catalog, opts.queries, opts.seed);
    let edits =
        edit_stream_clustered(&doc, opts.edits, opts.mix, opts.locality, opts.seed ^ 0xED17);
    let batches = edit_batches(&edits, opts.batches);
    let probe: Vec<Pattern> = stream.iter().take(40).cloned().collect();

    // Rep 0 — the verified run: every arm's plan memo is warmed with the
    // query workload, then the bursty edit stream is applied batch by
    // batch with answer probes across all arms between batches. These
    // caches survive for the stats report.
    let mut arms: Vec<UpdateArm> = specs
        .iter()
        .map(|&(name, setup)| UpdateArm {
            name,
            cache: build(setup),
            update: std::time::Duration::ZERO,
            maintain: xpath_views::engine::MaintainStats::default(),
            routes_dropped: 0,
        })
        .collect();
    for arm in &arms {
        let _ = arm.cache.answer_batch(&stream);
    }
    let warm_hits = arms.last().expect("at least two arms").cache.stats().plan_memo_hits;
    for batch in &batches {
        for arm in arms.iter_mut() {
            let t0 = Instant::now();
            let report = arm.cache.apply_edits(batch).map_err(|e| e.to_string())?;
            arm.update += t0.elapsed();
            arm.routes_dropped += report.routes_dropped;
            arm.maintain.add(&report.maintain);
        }
        for q in &probe {
            let baseline = arms[0].cache.answer(q);
            let direct = arms[0].cache.answer_direct(q);
            if baseline.nodes != direct {
                return Err(format!("full-recompute arm diverged from direct on {q}"));
            }
            for arm in arms.iter().skip(1) {
                if arm.cache.answer(q).nodes != baseline.nodes {
                    return Err(format!("arm {} diverged on {q}", arm.name));
                }
            }
        }
    }

    // Reps 1..R — timing-only runs on fresh warmed caches; each arm keeps
    // its best (minimum) wall clock, the standard noise floor for
    // millisecond-scale measurements.
    for _ in 1..opts.repeat {
        for (i, &(_, setup)) in specs.iter().enumerate() {
            let cache = build(setup);
            let _ = cache.answer_batch(&stream);
            let mut total = std::time::Duration::ZERO;
            for batch in &batches {
                let t0 = Instant::now();
                cache.apply_edits(batch).map_err(|e| e.to_string())?;
                total += t0.elapsed();
            }
            if total < arms[i].update {
                arms[i].update = total;
            }
        }
    }
    let primary = arms.last().expect("at least two arms");
    let post_stats = primary.cache.stats();
    let probe_queries = (batches.len() * probe.len()) as u64;
    let survived_hits = post_stats.plan_memo_hits - warm_hits;
    let maintain = primary.maintain;

    // The coalescing invariant the ablation exists to demonstrate: the
    // primary scans at most one merged region per (view, batch-region)
    // pair — never more than the pre-merge root count, and never more than
    // the per-edit arm's one-scan-per-(view, edit) cost.
    let per_edit = &arms[1];
    if opts.coalesce {
        if maintain.regions_scanned > maintain.regions_before_merge {
            return Err(format!(
                "coalescing scanned {} regions out of {} pre-merge roots",
                maintain.regions_scanned, maintain.regions_before_merge
            ));
        }
        if maintain.regions_scanned > per_edit.maintain.regions_scanned {
            return Err(format!(
                "coalesced path scanned {} regions, per-edit only {}",
                maintain.regions_scanned, per_edit.maintain.regions_scanned
            ));
        }
    }

    let full_ms = arms[0].update.as_secs_f64() * 1e3;
    println!(
        "applied {} edits in {} batches over {} doc nodes / {} views (locality {})",
        opts.edits,
        batches.len(),
        doc.len(),
        catalog.views.len(),
        opts.locality,
    );
    let mut arms_json = String::new();
    for arm in &arms {
        let ms = arm.update.as_secs_f64() * 1e3;
        let speedup = if ms > 0.0 { full_ms / ms } else { 0.0 };
        println!(
            "  {:<24} {:>9.2} ms  speedup vs full {:>5.2}x  ({} region scans)",
            arm.name, ms, speedup, arm.maintain.regions_scanned
        );
        arms_json.push_str(&format!(
            concat!(
                "    \"{}\": {{ \"ms\": {:.3}, \"speedup_vs_full\": {:.3}, ",
                "\"regions_scanned\": {}, \"full_recomputes\": {} }},\n"
            ),
            arm.name, ms, speedup, arm.maintain.regions_scanned, arm.maintain.full_recomputes
        ));
    }
    arms_json.truncate(arms_json.trim_end_matches(",\n").len());
    let primary_ms = primary.update.as_secs_f64() * 1e3;
    let per_edit_ms = per_edit.update.as_secs_f64() * 1e3;
    println!("primary arm: {}  ({maintain})", primary.name);
    println!(
        "probe answers byte-identical across all arms and vs direct; plan memo: {} of {} \
         probe queries served from surviving routes, {} routes dropped",
        survived_hits, probe_queries, primary.routes_dropped
    );
    println!("cache: {post_stats}");
    // The primary arm's per-batch maintenance phase histograms — the
    // distribution behind the cumulative `phase_us` totals above.
    const MAINTAIN_PHASES: [&str; 5] = [
        "xpv_phase_maintain_apply_us",
        "xpv_phase_maintain_freeze_us",
        "xpv_phase_maintain_coalesce_us",
        "xpv_phase_maintain_scan_us",
        "xpv_phase_maintain_patch_us",
    ];
    let phase_hist = phase_summaries(&primary.cache, &MAINTAIN_PHASES);
    if !phase_hist.is_empty() {
        println!("maintenance phase latency per batch (µs):  count    p50    p99    max");
        for (name, h) in &phase_hist {
            println!(
                "  {:<24} {:>18}  {:>5}  {:>5}  {:>5}",
                phase_key(name),
                h.count,
                h.p50,
                h.p99,
                h.max
            );
        }
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"updates_bursty_site\",\n",
            "  \"edits\": {},\n",
            "  \"edit_mix\": \"{}\",\n",
            "  \"edit_locality\": \"{}\",\n",
            "  \"batches\": {},\n",
            "  \"repeat\": {},\n",
            "  \"doc_nodes\": {},\n",
            "  \"views\": {},\n",
            "  \"primary_arm\": \"{}\",\n",
            "  \"arms\": {{\n",
            "{}\n",
            "  }},\n",
            "  \"speedup_primary_vs_full\": {:.3},\n",
            "  \"speedup_primary_vs_per_edit\": {:.3},\n",
            "  \"maintain\": {{\n",
            "    \"edits_applied\": {},\n",
            "    \"view_edit_checks\": {},\n",
            "    \"label_skips\": {},\n",
            "    \"spine_clean\": {},\n",
            "    \"regions_before_merge\": {},\n",
            "    \"regions_scanned\": {},\n",
            "    \"scans_saved\": {},\n",
            "    \"region_nodes\": {},\n",
            "    \"full_recomputes\": {},\n",
            "    \"freezes_reused\": {},\n",
            "    \"parallel_tasks\": {},\n",
            "    \"parallel_width\": {},\n",
            "    \"answers_added\": {},\n",
            "    \"answers_removed\": {},\n",
            "    \"phase_us\": {{ \"apply\": {}, \"freeze\": {}, \"coalesce\": {}, ",
            "\"scan\": {}, \"patch\": {} }},\n",
            "    \"phase_hist_us\": {}\n",
            "  }},\n",
            "  \"routes\": {{\n",
            "    \"probe_queries\": {},\n",
            "    \"served_from_surviving_routes\": {},\n",
            "    \"routes_dropped\": {},\n",
            "    \"views_refreshed_incrementally\": {}\n",
            "  }},\n",
            "  \"verified_identical\": true\n",
            "}}\n"
        ),
        opts.edits,
        opts.mix,
        opts.locality,
        batches.len(),
        opts.repeat,
        doc.len(),
        catalog.views.len(),
        primary.name,
        arms_json,
        if primary_ms > 0.0 { full_ms / primary_ms } else { 0.0 },
        if primary_ms > 0.0 { per_edit_ms / primary_ms } else { 0.0 },
        maintain.edits_applied,
        maintain.view_edit_checks,
        maintain.label_skips,
        maintain.spine_clean,
        maintain.regions_before_merge,
        maintain.regions_scanned,
        maintain.scans_saved,
        maintain.region_nodes,
        maintain.full_recomputes,
        maintain.freeze_reused,
        maintain.parallel_tasks,
        maintain.parallel_width,
        maintain.answers_added,
        maintain.answers_removed,
        maintain.apply_us,
        maintain.freeze_us,
        maintain.coalesce_us,
        maintain.scan_us,
        maintain.patch_us,
        phase_json(&phase_hist),
        probe_queries,
        survived_hits,
        primary.routes_dropped,
        post_stats.views_refreshed_incrementally,
    );
    std::fs::write("BENCH_updates.json", &json).map_err(|e| format!("BENCH_updates.json: {e}"))?;
    println!("wrote BENCH_updates.json");
    Ok(ExitCode::SUCCESS)
}

/// Knobs for `xpv eval-bench`.
struct EvalBenchOpts {
    nodes: usize,
    distinct: usize,
    queries: usize,
    labels: usize,
    repeat: usize,
    seed: u64,
}

impl EvalBenchOpts {
    fn parse(args: &[String]) -> Result<EvalBenchOpts, String> {
        let mut opts = EvalBenchOpts {
            nodes: 20_000,
            distinct: 48,
            queries: 2_000,
            labels: 12,
            repeat: 3,
            seed: 0xE7A1,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let value = it.next().ok_or_else(|| format!("{flag}: missing value"))?;
            match flag.as_str() {
                "--nodes" => opts.nodes = parse_num(flag, value)?.max(2),
                "--distinct" => opts.distinct = parse_num(flag, value)?.max(1),
                "--queries" => opts.queries = parse_num(flag, value)?.max(1),
                "--labels" => opts.labels = parse_num(flag, value)?.max(1),
                "--repeat" => opts.repeat = parse_num(flag, value)?.max(1),
                "--seed" => opts.seed = parse_num(flag, value)? as u64,
                other => return Err(format!("unknown eval-bench flag {other}")),
            }
        }
        Ok(opts)
    }
}

/// Ablates the evaluation core on a seeded random document and a
/// Zipf-skewed query stream: the reference `Tree` matcher against the
/// word-parallel [`FlatTree`] matcher, per-query evaluation against the
/// fused batch path (shared sub-match tables keyed by pattern
/// fingerprint), and the scratch-buffer pool on/off. Answers are checked
/// identical across every path before anything is timed, and the summary
/// goes to `BENCH_eval.json` (archived by CI next to the other benches).
fn cmd_eval_bench(args: &[String]) -> Result<ExitCode, String> {
    use xpath_views::model::FlatTree;
    use xpath_views::semantics::{evaluate_flat, BatchEval};
    use xpath_views::workload::zipf_indices;

    let opts = EvalBenchOpts::parse(args)?;
    let tree_cfg = TreeGenConfig {
        size: opts.nodes,
        max_depth: 14,
        max_children: 8,
        label_count: opts.labels,
    };
    let doc = TreeGen::new(tree_cfg, opts.seed).tree();
    let pat_cfg =
        PatternGenConfig { depth: (2, 5), label_count: opts.labels, ..PatternGenConfig::default() };
    let mut gen = PatternGen::new(pat_cfg, opts.seed ^ 0x9E37_79B9);
    let base: Vec<Pattern> = (0..opts.distinct).map(|_| gen.pattern()).collect();
    let stream: Vec<&Pattern> = zipf_indices(base.len(), opts.queries, opts.seed ^ 0x51)
        .iter()
        .map(|&i| &base[i])
        .collect();
    let ft = FlatTree::freeze(&doc);

    // Correctness gate before any timing: every path must agree on the
    // whole distinct set.
    let mut fused_check = BatchEval::new(&ft);
    for q in &base {
        let reference = evaluate(q, &doc);
        if evaluate_flat(q, &ft) != reference {
            return Err(format!("flat matcher diverged from reference on {q}"));
        }
        if fused_check.evaluate(q) != reference {
            return Err(format!("fused batch path diverged from reference on {q}"));
        }
    }
    drop(fused_check);

    // Best-of-`repeat` wall time; the checksum keeps the work observable.
    let time = |f: &mut dyn FnMut() -> usize| -> (f64, usize) {
        let mut best = f64::INFINITY;
        let mut checksum = 0usize;
        for _ in 0..opts.repeat {
            let start = Instant::now();
            checksum = f();
            best = best.min(start.elapsed().as_secs_f64());
        }
        (best * 1e3, checksum)
    };
    let (ref_ms, ref_sum) =
        time(&mut || stream.iter().map(|q| evaluate(q, &doc).len()).sum::<usize>());
    let (flat_ms, flat_sum) =
        time(&mut || stream.iter().map(|q| evaluate_flat(q, &ft).len()).sum::<usize>());
    let (fused_ms, fused_sum) = time(&mut || {
        let mut b = BatchEval::new(&ft);
        stream.iter().map(|q| b.evaluate(q).len()).sum::<usize>()
    });
    let (noscratch_ms, noscratch_sum) = time(&mut || {
        let mut b = BatchEval::with_options(&ft, false, true);
        stream.iter().map(|q| b.evaluate(q).len()).sum::<usize>()
    });
    let (noshare_ms, noshare_sum) = time(&mut || {
        let mut b = BatchEval::with_options(&ft, true, false);
        stream.iter().map(|q| b.evaluate(q).len()).sum::<usize>()
    });
    // The serve hot loop's shape: fused batch evaluation writing node runs
    // into a reused bump arena, cleared per 64-query batch. Steady state
    // does no per-answer heap allocation — the only Vec growth is the
    // arena warming up to the high-water mark of a batch.
    let (arena_ms, arena_sum) = time(&mut || {
        let mut b = BatchEval::new(&ft);
        let mut arena = xpath_views::model::AnswerArena::new();
        let mut total = 0usize;
        for batch in stream.chunks(64) {
            arena.clear();
            let refs: Vec<_> = batch.iter().map(|q| b.evaluate_into(q, &mut arena)).collect();
            total += refs.iter().map(|&r| arena.get(r).len()).sum::<usize>();
        }
        total
    });
    if [flat_sum, fused_sum, noscratch_sum, noshare_sum, arena_sum].iter().any(|&s| s != ref_sum) {
        return Err("evaluation paths returned different answer volumes".to_string());
    }

    let qps = |ms: f64| opts.queries as f64 / (ms / 1e3).max(1e-9);
    let speedup = |ms: f64| ref_ms / ms.max(1e-9);
    println!(
        "evaluated {} queries ({} distinct) over {} nodes, {} answers per pass",
        opts.queries,
        opts.distinct,
        doc.len(),
        ref_sum,
    );
    println!("path                 ms       q/s   speedup");
    let runs = [
        ("reference", ref_ms),
        ("flat", flat_ms),
        ("flat_fused", fused_ms),
        ("flat_fused_no_scratch", noscratch_ms),
        ("flat_fused_no_share", noshare_ms),
        ("flat_fused_arena", arena_ms),
    ];
    let mut rows = String::new();
    for (name, ms) in runs {
        println!("{:<21} {:>8.1}  {:>8.0}  {:>6.2}x", name, ms, qps(ms), speedup(ms));
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{ \"path\": \"{}\", \"ms\": {:.3}, \"qps\": {:.1}, \
             \"speedup_vs_reference\": {:.3} }}",
            name,
            ms,
            qps(ms),
            speedup(ms),
        ));
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"eval_flat_fused_zipf\",\n",
            "  \"doc_nodes\": {},\n",
            "  \"queries\": {},\n",
            "  \"distinct_queries\": {},\n",
            "  \"labels\": {},\n",
            "  \"repeat\": {},\n",
            "  \"answers_per_pass\": {},\n",
            "  \"verified_identical\": true,\n",
            "  \"runs\": [\n{}\n  ]\n",
            "}}\n"
        ),
        doc.len(),
        opts.queries,
        opts.distinct,
        opts.labels,
        opts.repeat,
        ref_sum,
        rows,
    );
    std::fs::write("BENCH_eval.json", &json).map_err(|e| format!("BENCH_eval.json: {e}"))?;
    println!("wrote BENCH_eval.json");
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.as_slice() {
        [cmd, q, v] if cmd == "rewrite" => cmd_rewrite(q, v),
        [cmd, q, views @ ..] if cmd == "intersect" && views.len() >= 2 => cmd_intersect(q, views),
        [cmd, a, b] if cmd == "contain" => cmd_contain(a, b),
        [cmd, q, f] if cmd == "eval" => cmd_eval(q, f),
        [cmd, p] if cmd == "reduce" => cmd_reduce(p),
        [cmd] if cmd == "figures" => cmd_figures(),
        [cmd, rest @ ..] if cmd == "serve-bench" => cmd_serve_bench(rest),
        [cmd, rest @ ..] if cmd == "listen" => cmd_listen(rest),
        [cmd, rest @ ..] if cmd == "client" => cmd_client(rest),
        [cmd, rest @ ..] if cmd == "stats" => cmd_stats(rest),
        [cmd, rest @ ..] if cmd == "top" => cmd_top(rest),
        [cmd, rest @ ..] if cmd == "dump" => cmd_dump(rest),
        [cmd, rest @ ..] if cmd == "obs-bench" => cmd_obs_bench(rest),
        [cmd, rest @ ..] if cmd == "update-bench" => cmd_update_bench(rest),
        [cmd, rest @ ..] if cmd == "eval-bench" => cmd_eval_bench(rest),
        _ => return fail("expected a subcommand"),
    };
    match result {
        Ok(code) => code,
        Err(msg) => fail(&msg),
    }
}
