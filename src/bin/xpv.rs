//! `xpv` — command-line front end for the xpath-views library.
//!
//! ```text
//! xpv rewrite  <QUERY> <VIEW>        decide rewritability, print R + certificate
//! xpv intersect <QUERY> <VIEW> <VIEW>...
//!                                    rewrite the query over a multi-view
//!                                    intersection from the given pool
//! xpv contain  <P1> <P2>             decide P1 ⊑ P2 (and the reverse)
//! xpv eval     <QUERY> <FILE.xml>    evaluate a query over a document ('-' = stdin)
//! xpv reduce   <PATTERN>             remove redundant branches
//! xpv figures                        verify the paper's figures
//! xpv serve-bench [--threads N] [--shards S] [--memo-cap M]
//!                 [--queries Q] [--tenants T] [--no-intersect]
//!                                    drive the worker-pool front-end with a
//!                                    Zipf workload (overlapping-view
//!                                    catalog) and print throughput
//! xpv update-bench [--edits N] [--edit-mix I:D:R] [--batches B]
//!                  [--queries Q] [--seed S]
//!                                    ablate incremental vs full-recompute
//!                                    view maintenance under a Zipf-skewed
//!                                    edit stream; writes BENCH_updates.json
//! ```
//!
//! Patterns use the fragment's XPath syntax: `a[b]//c[.//d]/e`.

use std::io::Read;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use xpath_views::engine::{CacheServer, ShardedViewCache};
use xpath_views::intersect::plan_intersection_in;
use xpath_views::prelude::*;
use xpath_views::rewrite::{figure1, figure2, figure3, figure4, NoRewriteReason};
use xpath_views::semantics::remove_redundant_branches;
use xpath_views::workload::{
    catalog_zipf_stream, edit_batches, edit_stream, site_doc, site_intersect_catalog, EditMix,
};

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!(
        "usage:\n  xpv rewrite <QUERY> <VIEW>\n  xpv intersect <QUERY> <VIEW> <VIEW>...\n  \
         xpv contain <P1> <P2>\n  \
         xpv eval <QUERY> <FILE.xml|->\n  xpv reduce <PATTERN>\n  xpv figures\n  \
         xpv serve-bench [--threads N] [--shards S] [--memo-cap M] [--queries Q] [--tenants T] \
         [--no-intersect]\n  \
         xpv update-bench [--edits N] [--edit-mix I:D:R] [--batches B] [--queries Q] [--seed S]"
    );
    ExitCode::FAILURE
}

fn parse(label: &str, s: &str) -> Result<Pattern, String> {
    parse_xpath(s).map_err(|e| format!("{label}: {e}"))
}

fn cmd_rewrite(query: &str, view: &str) -> Result<ExitCode, String> {
    let p = parse("query", query)?;
    let v = parse("view", view)?;
    match RewritePlanner::default().decide(&p, &v) {
        RewriteAnswer::Rewriting(rw) => {
            println!("rewriting: {}", rw.pattern());
            println!("method:    {:?}", rw.method);
            if let Some(c) = &rw.condition {
                println!("condition: {c}  [{}]", c.source());
            }
            let rv = compose(rw.pattern(), &v).expect("verified rewriting composes");
            println!("check:     R∘V = {rv} ≡ P");
            Ok(ExitCode::SUCCESS)
        }
        RewriteAnswer::NoRewriting(reason) => {
            match reason {
                NoRewriteReason::ViewDeeperThanQuery => {
                    println!("no rewriting: the view is deeper than the query (Prop 3.1)")
                }
                NoRewriteReason::KNodeLabelClash { query_k_test, view_out_test } => println!(
                    "no rewriting: k-node test {query_k_test} clashes with out(V) test \
                     {view_out_test} (Prop 3.1(3))"
                ),
                NoRewriteReason::CandidatesFailUnderCondition(c) => println!(
                    "no rewriting: natural candidates fail and the instance is covered by \
                     {c} [{}]",
                    c.source()
                ),
            }
            Ok(ExitCode::from(2))
        }
        RewriteAnswer::Unknown(info) => {
            println!(
                "undecided: no completeness condition applies{}",
                if info.no_small_rewriting {
                    "; no rewriting up to the brute-force size budget"
                } else {
                    ""
                }
            );
            Ok(ExitCode::from(3))
        }
    }
}

/// Plans `query` over the intersection of a view pool: picks a small view
/// subset whose node-set intersection supports a verified compensation.
fn cmd_intersect(query: &str, views: &[String]) -> Result<ExitCode, String> {
    let p = parse("query", query)?;
    let pool: Vec<Pattern> = views.iter().map(|v| parse("view", v)).collect::<Result<_, _>>()?;
    let refs: Vec<&Pattern> = pool.iter().collect();
    let session = RewritePlanner::default().session();

    // Report single-view coverage first, so the intersection's added value
    // is visible.
    let singles: Vec<usize> =
        (0..refs.len()).filter(|&i| session.decide(&p, refs[i]).rewriting().is_some()).collect();
    if !singles.is_empty() {
        println!(
            "note: view(s) {:?} already rewrite the query individually",
            singles.iter().map(|&i| views[i].as_str()).collect::<Vec<_>>()
        );
    }

    let (answer, stats) = plan_intersection_in(&session, &p, &refs, &IntersectConfig::default());
    println!("search:       {stats}");
    match answer {
        Some(ans) => {
            let names: Vec<&str> = ans.views.iter().map(|&i| views[i].as_str()).collect();
            println!("participants: {names:?}");
            println!("intersection: {}", ans.intersection);
            println!("compensation: {}", ans.compensation);
            let rm = compose(&ans.compensation, &ans.intersection)
                .expect("verified compensation composes");
            println!("check:        R∘M = {rm} ≡ P");
            Ok(ExitCode::SUCCESS)
        }
        None => {
            println!(
                "no intersection rewriting found (tree-expressible subsets up to arity {}, \
                 budget {})",
                IntersectConfig::default().max_arity,
                IntersectConfig::default().max_candidates
            );
            Ok(ExitCode::from(2))
        }
    }
}

fn cmd_contain(a: &str, b: &str) -> Result<ExitCode, String> {
    let p1 = parse("P1", a)?;
    let p2 = parse("P2", b)?;
    let fwd = contained(&p1, &p2);
    let bwd = contained(&p2, &p1);
    println!("P1 ⊑ P2: {fwd}");
    println!("P2 ⊑ P1: {bwd}");
    println!(
        "verdict: {}",
        match (fwd, bwd) {
            (true, true) => "equivalent",
            (true, false) => "P1 strictly contained in P2",
            (false, true) => "P2 strictly contained in P1",
            (false, false) => "incomparable",
        }
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_eval(query: &str, file: &str) -> Result<ExitCode, String> {
    let p = parse("query", query)?;
    let xml = if file == "-" {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf).map_err(|e| format!("stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?
    };
    let doc = parse_xml(&xml).map_err(|e| format!("{file}: {e}"))?;
    let answers = evaluate(&p, &doc);
    println!("{} answer(s)", answers.len());
    for n in answers {
        println!("{}", to_xml(&doc.subtree(n).0));
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_reduce(pattern: &str) -> Result<ExitCode, String> {
    let p = parse("pattern", pattern)?;
    let r = remove_redundant_branches(&p);
    println!("{r}");
    if r.len() < p.len() {
        eprintln!("removed {} redundant node(s)", p.len() - r.len());
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_figures() -> Result<ExitCode, String> {
    let f1 = figure1();
    let rv = compose(&f1.r, &f1.v).expect("composes");
    assert!(equivalent(&rv, &f1.p));
    println!("figure 1: R = {} rewrites P = {} using V = {}", f1.r, f1.p, f1.v);
    let f2 = figure2();
    assert!(!equivalent(&compose(&f2.cand_base, &f2.v).expect("composes"), &f2.p));
    assert!(equivalent(&compose(&f2.cand_relaxed, &f2.v).expect("composes"), &f2.p));
    println!("figure 2: P≥1 = {} fails; P≥1_r// = {} succeeds", f2.cand_base, f2.cand_relaxed);
    let f3 = figure3();
    assert!(equivalent(&f3.b, &f3.b_prime) && equivalent(&f3.b, &f3.b_relaxed));
    println!("figure 3: B ≡ B_r// ≡ B′ for B = {}", f3.b);
    let f4 = figure4();
    let planner = RewritePlanner::default();
    for (name, p) in [("P1", &f4.p1), ("P2", &f4.p2), ("P3", &f4.p3)] {
        let r = planner.decide(p, &f4.v).rewriting().expect("rewriting").clone();
        println!("figure 4: {name} = {p} rewritten by {r}");
    }
    println!("all figure claims verified");
    Ok(ExitCode::SUCCESS)
}

/// Ablation knobs for `serve-bench`, parsed from `--flag value` pairs plus
/// the boolean `--no-intersect`.
struct ServeBenchOpts {
    threads: usize,
    shards: usize,
    memo_cap: usize,
    queries: usize,
    tenants: usize,
    intersect: bool,
}

impl ServeBenchOpts {
    fn parse(args: &[String]) -> Result<ServeBenchOpts, String> {
        let mut opts = ServeBenchOpts {
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            shards: 16,
            memo_cap: 0,
            queries: 2000,
            tenants: 4,
            intersect: true,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            if flag == "--no-intersect" {
                opts.intersect = false;
                continue;
            }
            let value = it
                .next()
                .ok_or_else(|| format!("{flag}: missing value"))?
                .parse::<usize>()
                .map_err(|e| format!("{flag}: {e}"))?;
            match flag.as_str() {
                "--threads" => opts.threads = value.max(1),
                "--shards" => opts.shards = value.max(1),
                "--memo-cap" => opts.memo_cap = value,
                "--queries" => opts.queries = value.max(1),
                "--tenants" => opts.tenants = value.max(1),
                other => return Err(format!("unknown serve-bench flag {other}")),
            }
        }
        Ok(opts)
    }
}

/// Drives the worker-pool front-end with the overlapping-view Zipf
/// workload (single-view hits, multi-view intersection routes, and direct
/// queries) — the ablation entry point for thread/shard/memo-cap/intersect
/// sweeps without touching bench code.
fn cmd_serve_bench(args: &[String]) -> Result<ExitCode, String> {
    let opts = ServeBenchOpts::parse(args)?;
    let catalog = site_intersect_catalog();
    let cache = ShardedViewCache::new(site_doc(12, 12, 7))
        .with_shards(opts.shards)
        .with_memo_cap(opts.memo_cap);
    cache.set_intersect_enabled(opts.intersect);
    for (name, def) in catalog.views.iter() {
        cache.add_view(name, def.clone());
    }
    let cache = Arc::new(cache);
    let server = CacheServer::start(Arc::clone(&cache), opts.threads);

    let stream = catalog_zipf_stream(&catalog, opts.queries, 0x21F);
    let batch_size = (stream.len() / (opts.tenants * 8)).max(1);
    let start = Instant::now();
    let tickets: Vec<_> = stream
        .chunks(batch_size)
        .enumerate()
        .map(|(i, chunk)| server.submit(&format!("tenant-{}", i % opts.tenants), chunk.to_vec()))
        .collect();
    let mut answered = 0usize;
    for ticket in tickets {
        answered += ticket.wait().len();
    }
    let elapsed = start.elapsed();

    let qps = answered as f64 / elapsed.as_secs_f64();
    println!(
        "served {answered} queries on {} workers / {} shards (memo cap {}, intersect {}) \
         in {:.1} ms — {qps:.0} q/s",
        server.workers(),
        cache.shard_count(),
        if cache.memo_cap() == usize::MAX {
            "∞".to_string()
        } else {
            cache.memo_cap().to_string()
        },
        if cache.intersect_enabled() { "on" } else { "off" },
        elapsed.as_secs_f64() * 1e3,
    );
    println!("cache:  {}", cache.stats());
    println!("oracle: {}", cache.session().oracle().stats());
    println!("plan memo entries: {}", cache.plan_memo_len());
    for (tenant, stats) in server.tenants() {
        println!("{tenant}: {stats}");
    }
    Ok(ExitCode::SUCCESS)
}

/// Knobs for `update-bench`, parsed from `--flag value` pairs.
struct UpdateBenchOpts {
    edits: usize,
    mix: EditMix,
    batches: usize,
    queries: usize,
    seed: u64,
}

impl UpdateBenchOpts {
    fn parse(args: &[String]) -> Result<UpdateBenchOpts, String> {
        let mut opts = UpdateBenchOpts {
            edits: 400,
            mix: EditMix::default(),
            batches: 20,
            queries: 600,
            seed: 0x21F,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let value = it.next().ok_or_else(|| format!("{flag}: missing value"))?;
            match flag.as_str() {
                "--edits" => opts.edits = parse_num(flag, value)?.max(1),
                "--batches" => opts.batches = parse_num(flag, value)?.max(1),
                "--queries" => opts.queries = parse_num(flag, value)?.max(1),
                "--seed" => opts.seed = parse_num(flag, value)? as u64,
                "--edit-mix" => opts.mix = value.parse::<EditMix>()?,
                other => return Err(format!("unknown update-bench flag {other}")),
            }
        }
        Ok(opts)
    }
}

fn parse_num(flag: &str, value: &str) -> Result<usize, String> {
    value.parse::<usize>().map_err(|e| format!("{flag}: {e}"))
}

/// Ablates **incremental** view maintenance against full re-materialization
/// under a Zipf-skewed edit stream, verifying byte-identical answers after
/// every batch, and writes the machine-readable summary to
/// `BENCH_updates.json` (archived by CI next to the throughput benches).
fn cmd_update_bench(args: &[String]) -> Result<ExitCode, String> {
    let opts = UpdateBenchOpts::parse(args)?;
    let catalog = site_intersect_catalog();
    let doc = site_doc(12, 12, 7);
    let incremental = ShardedViewCache::new(doc.clone());
    let full = ShardedViewCache::new(doc.clone());
    full.set_incremental_maintenance(false);
    for (name, def) in catalog.views.iter() {
        incremental.add_view(name, def.clone());
        full.add_view(name, def.clone());
    }

    // Phase A — warm both plan memos with the query workload.
    let stream = catalog_zipf_stream(&catalog, opts.queries, opts.seed);
    let _ = incremental.answer_batch(&stream);
    let _ = full.answer_batch(&stream);
    let warm_hits = incremental.stats().plan_memo_hits;

    // Phase B — apply the edit stream batch by batch, probing answers
    // between batches.
    let edits = edit_stream(&doc, opts.edits, opts.mix, opts.seed ^ 0xED17);
    let batches = edit_batches(&edits, opts.batches);
    let probe: Vec<Pattern> = stream.iter().take(40).cloned().collect();
    let mut incr_update = std::time::Duration::ZERO;
    let mut full_update = std::time::Duration::ZERO;
    let mut routes_dropped = 0u64;
    let mut maintain = xpath_views::engine::MaintainStats::default();
    for batch in &batches {
        let t0 = Instant::now();
        let report = incremental.apply_edits(batch).map_err(|e| e.to_string())?;
        incr_update += t0.elapsed();
        routes_dropped += report.routes_dropped;
        maintain.add(&report.maintain);
        let t1 = Instant::now();
        full.apply_edits(batch).map_err(|e| e.to_string())?;
        full_update += t1.elapsed();
        for q in &probe {
            let a = incremental.answer(q);
            let b = full.answer(q);
            let direct = incremental.answer_direct(q);
            if a.nodes != b.nodes || a.nodes != direct {
                return Err(format!("maintenance modes diverged on {q}"));
            }
        }
    }
    let post_stats = incremental.stats();
    let probe_queries = (batches.len() * probe.len()) as u64;
    let survived_hits = post_stats.plan_memo_hits - warm_hits;

    let incr_ms = incr_update.as_secs_f64() * 1e3;
    let full_ms = full_update.as_secs_f64() * 1e3;
    let speedup = if incr_ms > 0.0 { full_ms / incr_ms } else { 0.0 };
    println!(
        "applied {} edits in {} batches over {} doc nodes / {} views",
        opts.edits,
        batches.len(),
        doc.len(),
        catalog.views.len(),
    );
    println!("incremental maintenance: {incr_ms:.2} ms  ({maintain})");
    println!("full re-materialization: {full_ms:.2} ms  — speedup {speedup:.2}x");
    println!(
        "probe answers byte-identical across modes and vs direct; plan memo: {} of {} \
         probe queries served from surviving routes, {} routes dropped",
        survived_hits, probe_queries, routes_dropped
    );
    println!("cache: {post_stats}");

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"updates_zipf_site\",\n",
            "  \"edits\": {},\n",
            "  \"edit_mix\": \"{}\",\n",
            "  \"batches\": {},\n",
            "  \"doc_nodes\": {},\n",
            "  \"views\": {},\n",
            "  \"incremental_ms\": {:.3},\n",
            "  \"full_recompute_ms\": {:.3},\n",
            "  \"speedup_incremental_vs_full\": {:.3},\n",
            "  \"maintain\": {{\n",
            "    \"view_edit_checks\": {},\n",
            "    \"label_skips\": {},\n",
            "    \"spine_clean\": {},\n",
            "    \"regions_scanned\": {},\n",
            "    \"region_nodes\": {},\n",
            "    \"full_recomputes\": {},\n",
            "    \"answers_added\": {},\n",
            "    \"answers_removed\": {}\n",
            "  }},\n",
            "  \"routes\": {{\n",
            "    \"probe_queries\": {},\n",
            "    \"served_from_surviving_routes\": {},\n",
            "    \"routes_dropped\": {},\n",
            "    \"views_refreshed_incrementally\": {}\n",
            "  }},\n",
            "  \"verified_identical\": true\n",
            "}}\n"
        ),
        opts.edits,
        opts.mix,
        batches.len(),
        doc.len(),
        catalog.views.len(),
        incr_ms,
        full_ms,
        speedup,
        maintain.view_edit_checks,
        maintain.label_skips,
        maintain.spine_clean,
        maintain.regions_scanned,
        maintain.region_nodes,
        maintain.full_recomputes,
        maintain.answers_added,
        maintain.answers_removed,
        probe_queries,
        survived_hits,
        routes_dropped,
        post_stats.views_refreshed_incrementally,
    );
    std::fs::write("BENCH_updates.json", &json).map_err(|e| format!("BENCH_updates.json: {e}"))?;
    println!("wrote BENCH_updates.json");
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.as_slice() {
        [cmd, q, v] if cmd == "rewrite" => cmd_rewrite(q, v),
        [cmd, q, views @ ..] if cmd == "intersect" && views.len() >= 2 => cmd_intersect(q, views),
        [cmd, a, b] if cmd == "contain" => cmd_contain(a, b),
        [cmd, q, f] if cmd == "eval" => cmd_eval(q, f),
        [cmd, p] if cmd == "reduce" => cmd_reduce(p),
        [cmd] if cmd == "figures" => cmd_figures(),
        [cmd, rest @ ..] if cmd == "serve-bench" => cmd_serve_bench(rest),
        [cmd, rest @ ..] if cmd == "update-bench" => cmd_update_bench(rest),
        _ => return fail("expected a subcommand"),
    };
    match result {
        Ok(code) => code,
        Err(msg) => fail(&msg),
    }
}
