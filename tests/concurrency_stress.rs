//! Concurrency correctness of the sharded serving path.
//!
//! The contract of `ShardedViewCache` (and the `CacheServer` pool above it)
//! is that concurrency is *invisible* in the answers: the same Zipf
//! workload produces exactly the nodes and routing verdicts of the
//! single-threaded `ViewCache`, on any thread schedule. These tests run the
//! workload on 8 threads against the serial reference, plus regression
//! coverage for the selective plan-memo invalidation and the LRU bound
//! under concurrent load.

use std::sync::Arc;

use xpath_views::engine::{CacheServer, Route, ShardedViewCache};
use xpath_views::prelude::*;
use xpath_views::workload::{catalog_zipf_stream, site_catalog, site_doc, site_intersect_catalog};

const THREADS: usize = 8;

fn serial_cache() -> ViewCache {
    let mut cache = ViewCache::new(site_doc(8, 10, 7));
    for (name, def) in site_catalog().views {
        cache.add_view(name, def);
    }
    cache
}

fn sharded_cache() -> ShardedViewCache {
    let cache = ShardedViewCache::new(site_doc(8, 10, 7)).with_shards(8);
    for (name, def) in site_catalog().views {
        cache.add_view(name, def);
    }
    cache
}

/// The reference verdicts: nodes plus route (the definitive-rewriting
/// decision) per stream position, from the single-threaded cache.
fn reference(stream: &[Pattern]) -> Vec<(Vec<NodeId>, Route)> {
    let mut serial = serial_cache();
    stream
        .iter()
        .map(|q| {
            let a = serial.answer(q);
            (a.nodes, a.route)
        })
        .collect()
}

#[test]
fn eight_threads_match_single_threaded_answers_and_verdicts() {
    let stream = catalog_zipf_stream(&site_catalog(), 400, 0x5EED);
    let want = reference(&stream);

    let cache = sharded_cache();
    // Each worker answers an interleaved slice concurrently; results are
    // collected per position.
    let results: Vec<(usize, Vec<NodeId>, Route)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let cache = &cache;
                let stream = &stream;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    for (i, q) in stream.iter().enumerate().skip(t).step_by(THREADS) {
                        let a = cache.answer(q);
                        out.push((i, a.nodes, a.route));
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("worker panicked")).collect()
    });

    assert_eq!(results.len(), stream.len());
    for (i, nodes, route) in results {
        assert_eq!(nodes, want[i].0, "nodes diverged at position {i} ({})", stream[i]);
        assert_eq!(route, want[i].1, "verdict diverged at position {i} ({})", stream[i]);
    }
    let s = cache.stats();
    assert_eq!(s.queries, stream.len() as u64);
    assert_eq!(s.queries, s.plan_memo_hits + s.plan_memo_misses);
}

#[test]
fn worker_pool_batches_match_single_threaded_answers() {
    let stream = catalog_zipf_stream(&site_catalog(), 320, 0xBEE);
    let want = reference(&stream);

    let server = CacheServer::start(Arc::new(sharded_cache()), THREADS);
    let tickets: Vec<_> = stream
        .chunks(20)
        .enumerate()
        .map(|(i, chunk)| server.submit(&format!("tenant-{}", i % 3), chunk.to_vec()))
        .collect();
    let mut pos = 0usize;
    for ticket in tickets {
        for a in ticket.wait() {
            assert_eq!(a.nodes, want[pos].0, "nodes diverged at position {pos}");
            assert_eq!(a.route, want[pos].1, "verdict diverged at position {pos}");
            pos += 1;
        }
    }
    assert_eq!(pos, stream.len());

    let total: u64 = server.tenants().iter().map(|(_, s)| s.queries).sum();
    assert_eq!(total, stream.len() as u64);
}

/// Regression: `add_view` only drops plan-memo entries whose plan depends
/// on the grown view pool. Memoized `FirstMatch` view routes survive and
/// keep serving with zero coNP work; `Direct` routes are re-planned and can
/// adopt the new view.
#[test]
fn add_view_invalidates_only_dependent_memo_entries() {
    let cache = ShardedViewCache::new(site_doc(4, 4, 7)).with_shards(4);
    cache.add_view("item_names", parse_xpath("site/region/item/name").unwrap());

    // Two memoized ViaView routes, two memoized Direct routes.
    let via = [
        parse_xpath("site/region/item/name").unwrap(),
        parse_xpath("site/region[item]/item/name").unwrap(),
    ];
    let direct = [
        parse_xpath("site/region/item").unwrap(),
        parse_xpath("site/region/item/description").unwrap(),
    ];
    for q in via.iter() {
        assert!(matches!(cache.answer(q).route, Route::ViaView { .. }), "{q} must hit the view");
    }
    for q in direct.iter() {
        assert_eq!(cache.answer(q).route, Route::Direct, "{q} must route direct");
    }
    assert_eq!(cache.plan_memo_len(), 4);

    let runs_before_add = cache.stats().oracle_canonical_runs;
    cache.add_view("items", parse_xpath("site/region/item").unwrap());

    // Exactly the two Direct entries were dropped.
    assert_eq!(cache.plan_memo_len(), 2, "view routes must survive add_view");
    assert_eq!(cache.stats().plan_memo_invalidations, 2);

    // Surviving routes serve from the memo: no replanning, zero coNP work.
    for q in via.iter() {
        assert!(matches!(cache.answer(q).route, Route::ViaView { .. }));
    }
    assert_eq!(
        cache.stats().oracle_canonical_runs,
        runs_before_add,
        "memoized view routes must not be re-planned"
    );

    // Dropped routes re-plan and pick up the fresh view.
    for q in direct.iter() {
        match cache.answer(q).route {
            Route::ViaView { ref view, .. } => assert_eq!(view, "items", "for {q}"),
            other => panic!("expected the fresh view to serve {q}, got {other:?}"),
        }
    }
}

/// The configured memo bound holds under concurrent load (the per-shard LRU
/// enforces it inside the insert lock), and evicted entries are re-planned
/// correctly on their next arrival.
#[test]
fn memo_cap_holds_under_concurrent_load() {
    let cap = 4usize;
    let cache = ShardedViewCache::new(site_doc(6, 6, 7)).with_shards(4).with_memo_cap(cap);
    for (name, def) in site_catalog().views {
        cache.add_view(name, def);
    }
    let stream = catalog_zipf_stream(&site_catalog(), 240, 0xCAFE);
    let want = reference_small(&cache, &stream);

    std::thread::scope(|scope| {
        for t in 0..4 {
            let cache = &cache;
            let stream = &stream;
            let want = &want;
            scope.spawn(move || {
                for (i, q) in stream.iter().enumerate().skip(t).step_by(4) {
                    assert_eq!(cache.answer(q).nodes, want[i], "capped cache wrong for {q}");
                }
            });
        }
    });
    assert!(
        cache.plan_memo_len() <= cap,
        "memo holds {} entries, cap is {cap}",
        cache.plan_memo_len()
    );
    let s = cache.stats();
    assert!(s.plan_memo_evictions > 0, "six distinct queries must overflow a cap of {cap}");
    assert_eq!(s.queries, s.plan_memo_hits + s.plan_memo_misses);
}

/// Direct-evaluation reference against the same document as `cache`.
fn reference_small(cache: &ShardedViewCache, stream: &[Pattern]) -> Vec<Vec<NodeId>> {
    stream.iter().map(|q| cache.answer_direct(q)).collect()
}

/// Sharded-vs-serial byte-identity on a workload whose hot queries are
/// served by **multi-view intersection routes**: 8 threads over the
/// overlapping-view catalog must reproduce the single-threaded cache's
/// nodes *and* routes (including `Route::Intersect` participant lists), and
/// replacing a participant under the sharded cache must invalidate every
/// route that depended on it.
#[test]
fn intersect_routes_are_schedule_invariant_and_invalidate_on_replacement() {
    let catalog = site_intersect_catalog();
    let stream = catalog_zipf_stream(&catalog, 400, 0x1D5EC7);

    // Serial reference: the single-threaded wrapper over the same document
    // and pool.
    let mut serial = ViewCache::new(site_doc(8, 10, 7));
    for (name, def) in catalog.views.clone() {
        serial.add_view(name, def);
    }
    let want: Vec<(Vec<NodeId>, Route)> = stream
        .iter()
        .map(|q| {
            let a = serial.answer(q);
            (a.nodes, a.route)
        })
        .collect();
    assert!(
        want.iter().any(|(_, r)| matches!(r, Route::Intersect { .. })),
        "the overlapping catalog must exercise intersection routes"
    );

    let cache = ShardedViewCache::new(site_doc(8, 10, 7)).with_shards(8);
    for (name, def) in catalog.views.clone() {
        cache.add_view(name, def);
    }
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let cache = &cache;
            let stream = &stream;
            let want = &want;
            scope.spawn(move || {
                for (i, q) in stream.iter().enumerate().skip(t).step_by(THREADS) {
                    let a = cache.answer(q);
                    assert_eq!(a.nodes, want[i].0, "nodes diverged at {i} ({q})");
                    assert_eq!(a.route, want[i].1, "route diverged at {i} ({q})");
                }
            });
        }
    });
    let s = cache.stats();
    assert_eq!(s.queries, stream.len() as u64);
    assert!(s.intersect_hits > 0, "intersection routes must have served traffic");
    assert!(s.intersect_routes >= 1);

    // Multi-view invalidation: replacing one participant drops every route
    // that intersected through it; answers stay equal to direct evaluation.
    let direct = reference_small(&cache, &stream);
    cache.replace_view("ship_names", parse_xpath("site/region/item[shipping]/cost").unwrap());
    for (i, q) in stream.iter().enumerate() {
        assert_eq!(cache.answer(q).nodes, direct[i], "wrong answer after replacement for {q}");
    }
    // The replaced pool no longer supports bids∧shipping intersections on
    // `name` outputs: those queries must have re-planned away from the old
    // participants.
    let joint = parse_xpath("site/region/item[bids][shipping]/name").unwrap();
    match cache.answer(&joint).route {
        Route::Intersect { ref views, .. } => {
            assert!(
                !views.contains(&"ship_names".to_string()),
                "stale participant must not survive replacement"
            );
        }
        Route::Direct => {}
        Route::ViaView { .. } => panic!("no single view can serve the joint query"),
    }
}
