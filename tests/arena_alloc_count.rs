//! Allocation accounting for the serving hot path's **eval → encode**
//! span: fused flat evaluation writes node runs into the reused
//! [`AnswerArena`], batch fan-out copies 8-byte handles, and the wire
//! encoder reads the runs as borrowed slices — so after warmup, growing a
//! batch's fan-out must not grow the allocation count. (Plan *lookup*
//! still hashes each arriving pattern — that cost is per-position by
//! design and measured by the benches, not here.)
//!
//! This test lives in its own integration binary because the counting
//! `#[global_allocator]` is process-global, and the accounting only makes
//! sense without unrelated tests allocating concurrently.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use xpath_views::model::{AnswerArena, AnswerRef, FlatTree};
use xpath_views::net::{AnswersEncoder, WireRouteRef};
use xpath_views::prelude::*;
use xpath_views::semantics::BatchEval;
use xpath_views::workload::{catalog_zipf_stream, site_catalog, site_doc};

/// Counts every allocation made through the global allocator.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// One eval→encode pass, shaped exactly like the server's arena lane
/// after the plan memo resolved every position: each unique query is
/// evaluated once into the arena, duplicates fan out by copying the
/// handle, and every answer is streamed into the wire frame through a
/// borrowed route. Returns the frame length so nothing is optimized away.
fn eval_encode_pass(
    eval: &mut BatchEval<'_>,
    uniques: &[Pattern],
    fanout: usize,
    arena: &mut AnswerArena,
) -> usize {
    arena.clear();
    let refs: Vec<AnswerRef> = uniques.iter().map(|q| eval.evaluate_into(q, arena)).collect();
    let mut enc = AnswersEncoder::new(7);
    for i in 0..fanout {
        let r = refs[i % refs.len()]; // handle copy — the fan-out
        enc.answer(WireRouteRef::ViaView { view: "v", rewriting: "." }, arena.get(r));
    }
    enc.finish().len()
}

/// After warmup, 512 answers must cost the same number of allocations as
/// 64 answers (same uniques): per-pass scaffolding — the refs `Vec`, the
/// frame encoder and its O(log frame-size) growth doublings, the
/// fingerprint hashing inside the shared-table lookup — is allowed, but
/// one single per-answer allocation would add ~448 and fail the bound.
#[test]
fn eval_encode_allocations_do_not_scale_with_fanout() {
    let doc = site_doc(6, 6, 5);
    let ft = FlatTree::freeze(&doc);
    let uniques: Vec<Pattern> = catalog_zipf_stream(&site_catalog(), 8, 0x21F);

    let mut eval = BatchEval::new(&ft);
    let mut arena = AnswerArena::new();
    // Warmup: grow the arena, the scratch pool, the shared sub-match
    // tables, and every answer run to its steady-state size.
    let warm_len = eval_encode_pass(&mut eval, &uniques, 512, &mut arena);
    assert!(warm_len > 0);
    eval_encode_pass(&mut eval, &uniques, 64, &mut arena);

    let before_small = allocs();
    eval_encode_pass(&mut eval, &uniques, 64, &mut arena);
    let small_allocs = allocs() - before_small;

    let before_large = allocs();
    let large_len = eval_encode_pass(&mut eval, &uniques, 512, &mut arena);
    let large_allocs = allocs() - before_large;

    assert_eq!(large_len, warm_len);
    assert!(
        large_allocs <= small_allocs + 16,
        "per-answer allocations in eval→encode: {small_allocs} allocs for 64 answers vs \
         {large_allocs} for 512"
    );
}
