//! Property tests for the semantic layer, spanning crates:
//!
//! * Proposition 2.4 — `R ◦ V (t) = R(V(t))` for all trees;
//! * homomorphism soundness — a hom witness implies containment, and a
//!   claimed containment holds on every random document;
//! * weak vs strong evaluation inclusion;
//! * parser/printer round-trips on generated patterns;
//! * weakening steps produce genuine containments (and Prop. 3.1 facts on
//!   weakly equivalent pairs).

mod common;

use proptest::prelude::*;
use xpath_views::prelude::*;
use xpath_views::semantics::{
    evaluate_anchored, homomorphism_exists, weakly_contained, weakly_equivalent, HomMode,
};
use xpath_views::workload::Fragment;

use common::{instance_from_seed, pattern_from_seed, tree_from_seed, weaken};

fn fragments() -> impl Strategy<Value = Fragment> {
    prop_oneof![
        Just(Fragment::Full),
        Just(Fragment::NoWildcard),
        Just(Fragment::NoDescendant),
        Just(Fragment::NoBranch),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Proposition 2.4: applying R ∘ V to a tree equals applying V first and
    /// then R to each result subtree.
    #[test]
    fn composition_law(seed in any::<u64>(), tseed in any::<u64>(), frag in fragments()) {
        let (r, v) = instance_from_seed(seed, frag);
        // Use the instance pair in reverse roles too: compose arbitrary
        // pattern pairs, not just plausible rewritings.
        let t = tree_from_seed(tseed, 24);
        let lhs: Vec<_> = match compose(&r, &v) {
            Some(rv) => evaluate(&rv, &t),
            None => Vec::new(),
        };
        let v_out = evaluate(&v, &t);
        let rhs = evaluate_anchored(&r, &t, &v_out);
        prop_assert_eq!(lhs, rhs, "Prop 2.4 violated for R={}, V={}", r, v);
    }

    /// Homomorphism soundness: a hom witness q→p implies p ⊑ q, confirmed
    /// both by the complete decision procedure and on random documents.
    #[test]
    fn homomorphism_implies_containment(s1 in any::<u64>(), s2 in any::<u64>(), tseed in any::<u64>()) {
        let p = pattern_from_seed(s1, Fragment::Full);
        let q = pattern_from_seed(s2, Fragment::Full);
        if homomorphism_exists(&q, &p, HomMode::RootAnchored) {
            prop_assert!(contained(&p, &q), "hom exists but containment denied: {} vs {}", p, q);
            let t = tree_from_seed(tseed, 24);
            let rp = evaluate(&p, &t);
            let rq = evaluate(&q, &t);
            prop_assert!(rp.iter().all(|n| rq.contains(n)));
        }
    }

    /// Any containment claimed by the decision procedure holds on random
    /// documents (falsification test).
    #[test]
    fn claimed_containment_holds_on_documents(s1 in any::<u64>(), tseed in any::<u64>()) {
        let p = pattern_from_seed(s1, Fragment::Full);
        let q = weaken(&p, s1 ^ 0x9E3779B97F4A7C15);
        prop_assert!(contained(&p, &q), "weakening must contain: {} vs {}", p, q);
        let t = tree_from_seed(tseed, 30);
        let rp = evaluate(&p, &t);
        let rq = evaluate(&q, &t);
        prop_assert!(
            rp.iter().all(|n| rq.contains(n)),
            "document falsifies claimed containment {} ⊑ {}", p, q
        );
    }

    /// Weak evaluation includes strong evaluation; weak containment is
    /// implied by containment... (containment and weak containment are
    /// incomparable in general because weak embeddings shift roots, but on
    /// *weakenings* of the same pattern both hold).
    #[test]
    fn weak_includes_strong(seed in any::<u64>(), tseed in any::<u64>(), frag in fragments()) {
        let p = pattern_from_seed(seed, frag);
        let t = tree_from_seed(tseed, 24);
        let strong = evaluate(&p, &t);
        let weak = evaluate_weak(&p, &t);
        prop_assert!(strong.iter().all(|n| weak.contains(n)));
    }

    /// Weakening chains are transitive containments.
    #[test]
    fn weakening_chain_transitivity(seed in any::<u64>()) {
        let p0 = pattern_from_seed(seed, Fragment::Full);
        let p1 = weaken(&p0, seed.wrapping_add(1));
        let p2 = weaken(&p1, seed.wrapping_add(2));
        prop_assert!(contained(&p0, &p1));
        prop_assert!(contained(&p1, &p2));
        prop_assert!(contained(&p0, &p2), "transitivity failed: {} {} {}", p0, p1, p2);
    }

    /// Parser/printer round-trip on generated patterns.
    #[test]
    fn print_parse_roundtrip(seed in any::<u64>(), frag in fragments()) {
        let p = pattern_from_seed(seed, frag);
        let printed = p.to_string();
        let reparsed = parse_xpath(&printed).expect("printer output parses");
        prop_assert!(p.structurally_eq(&reparsed), "roundtrip failed for {}", printed);
    }

    /// Proposition 3.1 on weakly equivalent pairs: equal depths, weakly
    /// equivalent k-sub-patterns, identical selection labels.
    #[test]
    fn prop_3_1_consequences(seed in any::<u64>()) {
        let p1 = pattern_from_seed(seed, Fragment::Full);
        // A cheap source of weak equivalences: a pattern and itself after a
        // print/parse round trip (identity), plus relax-root when provably
        // weakly equivalent — test the implications only when ≡w holds.
        let p2 = p1.relax_root_edges();
        if weakly_equivalent(&p1, &p2) {
            prop_assert_eq!(p1.depth(), p2.depth());
            for i in 0..=p1.depth() {
                prop_assert_eq!(p1.test(p1.k_node(i)), p2.test(p2.k_node(i)));
                prop_assert!(weakly_equivalent(
                    &p1.sub_pattern_geq(i),
                    &p2.sub_pattern_geq(i)
                ));
            }
        }
    }

    /// Weak containment identity: P1 ⊑w P2 iff for all u, P1(u) ⊆ P2^w(u) —
    /// spot-checked by falsification on random trees.
    #[test]
    fn weak_containment_on_documents(s1 in any::<u64>(), s2 in any::<u64>(), tseed in any::<u64>()) {
        let p1 = pattern_from_seed(s1, Fragment::Full);
        let p2 = pattern_from_seed(s2, Fragment::Full);
        if weakly_contained(&p1, &p2) {
            let t = tree_from_seed(tseed, 24);
            let lhs = evaluate(&p1, &t);
            let rhs = evaluate_weak(&p2, &t);
            prop_assert!(lhs.iter().all(|n| rhs.contains(n)));
        }
    }

    /// The k-sub-pattern/upper-pattern algebra: combine(upper, sub) restores
    /// the original when a descendant edge enters the k-node, and node
    /// counts always partition.
    #[test]
    fn subpattern_algebra(seed in any::<u64>(), frag in fragments()) {
        let p = pattern_from_seed(seed, frag);
        let d = p.depth();
        for k in 0..=d {
            let upper = p.upper_pattern_leq(k);
            let lower = p.sub_pattern_geq(k);
            // P≤k prunes exactly the subtree rooted at the (k+1)-node (the
            // k-node and its side branches belong to BOTH parts).
            if k < d {
                prop_assert_eq!(upper.len() + p.sub_pattern_geq(k + 1).len(), p.len());
            } else {
                prop_assert_eq!(upper.len(), p.len());
            }
            prop_assert_eq!(lower.depth(), d - k);
            prop_assert_eq!(upper.depth(), k);
        }
        if d >= 1 {
            let k = 1 + (seed as usize % d);
            if p.axis(p.k_node(k)) == Axis::Descendant {
                let rebuilt = p.upper_pattern_lt(k).combine(k - 1, &p.sub_pattern_geq(k));
                prop_assert!(rebuilt.structurally_eq(&p));
            }
        }
    }
}
