//! Property tests for the rewriting layer: planner soundness and
//! determinism, certificate monotonicity, contained-rewriting soundness,
//! and the multi-view chain law.

mod common;

use proptest::prelude::*;
use xpath_views::prelude::*;
use xpath_views::rewrite::{
    contained_rewriting, find_condition, rewrite_using_chain, RewritePlanner,
};
use xpath_views::semantics::evaluate_anchored;
use xpath_views::workload::Fragment;

use common::{instance_from_seed, tree_from_seed};

fn fragments() -> impl Strategy<Value = Fragment> {
    prop_oneof![
        Just(Fragment::Full),
        Just(Fragment::NoWildcard),
        Just(Fragment::NoDescendant),
        Just(Fragment::NoBranch),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every rewriting the planner returns satisfies R ∘ V ≡ P, and the
    /// verdict is deterministic across calls.
    #[test]
    fn planner_soundness_and_determinism(seed in any::<u64>(), frag in fragments()) {
        let (p, v) = instance_from_seed(seed, frag);
        let planner = RewritePlanner::without_fallback();
        let a1 = planner.decide(&p, &v);
        let a2 = planner.decide(&p, &v);
        match (&a1, &a2) {
            (RewriteAnswer::Rewriting(r1), RewriteAnswer::Rewriting(r2)) => {
                prop_assert!(r1.pattern().structurally_eq(r2.pattern()));
                let rv = compose(r1.pattern(), &v).expect("verified rewriting composes");
                prop_assert!(equivalent(&rv, &p));
            }
            (RewriteAnswer::NoRewriting(_), RewriteAnswer::NoRewriting(_)) => {}
            (RewriteAnswer::Unknown(_), RewriteAnswer::Unknown(_)) => {}
            other => prop_assert!(false, "nondeterministic verdicts: {other:?}"),
        }
    }

    /// Rewritings answer queries correctly on documents (the end-to-end
    /// contract: R(V(t)) = P(t)).
    #[test]
    fn rewriting_answers_match_direct(seed in any::<u64>(), tseed in any::<u64>(), frag in fragments()) {
        let (p, v) = instance_from_seed(seed, frag);
        if let RewriteAnswer::Rewriting(rw) =
            RewritePlanner::without_fallback().decide(&p, &v)
        {
            let t = tree_from_seed(tseed, 32);
            let v_nodes = evaluate(&v, &t);
            let via_view = evaluate_anchored(rw.pattern(), &t, &v_nodes);
            let direct = evaluate(&p, &t);
            prop_assert_eq!(via_view, direct, "R(V(t)) != P(t) for P={}, V={}", p, v);
        }
    }

    /// More condition-search fuel never loses a certificate.
    #[test]
    fn certificate_fuel_monotonicity(seed in any::<u64>(), frag in fragments()) {
        let (p, v) = instance_from_seed(seed, frag);
        if v.depth() <= p.depth() {
            for fuel in 0..3usize {
                if find_condition(&p, &v, fuel).is_some() {
                    prop_assert!(
                        find_condition(&p, &v, fuel + 1).is_some(),
                        "certificate lost when fuel grew: {} / {}", p, v
                    );
                }
            }
        }
    }

    /// Contained rewritings are sound: answers through them are subsets of
    /// the direct answers on every document.
    #[test]
    fn contained_rewriting_soundness(seed in any::<u64>(), tseed in any::<u64>()) {
        let (p, v) = instance_from_seed(seed, Fragment::Full);
        if v.depth() <= p.depth() {
            if let Some(r) = contained_rewriting(&p, &v) {
                let rv = compose(&r, &v).expect("contained rewriting composes");
                prop_assert!(contained(&rv, &p));
                let t = tree_from_seed(tseed, 32);
                let v_nodes = evaluate(&v, &t);
                let partial = evaluate_anchored(&r, &t, &v_nodes);
                let full = evaluate(&p, &t);
                prop_assert!(partial.iter().all(|n| full.contains(n)));
            }
        }
    }

    /// Chain law: planning against a stack of views equals planning against
    /// their composition, and the effective view evaluates identically to
    /// stage-wise evaluation.
    #[test]
    fn view_chain_law(seed in any::<u64>(), tseed in any::<u64>()) {
        let (outer, v1) = instance_from_seed(seed, Fragment::Full);
        // Use P's suffix as the stacked view so the chain is meaningful.
        let v2 = outer.sub_pattern_geq(v1.depth());
        let planner = RewritePlanner::without_fallback();
        let chain =
            rewrite_using_chain(&planner, &outer, &[&v1, &v2]).expect("nonempty chain plans");
        if let Some(eff) = &chain.effective_view {
            let t = tree_from_seed(tseed, 32);
            // Stage-wise evaluation equals effective-view evaluation.
            let stage1 = evaluate(&v1, &t);
            let stage2 = evaluate_anchored(&v2, &t, &stage1);
            let direct = evaluate(eff, &t);
            prop_assert_eq!(stage2, direct, "chain law failed for V1={}, V2={}", v1, v2);
        }
    }
}
