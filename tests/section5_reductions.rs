//! Semantic validation of the Section 5 reduction statements themselves —
//! not just the planner's use of them.
//!
//! * Proposition 5.1: if a rewriting of `(P, V)` exists and `P≥i` is stable,
//!   then `R'` rewrites `(P, V)` iff it rewrites `(P≥i, V≥i)`.
//! * Proposition 5.6: `R` rewrites `(P, V)` ⟹ `R` rewrites
//!   `(∗//P≥i, ∗//V≥i)` (for `i` the deepest descendant selection edge of
//!   `V`); and a rewriting of the reduced instance is potential for the
//!   original.
//! * Theorem 5.9: the extension/lifting transfer, on instances beyond the
//!   Figure 4 ones.
//! * The candidate-set preservation that the planner relies on: all three
//!   transformations leave `P≥k` (and its relaxation) untouched.

use xpath_views::pattern::{NodeTest, Pattern};
use xpath_views::prelude::*;
use xpath_views::rewrite::natural_candidates;
use xpath_views::semantics::equivalent_opt;

fn pat(s: &str) -> Pattern {
    parse_xpath(s).expect("pattern parses")
}

fn is_rewriting(r: &Pattern, p: &Pattern, v: &Pattern) -> bool {
    match compose(r, v) {
        Some(rv) => equivalent(&rv, p),
        None => false,
    }
}

#[test]
fn prop_5_1_transfer_both_directions() {
    // P = a//b[x]/c/d, V = a//b[x]/c: P>=1 = b[x]/c/d is stable (labeled
    // root), i = 1 <= k = 2.
    let p = pat("a//b[x]/c/d");
    let v = pat("a//b[x]/c");
    let p_red = p.sub_pattern_geq(1);
    let v_red = v.sub_pattern_geq(1);

    // A rewriting of the original exists (suffix candidate).
    let r = p.sub_pattern_geq(2); // c/d
    assert!(is_rewriting(&r, &p, &v), "precondition: rewriting exists");

    // Transfer: the same R' rewrites the original iff the reduced instance.
    for candidate in [pat("c/d"), pat("c//d"), pat("*/d"), pat("d")] {
        let orig = is_rewriting(&candidate, &p, &v);
        let red = is_rewriting(&candidate, &p_red, &v_red);
        assert_eq!(orig, red, "Prop 5.1 transfer failed for {candidate}");
    }
}

#[test]
fn prop_5_6_forward_transfer() {
    // V's deepest descendant selection edge at i = 2; P correlated.
    let p = pat("a/b//c/d/e");
    let v = pat("a/b//c/d");
    let i = 2;
    let p_red = Pattern::prefix_descendant(NodeTest::Wildcard, &p.sub_pattern_geq(i));
    let v_red = Pattern::prefix_descendant(NodeTest::Wildcard, &v.sub_pattern_geq(i));

    // Forward: every rewriting of the original rewrites the reduced pair.
    for candidate in [pat("d/e"), pat("d//e"), pat("*/e")] {
        if is_rewriting(&candidate, &p, &v) {
            assert!(is_rewriting(&candidate, &p_red, &v_red), "Prop 5.6(1) failed for {candidate}");
        }
    }
    // And at least one rewriting exists to make the test non-vacuous.
    assert!(is_rewriting(&pat("d/e"), &p, &v));
}

#[test]
fn prop_5_6_reduced_rewriting_is_potential() {
    // When the original has a rewriting, any reduced-instance rewriting is a
    // rewriting of the original (potential-rewriting property).
    let p = pat("a/b//c/d/e");
    let v = pat("a/b//c/d");
    let i = 2;
    let p_red = Pattern::prefix_descendant(NodeTest::Wildcard, &p.sub_pattern_geq(i));
    let v_red = Pattern::prefix_descendant(NodeTest::Wildcard, &v.sub_pattern_geq(i));
    assert!(is_rewriting(&pat("d/e"), &p, &v), "original has a rewriting");
    for candidate in [pat("d/e"), pat("d//e"), pat("*/e"), pat("*//e")] {
        if is_rewriting(&candidate, &p_red, &v_red) {
            assert!(is_rewriting(&candidate, &p, &v), "Prop 5.6(2) failed for {candidate}");
        }
    }
}

#[test]
fn thm_5_9_transfer_beyond_figure4() {
    // P = a/b/q[z]//w, V = a/b (k = 1); j = 2 (q is labeled).
    let p = pat("a/b/q[z]//w");
    let v = pat("a/b");
    let mu = xpath_views::model::Label::fresh("µ-s5");
    let j = 2;
    let p_tr = p.extend(NodeTest::Label(mu)).lift_output(j);
    let v_tr = v.extend(NodeTest::Wildcard);

    for r in [pat("b/q[z]//w"), pat("b/q//w"), pat("b//q[z]//w")] {
        let orig = is_rewriting(&r, &p, &v);
        let r_tr = r.extend(NodeTest::Label(mu)).lift_output(j - v.depth());
        let transformed = is_rewriting(&r_tr, &p_tr, &v_tr);
        assert_eq!(orig, transformed, "Thm 5.9 transfer failed for {r}");
    }
    // Non-vacuity: the suffix candidate is a rewriting.
    assert!(is_rewriting(&pat("b/q[z]//w"), &p, &v));
}

#[test]
fn all_reductions_preserve_natural_candidates() {
    let p = pat("a//b[x]/c/d");
    let v = pat("a//b[x]/c");
    let k = v.depth();
    let orig: Vec<String> =
        natural_candidates(&p, &v).into_iter().map(|c| c.pattern.canonical_key()).collect();

    // §5.1 reduction at i = 1 (stable P>=1).
    let p1 = p.sub_pattern_geq(1);
    let v1 = v.sub_pattern_geq(1);
    let red1: Vec<String> =
        natural_candidates(&p1, &v1).into_iter().map(|c| c.pattern.canonical_key()).collect();
    assert_eq!(orig, red1, "5.1 changed the candidates");

    // §5.2 reduction at V's deepest descendant edge (i = 1).
    let p2 = Pattern::prefix_descendant(NodeTest::Wildcard, &p.sub_pattern_geq(1));
    let v2 = Pattern::prefix_descendant(NodeTest::Wildcard, &v.sub_pattern_geq(1));
    let red2: Vec<String> =
        natural_candidates(&p2, &v2).into_iter().map(|c| c.pattern.canonical_key()).collect();
    assert_eq!(orig, red2, "5.2 changed the candidates");

    // §5.3: the transformed instance's candidates are the +µ/lift images of
    // the originals (Prop 5.10); sizes shift by the extension, so compare
    // counts and spines instead of exact keys.
    let mu = xpath_views::model::Label::fresh("µ-cand");
    let p3 = p.extend(NodeTest::Label(mu)).lift_output(p.depth());
    let v3 = v.extend(NodeTest::Wildcard);
    let red3 = natural_candidates(&p3, &v3);
    assert_eq!(red3.len(), natural_candidates(&p, &v).len());
    for (a, b) in natural_candidates(&p, &v).iter().zip(&red3) {
        assert_eq!(a.relaxed, b.relaxed);
        assert_eq!(a.pattern.depth() + (p3.depth() - p.depth()), b.pattern.depth());
    }
    let _ = k;
}

#[test]
fn empty_composition_is_never_a_rewriting() {
    // Υ-composition sanity through the option-aware equivalence.
    let r = pat("q/w");
    let v = pat("a/b");
    assert!(compose(&r, &v).is_none());
    assert!(!equivalent_opt(compose(&r, &v).as_ref(), Some(&pat("a/b/q/w"))));
    assert!(equivalent_opt(None, None));
}
