//! Property tests for intersection-aware multi-view rewriting.
//!
//! The contracts under test, per the `xpv-intersect` crate docs:
//!
//! * **exactness** — the merged intersection pattern answers exactly the
//!   node-set intersection of its participants, on every document;
//! * **soundness** — an intersection answer is always a subset of direct
//!   evaluation, and exactly equal when the planner reports an equivalent
//!   compensation;
//! * **serving** — a query no single view can answer is served through
//!   `ShardedViewCache` byte-identically to direct evaluation, survives
//!   memoization (second ask = zero containment calls), and is invalidated
//!   when a participant view is replaced.

mod common;

use proptest::prelude::*;
use xpath_views::engine::{Route, ShardedViewCache};
use xpath_views::intersect::{
    answer_intersection_materialized, answer_intersection_virtual, intersect_node_sets,
    plan_intersection_contained_in, plan_intersection_in,
};
use xpath_views::pattern::intersect_patterns;
use xpath_views::prelude::*;
use xpath_views::workload::{site_doc, split_into_overlapping_views, Fragment};

use common::{pattern_from_seed, tree_from_seed};

/// A seeded overlapping pool: a query split into 2–3 views that only cover
/// it jointly (`None` when the seeded query has no splittable shape).
fn overlapping_pool(seed: u64, parts: usize) -> Option<(Pattern, Vec<Pattern>)> {
    let p = pattern_from_seed(seed, Fragment::Full);
    let views = split_into_overlapping_views(&p, parts, seed ^ 0xA5A5)?;
    Some((p, views))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The exact intersection pattern is exact: `M(t) = ∩ Vi(t)` for every
    /// document, and for split pools it recovers the original query.
    #[test]
    fn merge_is_exact_on_documents(seed in any::<u64>(), tseed in any::<u64>()) {
        let parts = 2 + (seed % 2) as usize; // pairs and triples
        if let Some((p, views)) = overlapping_pool(seed, parts) {
            let refs: Vec<&Pattern> = views.iter().collect();
            let m = intersect_patterns(&refs).expect("split views always merge");
            let t = tree_from_seed(tseed, 40);
            let sets: Vec<Vec<NodeId>> = views.iter().map(|v| evaluate(v, &t)).collect();
            let set_refs: Vec<&[NodeId]> = sets.iter().map(|s| s.as_slice()).collect();
            let joint = intersect_node_sets(t.len(), &set_refs);
            prop_assert_eq!(&joint, &evaluate(&m, &t), "M(t) != ∩Vi(t) for M={}", m);
            prop_assert_eq!(&joint, &evaluate(&p, &t), "split pool must reconstruct {}", p);
        }
    }

    /// Intersection answers are sound: a subset of direct evaluation always,
    /// exactly equal when the planner reports an equivalent compensation.
    #[test]
    fn intersection_answers_are_sound(seed in any::<u64>(), tseed in any::<u64>()) {
        if let Some((p, views)) = overlapping_pool(seed, 2) {
            let refs: Vec<&Pattern> = views.iter().collect();
            let session = RewritePlanner::default().session();
            let cfg = IntersectConfig::default();
            let t = tree_from_seed(tseed, 40);
            let direct = evaluate(&p, &t);
            let sets: Vec<Vec<NodeId>> = views.iter().map(|v| evaluate(v, &t)).collect();
            let set_refs: Vec<&[NodeId]> = sets.iter().map(|s| s.as_slice()).collect();

            if let (Some(ans), _) = plan_intersection_in(&session, &p, &refs, &cfg) {
                let got = answer_intersection_virtual(
                    &t,
                    &ans.views.iter().map(|&i| set_refs[i]).collect::<Vec<_>>(),
                    &ans.compensation,
                );
                prop_assert!(ans.equivalent);
                prop_assert_eq!(got, direct.clone(), "equivalent answer must be byte-identical");
            }
            if let (Some(ans), _) = plan_intersection_contained_in(&session, &p, &refs, &cfg) {
                let got = answer_intersection_virtual(
                    &t,
                    &ans.views.iter().map(|&i| set_refs[i]).collect::<Vec<_>>(),
                    &ans.compensation,
                );
                prop_assert!(
                    got.iter().all(|n| direct.contains(n)),
                    "contained answer must be a subset for P={}", p
                );
                if ans.equivalent {
                    prop_assert_eq!(got, direct, "equivalent flag must mean exact");
                }
            }
        }
    }

    /// The materialized (by-value) intersection path agrees with the
    /// virtual (node-identity) path up to value normalization.
    #[test]
    fn materialized_intersection_agrees_by_value(seed in any::<u64>(), tseed in any::<u64>()) {
        if let Some((p, views)) = overlapping_pool(seed, 2) {
            let refs: Vec<&Pattern> = views.iter().collect();
            let session = RewritePlanner::default().session();
            if let (Some(ans), _) =
                plan_intersection_in(&session, &p, &refs, &IntersectConfig::default())
            {
                let t = tree_from_seed(tseed, 40);
                let node_sets: Vec<Vec<NodeId>> =
                    ans.views.iter().map(|&i| evaluate(&views[i], &t)).collect();
                let node_refs: Vec<&[NodeId]> = node_sets.iter().map(|s| s.as_slice()).collect();
                let virt = answer_intersection_virtual(&t, &node_refs, &ans.compensation);

                let tree_sets: Vec<Vec<xpath_views::model::Tree>> = node_sets
                    .iter()
                    .map(|set| set.iter().map(|&n| t.subtree(n).0).collect())
                    .collect();
                let tree_refs: Vec<&[xpath_views::model::Tree]> =
                    tree_sets.iter().map(|s| s.as_slice()).collect();
                let mat = answer_intersection_materialized(&tree_refs, &ans.compensation);

                let mut virt_keys: Vec<String> =
                    virt.iter().map(|&n| t.canonical_key_at(n)).collect();
                virt_keys.sort();
                virt_keys.dedup();
                let mut mat_keys: Vec<String> =
                    mat.iter().map(|u| u.canonical_key()).collect();
                mat_keys.sort();
                prop_assert_eq!(virt_keys, mat_keys, "value mismatch for P={}", p);
            }
        }
    }

    /// End-to-end through the cache: whatever route the sharded cache
    /// picks (view, intersection, or direct), answers equal direct
    /// evaluation on the seeded document.
    #[test]
    fn cache_with_overlapping_pool_stays_exact(seed in any::<u64>()) {
        if let Some((p, views)) = overlapping_pool(seed, 2) {
            let t = tree_from_seed(seed ^ 0x7777, 48);
            let cache = ShardedViewCache::new(t);
            for (i, v) in views.iter().enumerate() {
                cache.add_view(&format!("v{i}"), v.clone());
            }
            let ans = cache.answer(&p);
            prop_assert_eq!(&ans.nodes, &cache.answer_direct(&p), "route {:?}", ans.route);
        }
    }
}

/// The headline acceptance scenario: a query answerable by **no single
/// view** in the pool is served from a 2-view intersection through
/// `ShardedViewCache` — byte-identical to direct evaluation, memoized
/// (second ask runs zero containment calls), and correctly invalidated
/// when either participant is replaced.
#[test]
fn acceptance_two_view_intersection_through_the_sharded_cache() {
    let doc = site_doc(8, 10, 7);
    let cache = ShardedViewCache::new(doc).with_shards(4);
    cache.add_view("bid_names", parse_xpath("site/region/item[bids]/name").unwrap());
    cache.add_view("ship_names", parse_xpath("site/region/item[shipping]/name").unwrap());
    let q = parse_xpath("site/region/item[bids][shipping]/name").unwrap();

    // No single view in the pool rewrites the query.
    let session = RewritePlanner::default().session();
    for v in cache.views_snapshot().iter() {
        assert!(
            session.decide(&q, v.definition()).rewriting().is_none(),
            "view {} must not answer the query alone",
            v.name()
        );
    }

    // Served through the intersection, byte-identical to direct evaluation.
    let direct = cache.answer_direct(&q);
    assert!(!direct.is_empty(), "the scenario document answers the query");
    let first = cache.answer(&q);
    assert_eq!(first.nodes, direct);
    match &first.route {
        Route::Intersect { views, .. } => {
            assert_eq!(views, &["bid_names", "ship_names"]);
        }
        other => panic!("expected an intersection route, got {other:?}"),
    }

    // Second ask: plan-memo hit, zero containment calls.
    let runs_before = cache.stats().oracle_canonical_runs;
    let queries_before = cache.session().oracle().stats().queries;
    let second = cache.answer(&q);
    assert_eq!(second.nodes, direct);
    assert_eq!(second.route, first.route);
    let oracle_after = cache.session().oracle().stats();
    assert_eq!(
        oracle_after.queries, queries_before,
        "second ask must issue zero containment queries"
    );
    assert_eq!(cache.stats().oracle_canonical_runs, runs_before);
    assert_eq!(cache.stats().plan_memo_hits, 1);

    // Replacing either participant invalidates the route.
    let invalidations = cache.stats().plan_memo_invalidations;
    cache.replace_view("bid_names", parse_xpath("site/region/item[bids]/shipping").unwrap());
    assert!(cache.stats().plan_memo_invalidations > invalidations, "route must be dropped");
    let after = cache.answer(&q);
    assert_eq!(after.nodes, direct, "answers stay correct after the replacement");
    assert_eq!(after.route, Route::Direct, "the degraded pool no longer supports the route");

    // Restoring the participant restores the intersection route.
    cache.replace_view("bid_names", parse_xpath("site/region/item[bids]/name").unwrap());
    let restored = cache.answer(&q);
    assert_eq!(restored.nodes, direct);
    assert!(matches!(restored.route, Route::Intersect { .. }));
}
