//! Properties of the two serve-hot-loop optimizations: the plan-miss
//! signature filter (a rejected candidate provably admits no equivalent
//! rewriting — the filter is invisible in answers and routes) and the
//! answer arena (`answer_batch_refs` returns byte-identical nodes and
//! routes to the owned-`Vec` `answer_batch` across every ablation arm,
//! including multi-view intersection routes).

mod common;

use xpath_views::model::AnswerArena;
use xpath_views::pattern::{QuerySignature, ViewSignature};
use xpath_views::prelude::*;
use xpath_views::workload::{
    bib_catalog, catalog_zipf_stream, derived_view_pool, site_catalog, site_doc,
    site_intersect_catalog, Fragment,
};

use common::instance_from_seed;

/// Filter soundness over generated pairs: whenever the signature check
/// rejects a (query, view) pair, the full unfiltered planner — oracle,
/// fallback and all — must agree that no equivalent rewriting exists.
/// (The converse is not claimed: the filter is a cheap necessary
/// condition, not a decision procedure.)
#[test]
fn signature_reject_implies_no_rewriting() {
    let planner = RewritePlanner::default();
    let fragments =
        [Fragment::Full, Fragment::NoWildcard, Fragment::NoDescendant, Fragment::NoBranch];
    let mut pairs = 0usize;
    let mut rejected = 0usize;
    for seed in 0..160u64 {
        for &frag in &fragments {
            // Correlated instances (view derived from the query) plus the
            // crossed pair from the next seed — the crossed ones are where
            // rejections actually fire.
            let (q, v) = instance_from_seed(seed, frag);
            let (_, v2) = instance_from_seed(seed ^ 0xA5A5, frag);
            for view in [&v, &v2] {
                pairs += 1;
                let qsig = QuerySignature::of(&q);
                if !qsig.admits(&ViewSignature::of(view)) {
                    rejected += 1;
                    assert!(
                        !matches!(planner.decide(&q, view), RewriteAnswer::Rewriting(_)),
                        "signature filter rejected a rewritable pair:\n  P = {q}\n  V = {view}"
                    );
                }
            }
        }
    }
    assert!(pairs >= 500, "want 500+ generated pairs, got {pairs}");
    assert!(rejected >= 50, "filter never fired ({rejected}/{pairs}) — the test is vacuous");
}

/// The catalog regime the benches measure: with views derived from a
/// *foreign* catalog in the pool, most candidates are label-mask-rejected,
/// and the filter must still be invisible in every answer and route.
#[test]
fn filter_is_invisible_on_the_derived_pool() {
    let pool = derived_view_pool(&[&site_catalog(), &bib_catalog()], 3, 7);
    let stream = catalog_zipf_stream(&site_catalog(), 60, 0x21F);
    let build = |filter: bool| {
        let cache = ShardedViewCache::new(site_doc(6, 6, 5)).with_shards(2);
        cache.set_memo_enabled(false);
        cache.set_sig_filter_enabled(filter);
        for (name, def) in &pool {
            cache.add_view(name, def.clone());
        }
        cache
    };
    let on = build(true);
    let off = build(false);
    let a = on.answer_batch(&stream);
    let b = off.answer_batch(&stream);
    for ((x, y), q) in a.iter().zip(&b).zip(&stream) {
        assert_eq!(x.nodes, y.nodes, "filter changed an answer for {q}");
        assert_eq!(x.route, y.route, "filter changed a route for {q}");
    }
    let s = on.stats();
    assert!(s.sig_rejects > 0, "the foreign-catalog pool must trigger rejections");
    assert_eq!(off.stats().sig_rejects, 0, "filter off must not reject");
}

/// Arena answers are byte-identical to owned-`Vec` answers across the
/// full ablation grid — flat matcher on/off × signature filter on/off ×
/// plan memo on/off — over the overlapping-view catalog, whose hot
/// queries only multi-view **intersection** routes can serve.
#[test]
fn arena_answers_match_owned_answers_across_ablations() {
    let catalog = site_intersect_catalog();
    let stream = catalog_zipf_stream(&catalog, 48, 0x51);
    for flat in [true, false] {
        for filter in [true, false] {
            for memo in [true, false] {
                let cache = ShardedViewCache::new(site_doc(6, 6, 5)).with_shards(2);
                cache.set_flat_enabled(flat);
                cache.set_sig_filter_enabled(filter);
                cache.set_memo_enabled(memo);
                for (name, def) in &catalog.views {
                    cache.add_view(name, def.clone());
                }
                let owned = cache.answer_batch(&stream);
                let mut arena = AnswerArena::new();
                let refs = cache.answer_batch_refs(&stream, &mut arena);
                assert!(
                    owned.iter().any(|a| matches!(a.route, Route::Intersect { .. })),
                    "stream must exercise intersection routes"
                );
                assert_eq!(owned.len(), refs.len());
                for ((o, r), q) in owned.iter().zip(&refs).zip(&stream) {
                    assert_eq!(
                        o.nodes.as_slice(),
                        arena.get(r.nodes),
                        "arena nodes diverge (flat={flat}, filter={filter}, memo={memo}) for {q}"
                    );
                    assert_eq!(
                        &o.route,
                        r.route.as_ref(),
                        "arena route diverges (flat={flat}, filter={filter}, memo={memo}) for {q}"
                    );
                }
            }
        }
    }
}

/// Fan-out sharing: a batch of one query repeated K times stores the node
/// run **once** in the arena; every duplicate answer is a handle to the
/// same storage.
#[test]
fn arena_fanout_shares_storage() {
    let catalog = site_catalog();
    let cache = ShardedViewCache::new(site_doc(6, 6, 5)).with_shards(2);
    for (name, def) in &catalog.views {
        cache.add_view(name, def.clone());
    }
    let q = catalog.queries[0].1.clone();
    let batch: Vec<Pattern> = std::iter::repeat_with(|| q.clone()).take(64).collect();
    let mut arena = AnswerArena::new();
    let refs = cache.answer_batch_refs(&batch, &mut arena);
    let first = refs[0].nodes;
    assert!(refs.iter().all(|r| r.nodes == first), "duplicates must share one run");
    assert_eq!(arena.node_count(), first.len(), "arena must hold exactly one copy of the run");
    let direct = cache.answer_batch(&batch);
    assert_eq!(direct[0].nodes.as_slice(), arena.get(first));
}
