//! Acceptance test for the health watchdog + flight recorder (ISSUE 9):
//! a maintenance stall injected mid-`apply_edits` must raise
//! `xpv_alert_stall_total` within two sampler ticks and flip trace
//! sampling to always-on; `DebugDumpReq` must then capture the firing
//! alert, the history window, and phase-ordered trace spans.
//!
//! This file owns the process-global trace-sampling knob for its whole
//! run (tests here are serialized through `KNOB`), which is why it is a
//! separate integration-test binary from `obs_properties.rs`.

use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use xpath_views::engine::{AsyncCacheServer, ObsConfig, ShardedViewCache};
use xpath_views::maintain::Edit;
use xpath_views::net::WireClient;
use xpath_views::obs::{set_trace_sampling, trace_sampling, DEFAULT_TRACE_SAMPLING};
use xpath_views::prelude::*;

/// Serializes the tests in this binary around the global sampling knob.
fn knob() -> std::sync::MutexGuard<'static, ()> {
    static KNOB: OnceLock<Mutex<()>> = OnceLock::new();
    match KNOB.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn pat(s: &str) -> Pattern {
    parse_xpath(s).expect("pattern parses")
}

fn site_cache() -> Arc<ShardedViewCache> {
    let doc = TreeBuilder::root("site", |b| {
        for _ in 0..4 {
            b.child("region", |b| {
                b.child("item", |b| {
                    b.leaf("name");
                });
            });
        }
    });
    let cache = Arc::new(ShardedViewCache::new(doc));
    cache.add_view("items", pat("site/region/item"));
    cache
}

/// A fast-ticking watchdog server: 40 ms ticks, a 2-tick stall rule, and
/// a cooldown long enough that forced sampling survives the assertions.
fn watchdog_server(cache: Arc<ShardedViewCache>) -> AsyncCacheServer {
    AsyncCacheServer::start_with_obs(
        cache,
        2,
        64,
        ObsConfig {
            interval: Duration::from_millis(40),
            heartbeat_stall_ticks: 2,
            cooldown_ticks: 10_000,
            ..ObsConfig::default()
        },
    )
}

fn counter(server: &AsyncCacheServer, name: &str) -> u64 {
    use xpath_views::obs::SampleValue;
    let snap = server.metrics_snapshot();
    snap.samples
        .iter()
        .find(|s| s.name == name)
        .and_then(|s| match s.value {
            SampleValue::Counter(v) => Some(v),
            SampleValue::Gauge(v) => Some(v),
            SampleValue::Histogram(_) => None,
        })
        .unwrap_or(0)
}

#[test]
fn injected_stall_fires_alert_forces_tracing_and_lands_in_the_dump() {
    let _knob = knob();
    set_trace_sampling(DEFAULT_TRACE_SAMPLING);

    let cache = site_cache();
    let server = watchdog_server(Arc::clone(&cache));
    let addr = server.listen_tcp("127.0.0.1:0").expect("listen");

    // Wedge maintenance: apply_edits now sleeps ~1.2 s inside the
    // heartbeat guard, far past two 40 ms sampler ticks.
    cache.inject_maintain_pause_for_tests(Duration::from_millis(1200));
    let editor_cache = Arc::clone(&cache);
    let editor = std::thread::spawn(move || {
        let root = editor_cache.document().root();
        let graft = TreeBuilder::root("region", |b| {
            b.leaf("item");
        });
        let _ = editor_cache.apply_edits(&[Edit::InsertSubtree { parent: root, subtree: graft }]);
    });

    // The stall must be observed within two sampler ticks of the wedge
    // becoming visible; poll the alert counter with a generous deadline
    // (the bound under test is sampler ticks, not wall clock).
    let deadline = Instant::now() + Duration::from_secs(5);
    while counter(&server, "xpv_alert_stall_total") == 0 {
        assert!(
            Instant::now() < deadline,
            "stall alert did not fire within 5s of a 1.2s wedge at 40ms ticks"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(counter(&server, "xpv_alerts_total") >= 1);
    assert_eq!(counter(&server, "xpv_alert_firing"), 1, "firing gauge is up");
    assert_eq!(
        trace_sampling(),
        1,
        "a firing watchdog forces trace sampling always-on (tail-based sampling)"
    );
    assert_eq!(counter(&server, "xpv_alert_trace_forced"), 1);

    // Traffic during the forced window: every request is now traced.
    let mut client = WireClient::connect_tcp(&addr.to_string()).expect("connect");
    for _ in 0..3 {
        client.answer_batch("t", &[pat("site/region/item")]).expect("answers");
    }

    // The alert counter increments after its tick's snapshot, so its
    // history delta lands on the following tick — force one
    // synchronously instead of racing the 40 ms cadence.
    server.sampler().expect("sampler").tick_now();

    // The flight recorder captures the incident while it is live.
    let dump = client.debug_dump().expect("dump");
    let stall = dump
        .alerts
        .iter()
        .find(|a| a.name == "maintain_stall")
        .expect("stall alert present in dump");
    assert!(stall.firing, "dump captured the alert mid-incident: {stall:?}");
    assert_eq!(stall.kind, "heartbeat_stall");
    assert!(stall.fired_total >= 1);
    assert!(!stall.detail.is_empty(), "alert carries evidence");

    // History window: ticks recorded, heartbeat series retained.
    assert!(dump.interval_us > 0);
    assert!(!dump.series.is_empty(), "history window travels in the dump");
    assert!(
        dump.series.iter().any(|s| s.name == "xpv_hb_maintain_inflight"),
        "heartbeat gauge history is in the window"
    );
    let alert_series = dump
        .series
        .iter()
        .find(|s| s.name == "xpv_alert_stall_total")
        .expect("alert counter is a history series");
    assert!(
        alert_series.points.iter().any(|p| p.values.first().copied().unwrap_or(0) > 0),
        "some tick recorded a positive stall-alert delta"
    );
    assert_eq!(
        dump.config.iter().find(|(k, _)| k == "trace_forced").map(|(_, v)| v.as_str()),
        Some("true"),
        "config state records the forced window"
    );

    // Spans drained into the dump are phase-ordered: the wire query path
    // marks admission before plan/eval and flush last.
    let query_span = dump
        .traces
        .iter()
        .find(|t| t.kind == "net.query" && t.phases.len() >= 2)
        .expect("forced sampling captured a wire query span");
    let phase_pos = |name: &str| query_span.phases.iter().position(|(p, _)| p == name);
    let admission = phase_pos("admission").expect("admission phase present");
    let flush = phase_pos("flush").expect("flush phase present");
    assert_eq!(admission, 0, "admission opens the span: {query_span:?}");
    assert_eq!(flush, query_span.phases.len() - 1, "flush closes the span: {query_span:?}");
    if let Some(eval) = phase_pos("eval") {
        assert!(admission < eval && eval < flush, "phases in order: {query_span:?}");
    }

    editor.join().expect("editor thread");
    cache.inject_maintain_pause_for_tests(Duration::ZERO);
    server.shutdown();
    set_trace_sampling(DEFAULT_TRACE_SAMPLING);
}

#[test]
fn healthy_server_history_accumulates_without_alerts() {
    let _knob = knob();
    set_trace_sampling(DEFAULT_TRACE_SAMPLING);

    let cache = site_cache();
    let server = watchdog_server(Arc::clone(&cache));
    let addr = server.listen_tcp("127.0.0.1:0").expect("listen");
    let mut client = WireClient::connect_tcp(&addr.to_string()).expect("connect");

    // Healthy traffic across a few ticks, including real maintenance.
    let root = cache.document().root();
    for round in 0..3 {
        client.answer_batch("t", &[pat("site/region/item")]).expect("answers");
        let graft = TreeBuilder::root(format!("r{round}").as_str(), |b| {
            b.leaf("leaf");
        });
        cache
            .apply_edits(&[Edit::InsertSubtree { parent: root, subtree: graft }])
            .expect("edits apply");
        std::thread::sleep(Duration::from_millis(60));
    }

    // Make sure the final round is recorded before reading the rings.
    server.sampler().expect("sampler").tick_now();
    let (interval_us, series) = client.history().expect("history");
    assert_eq!(interval_us, 40_000);
    let queries =
        series.iter().find(|s| s.name == "xpv_cache_queries").expect("query counter series");
    assert!(queries.points.len() >= 2, "several ticks retained: {}", queries.points.len());
    assert_eq!(
        queries.points.iter().map(|p| p.values[0]).sum::<u64>(),
        3,
        "per-tick deltas sum to the queries served"
    );
    let beats = series
        .iter()
        .find(|s| s.name == "xpv_hb_maintain_beats")
        .expect("maintain heartbeat series");
    assert!(
        beats.points.last().expect("points").values[0] >= 3,
        "heartbeat level tracks completed maintenance passes"
    );

    assert_eq!(counter(&server, "xpv_alerts_total"), 0, "healthy run fires nothing");
    assert_eq!(trace_sampling(), DEFAULT_TRACE_SAMPLING, "knob untouched without alerts");
    server.shutdown();
}
