//! The containment oracle's contract: memoization never changes a verdict.
//!
//! A shared, long-lived [`ContainmentOracle`] (the thing `PlanningSession`
//! and `ViewCache` hold) must answer exactly like a fresh oracle per call —
//! which in turn is what the free functions `contained` / `weakly_contained`
//! run. The property is exercised over hundreds of generated pattern pairs,
//! asked twice each so the second round is answered from the memo.

use xpath_views::prelude::*;
use xpath_views::rewrite::{RewriteAnswer, RewritePlanner};
use xpath_views::semantics::ContainmentOracle;
use xpath_views::workload::Fragment;

/// ≥200 random pattern pairs: correlated (query, derived view) instances
/// plus uncorrelated pairs, across fragments, all from `PatternGen`.
fn pattern_pairs() -> Vec<(Pattern, Pattern)> {
    let mut pairs = Vec::new();
    for (i, fragment) in
        [Fragment::Full, Fragment::NoWildcard, Fragment::NoDescendant, Fragment::NoBranch]
            .into_iter()
            .enumerate()
    {
        let cfg = PatternGenConfig {
            depth: (1, 3),
            max_branch_size: 2,
            fragment,
            ..PatternGenConfig::default()
        };
        let mut g = PatternGen::new(cfg, 0xFACADE + i as u64);
        for j in 0..60 {
            if j % 2 == 0 {
                pairs.push(g.instance());
            } else {
                let p = g.pattern();
                let q = g.pattern();
                pairs.push((p, q));
            }
        }
    }
    assert!(pairs.len() >= 200, "need at least 200 pairs, got {}", pairs.len());
    pairs
}

#[test]
fn memoized_verdicts_equal_fresh_oracle_verdicts() {
    let pairs = pattern_pairs();
    let shared = ContainmentOracle::new();

    // Round 1: populate the shared oracle; every verdict must match a fresh
    // oracle (== the free functions).
    let mut expected = Vec::with_capacity(pairs.len());
    for (p, q) in &pairs {
        let fresh_strong = contained(p, q);
        let fresh_weak = weakly_contained(p, q);
        assert_eq!(shared.contained(p, q), fresh_strong, "shared oracle diverged on {p} ⊑ {q}");
        assert_eq!(
            shared.weakly_contained(p, q),
            fresh_weak,
            "shared oracle diverged on {p} ⊑w {q}"
        );
        expected.push((fresh_strong, fresh_weak));
    }

    // Round 2: every answer now comes from the memo and must be unchanged.
    let hits_before = shared.stats().verdict_memo_hits;
    let runs_before = shared.stats().canonical_runs;
    for ((p, q), (strong, weak)) in pairs.iter().zip(&expected) {
        assert_eq!(shared.contained(p, q), *strong, "memoized verdict flipped: {p} ⊑ {q}");
        assert_eq!(
            shared.weakly_contained(p, q),
            *weak,
            "memoized weak verdict flipped: {p} ⊑w {q}"
        );
    }
    let s = shared.stats();
    assert_eq!(
        s.verdict_memo_hits - hits_before,
        2 * pairs.len() as u64,
        "round 2 must be answered entirely from the memo"
    );
    assert_eq!(s.canonical_runs, runs_before, "round 2 must run zero coNP loops");
}

#[test]
fn memo_disabled_oracle_also_matches() {
    // The ablation path (memo off) must compute the same verdicts too.
    let pairs = pattern_pairs();
    let no_memo = ContainmentOracle::new();
    no_memo.set_memo_enabled(false);
    for (p, q) in pairs.iter().take(80) {
        assert_eq!(no_memo.contained(p, q), contained(p, q), "{p} ⊑ {q}");
    }
    assert_eq!(no_memo.stats().verdict_memo_hits, 0);
}

#[test]
fn session_planner_agrees_with_one_shot_planner_on_generated_instances() {
    let cfg = PatternGenConfig { depth: (1, 3), max_branch_size: 2, ..PatternGenConfig::default() };
    let mut g = PatternGen::new(cfg, 0xBEEFCAFE);
    let planner = RewritePlanner::without_fallback();
    let session = planner.session();
    for _ in 0..60 {
        let (p, v) = g.instance();
        let one_shot = planner.decide(&p, &v);
        let shared = session.decide(&p, &v);
        match (&one_shot, &shared) {
            (RewriteAnswer::Rewriting(a), RewriteAnswer::Rewriting(b)) => {
                assert_eq!(
                    a.pattern().to_string(),
                    b.pattern().to_string(),
                    "rewritings diverged for P={p}, V={v}"
                );
            }
            (RewriteAnswer::NoRewriting(_), RewriteAnswer::NoRewriting(_))
            | (RewriteAnswer::Unknown(_), RewriteAnswer::Unknown(_)) => {}
            other => panic!("verdict kind diverged for P={p}, V={v}: {other:?}"),
        }
    }
}
