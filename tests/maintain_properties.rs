//! Correctness of incremental view maintenance under document updates.
//!
//! The contract of `xpv-maintain` (and the engine's `apply_edits` above it)
//! is that incrementality is *invisible* in the state: after any edit
//! stream, incrementally patched answer sets equal a from-scratch
//! re-materialization — per view, by node identity *and* by value — and
//! plan-memo routes whose participants were untouched keep serving
//! byte-identical answers with zero re-planning. An 8-thread stress case
//! interleaves `apply_edits` with `answer` and checks every observed answer
//! against a serial replay of the same batches (snapshot consistency: no
//! torn document/view pairings).

mod common;

use std::collections::HashSet;
use std::sync::Arc;

use proptest::prelude::*;
use xpath_views::engine::{
    answer_value_set, Edit, MaterializedView, Route, ShardedViewCache, ViewCache,
};
use xpath_views::maintain::{maintain_views, MaintainMode};
use xpath_views::prelude::*;
use xpath_views::workload::{
    catalog_zipf_stream, edit_batches, edit_stream, edit_stream_clustered, site_catalog, site_doc,
    EditLocality, EditMix, Fragment,
};

use common::{pattern_from_seed, tree_from_seed};

/// Three deterministic view definitions for a seed, in the shared
/// tree/pattern label universe.
fn defs_from_seed(seed: u64) -> Vec<Pattern> {
    (0..3).map(|i| pattern_from_seed(seed.wrapping_add(i * 7919), Fragment::Full)).collect()
}

fn mix_from_seed(seed: u64) -> EditMix {
    match seed % 4 {
        0 => EditMix::default(),
        1 => EditMix::new(1, 0, 0),
        2 => EditMix::new(0, 1, 1),
        _ => EditMix::new(1, 1, 1),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline property: for random documents, view pools, and edit
    /// streams, incremental maintenance ≡ full re-materialization — same
    /// final document, same answer sets (by node id), same value sets.
    #[test]
    fn incremental_equals_full_rematerialization(
        tseed in any::<u64>(),
        vseed in any::<u64>(),
        eseed in any::<u64>(),
    ) {
        let doc = tree_from_seed(tseed, 32);
        let defs = defs_from_seed(vseed);
        let def_refs: Vec<&Pattern> = defs.iter().collect();
        let edits = edit_stream(&doc, 24, mix_from_seed(eseed), eseed);

        let mut doc_inc = doc.clone();
        let mut ans_inc: Vec<Vec<NodeId>> =
            defs.iter().map(|d| evaluate(d, &doc_inc)).collect();
        let (deltas, stats) = maintain_views(
            &mut doc_inc, &def_refs, &mut ans_inc, &edits, MaintainMode::Incremental,
        ).expect("generated streams are valid");
        prop_assert_eq!(stats.edits_applied, edits.len() as u64);

        let mut doc_full = doc.clone();
        let mut ans_full: Vec<Vec<NodeId>> =
            defs.iter().map(|d| evaluate(d, &doc_full)).collect();
        maintain_views(
            &mut doc_full, &def_refs, &mut ans_full, &edits, MaintainMode::FullRecompute,
        ).expect("same stream is valid");

        prop_assert_eq!(
            doc_inc.canonical_key(), doc_full.canonical_key(),
            "both modes must produce the same document"
        );
        for (i, def) in defs.iter().enumerate() {
            // Node-identity equality against a fresh evaluation…
            prop_assert_eq!(
                &ans_inc[i], &evaluate(def, &doc_inc),
                "incremental diverged from recomputation for view {}", def
            );
            prop_assert_eq!(&ans_inc[i], &ans_full[i], "modes disagree for view {}", def);
            // …and value equality of the answer sets.
            prop_assert_eq!(
                answer_value_set(&doc_inc, &ans_inc[i]),
                answer_value_set(&doc_full, &ans_full[i])
            );
            // The deltas must reconcile the old set into the new one.
            let d = &deltas[i];
            for n in &d.added {
                prop_assert!(ans_inc[i].binary_search(n).is_ok());
            }
            for n in &d.removed {
                prop_assert!(ans_inc[i].binary_search(n).is_err());
            }
        }
    }

    /// Batch coalescing is invisible in the state: for random documents,
    /// view pools, and edit batches, the coalesced maintainer produces the
    /// same document, the same answer sets (node identity and value sets),
    /// and deltas that reconcile identically to both the legacy per-edit
    /// path and full re-materialization.
    #[test]
    fn coalesced_equals_per_edit_and_full(
        tseed in any::<u64>(),
        vseed in any::<u64>(),
        eseed in any::<u64>(),
    ) {
        let doc = tree_from_seed(tseed, 32);
        let defs = defs_from_seed(vseed);
        let def_refs: Vec<&Pattern> = defs.iter().collect();
        let edits = edit_stream(&doc, 24, mix_from_seed(eseed), eseed);

        let run = |mode: MaintainMode| {
            let mut d = doc.clone();
            let mut ans: Vec<Vec<NodeId>> =
                defs.iter().map(|def| evaluate(def, &d)).collect();
            let (deltas, stats) =
                maintain_views(&mut d, &def_refs, &mut ans, &edits, mode)
                    .expect("generated streams are valid");
            (d, ans, deltas, stats)
        };
        let (doc_co, ans_co, deltas_co, stats_co) = run(MaintainMode::Coalesced);
        let (doc_pe, ans_pe, deltas_pe, _) = run(MaintainMode::Incremental);
        let (doc_fu, ans_fu, _, _) = run(MaintainMode::FullRecompute);

        prop_assert_eq!(stats_co.edits_applied, edits.len() as u64);
        // A batch can never cost more region scans than its pre-merge
        // root count — coalescing only removes work.
        prop_assert!(stats_co.regions_scanned <= stats_co.regions_before_merge);
        prop_assert_eq!(doc_co.canonical_key(), doc_pe.canonical_key());
        prop_assert_eq!(doc_co.canonical_key(), doc_fu.canonical_key());
        for (i, def) in defs.iter().enumerate() {
            prop_assert_eq!(
                &ans_co[i], &evaluate(def, &doc_co),
                "coalesced diverged from recomputation for view {}", def
            );
            prop_assert_eq!(&ans_co[i], &ans_pe[i], "coalesced vs per-edit for view {}", def);
            prop_assert_eq!(&ans_co[i], &ans_fu[i], "coalesced vs full for view {}", def);
            prop_assert_eq!(
                answer_value_set(&doc_co, &ans_co[i]),
                answer_value_set(&doc_pe, &ans_pe[i])
            );
            // The two incremental modes must agree delta-for-delta, so
            // materialized representations patch identically either way.
            prop_assert_eq!(&deltas_co[i].added, &deltas_pe[i].added);
            prop_assert_eq!(&deltas_co[i].removed, &deltas_pe[i].removed);
        }
    }

    /// Materialized subtree copies patched through coalesced deltas stay
    /// value-identical to a fresh materialization of the post-batch tree.
    #[test]
    fn coalesced_materialized_copies_match_fresh(
        tseed in any::<u64>(),
        vseed in any::<u64>(),
        eseed in any::<u64>(),
    ) {
        let doc = tree_from_seed(tseed, 28);
        let defs = defs_from_seed(vseed);
        let def_refs: Vec<&Pattern> = defs.iter().collect();
        let edits = edit_stream(&doc, 16, mix_from_seed(eseed), eseed);

        let mut views: Vec<MaterializedView> = defs
            .iter()
            .enumerate()
            .map(|(i, d)| MaterializedView::materialize(format!("v{i}"), d.clone(), &doc))
            .collect();
        let mut doc_co = doc.clone();
        let mut answers: Vec<Vec<NodeId>> =
            views.iter().map(|v| v.nodes().to_vec()).collect();
        let (deltas, _) = maintain_views(
            &mut doc_co, &def_refs, &mut answers, &edits, MaintainMode::Coalesced,
        ).expect("valid stream");
        for ((view, delta), ans) in views.iter_mut().zip(&deltas).zip(&answers) {
            view.apply_delta(&doc_co, ans, delta);
        }
        for (view, def) in views.iter().zip(&defs) {
            let fresh = MaterializedView::materialize("fresh", def.clone(), &doc_co);
            prop_assert_eq!(view.nodes(), fresh.nodes());
            let keys = |mv: &MaterializedView| {
                let mut ks: Vec<String> =
                    mv.trees().iter().map(|t| t.canonical_key()).collect();
                ks.sort();
                ks
            };
            prop_assert_eq!(
                keys(view), keys(&fresh),
                "coalesced materialized copies diverged for view {}", def
            );
        }
    }

    /// The materialized (subtree-copy) representation stays value-identical
    /// to a fresh materialization when patched through `apply_delta`.
    #[test]
    fn materialized_copies_match_fresh_materialization(
        tseed in any::<u64>(),
        vseed in any::<u64>(),
        eseed in any::<u64>(),
    ) {
        let doc = tree_from_seed(tseed, 28);
        let defs = defs_from_seed(vseed);
        let def_refs: Vec<&Pattern> = defs.iter().collect();
        let edits = edit_stream(&doc, 16, mix_from_seed(eseed), eseed);

        let mut views: Vec<MaterializedView> = defs
            .iter()
            .enumerate()
            .map(|(i, d)| MaterializedView::materialize(format!("v{i}"), d.clone(), &doc))
            .collect();
        let mut doc_inc = doc.clone();
        let mut answers: Vec<Vec<NodeId>> =
            views.iter().map(|v| v.nodes().to_vec()).collect();
        let (deltas, _) = maintain_views(
            &mut doc_inc, &def_refs, &mut answers, &edits, MaintainMode::Incremental,
        ).expect("valid stream");
        for ((view, delta), ans) in views.iter_mut().zip(&deltas).zip(&answers) {
            view.apply_delta(&doc_inc, ans, delta);
        }
        for (view, def) in views.iter().zip(&defs) {
            let fresh = MaterializedView::materialize("fresh", def.clone(), &doc_inc);
            prop_assert_eq!(view.nodes(), fresh.nodes());
            let keys = |mv: &MaterializedView| {
                let mut ks: Vec<String> =
                    mv.trees().iter().map(|t| t.canonical_key()).collect();
                ks.sort();
                ks
            };
            prop_assert_eq!(
                keys(view), keys(&fresh),
                "materialized copies diverged for view {}", def
            );
        }
    }
}

/// Engine-level: after edits, every cached answer equals direct evaluation,
/// and routes whose participants were untouched survive — counter-asserted
/// via plan-memo hits and the flat coNP counter.
#[test]
fn surviving_routes_answer_byte_identically_after_edits() {
    let doc = site_doc(10, 10, 7);
    let cache = ShardedViewCache::new(doc.clone());
    for (name, def) in site_catalog().views {
        cache.add_view(name, def);
    }
    let queries: Vec<(&str, Pattern)> = site_catalog().queries;
    for (_, q) in &queries {
        let _ = cache.answer(q); // warm every route
    }

    // Apply the stream in batches. After every batch each query must stay
    // byte-identical to direct evaluation, and at least one route must
    // survive each batch (the `categories` query routes `Direct`, and
    // `Direct` routes survive document edits outright).
    let edits = edit_stream(&doc, 120, EditMix::new(1, 0, 0), 0xA11);
    for batch in edit_batches(&edits, 6) {
        let hits_before = cache.stats().plan_memo_hits;
        cache.apply_edits(&batch).expect("valid batch");
        for (name, q) in &queries {
            let ans = cache.answer(q);
            assert_eq!(ans.nodes, cache.answer_direct(q), "query {name} diverged after edits");
        }
        let hits_after = cache.stats().plan_memo_hits;
        assert!(
            hits_after > hits_before,
            "every batch must leave at least one route serving from the memo"
        );
    }
    let s = cache.stats();
    assert_eq!(s.updates_applied, 120);
    assert!(s.views_refreshed_incrementally > 0, "some views must have been patched");
    assert!(
        s.plan_memo_invalidations > 0,
        "an insert-heavy stream over the hot views must drop some routes"
    );

    // Once the stream has quiesced, every route is memoized again: a full
    // query pass performs zero planner misses and zero fresh coNP work.
    for (_, q) in &queries {
        let _ = cache.answer(q);
    }
    let misses = cache.stats().plan_memo_misses;
    let runs_before = cache.stats().oracle_canonical_runs;
    for (name, q) in &queries {
        let ans = cache.answer(q);
        assert_eq!(ans.nodes, cache.answer_direct(q), "query {name} wrong after quiesce");
    }
    let after = cache.stats();
    assert_eq!(after.plan_memo_misses, misses, "quiesced traffic must be all memo hits");
    assert_eq!(
        after.oracle_canonical_runs, runs_before,
        "surviving and re-planned routes alike serve with zero canonical-model calls"
    );
}

/// Route-level invalidation is participant-aware: an edit that changes one
/// view's answers drops that view's routes and keeps the others.
#[test]
fn participant_aware_invalidation_keeps_unrelated_routes() {
    let cache = ShardedViewCache::new(site_doc(6, 6, 7));
    cache.add_view("items", parse_xpath("site/region/item").unwrap());
    cache.add_view("categories", parse_xpath("site/categories/category").unwrap());
    let via_items = parse_xpath("site/region/item/name").unwrap();
    let via_cats = parse_xpath("site/categories/category/name").unwrap();
    assert!(matches!(cache.answer(&via_items).route, Route::ViaView { .. }));
    assert!(matches!(cache.answer(&via_cats).route, Route::ViaView { .. }));
    let invalidations = cache.stats().plan_memo_invalidations;

    // Graft a new item: only the `items` view changes.
    let snap = cache.document();
    let region = snap
        .children(snap.root())
        .iter()
        .copied()
        .find(|&n| snap.label(n).name() == "region")
        .expect("site has regions");
    let graft = {
        let mut t = xpath_views::model::Tree::new(xpath_views::model::Label::new("item"));
        let root = t.root();
        t.add_child(root, xpath_views::model::Label::new("name"));
        t
    };
    let report =
        cache.apply_edits(&[Edit::InsertSubtree { parent: region, subtree: graft }]).unwrap();
    assert_eq!(report.views_changed, 1);
    assert_eq!(report.routes_dropped, 1, "only the items route depends on the changed view");
    assert_eq!(cache.stats().plan_memo_invalidations, invalidations + 1);

    // The categories route is still memoized; the items query replans and
    // picks up the grown answer set.
    let runs = cache.stats().oracle_canonical_runs;
    assert!(matches!(cache.answer(&via_cats).route, Route::ViaView { .. }));
    assert_eq!(cache.stats().oracle_canonical_runs, runs, "untouched route re-plans nothing");
    let ans = cache.answer(&via_items);
    assert_eq!(ans.nodes, cache.answer_direct(&via_items));
}

/// The single-threaded wrapper exposes the same update path.
#[test]
fn view_cache_wrapper_applies_edits() {
    let mut cache = ViewCache::new(site_doc(4, 4, 7));
    cache.add_view("items", parse_xpath("site/region/item").unwrap());
    let q = parse_xpath("site/region/item/name").unwrap();
    let before = cache.answer(&q).nodes.len();
    let region = {
        let doc = cache.document();
        doc.children(doc.root())
            .iter()
            .copied()
            .find(|&n| doc.label(n).name() == "region")
            .expect("site has regions")
    };
    let graft = {
        let mut t = xpath_views::model::Tree::new(xpath_views::model::Label::new("item"));
        let root = t.root();
        t.add_child(root, xpath_views::model::Label::new("name"));
        t
    };
    let report = cache
        .apply_edits(&[Edit::InsertSubtree { parent: region, subtree: graft }])
        .expect("valid edit");
    assert_eq!(report.edits_applied, 1);
    assert_eq!(cache.doc_version(), 1);
    assert_eq!(cache.answer(&q).nodes.len(), before + 1);
    assert_eq!(cache.answer(&q).nodes, cache.answer_direct(&q));
    assert_eq!(
        cache.views()[0].nodes().len(),
        cache.answer_direct(&parse_xpath("site/region/item").unwrap()).len()
    );
}

/// The parallel region fan-out is schedule-invariant: an 8-worker cache
/// refreshing a bursty clustered stream stays **byte-identical** to a
/// serial cache — per batch, every probe answer (nodes) and every
/// surviving route — because disjoint merged regions are combined in
/// `(view, region root)` order regardless of worker interleaving.
#[test]
fn parallel_region_refresh_matches_serial() {
    let doc = site_doc(10, 10, 7);
    let catalog = site_catalog();
    let probes: Vec<Pattern> = catalog_zipf_stream(&catalog, 24, 0xFA17).into_iter().collect();

    let serial = ShardedViewCache::new(doc.clone());
    serial.set_parallel_regions(false);
    let parallel = ShardedViewCache::new(doc.clone());
    parallel.set_region_workers(8);
    assert!(parallel.parallel_regions(), "fan-out is on by default");
    assert!(parallel.coalesce_enabled(), "coalescing is on by default");
    for (name, def) in catalog.views.iter() {
        serial.add_view(name, def.clone());
        parallel.add_view(name, def.clone());
        let _ = (serial.answer(def), parallel.answer(def));
    }
    for q in &probes {
        let _ = (serial.answer(q), parallel.answer(q)); // warm both memos
    }

    // A bursty clustered stream — many edits under few hot subtrees — is
    // exactly the regime that produces multi-region batches to fan out.
    let edits =
        edit_stream_clustered(&doc, 160, EditMix::default(), EditLocality::new(4, 90), 0x5EED);
    for batch in edit_batches(&edits, 8) {
        let rs = serial.apply_edits(&batch).expect("valid batch");
        let rp = parallel.apply_edits(&batch).expect("valid batch");
        assert_eq!(rs.views_refreshed, rp.views_refreshed);
        assert_eq!(rs.views_changed, rp.views_changed);
        assert_eq!(rs.routes_dropped, rp.routes_dropped);
        for q in &probes {
            let a = serial.answer(q);
            let b = parallel.answer(q);
            assert_eq!(a.nodes, b.nodes, "parallel answers diverged on {q}");
            assert_eq!(
                format!("{:?}", a.route),
                format!("{:?}", b.route),
                "surviving routes diverged on {q}"
            );
            assert_eq!(a.nodes, serial.answer_direct(q), "serial cache wrong on {q}");
        }
    }
    // The fan-out actually ran multi-region batches at the pinned width.
    let stats = parallel.stats().maintain;
    assert!(stats.parallel_tasks > 0, "bursty stream produced no fanned-out batches");
    assert!(stats.parallel_width > 1, "pinned 8 workers, fan-out never exceeded width 1");
    assert_eq!(
        stats.regions_scanned,
        serial.stats().maintain.regions_scanned,
        "both caches must scan the same merged regions"
    );
}

/// 8-thread stress: one updater applies edit batches while 7 readers
/// answer concurrently. Every observed answer must equal the answer of
/// *some* serial-replay version (snapshot consistency — a torn
/// document/view pairing would produce an answer matching no version), and
/// the final state must match the last version exactly.
#[test]
fn concurrent_updates_and_answers_match_serial_replay() {
    const READERS: usize = 7;
    let doc = site_doc(8, 8, 7);
    let catalog = site_catalog();
    let probes: Vec<Pattern> =
        catalog_zipf_stream(&catalog, 24, 0xF00D).into_iter().collect::<Vec<_>>();
    let edits = edit_stream(&doc, 80, EditMix::default(), 0xBEEF);
    let batches = edit_batches(&edits, 8);

    // Serial replay: per probe query, the answer set at every version.
    let mut replay = ViewCache::new(doc.clone());
    for (name, def) in catalog.views.iter() {
        replay.add_view(name, def.clone());
    }
    let mut versions: Vec<Vec<Vec<NodeId>>> = Vec::with_capacity(batches.len() + 1);
    versions.push(probes.iter().map(|q| replay.answer_direct(q)).collect());
    for batch in &batches {
        replay.apply_edits(batch).expect("valid batch");
        versions.push(probes.iter().map(|q| replay.answer_direct(q)).collect());
    }
    let admissible: Vec<HashSet<Vec<NodeId>>> =
        (0..probes.len()).map(|qi| versions.iter().map(|v| v[qi].clone()).collect()).collect();

    // Concurrent run.
    let cache = Arc::new(ShardedViewCache::new(doc).with_shards(8));
    for (name, def) in catalog.views.iter() {
        cache.add_view(name, def.clone());
    }
    std::thread::scope(|scope| {
        let updater = {
            let cache = Arc::clone(&cache);
            let batches = batches.clone();
            scope.spawn(move || {
                for batch in &batches {
                    cache.apply_edits(batch).expect("valid batch");
                }
            })
        };
        for r in 0..READERS {
            let cache = Arc::clone(&cache);
            let probes = &probes;
            let admissible = &admissible;
            scope.spawn(move || {
                for round in 0..12 {
                    for (qi, q) in probes.iter().enumerate() {
                        let ans = cache.answer(q);
                        assert!(
                            admissible[qi].contains(&ans.nodes),
                            "reader {r} round {round}: answer for {q} matches no \
                             serial-replay version (torn snapshot?)"
                        );
                    }
                }
            });
        }
        updater.join().expect("updater thread");
    });

    // Quiesced: the final state equals the last serial version.
    let last = versions.last().expect("at least one version");
    for (qi, q) in probes.iter().enumerate() {
        assert_eq!(&cache.answer(q).nodes, &last[qi], "final state diverged for {q}");
        assert_eq!(cache.answer(q).nodes, cache.answer_direct(q));
    }
    assert_eq!(cache.doc_version(), batches.len() as u64);
}
