//! End-to-end properties of the observability layer: trace spans flowing
//! through the async serving stack, the `StatsV2` wire round trip, the
//! full-family text exposition against a live socket server, and the
//! no-double-count / no-orphan regression over the snapshot's names.

use std::sync::Arc;

use xpath_views::engine::{metrics_from_wire, wire_metrics, AsyncCacheServer, ShardedViewCache};
use xpath_views::net::WireClient;
use xpath_views::obs::{
    drain_trace_events, set_trace_sampling, Phase, SampleValue, DEFAULT_TRACE_SAMPLING,
};
use xpath_views::prelude::*;
use xpath_views::workload::{catalog_zipf_stream, site_doc, site_intersect_catalog};

fn serving_cache() -> Arc<ShardedViewCache> {
    let catalog = site_intersect_catalog();
    let cache = ShardedViewCache::new(site_doc(8, 8, 5));
    for (name, def) in catalog.views.iter() {
        cache.add_view(name, def.clone());
    }
    Arc::new(cache)
}

/// Tracing state is process-global; serialize the tests that touch it.
fn trace_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Every query served through the async executor with always-on sampling
/// produces one `net.query` trace event whose phases appear in pipeline
/// order: admission before plan before eval before encode before flush.
#[test]
fn spans_record_pipeline_phases_in_order_under_the_executor() {
    let _guard = trace_lock();
    set_trace_sampling(1);
    let _ = drain_trace_events();

    let cache = serving_cache();
    let server = AsyncCacheServer::start(Arc::clone(&cache), 2);
    let addr = server.listen_tcp("127.0.0.1:0").expect("listen");
    let mut client = WireClient::connect_tcp(&addr.to_string()).expect("connect");
    let queries = vec![
        parse_xpath("site/region/item").expect("parses"),
        parse_xpath("site//name").expect("parses"),
    ];
    for _ in 0..4 {
        let answers = client.answer_batch("traced", &queries).expect("answers");
        assert_eq!(answers.len(), queries.len());
    }
    client.goodbye().expect("clean close");
    server.shutdown();
    set_trace_sampling(DEFAULT_TRACE_SAMPLING);

    let events = drain_trace_events();
    let net_queries: Vec<_> = events.iter().filter(|e| e.kind == "net.query").collect();
    assert!(net_queries.len() >= 4, "expected ≥4 net.query events, got {}", net_queries.len());
    let order = [Phase::Admission, Phase::Plan, Phase::Eval, Phase::Encode, Phase::Flush];
    for event in &net_queries {
        let phases: Vec<Phase> = event.phases.iter().map(|&(p, _)| p).collect();
        let expected: Vec<Phase> = order.iter().copied().filter(|p| phases.contains(p)).collect();
        assert_eq!(phases, expected, "phases out of pipeline order: {phases:?}");
        assert!(
            phases.contains(&Phase::Eval) && phases.contains(&Phase::Flush),
            "span missing eval/flush: {phases:?}"
        );
    }
}

/// A server snapshot survives the wire: StatsV2 encode → decode →
/// rebuild renders the identical text exposition.
#[test]
fn stats_v2_round_trips_to_identical_text() {
    let cache = serving_cache();
    let stream = catalog_zipf_stream(&site_intersect_catalog(), 60, 0x0B5);
    let _ = cache.answer_batch(&stream);
    let server = AsyncCacheServer::start(Arc::clone(&cache), 2);
    let _ = server.answer_batch("acme", stream[..8].to_vec());
    let snap = server.metrics_snapshot();
    let rebuilt = metrics_from_wire(&wire_metrics(&snap));
    assert_eq!(rebuilt.to_text(), snap.to_text());
    assert!(!snap.to_text().is_empty());
}

/// `xpv stats` end to end: a live unix-socket server answers a StatsV2
/// request whose text exposition contains counters from all five metric
/// families — oracle, cache, tenant, maintain, and net.
#[test]
fn wire_exposition_contains_every_family() {
    let cache = serving_cache();
    let server = AsyncCacheServer::start(Arc::clone(&cache), 2);
    let path = std::env::temp_dir().join(format!("xpv-obs-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    server.listen_unix(&path).expect("listen");

    let mut client = WireClient::connect_unix(&path).expect("connect");
    let queries = vec![parse_xpath("site/region/item").expect("parses")];
    let _ = client.answer_batch("family-test", &queries).expect("answers");
    let doc = cache.document();
    let region = doc.children(doc.root())[0];
    let graft = TreeBuilder::root("item", |b| {
        b.leaf("name");
    });
    client
        .apply_edits("family-test", &[Edit::InsertSubtree { parent: region, subtree: graft }])
        .expect("io")
        .expect("edit accepted");

    let text = metrics_from_wire(&client.metrics().expect("metrics")).to_text();
    for family in
        ["xpv_oracle_", "xpv_cache_", "xpv_tenant_", "xpv_maintain_", "xpv_net_", "xpv_server_"]
    {
        assert!(text.contains(family), "family {family} missing from exposition:\n{text}");
    }
    assert!(
        text.contains("xpv_tenant_queries{tenant=\"family-test\"} 1"),
        "tenant label missing:\n{text}"
    );
    assert!(text.contains("xpv_net_frames_in"), "net counters missing:\n{text}");
    assert!(text.contains("xpv_maintain_edits_applied 1"), "maintain family stale:\n{text}");
    client.goodbye().expect("clean close");
    server.shutdown();
}

use xpath_views::maintain::Edit;

/// The Display-drift regression: no metric name appears twice in the
/// snapshot (nothing double-counted), every `visit` name of the four
/// legacy stats structs reaches the exposition under its family prefix
/// (nothing orphaned), and the oracle mirrors in `CacheStats` are the
/// one deliberate exception (skipped, not renamed).
#[test]
fn snapshot_names_are_unique_and_cover_every_visit_name() {
    let cache = serving_cache();
    let stream = catalog_zipf_stream(&site_intersect_catalog(), 40, 0x21F);
    let server = AsyncCacheServer::start(Arc::clone(&cache), 2);
    let _ = server.answer_batch("uniq", stream.clone());
    let snap = server.metrics_snapshot();

    // (name, labels) pairs are unique — one name, one source of truth.
    let mut seen = std::collections::HashSet::new();
    for s in &snap.samples {
        let key = format!("{}{:?}", s.name, s.labels);
        assert!(seen.insert(key.clone()), "metric emitted twice: {key}");
    }
    let names: std::collections::HashSet<&str> =
        snap.samples.iter().map(|s| s.name.as_str()).collect();

    // Every canonical visit name surfaces under its family prefix…
    cache.session().oracle().stats().visit(&mut |name, _| {
        assert!(names.contains(format!("xpv_oracle_{name}").as_str()), "orphaned oracle_{name}");
    });
    let stats = cache.stats();
    stats.visit(&mut |name, _| {
        if name.starts_with("oracle_") {
            // …except the CacheStats oracle mirrors, which are skipped so
            // the oracle numbers appear exactly once (under xpv_oracle_*).
            assert!(
                !names.contains(format!("xpv_cache_{name}").as_str()),
                "oracle mirror double-counted as xpv_cache_{name}"
            );
        } else {
            assert!(names.contains(format!("xpv_cache_{name}").as_str()), "orphaned cache {name}");
        }
    });
    stats.maintain.visit(&mut |name, _| {
        assert!(
            names.contains(format!("xpv_maintain_{name}").as_str()),
            "orphaned maintain {name}"
        );
    });
    let (_, tenant_stats) = server.tenants().pop().expect("one tenant");
    tenant_stats.visit(&mut |name, _| {
        assert!(names.contains(format!("xpv_tenant_{name}").as_str()), "orphaned tenant {name}");
    });

    // Histogram families and counter families never collide.
    for s in &snap.samples {
        match s.value {
            SampleValue::Histogram(_) => {
                assert!(s.name.starts_with("xpv_phase_"), "histogram outside family: {}", s.name)
            }
            _ => assert!(!s.name.starts_with("xpv_phase_"), "scalar in phase family: {}", s.name),
        }
    }
}
