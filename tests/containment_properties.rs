//! Deeper properties of the containment engine: bound robustness, the
//! hom-gap family, canonical-model counter-examples, and the figures'
//! containment facts under both deciders.

mod common;

use xpath_views::prelude::*;
use xpath_views::semantics::{
    contained_with, expansion_bound, tau, CanonicalModels, ContainmentOptions,
};
use xpath_views::workload::{hom_gap_instance, Fragment};

use common::{pattern_from_seed, weaken};

#[test]
fn expansion_bound_is_robust_on_random_pairs() {
    // Raising the per-edge expansion bound must never change a verdict.
    for seed in 0..24u64 {
        let p = pattern_from_seed(seed * 3 + 1, Fragment::Full);
        let q = if seed % 2 == 0 {
            weaken(&p, seed)
        } else {
            pattern_from_seed(seed * 5 + 2, Fragment::Full)
        };
        let base = ContainmentOptions { hom_fast_path: false, bound_override: None };
        let padded = ContainmentOptions {
            hom_fast_path: false,
            bound_override: Some(expansion_bound(&q) + 2),
        };
        assert_eq!(
            contained_with(&p, &q, &base).holds,
            contained_with(&p, &q, &padded).holds,
            "bound padding changed the verdict for {p} vs {q}"
        );
    }
}

#[test]
fn hom_fast_path_agrees_with_canonical_loop() {
    for seed in 0..24u64 {
        let p = pattern_from_seed(seed * 7 + 1, Fragment::Full);
        let q = weaken(&p, seed ^ 0xABCD);
        let with_hom = ContainmentOptions { hom_fast_path: true, bound_override: None };
        let without = ContainmentOptions { hom_fast_path: false, bound_override: None };
        assert_eq!(
            contained_with(&p, &q, &with_hom).holds,
            contained_with(&p, &q, &without).holds,
            "fast path changed the verdict for {p} vs {q}"
        );
    }
}

#[test]
fn hom_gap_family_scales() {
    for n in 1..=4 {
        let (p1, p2) = hom_gap_instance(n);
        let out = contained_with(&p1, &p2, &ContainmentOptions::default());
        assert!(out.holds, "gap containment must hold at n={n}");
        assert!(!out.via_homomorphism, "gap must not be hom-witnessed at n={n}");
        assert!(out.models_checked >= 1);
    }
}

#[test]
fn counter_models_falsify_on_real_documents() {
    // When containment fails, the returned counter-model is a concrete
    // document witnessing P1(t) ⊄ P2(t).
    for seed in 0..24u64 {
        let p1 = pattern_from_seed(seed * 9 + 4, Fragment::Full);
        let p2 = pattern_from_seed(seed * 11 + 6, Fragment::Full);
        let out = contained_with(&p1, &p2, &ContainmentOptions::default());
        if let Some(cm) = &out.counter_model {
            assert!(!out.holds);
            assert!(evaluate(&p1, &cm.tree).contains(&cm.output));
            assert!(!evaluate(&p2, &cm.tree).contains(&cm.output));
        }
    }
}

#[test]
fn tau_is_minimal_canonical_model() {
    for seed in 0..20u64 {
        let p = pattern_from_seed(seed * 13 + 2, Fragment::Full);
        let m = tau(&p);
        // τ(P) has exactly |P| nodes (descendant edges become single edges).
        assert_eq!(m.tree.len(), p.len());
        // It is the smallest canonical model in the bounded enumeration.
        let min = CanonicalModels::new(&p, 2)
            .map(|cm| cm.tree.len())
            .min()
            .expect("nonempty enumeration");
        assert_eq!(min, m.tree.len());
        // And P answers its canonical output on it.
        assert!(evaluate(&p, &m.tree).contains(&m.output));
    }
}

#[test]
fn equivalence_is_an_equivalence_relation_on_samples() {
    let a = parse_xpath("a[b][b/c]/d").unwrap();
    let b = parse_xpath("a[b/c]/d").unwrap();
    let c = parse_xpath("a[b/c][b]/d").unwrap();
    assert!(equivalent(&a, &a));
    assert!(equivalent(&a, &b) && equivalent(&b, &a));
    assert!(equivalent(&b, &c));
    assert!(equivalent(&a, &c), "transitivity");
}

#[test]
fn star_descendant_absorption_identities() {
    // The identities behind Figure 2 and Theorem 4.10's relaxation argument.
    let id = |a: &str, b: &str| equivalent(&parse_xpath(a).unwrap(), &parse_xpath(b).unwrap());
    assert!(id("a/*//e", "a//*/e"));
    assert!(id("a//*//e", "a//*//e"));
    // a/*//*/e vs a//*/*/e: both place e at depth >= 3 (child+desc+child vs
    // desc+child+child) — genuinely equivalent.
    assert!(id("a/*//*/e", "a//*/*/e"));
    // But child chains do not absorb: a/*/e pins depth exactly.
    assert!(!id("a/*/e", "a//*/e"));
}
