//! End-to-end tests of the async serving front-end: idle connections
//! against a small worker pool, wire-protocol answer fidelity, edit
//! batches over the wire with version checks, credit-window enforcement,
//! and graceful drain under concurrent submitters — for both the
//! [`AsyncCacheServer`] and the legacy [`CacheServer`] wrapper.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use xpath_views::engine::{AsyncCacheServer, CacheServer, ShardedViewCache};
use xpath_views::net::{Response, WireClient};
use xpath_views::prelude::*;
use xpath_views::workload::{
    catalog_zipf_stream, edit_batches, edit_stream, run_socket_load, site_doc,
    site_intersect_catalog, EditMix,
};

fn serving_cache() -> Arc<ShardedViewCache> {
    let catalog = site_intersect_catalog();
    let cache = ShardedViewCache::new(site_doc(8, 8, 5));
    for (name, def) in catalog.views.iter() {
        cache.add_view(name, def.clone());
    }
    Arc::new(cache)
}

/// The acceptance scenario: ≥ 256 open **idle** connections against a
/// 4-worker server must not stop a Zipf query mix on 8 active connections
/// from completing, and every answer must be byte-identical to
/// [`ShardedViewCache::answer`] on the same cache. Under the old
/// thread-per-connection seam this would require 264 worker threads; here
/// the idle connections are suspended reactor tasks.
#[test]
fn idle_connections_do_not_pin_workers() {
    const IDLE: usize = 256;
    const ACTIVE: usize = 8;

    let cache = serving_cache();
    let server = AsyncCacheServer::start(Arc::clone(&cache), 4);
    let addr = server.listen_tcp("127.0.0.1:0").expect("listen").to_string();

    // Expected answers, computed through the serial `&self` serving path.
    let catalog = site_intersect_catalog();
    let expected: HashMap<String, Vec<NodeId>> =
        catalog.queries.iter().map(|(_, q)| (q.to_string(), cache.answer(q).nodes)).collect();

    // Park the idle herd (handshake completed, then silence).
    let idle: Vec<WireClient> =
        (0..IDLE).map(|_| WireClient::connect_tcp(&addr).expect("idle connect")).collect();
    // Connection tasks are spawned by the acceptor; give the reactor a
    // beat to accept the whole herd before asserting.
    for _ in 0..200 {
        if server.connections() >= IDLE {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(
        server.connections() >= IDLE,
        "herd not fully connected: {} of {IDLE}",
        server.connections()
    );

    // The active Zipf mix: 8 connections, pipelined batches, every answer
    // verified against the serial cache.
    let stream = catalog_zipf_stream(&catalog, 800, 0xA51C);
    let verified = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let per_conn = stream.len() / ACTIVE;
        for (i, chunk) in stream.chunks(per_conn).enumerate() {
            let addr = &addr;
            let expected = &expected;
            let verified = &verified;
            scope.spawn(move || {
                let mut client = WireClient::connect_tcp(addr).expect("active connect");
                let tenant = format!("active-{i}");
                for batch in chunk.chunks(5) {
                    let answers = client.answer_batch(&tenant, batch).expect("answers");
                    assert_eq!(answers.len(), batch.len());
                    for (q, a) in batch.iter().zip(&answers) {
                        let want = &expected[&q.to_string()];
                        assert_eq!(
                            &a.nodes, want,
                            "wire answer for {q} differs from ShardedViewCache::answer"
                        );
                        verified.fetch_add(1, Ordering::Relaxed);
                    }
                }
                client.goodbye().expect("clean close");
            });
        }
    });
    assert_eq!(verified.load(Ordering::Relaxed), stream.len());
    assert_eq!(server.workers(), 4, "the pool never grew");

    drop(idle);
    server.shutdown();
}

/// Edit batches over the wire must stay consistent with in-process
/// `apply_edits`: a reference cache receiving the identical batches
/// answers identically, and the acked `doc_version`s are exactly
/// `1, 2, 3, …` (version-checked replication).
#[test]
fn edit_batches_over_the_wire_stay_consistent() {
    let doc = site_doc(6, 6, 4);
    let catalog = site_intersect_catalog();
    let build = || {
        let cache = ShardedViewCache::new(doc.clone());
        for (name, def) in catalog.views.iter() {
            cache.add_view(name, def.clone());
        }
        Arc::new(cache)
    };
    let served = build();
    let reference = build();

    let server = AsyncCacheServer::start(Arc::clone(&served), 2);
    let path = std::env::temp_dir().join(format!("xpv-edit-wire-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    server.listen_unix(&path).expect("listen");
    let mut client = WireClient::connect_unix(&path).expect("connect");

    let probes: Vec<Pattern> = catalog.queries.iter().map(|(_, q)| q.clone()).take(6).collect();
    let edits = edit_stream(&doc, 60, EditMix::default(), 0xED17);
    for (i, batch) in edit_batches(&edits, 6).iter().enumerate() {
        let report =
            client.apply_edits("writer", batch).expect("transport ok").expect("batch applies");
        assert_eq!(report.doc_version, (i + 1) as u64, "acked versions must be sequential");
        assert_eq!(report.edits_applied as usize, batch.len());
        let ref_report = reference.apply_edits(batch).expect("reference applies");
        assert_eq!(ref_report.doc_version, report.doc_version);
        assert_eq!(ref_report.views_changed as u64, report.views_changed);

        for q in &probes {
            let wire = client.answer_batch("writer", std::slice::from_ref(q)).expect("answers");
            assert_eq!(
                wire[0].nodes,
                reference.answer(q).nodes,
                "post-edit wire answer diverged for {q} at version {}",
                report.doc_version
            );
        }
    }
    assert_eq!(served.doc_version(), 6);
    let stats = client.tenant_stats("writer").expect("io").expect("seen");
    assert_eq!(stats.updates_applied, 60);

    // An invalid edit (deleting the root) is rejected without breaking
    // the connection or bumping the version.
    let bad = [xpath_views::maintain::Edit::DeleteSubtree { node: served.document().root() }];
    let rejected = client.apply_edits("writer", &bad).expect("transport ok");
    assert!(rejected.is_err(), "deleting the root must be rejected");
    assert_eq!(served.doc_version(), 6, "failed batch must not bump the version");
    let probe = &probes[0];
    let wire = client.answer_batch("writer", std::slice::from_ref(probe)).expect("still serving");
    assert_eq!(wire[0].nodes, reference.answer(probe).nodes);

    client.goodbye().expect("clean close");
    server.shutdown();
}

/// The credit window is enforced mechanically: a server granting 2
/// credits serves a client pipelining 8-deep correctly (the load
/// generator clamps to the granted window; the server never reads more
/// than `window` unacknowledged frames).
#[test]
fn small_credit_window_still_serves_deep_pipelines() {
    let cache = serving_cache();
    let server = AsyncCacheServer::start(Arc::clone(&cache), 2);
    server.set_conn_window(2);
    let addr = server.listen_tcp("127.0.0.1:0").expect("listen").to_string();

    let probe = WireClient::connect_tcp(&addr).expect("connect");
    assert_eq!(probe.window(), 2, "handshake advertises the configured window");
    drop(probe);

    let catalog = site_intersect_catalog();
    let stream = catalog_zipf_stream(&catalog, 300, 0x77);
    let report = run_socket_load(
        || WireClient::connect_tcp(&addr),
        3,
        &stream,
        4,
        8, // deeper than the window: clamped to 2 by the client
        "windowed-",
    )
    .expect("load completes");
    assert_eq!(report.answered, stream.len());
    server.shutdown();
}

/// Graceful drain, legacy wrapper: with submitter threads racing a
/// shutdown, every ticket either resolves to correct answers or reports a
/// rejection — nothing hangs, nothing is silently dropped.
#[test]
fn graceful_drain_serves_or_rejects_legacy_wrapper() {
    let cache = serving_cache();
    let server = Arc::new(CacheServer::start_bounded(Arc::clone(&cache), 2, 64));
    let catalog = site_intersect_catalog();
    let q = catalog.queries[0].1.clone();
    let want = cache.answer(&q).nodes;

    let served = AtomicUsize::new(0);
    let rejected = AtomicUsize::new(0);
    const PER_THREAD: usize = 40;
    const THREADS: usize = 4;
    // All submitters plus the draining main thread: phase 2 starts only
    // after the drain has completed, so its rejections are deterministic.
    let drained = std::sync::Barrier::new(THREADS + 1);
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let server = Arc::clone(&server);
            let q = q.clone();
            let (served, rejected, want, drained) = (&served, &rejected, &want, &drained);
            scope.spawn(move || {
                // Phase 1: race the drain — every ticket must resolve
                // either way, with exact answers when served.
                for _ in 0..PER_THREAD {
                    match server.submit("racer", vec![q.clone()]).wait_result() {
                        Ok(answers) => {
                            assert_eq!(answers[0].nodes, *want, "drained batch must be exact");
                            served.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                // Phase 2: after the drain, submissions must reject.
                drained.wait();
                let err = server
                    .submit("racer", vec![q.clone()])
                    .wait_result()
                    .expect_err("post-drain submissions are rejected");
                assert!(err.reason.contains("draining"), "got: {}", err.reason);
            });
        }
        // Let some batches through, then drain mid-traffic.
        while cache.stats().queries < 20 {
            std::thread::yield_now();
        }
        server.as_async().shutdown();
        drained.wait();
    });
    let (s, r) = (served.load(Ordering::Relaxed), rejected.load(Ordering::Relaxed));
    assert_eq!(s + r, THREADS * PER_THREAD, "every submission is accounted");
    assert!(s > 0, "some batches were served before the drain");
}

/// Graceful drain, async server: local submitters race the shutdown while
/// a wire connection is mid-conversation. Served batches are exact,
/// post-drain submissions reject, and the wire client observes an
/// explicit end (`ServerBye` ⇒ error on the next receive), never a hang.
#[test]
fn graceful_drain_async_server_with_concurrent_submitters() {
    let cache = serving_cache();
    let server = Arc::new(AsyncCacheServer::start(Arc::clone(&cache), 2));
    let addr = server.listen_tcp("127.0.0.1:0").expect("listen").to_string();
    let catalog = site_intersect_catalog();
    let q = catalog.queries[1].1.clone();
    let want = cache.answer(&q).nodes;

    let served = AtomicUsize::new(0);
    let rejected = AtomicUsize::new(0);
    let wire_served = Arc::new(AtomicUsize::new(0));
    const PER_THREAD: usize = 40;
    const THREADS: usize = 3;
    let drained = std::sync::Barrier::new(THREADS + 1);
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let server = Arc::clone(&server);
            let q = q.clone();
            let (served, rejected, want, drained) = (&served, &rejected, &want, &drained);
            scope.spawn(move || {
                for _ in 0..PER_THREAD {
                    match server.submit("racer", vec![q.clone()]).wait_result() {
                        Ok(answers) => {
                            assert_eq!(answers[0].nodes, *want);
                            served.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                // After the drain completes, submissions must reject.
                drained.wait();
                server
                    .submit("racer", vec![q.clone()])
                    .wait_result()
                    .expect_err("post-drain submissions are rejected");
            });
        }
        // A wire client keeps a conversation going through the drain.
        let wire_q = q.clone();
        let addr = addr.clone();
        let want_wire = want.clone();
        let wire_count = Arc::clone(&wire_served);
        let wire = scope.spawn(move || {
            let mut client = WireClient::connect_tcp(&addr).expect("connect");
            // A send error means the server closed the socket: explicit end.
            while let Ok(id) = client.send_queries("wire", std::slice::from_ref(&wire_q)) {
                match client.recv_for(id) {
                    Ok(Response::Answers { answers, .. }) => {
                        assert_eq!(answers[0].nodes, want_wire);
                        wire_count.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(Response::Rejected { .. }) | Err(_) => break,
                    Ok(other) => panic!("unexpected response {other:?}"),
                }
            }
        });
        // Drain only after both the local and the wire path have
        // demonstrably served traffic.
        while cache.stats().queries < 20 || wire_served.load(Ordering::Relaxed) == 0 {
            std::thread::yield_now();
        }
        server.shutdown();
        drained.wait();
        wire.join().expect("wire thread ends, never hangs");
    });
    let (s, r) = (served.load(Ordering::Relaxed), rejected.load(Ordering::Relaxed));
    assert_eq!(s + r, THREADS * PER_THREAD);
    assert!(s > 0, "some local batches served");
    assert!(wire_served.load(Ordering::Relaxed) > 0, "the wire client served traffic");
}
