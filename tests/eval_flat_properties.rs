//! Equivalence of the word-parallel flat evaluation core with the
//! reference `Tree` matcher.
//!
//! The flat path ([`FlatTree`] + `xpv_semantics::flat`) is a pure
//! performance layer: its contract is **bit-identical sub-match tables and
//! byte-identical answers** against the reference dynamic program, on every
//! document — including post-edit documents whose arenas carry tombstoned
//! slots. These properties pin that contract over seeded random trees,
//! patterns, and edit streams, plus an 8-thread stress interleaving edits
//! with fused batch answering (the copy-on-write snapshot contract: every
//! batch sees one frozen, internally consistent document version).

use std::sync::Arc;

use xpath_views::engine::ShardedViewCache;
use xpath_views::maintain::apply_edits as apply_tree_edits;
use xpath_views::model::{FlatTree, Tree};
use xpath_views::prelude::*;
use xpath_views::semantics::{
    evaluate_anchored, evaluate_anchored_flat, evaluate_batch_flat, evaluate_flat, sub_match_sets,
    sub_match_sets_flat, BatchEval,
};
use xpath_views::workload::{edit_batches, edit_stream, EditMix};

/// A seeded random document.
fn tree_from_seed(seed: u64, size: usize) -> Tree {
    let cfg = TreeGenConfig { size, max_depth: 8, max_children: 5, label_count: 5 };
    TreeGen::new(cfg, seed).tree()
}

/// A batch of seeded random patterns over the shared label universe.
fn patterns_from_seed(seed: u64, count: usize) -> Vec<Pattern> {
    let cfg = PatternGenConfig { depth: (1, 4), label_count: 5, ..PatternGenConfig::default() };
    let mut gen = PatternGen::new(cfg, seed);
    (0..count).map(|_| gen.pattern()).collect()
}

/// Applies a seeded edit stream in place, leaving tombstoned arena slots
/// behind (deletes detach whole subtrees without compacting).
fn edit_in_place(doc: &mut Tree, edits: usize, seed: u64) {
    let stream = edit_stream(doc, edits, EditMix::new(2, 2, 1), seed);
    apply_tree_edits(doc, &stream).expect("generated edits apply");
}

/// Asserts every flat path agrees with the reference on one document.
fn assert_flat_matches_reference(doc: &Tree, queries: &[Pattern]) {
    let ft = FlatTree::freeze(doc);
    assert_eq!(ft.len(), doc.len(), "freeze keeps exactly the live nodes");
    for q in queries {
        // Bit-identical sub-match tables, unpinned and pinned.
        let reference = sub_match_sets(q, doc, None);
        assert_eq!(sub_match_sets_flat(q, &ft, None), reference, "tables differ for {q}");
        let pin = (q.output(), doc.root());
        assert_eq!(
            sub_match_sets_flat(q, &ft, Some(pin)),
            sub_match_sets(q, doc, Some(pin)),
            "pinned tables differ for {q}"
        );
        // Byte-identical answers, free and anchored.
        let want = evaluate(q, doc);
        assert_eq!(evaluate_flat(q, &ft), want, "answers differ for {q}");
        let anchors: Vec<NodeId> = doc.node_ids().step_by(3).collect();
        assert_eq!(
            evaluate_anchored_flat(q, &ft, &anchors),
            evaluate_anchored(q, doc, &anchors),
            "anchored answers differ for {q}"
        );
    }
}

#[test]
fn flat_matcher_matches_reference_on_random_documents() {
    for seed in 0..40u64 {
        let doc = tree_from_seed(seed, 20 + (seed as usize % 60));
        let queries = patterns_from_seed(seed ^ 0xABCD, 6);
        assert_flat_matches_reference(&doc, &queries);
    }
}

#[test]
fn flat_matcher_matches_reference_on_tombstoned_documents() {
    for seed in 0..30u64 {
        let mut doc = tree_from_seed(seed, 50);
        edit_in_place(&mut doc, 20, seed ^ 0xED17);
        assert!(doc.arena_len() >= doc.len(), "edits leave tombstoned slots behind");
        let queries = patterns_from_seed(seed ^ 0xF00D, 6);
        assert_flat_matches_reference(&doc, &queries);
    }
}

#[test]
fn fused_batch_evaluation_matches_per_query() {
    for seed in 0..20u64 {
        let mut doc = tree_from_seed(seed, 60);
        if seed % 2 == 1 {
            edit_in_place(&mut doc, 15, seed ^ 0xBEEF);
        }
        let ft = FlatTree::freeze(&doc);
        // Duplicates in the batch exercise the shared sub-match tables.
        let mut queries = patterns_from_seed(seed ^ 0x1234, 5);
        queries.extend(queries.clone());
        let per_query: Vec<Vec<NodeId>> = queries.iter().map(|q| evaluate(q, &doc)).collect();

        let mut fused = BatchEval::new(&ft);
        let batched: Vec<Vec<NodeId>> = queries.iter().map(|q| fused.evaluate(q)).collect();
        assert!(fused.shared_hits() >= queries.len() as u64 / 2, "duplicates must share tables");
        assert_eq!(batched, per_query);

        // Every ablation (no scratch reuse, no table sharing) and the
        // convenience entry point agree too.
        for (reuse, share) in [(false, true), (true, false), (false, false)] {
            let mut b = BatchEval::with_options(&ft, reuse, share);
            let got: Vec<Vec<NodeId>> = queries.iter().map(|q| b.evaluate(q)).collect();
            assert_eq!(got, per_query, "ablation (reuse={reuse}, share={share}) diverged");
        }
        let refs: Vec<&Pattern> = queries.iter().collect();
        assert_eq!(evaluate_batch_flat(&ft, &refs), per_query);
    }
}

/// The masked flat region evaluator agrees with the `Tree`-path
/// `region_answers` oracle on **tombstoned post-edit documents**: for
/// seeded random docs run through an edit stream, every (pattern, live
/// region root) pair yields the same fresh answers and the same region
/// mask from both paths.
#[test]
fn flat_region_evaluation_matches_tree_oracle() {
    use xpath_views::maintain::{region_answers, SpineInfo, SubMatcher};
    use xpath_views::semantics::region_answers_flat;

    for seed in 0..25u64 {
        let mut doc = tree_from_seed(seed, 45);
        edit_in_place(&mut doc, 18, seed ^ 0x9A5);
        let ft = FlatTree::freeze(&doc);
        let queries = patterns_from_seed(seed ^ 0xCAFE, 5);
        for q in &queries {
            let info = SpineInfo::new(q);
            if !info.trackable() {
                continue;
            }
            let mut m = SubMatcher::new(q, &doc);
            // Every live node doubles as a region root — including the
            // document root (whole-tree region) and deep leaves.
            for root in doc.node_ids().step_by(2) {
                let (want_nodes, want_mask) = region_answers(&info, &doc, root, &mut m);
                let (got_nodes, got_mask) = region_answers_flat(q, &ft, root);
                assert_eq!(got_nodes, want_nodes, "region answers differ for {q} at {root:?}");
                assert_eq!(
                    got_mask.iter().collect::<Vec<_>>(),
                    want_mask.iter().collect::<Vec<_>>(),
                    "region masks differ for {q} at {root:?}"
                );
                // Both must equal the global answer restricted to the
                // region — the defining property of a region scan.
                let restricted: Vec<NodeId> = evaluate(q, &doc)
                    .into_iter()
                    .filter(|n| {
                        let mut v = Some(*n);
                        while let Some(x) = v {
                            if x == root {
                                return true;
                            }
                            v = doc.parent(x);
                        }
                        false
                    })
                    .collect();
                assert_eq!(got_nodes, restricted, "region scan lost answers for {q}");
            }
        }
    }
}

/// 8 writer/reader threads interleaving `apply_edits` with fused batch
/// answering: every answer must equal direct evaluation on *some* frozen
/// document version — verified here through the engine's own consistency
/// check (each batch runs against one snapshot) plus a final quiescent
/// comparison against the reference matcher.
#[test]
fn concurrent_edits_and_fused_batches_stay_consistent() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 6;

    let doc = tree_from_seed(0x5EED, 80);
    let edits = edit_stream(&doc, 48, EditMix::new(2, 1, 1), 0xE017);
    let batches = edit_batches(&edits, THREADS * ROUNDS / 2);
    let queries = patterns_from_seed(0x77, 8);

    let cache = Arc::new(ShardedViewCache::new(doc).with_shards(4));
    std::thread::scope(|scope| {
        // Writers: half the threads apply disjoint slices of the edit
        // stream in order (each slice is internally valid because the
        // stream was generated against the evolving document).
        for w in 0..THREADS / 2 {
            let cache = Arc::clone(&cache);
            let slices: Vec<_> = batches.iter().skip(w).step_by(THREADS / 2).cloned().collect();
            scope.spawn(move || {
                for batch in slices {
                    // Edits generated against one evolution of the
                    // document may be stale under interleaving; rejected
                    // batches are fine — torn snapshots are not.
                    let _ = cache.apply_edits(&batch);
                }
            });
        }
        // Readers: fused batches racing the writers. Each answer batch
        // runs on one frozen snapshot, so within a batch all answers must
        // agree with direct evaluation on that same snapshot — which is
        // exactly what answer_batch's internal routing verifies; here we
        // assert the output shape and that no answer names a node that
        // never existed (indices stay within the arena bound).
        for _ in 0..THREADS / 2 {
            let cache = Arc::clone(&cache);
            let queries = queries.clone();
            scope.spawn(move || {
                for _ in 0..ROUNDS {
                    let answers = cache.answer_batch(&queries);
                    assert_eq!(answers.len(), queries.len());
                }
            });
        }
    });

    // Quiescent: the surviving document's flat snapshot agrees with the
    // reference matcher on every query.
    let final_doc = cache.document();
    assert_flat_matches_reference(&final_doc, &queries);
}
