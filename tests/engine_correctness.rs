//! End-to-end correctness of the view-answering engine: every cache answer
//! must equal direct evaluation, on scenario documents and on random ones,
//! regardless of the route taken.

mod common;

use xpath_views::engine::Route;
use xpath_views::prelude::*;
use xpath_views::workload::{bib_catalog, bib_doc, site_catalog, site_doc, Fragment};

use common::{instance_from_seed, tree_from_seed};

#[test]
fn site_catalog_cache_equals_direct() {
    let doc = site_doc(5, 7, 3);
    let catalog = site_catalog();
    let mut cache = ViewCache::new(doc);
    for (name, def) in &catalog.views {
        cache.add_view(name, def.clone());
    }
    let mut hits = 0;
    for (name, q) in &catalog.queries {
        let ans = cache.answer(q);
        assert_eq!(ans.nodes, cache.answer_direct(q), "mismatch for {name}");
        if matches!(ans.route, Route::ViaView { .. }) {
            hits += 1;
        }
    }
    assert!(hits >= 4, "expected most catalog queries to hit views, got {hits}");
}

#[test]
fn bib_catalog_cache_equals_direct() {
    let doc = bib_doc(25, 9);
    let catalog = bib_catalog();
    let mut cache = ViewCache::new(doc);
    for (name, def) in &catalog.views {
        cache.add_view(name, def.clone());
    }
    for (name, q) in &catalog.queries {
        let ans = cache.answer(q);
        assert_eq!(ans.nodes, cache.answer_direct(q), "mismatch for {name}");
    }
}

#[test]
fn random_views_and_queries_agree_with_direct() {
    // Derived (query, view) instances: when a rewriting exists the answer
    // comes from the view; either way it must equal direct evaluation.
    for seed in 0..30u64 {
        let (q, v) = instance_from_seed(seed * 11 + 2, Fragment::Full);
        let doc = tree_from_seed(seed, 40);
        let mut cache = ViewCache::new(doc);
        cache.add_view("v", v);
        let ans = cache.answer(&q);
        assert_eq!(ans.nodes, cache.answer_direct(&q), "seed {seed}");
    }
}

#[test]
fn materialized_and_virtual_agree_by_value() {
    use xpath_views::engine::answer_value_set;
    for seed in 0..20u64 {
        let (q, v) = instance_from_seed(seed * 17 + 3, Fragment::Full);
        let doc = tree_from_seed(seed ^ 0xF0F0, 40);
        let planner = xpath_views::rewrite::RewritePlanner::without_fallback();
        if let RewriteAnswer::Rewriting(rw) = planner.decide(&q, &v) {
            let view = MaterializedView::materialize("v", v, &doc);
            let virt = view.apply_virtual(rw.pattern(), &doc);
            let mat = view.apply_materialized(rw.pattern());
            let mut mat_keys: Vec<String> =
                mat.iter().map(xpath_views::model::Tree::canonical_key).collect();
            mat_keys.sort();
            mat_keys.dedup();
            assert_eq!(answer_value_set(&doc, &virt), mat_keys, "value mismatch for seed {seed}");
        }
    }
}

#[test]
fn cache_view_results_match_definition_semantics() {
    // The materialized node set is exactly evaluate(def, doc).
    let doc = site_doc(3, 5, 1);
    let def = parse_xpath("site//item[bids]").unwrap();
    let view = MaterializedView::materialize("hot", def.clone(), &doc);
    assert_eq!(view.nodes(), evaluate(&def, &doc).as_slice());
    // And the copies are isomorphic to the source subtrees.
    for (n, copy) in view.nodes().iter().zip(view.trees()) {
        assert!(doc.subtree(*n).0.structurally_eq(copy));
    }
}
