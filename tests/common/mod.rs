//! Shared helpers for the integration test suite: seeded generators wrapped
//! for use inside proptest strategies, and pattern mutation utilities.
#![allow(dead_code)] // each integration test binary uses a subset of these helpers

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xpath_views::pattern::{NodeTest, PatId, Pattern};
use xpath_views::workload::{Fragment, PatternGen, PatternGenConfig, TreeGen, TreeGenConfig};

/// A small random pattern from a seed (deterministic).
pub fn pattern_from_seed(seed: u64, fragment: Fragment) -> Pattern {
    let cfg =
        PatternGenConfig { depth: (1, 3), max_branch_size: 2, fragment, ..Default::default() };
    PatternGen::new(cfg, seed).pattern()
}

/// A correlated (query, view) instance from a seed.
pub fn instance_from_seed(seed: u64, fragment: Fragment) -> (Pattern, Pattern) {
    let cfg =
        PatternGenConfig { depth: (1, 3), max_branch_size: 2, fragment, ..Default::default() };
    PatternGen::new(cfg, seed).instance()
}

/// A small random document from a seed.
pub fn tree_from_seed(seed: u64, size: usize) -> xpath_views::model::Tree {
    let cfg = TreeGenConfig { size, max_depth: 6, max_children: 4, label_count: 4 };
    TreeGen::new(cfg, seed).tree()
}

/// Weakenings: each step transforms `p` into some `p'` with `p ⊑ p'`.
pub fn weaken(p: &Pattern, seed: u64) -> Pattern {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = p.clone();
    match rng.gen_range(0..3) {
        0 => out = out.relax_root_edges(),
        1 => {
            // Wildcard a random node's test.
            let ids: Vec<PatId> = out.node_ids().collect();
            let n = ids[rng.gen_range(0..ids.len())];
            out.set_test(n, NodeTest::Wildcard);
        }
        _ => {
            // Relax a random non-root edge.
            let ids: Vec<PatId> = out.node_ids().filter(|&n| out.parent(n).is_some()).collect();
            if !ids.is_empty() {
                let n = ids[rng.gen_range(0..ids.len())];
                out.set_axis(n, xpath_views::pattern::Axis::Descendant);
            }
        }
    }
    out
}
