//! The paper's figures and core propositions, exercised end to end through
//! the facade crate (parser → ops → semantics → planner → engine).

use xpath_views::prelude::*;
use xpath_views::rewrite::{figure1, figure2, figure3, figure4, Method, RewritePlanner};
use xpath_views::semantics::weakly_equivalent;

#[test]
fn figure1_through_engine() {
    // Materialize Figure 1's view over a document containing matches and
    // answer P through R.
    let f = figure1();
    let doc = parse_xml("<a><b/><x><y><e><d/></e></y></x><z><e><d/></e></z><w><e/></w></a>")
        .expect("well-formed");
    let mut cache = ViewCache::new(doc);
    cache.add_view("v", f.v.clone());
    let ans = cache.answer(&f.p);
    assert_eq!(ans.nodes, cache.answer_direct(&f.p));
    match ans.route {
        xpath_views::engine::Route::ViaView { rewriting, .. } => {
            assert_eq!(rewriting, f.r.to_string());
        }
        other => panic!("expected the Figure 1 rewriting, got {other:?}"),
    }
}

#[test]
fn figure2_planner_chooses_relaxed_candidate() {
    let f = figure2();
    match RewritePlanner::default().decide(&f.p, &f.v) {
        RewriteAnswer::Rewriting(rw) => {
            assert_eq!(rw.method, Method::NaturalCandidate { relaxed: true });
            assert!(rw.pattern().structurally_eq(&f.cand_relaxed));
        }
        other => panic!("expected rewriting, got {other:?}"),
    }
}

#[test]
fn figure3_all_three_equivalent() {
    let f = figure3();
    assert!(equivalent(&f.b, &f.b_relaxed));
    assert!(equivalent(&f.b_relaxed, &f.b_prime));
}

#[test]
fn figure4_full_story() {
    let f = figure4();
    let planner = RewritePlanner::default();
    for p in [&f.p1, &f.p2, &f.p3] {
        let ans = planner.decide(p, &f.v);
        let r = ans.rewriting().expect("rewriting exists");
        let rv = compose(r, &f.v).expect("composes");
        assert!(equivalent(&rv, p));
    }
}

#[test]
fn proposition_3_2_subpattern_replacement() {
    // If a descendant edge enters the k-node and P≥k ≡w Q, then
    // P ≡ (P<k (k-1)⇒ Q).
    let p = parse_xpath("a[x]//b[c]/d").unwrap(); // descendant enters 1-node
    let q = parse_xpath("b[c]/d").unwrap(); // ≡w P>=1 (identical)
    let rebuilt = p.upper_pattern_lt(1).combine(0, &q);
    assert!(equivalent(&p, &rebuilt));

    // A weakly equivalent (but not identical) replacement: the identity
    // */e ≡w *//e from Section 2 gives a genuine test.
    let p2 = parse_xpath("a//*/e").unwrap();
    let q2 = parse_xpath("*//e").unwrap();
    assert!(weakly_equivalent(&p2.sub_pattern_geq(1), &q2));
    let rebuilt2 = p2.upper_pattern_lt(1).combine(0, &q2);
    assert!(equivalent(&p2, &rebuilt2), "Prop 3.2 failed: {p2} vs {rebuilt2}");
}

#[test]
fn corollary_3_3_cross_replacement() {
    // For equivalent P1 ≡ P2 with a descendant edge entering P1's k-node,
    // P1<k (k-1)⇒ P2>=k ≡ P1.
    let p1 = parse_xpath("a[b][b/c]//d/e").unwrap();
    let p2 = parse_xpath("a[b/c]//d/e").unwrap();
    assert!(equivalent(&p1, &p2));
    let rebuilt = p1.upper_pattern_lt(1).combine(0, &p2.sub_pattern_geq(1));
    assert!(equivalent(&rebuilt, &p1));
}

#[test]
fn proposition_3_5_root_output_views() {
    // If root(V) = out(V) and R∘V ≡ P then R∘V ≡ P∘V.
    // V = a[w] (output at root). P = a[w]/b/c. R = P (any rewriting works
    // here: R∘V = a[w]/b/c ≡ P).
    let v = parse_xpath("a[w]").unwrap();
    let p = parse_xpath("a[w]/b/c").unwrap();
    let r = p.clone();
    let rv = compose(&r, &v).expect("composes");
    assert!(equivalent(&rv, &p));
    let pv = compose(&p, &v).expect("composes");
    assert!(equivalent(&rv, &pv), "Prop 3.5: R∘V ≡ P∘V");
}

#[test]
fn proposition_3_7_weak_variant_of_root_output_views() {
    // If root(V) = out(V) and R∘V ≡w P, then R∘V ≡w P∘V.
    let v = parse_xpath("*[w]").unwrap(); // output at root
    let p = parse_xpath("a[w]/b").unwrap();
    let r = parse_xpath("a/b").unwrap();
    let rv = compose(&r, &v).expect("composes");
    assert!(weakly_equivalent(&rv, &p), "premise: R∘V ≡w P");
    let pv = compose(&p, &v).expect("composes");
    assert!(weakly_equivalent(&rv, &pv), "Prop 3.7: R∘V ≡w P∘V");
}

#[test]
fn proposition_4_5_child_prefix_subpattern_equivalence() {
    // Equivalent patterns whose first i selection edges are child edges have
    // equivalent i-sub-patterns.
    let q1 = parse_xpath("a/x[b][b/c]/d").unwrap();
    let q2 = parse_xpath("a/x[b/c]/d").unwrap();
    assert!(equivalent(&q1, &q2));
    for i in 0..=1 {
        assert!(
            equivalent(&q1.sub_pattern_geq(i), &q2.sub_pattern_geq(i)),
            "Prop 4.5 failed at i={i}"
        );
    }
}

#[test]
fn proposition_4_2_suffix_rewriting_transfer() {
    // If R is a rewriting and (R∘V)≥k ≡ P≥k, then P≥k is a rewriting.
    let p = parse_xpath("a[b]//*/e[d]").unwrap();
    let v = parse_xpath("a[b]/*").unwrap();
    let k = v.depth();
    // The Figure 1 rewriting R = *//e[d].
    let r = parse_xpath("*//e[d]").unwrap();
    let rv = compose(&r, &v).expect("composes");
    assert!(equivalent(&rv, &p));
    // Here (R∘V)≥k = *//e[d] is NOT equivalent to P≥k = */e[d] — and indeed
    // P≥k is not a rewriting: the proposition's contrapositive.
    assert!(!equivalent(&rv.sub_pattern_geq(k), &p.sub_pattern_geq(k)));
    let cand = compose(&p.sub_pattern_geq(k), &v).expect("composes");
    assert!(!equivalent(&cand, &p));
    // A positive instance: V a pure prefix.
    let p2 = parse_xpath("a/b//c[x]/d").unwrap();
    let v2 = parse_xpath("a/b").unwrap();
    let r2 = p2.sub_pattern_geq(1);
    let r2v = compose(&r2, &v2).expect("composes");
    assert!(equivalent(&r2v.sub_pattern_geq(1), &p2.sub_pattern_geq(1)));
    assert!(equivalent(&r2v, &p2), "Prop 4.2: P≥k is a rewriting");
}

#[test]
fn redundancy_reduction_preserves_equivalence_on_random_patterns() {
    use xpath_views::semantics::{is_non_redundant, remove_redundant_branches};
    use xpath_views::workload::{Fragment, PatternGen, PatternGenConfig};
    let cfg = PatternGenConfig {
        depth: (1, 3),
        branch_prob: 0.8,
        max_branch_size: 3,
        fragment: Fragment::Full,
        ..Default::default()
    };
    let mut g = PatternGen::new(cfg, 0xBADC0DE);
    for _ in 0..20 {
        let p = g.pattern();
        let r = remove_redundant_branches(&p);
        assert!(equivalent(&p, &r), "reduction changed meaning of {p}");
        assert!(is_non_redundant(&r), "reduction not a fixpoint for {p}");
        assert!(r.len() <= p.len());
    }
}

#[test]
fn proposition_5_5_descendant_prefix_respects_weak_equivalence() {
    // P1 ≡w P2 implies l//P1 ≡ l//P2.
    let p1 = parse_xpath("*/e").unwrap();
    let p2 = parse_xpath("*//e").unwrap();
    assert!(weakly_equivalent(&p1, &p2));
    for l in ["a", "*"] {
        let l1 = Pattern::prefix_descendant(
            if l == "*" { NodeTest::Wildcard } else { NodeTest::label(l) },
            &p1,
        );
        let l2 = Pattern::prefix_descendant(
            if l == "*" { NodeTest::Wildcard } else { NodeTest::label(l) },
            &p2,
        );
        assert!(equivalent(&l1, &l2), "Prop 5.5 failed for l={l}");
    }
}

#[test]
fn proposition_5_8_extension_equivalence_transfer() {
    let mu = NodeTest::Label(xpath_views::model::Label::fresh("µ-test"));
    let pairs =
        [("a[b][b/c]/d", "a[b/c]/d", true), ("a/b", "a//b", false), ("a/*//e", "a//*/e", true)];
    for (l, r, expect) in pairs {
        let pl = parse_xpath(l).unwrap();
        let pr = parse_xpath(r).unwrap();
        assert_eq!(equivalent(&pl, &pr), expect, "{l} vs {r}");
        assert_eq!(
            equivalent(&pl.extend(mu), &pr.extend(mu)),
            expect,
            "extension broke equivalence transfer for {l} vs {r}"
        );
    }
}

#[test]
fn stability_examples_from_prop_4_1() {
    use xpath_views::pattern::stability_witness;
    // Stable: labeled root.
    assert!(stability_witness(&parse_xpath("a//*").unwrap()).is_some());
    // Stable: depth 0.
    assert!(stability_witness(&parse_xpath("*[a][b]").unwrap()).is_some());
    // Stable: fresh branch label.
    assert!(stability_witness(&parse_xpath("*[q]//e").unwrap()).is_some());
    // Unknown: the classic unstable shape — and indeed */e ≡w *//e yet
    // */e ≢ *//e, witnessing genuine instability.
    let q = parse_xpath("*/e").unwrap();
    assert!(stability_witness(&q).is_none());
    let q2 = parse_xpath("*//e").unwrap();
    assert!(weakly_equivalent(&q, &q2) && !equivalent(&q, &q2));
}
