//! Cross-crate audit of the rewrite planner against the brute-force oracle
//! (the executable form of the paper's completeness theorems).
//!
//! For every audited instance:
//!
//! * a positive planner answer must verify (`R ◦ V ≡ P`) — checked inside
//!   the planner already, re-checked here independently;
//! * a negative planner answer must never be refuted by the oracle;
//! * a positive planner answer must be found by the oracle whenever the
//!   rewriting is within the oracle's exhaustive budget.

mod common;

use xpath_views::prelude::*;
use xpath_views::rewrite::{
    brute_force_rewrite, BruteForceOutcome, NoRewriteReason, RewriteAnswer, RewritePlanner,
};
use xpath_views::workload::{no_condition_instance, Fragment};

use common::instance_from_seed;

fn audit(p: &Pattern, v: &Pattern) {
    let planner = RewritePlanner::without_fallback();
    let bf = BruteForceConfig { max_nodes: 7, max_tested: 20_000, ..Default::default() };
    match planner.decide(p, v) {
        RewriteAnswer::Rewriting(rw) => {
            let rv = compose(rw.pattern(), v).expect("verified rewriting composes");
            assert!(equivalent(&rv, p), "unsound rewriting for P={p}, V={v}");
            if v.depth() <= p.depth() {
                match brute_force_rewrite(p, v, &bf) {
                    BruteForceOutcome::Exhausted(_) => {
                        assert!(
                            rw.pattern().len() > bf.max_nodes,
                            "oracle exhausted its space but the planner found \
                             a small rewriting: P={p}, V={v}, R={}",
                            rw.pattern()
                        );
                    }
                    BruteForceOutcome::Found(..)
                    | BruteForceOutcome::BudgetExceeded(_)
                    | BruteForceOutcome::GateClosed(_) => {}
                }
            }
        }
        RewriteAnswer::NoRewriting(reason) => {
            if v.depth() <= p.depth() {
                if let BruteForceOutcome::Found(r, _) = brute_force_rewrite(p, v, &bf) {
                    panic!("planner denied ({reason:?}) but oracle found R={r} for P={p}, V={v}");
                }
            }
        }
        RewriteAnswer::Unknown(_) => {}
    }
}

#[test]
fn audit_random_instances_all_fragments() {
    for fragment in
        [Fragment::NoWildcard, Fragment::NoDescendant, Fragment::NoBranch, Fragment::Full]
    {
        for seed in 0..40u64 {
            let (p, v) = instance_from_seed(seed * 7 + 1, fragment);
            audit(&p, &v);
        }
    }
}

#[test]
fn sub_fragments_are_always_decided() {
    // The paper proves completeness conditions cover the three sub-fragments
    // (labeled roots / child-only prefixes / linearity ⇒ GNF). The planner
    // must therefore never answer Unknown there.
    let planner = RewritePlanner::without_fallback();
    for fragment in [Fragment::NoWildcard, Fragment::NoDescendant, Fragment::NoBranch] {
        for seed in 0..60u64 {
            let (p, v) = instance_from_seed(seed * 13 + 5, fragment);
            let ans = planner.decide(&p, &v);
            assert!(
                ans.is_definitive(),
                "sub-fragment instance left undecided: P={p}, V={v} ({fragment:?})"
            );
        }
    }
}

#[test]
fn certificate_free_instances_stay_honest() {
    let planner = RewritePlanner::without_fallback();
    for segments in 1..=2 {
        let (p, v) = no_condition_instance(segments);
        match planner.decide(&p, &v) {
            RewriteAnswer::Unknown(_) => {}
            RewriteAnswer::Rewriting(rw) => {
                // Acceptable only if genuinely verified.
                let rv = compose(rw.pattern(), &v).expect("composes");
                assert!(equivalent(&rv, &p));
            }
            RewriteAnswer::NoRewriting(r) => {
                panic!("no certificate exists; a definitive no is unsound: {r:?}")
            }
        }
    }
}

#[test]
fn depth_and_label_gates_fire() {
    let planner = RewritePlanner::without_fallback();
    let p = parse_xpath("a/b").unwrap();
    let v = parse_xpath("a/b/c").unwrap();
    assert!(matches!(
        planner.decide(&p, &v),
        RewriteAnswer::NoRewriting(NoRewriteReason::ViewDeeperThanQuery)
    ));

    let p = parse_xpath("a/*/q").unwrap();
    let v = parse_xpath("a/b").unwrap();
    assert!(matches!(
        planner.decide(&p, &v),
        RewriteAnswer::NoRewriting(NoRewriteReason::KNodeLabelClash { .. })
    ));
}

#[test]
fn planner_with_fallback_can_settle_small_instances() {
    // With the brute-force fallback enabled, tiny certificate-free instances
    // get a definitive-or-honest answer with explicit budget accounting.
    let planner = RewritePlanner::default();
    let (p, v) = no_condition_instance(1);
    match planner.decide(&p, &v) {
        RewriteAnswer::Unknown(info) => {
            assert!(info.brute_stats.is_some());
        }
        RewriteAnswer::Rewriting(rw) => {
            let rv = compose(rw.pattern(), &v).expect("composes");
            assert!(equivalent(&rv, &p));
        }
        RewriteAnswer::NoRewriting(r) => panic!("unexpected definitive no: {r:?}"),
    }
}
