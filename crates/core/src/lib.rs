//! # xpv-core — rewriting XPath queries using views
//!
//! The primary contribution of *On Rewriting XPath Queries Using Views*
//! (Afrati et al., EDBT 2009), as a library:
//!
//! * [`natural_candidates`] — the two linear-time candidates `P≥k`,
//!   `P≥k_r//` (Section 4);
//! * [`find_condition`] — the completeness certificates of Theorems
//!   4.3 / 4.4 / 4.9 / 4.10 / 4.16, the Section 5 reductions (stable-suffix,
//!   `∗//`, extension + output-lifting) and GNF/* (Theorem 5.4);
//! * [`RewritePlanner`] — the end-to-end decision procedure: gates,
//!   candidate tests, certificates, and the budgeted Proposition 3.4
//!   brute force ([`brute_force_rewrite`]);
//! * [`PlanningSession`] — a planner bound to a long-lived
//!   [`xpv_semantics::ContainmentOracle`], so every containment verdict,
//!   homomorphism witness, and interned pattern is shared across all the
//!   queries and views the session sees ([`PlannerStats`] reports per-call
//!   memo hits / misses and coNP work);
//! * [`ptime_rewrite`] — the homomorphism-based PTIME baseline of Xu &
//!   Özsoyoglu \[17\] for the three sub-fragments;
//! * [`figures`] — executable reconstructions of the paper's Figures 1–4.

pub mod baseline;
pub mod brute;
pub mod candidates;
pub mod conditions;
pub mod figures;
pub mod multiview;
pub mod planner;

pub use baseline::{hom_equivalent, ptime_rewrite, PtimeAnswer};
pub use brute::{
    brute_force_rewrite, brute_force_rewrite_with_oracle, BruteForceConfig, BruteForceOutcome,
    BruteForceStats,
};
pub use candidates::{
    natural_candidates, test_candidate, test_candidate_with_oracle, Candidate, CandidateTestStats,
};
pub use conditions::{find_condition, Condition};
pub use figures::{figure1, figure2, figure3, figure4, Figure1, Figure2, Figure3, Figure4};
pub use multiview::{
    contained_rewriting, contained_rewriting_in, rewritable_views, rewritable_views_in,
    rewrite_using_chain, rewrite_using_chain_in, rewrite_using_intersection,
    rewrite_using_intersection_in, ChainAnswer, IntersectionAnswer, ViewChoice,
};
pub use planner::{
    Method, NoRewriteReason, PlannerStats, PlanningSession, RewriteAnswer, RewritePlanner,
    Rewriting, UnknownInfo,
};
