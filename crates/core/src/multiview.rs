//! Extensions beyond the paper's core results.
//!
//! The paper's conclusion lists open problems; two admit useful *sound*
//! (if incomplete) treatments that a view-answering system needs, and both
//! are implemented here with their limitations documented:
//!
//! * **Open problem 5 — rewriting using multiple views.** We support
//!   (a) *view chains*: when `V2` was materialized over the result of `V1`
//!   (a cache hierarchy), the effective view is the composition `V2 ◦ V1`
//!   (Proposition 2.4), and the single-view planner applies verbatim;
//!   (b) *view selection*: ranking all individually-usable views of a pool.
//!   What we do **not** attempt is combining several views into one rewriting
//!   (joins across views) — that is the genuinely open part.
//!
//! * **Open problem 3 — maximally-contained rewritings.** We compute
//!   *contained* rewritings: `R` with `R ◦ V ⊑ P`, which yield sound partial
//!   answers when no equivalent rewriting exists. Maximality is not claimed;
//!   the candidates tried are the natural candidates and their
//!   branch-reduced variants.

use xpv_pattern::{compose, compose_chain, Pattern};
use xpv_semantics::{remove_redundant_branches, ContainmentOracle};

use crate::candidates::natural_candidates;
use crate::planner::{PlanningSession, RewriteAnswer, RewritePlanner};

/// The result of planning against a chain of stacked views.
#[derive(Clone, Debug)]
pub struct ChainAnswer {
    /// The effective view `Vn ◦ … ◦ V1` (`None` when the chain collapses to
    /// the empty pattern — a label clash between stacked views).
    pub effective_view: Option<Pattern>,
    /// The planner's verdict against the effective view.
    pub answer: Option<RewriteAnswer>,
}

/// Plans a rewriting of `p` over a *stack* of views: `views\[0\]` was
/// materialized from the document, `views\[1\]` from `views\[0\]`'s result, and
/// so on. By Proposition 2.4 the stack behaves exactly like the composed
/// view, so the single-view decision procedure applies.
pub fn rewrite_using_chain(
    planner: &RewritePlanner,
    p: &Pattern,
    views: &[&Pattern],
) -> ChainAnswer {
    rewrite_using_chain_in(&planner.session(), p, views)
}

/// [`rewrite_using_chain`] planning through a shared [`PlanningSession`].
pub fn rewrite_using_chain_in(
    session: &PlanningSession,
    p: &Pattern,
    views: &[&Pattern],
) -> ChainAnswer {
    assert!(!views.is_empty(), "a chain needs at least one view");
    let top = views[views.len() - 1];
    let rest: Vec<&Pattern> = views[..views.len() - 1].iter().rev().copied().collect();
    let effective = compose_chain(top, &rest);
    match effective {
        None => ChainAnswer { effective_view: None, answer: None },
        Some(v) => {
            let answer = session.decide(p, &v);
            ChainAnswer { effective_view: Some(v), answer: Some(answer) }
        }
    }
}

/// One usable view from a pool.
#[derive(Clone, Debug)]
pub struct ViewChoice {
    /// Index into the pool.
    pub index: usize,
    /// The verified rewriting over that view.
    pub rewriting: Pattern,
}

/// Ranks every view in `pool` that admits an equivalent rewriting of `p`,
/// in pool order. A cache can then pick by any cost model (e.g. smallest
/// materialized result).
pub fn rewritable_views(
    planner: &RewritePlanner,
    p: &Pattern,
    pool: &[Pattern],
) -> Vec<ViewChoice> {
    rewritable_views_in(&planner.session(), p, pool)
}

/// [`rewritable_views`] planning through a shared [`PlanningSession`]:
/// ranking one query against a whole pool repeats many sub-containments
/// (every candidate is tested against the *same* query), which the session's
/// oracle serves from its memo.
pub fn rewritable_views_in(
    session: &PlanningSession,
    p: &Pattern,
    pool: &[Pattern],
) -> Vec<ViewChoice> {
    let mut out = Vec::new();
    for (index, v) in pool.iter().enumerate() {
        if let RewriteAnswer::Rewriting(rw) = session.decide(p, v) {
            out.push(ViewChoice { index, rewriting: rw.pattern().clone() });
        }
    }
    out
}

/// A **contained rewriting**: some `R` with `R ◦ V ⊑ P` and `R ◦ V`
/// satisfiable, so `R(V(t)) ⊆ P(t)` on every document — sound partial
/// answers from the view. Returns `None` when none of the tried candidates
/// works (which does *not* prove none exists; maximally-contained rewriting
/// is the paper's open problem 3).
pub fn contained_rewriting(p: &Pattern, v: &Pattern) -> Option<Pattern> {
    contained_rewriting_in(&ContainmentOracle::new(), p, v)
}

/// [`contained_rewriting`] deciding containments through a shared `oracle`.
pub fn contained_rewriting_in(
    oracle: &ContainmentOracle,
    p: &Pattern,
    v: &Pattern,
) -> Option<Pattern> {
    if v.depth() > p.depth() {
        return None;
    }
    let mut tried: Vec<Pattern> = Vec::new();
    for cand in natural_candidates(p, v) {
        // The branch-reduced variant can only be weaker, hence is tried
        // after the full candidate.
        tried.push(cand.pattern.clone());
        tried.push(remove_redundant_branches(&cand.pattern));
    }
    for r in tried {
        if let Some(rv) = compose(&r, v) {
            if oracle.contained(&rv, p) {
                return Some(r);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpv_pattern::parse_xpath;
    use xpv_semantics::{contained, equivalent};

    fn pat(s: &str) -> Pattern {
        parse_xpath(s).expect("pattern parses")
    }

    #[test]
    fn chain_of_two_views() {
        // V1 = site//item (over the doc), V2 = item/description (over V1's
        // result). Effective view: site//item/description.
        let planner = RewritePlanner::default();
        let v1 = pat("site//item");
        let v2 = pat("item/description");
        let p = pat("site//item/description/parlist");
        let ans = rewrite_using_chain(&planner, &p, &[&v1, &v2]);
        let eff = ans.effective_view.expect("chain composes");
        assert_eq!(eff.to_string(), "site//item/description");
        let rw = match ans.answer.expect("planned") {
            RewriteAnswer::Rewriting(rw) => rw,
            other => panic!("expected rewriting, got {other:?}"),
        };
        let rv = compose(rw.pattern(), &eff).expect("composes");
        assert!(equivalent(&rv, &p));
    }

    #[test]
    fn chain_with_label_clash_collapses() {
        let planner = RewritePlanner::default();
        let v1 = pat("a/b");
        let v2 = pat("c/d"); // c cannot merge with b
        let p = pat("a/b/c/d");
        let ans = rewrite_using_chain(&planner, &p, &[&v1, &v2]);
        assert!(ans.effective_view.is_none());
        assert!(ans.answer.is_none());
    }

    #[test]
    fn pool_ranking_finds_all_usable_views() {
        let planner = RewritePlanner::default();
        let pool = vec![
            pat("site/region"),      // usable
            pat("site//name"),       // output too deep / wrong shape
            pat("site/region/item"), // usable
        ];
        let p = pat("site/region/item/name");
        let choices = rewritable_views(&planner, &p, &pool);
        let indices: Vec<usize> = choices.iter().map(|c| c.index).collect();
        assert_eq!(indices, vec![0, 2]);
        for c in &choices {
            let rv = compose(&c.rewriting, &pool[c.index]).expect("composes");
            assert!(equivalent(&rv, &p));
        }
    }

    #[test]
    fn contained_rewriting_when_equivalent_exists() {
        // When an equivalent rewriting exists, it is in particular contained.
        let p = pat("a/b/c");
        let v = pat("a/b");
        let r = contained_rewriting(&p, &v).expect("contained rewriting");
        let rv = compose(&r, &v).expect("composes");
        assert!(contained(&rv, &p));
    }

    #[test]
    fn contained_rewriting_for_partial_coverage() {
        // V = a[x]/b materializes only b's under x-bearing roots; P = a/b/c.
        // No equivalent rewriting exists (V imposes [x]); but R = b/c gives
        // sound partial answers: R∘V = a[x]/b/c ⊑ P.
        let p = pat("a/b/c");
        let v = pat("a[x]/b");
        assert!(RewritePlanner::default().decide(&p, &v).rewriting().is_none());
        let r = contained_rewriting(&p, &v).expect("partial rewriting");
        let rv = compose(&r, &v).expect("composes");
        assert!(contained(&rv, &p));
        assert!(!equivalent(&rv, &p));
    }

    #[test]
    fn contained_rewriting_rejects_hopeless_views() {
        // Output label clash: no candidate composes into a subset of P.
        let p = pat("a/b/c");
        let v = pat("a/b/x");
        assert!(contained_rewriting(&p, &v).is_none());
        // View deeper than the query.
        let v2 = pat("a/b/c/d");
        assert!(contained_rewriting(&p, &v2).is_none());
    }
}
