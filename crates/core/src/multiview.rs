//! Extensions beyond the paper's core results.
//!
//! The paper's conclusion lists open problems; two admit useful *sound*
//! (if incomplete) treatments that a view-answering system needs, and both
//! are implemented here with their limitations documented:
//!
//! * **Open problem 5 — rewriting using multiple views.** Partially closed.
//!   We support (a) *view chains*: when `V2` was materialized over the
//!   result of `V1` (a cache hierarchy), the effective view is the
//!   composition `V2 ◦ V1` (Proposition 2.4), and the single-view planner
//!   applies verbatim; (b) *view selection*: ranking all individually-usable
//!   views of a pool; and (c) **intersection rewritings**
//!   ([`rewrite_using_intersection`], following Cautis, Deutsch, Ileana &
//!   Onose, *Rewriting XPath Queries using View Intersections*): several
//!   views are combined by intersecting their answer *node sets* and
//!   planning a compensation pattern over the exact intersection pattern
//!   ([`xpv_pattern::intersect_patterns`]). This genuinely combines views —
//!   a query answerable by no single view can be answered by a pair or
//!   triple jointly. **Completeness limits**: the intersection pattern
//!   exists only when the participants share a forced selection spine
//!   (equal depth, child-only edges below the root edge); intersections
//!   whose semantics require DAG patterns (differing depths, `//` spines —
//!   the interleavings of Cautis et al.) are not attempted, and the
//!   subset search in `xpv-intersect` is budgeted, so a planner "no" is
//!   *not* a proof that no multi-view rewriting exists. Every positive
//!   answer is verified (`R ◦ M ≡ P`), so soundness is unconditional.
//!
//! * **Open problem 3 — maximally-contained rewritings.** We compute
//!   *contained* rewritings: `R` with `R ◦ V ⊑ P`, which yield sound partial
//!   answers when no equivalent rewriting exists. Maximality is not claimed;
//!   the candidates tried are the natural candidates and their
//!   branch-reduced variants.
//!
//! The pool- and subset-level machinery (participant selection, node-set
//! evaluation, serving integration) lives one layer up in the
//! `xpv-intersect` crate; this module provides the planner entry points.

use xpv_pattern::{compose, compose_chain, intersect_patterns, Pattern};
use xpv_semantics::{remove_redundant_branches, ContainmentOracle};

use crate::candidates::natural_candidates;
use crate::planner::{PlanningSession, RewriteAnswer, RewritePlanner};

/// The result of planning against a chain of stacked views.
#[derive(Clone, Debug)]
pub struct ChainAnswer {
    /// The effective view `Vn ◦ … ◦ V1` (`None` when the chain collapses to
    /// the empty pattern — a label clash between stacked views).
    pub effective_view: Option<Pattern>,
    /// The planner's verdict against the effective view.
    pub answer: Option<RewriteAnswer>,
}

/// Plans a rewriting of `p` over a *stack* of views: `views\[0\]` was
/// materialized from the document, `views\[1\]` from `views\[0\]`'s result, and
/// so on. By Proposition 2.4 the stack behaves exactly like the composed
/// view, so the single-view decision procedure applies.
///
/// Returns `None` for an empty chain (there is no effective view to plan
/// against); library callers with dynamic pools cannot be crashed by an
/// empty input.
pub fn rewrite_using_chain(
    planner: &RewritePlanner,
    p: &Pattern,
    views: &[&Pattern],
) -> Option<ChainAnswer> {
    rewrite_using_chain_in(&planner.session(), p, views)
}

/// [`rewrite_using_chain`] planning through a shared [`PlanningSession`].
/// Returns `None` for an empty chain.
pub fn rewrite_using_chain_in(
    session: &PlanningSession,
    p: &Pattern,
    views: &[&Pattern],
) -> Option<ChainAnswer> {
    let (top, rest) = views.split_last()?;
    let rest: Vec<&Pattern> = rest.iter().rev().copied().collect();
    let effective = compose_chain(top, &rest);
    Some(match effective {
        None => ChainAnswer { effective_view: None, answer: None },
        Some(v) => {
            let answer = session.decide(p, &v);
            ChainAnswer { effective_view: Some(v), answer: Some(answer) }
        }
    })
}

/// The result of planning against the intersection of a fixed set of views.
///
/// Mirrors [`ChainAnswer`]: `intersection` is the exact intersection
/// pattern `M` with `M(t) = V1(t) ∩ … ∩ Vn(t)` (`None` when the views do
/// not admit a tree-expressible intersection — see
/// [`xpv_pattern::intersect_patterns`] for the shape conditions), and
/// `answer` is the planner's verdict for rewriting `p` over `M`. A
/// [`RewriteAnswer::Rewriting`] here is a **compensation pattern**: evaluate
/// it anchored on the node-set intersection of the materialized views to
/// obtain exactly `p`'s answers.
#[derive(Clone, Debug)]
pub struct IntersectionAnswer {
    /// The exact intersection pattern, when the views admit one.
    pub intersection: Option<Pattern>,
    /// The planner's verdict against the intersection pattern.
    pub answer: Option<RewriteAnswer>,
}

/// Plans a rewriting of `p` over the **intersection** of `views` — the
/// multi-view entry point beside [`rewritable_views`] (which ranks views
/// individually) and [`rewrite_using_chain`] (which composes stacked
/// views). Returns `None` for an empty view set.
///
/// Soundness: a returned rewriting `R` satisfies `R ◦ M ≡ P` where
/// `M(t) = ∩ Vi(t)` on every document, so `R` evaluated anchored at the
/// node-set intersection returns exactly `P(t)`. Completeness: limited to
/// tree-expressible intersections (the Cautis et al. tractability/
/// completeness trade-off) — a `None` intersection or a negative answer
/// does not prove that no multi-view rewriting exists.
pub fn rewrite_using_intersection(
    planner: &RewritePlanner,
    p: &Pattern,
    views: &[&Pattern],
) -> Option<IntersectionAnswer> {
    rewrite_using_intersection_in(&planner.session(), p, views)
}

/// [`rewrite_using_intersection`] planning through a shared
/// [`PlanningSession`]: subset searches over a pool re-test many
/// `(p, M)` sub-containments, which the session's oracle memoizes.
pub fn rewrite_using_intersection_in(
    session: &PlanningSession,
    p: &Pattern,
    views: &[&Pattern],
) -> Option<IntersectionAnswer> {
    if views.is_empty() {
        return None;
    }
    Some(match intersect_patterns(views) {
        None => IntersectionAnswer { intersection: None, answer: None },
        Some(m) => {
            let answer = session.decide(p, &m);
            IntersectionAnswer { intersection: Some(m), answer: Some(answer) }
        }
    })
}

/// One usable view from a pool.
#[derive(Clone, Debug)]
pub struct ViewChoice {
    /// Index into the pool.
    pub index: usize,
    /// The verified rewriting over that view.
    pub rewriting: Pattern,
}

/// Ranks every view in `pool` that admits an equivalent rewriting of `p`,
/// in pool order. A cache can then pick by any cost model (e.g. smallest
/// materialized result).
pub fn rewritable_views(
    planner: &RewritePlanner,
    p: &Pattern,
    pool: &[Pattern],
) -> Vec<ViewChoice> {
    rewritable_views_in(&planner.session(), p, pool)
}

/// [`rewritable_views`] planning through a shared [`PlanningSession`]:
/// ranking one query against a whole pool repeats many sub-containments
/// (every candidate is tested against the *same* query), which the session's
/// oracle serves from its memo.
pub fn rewritable_views_in(
    session: &PlanningSession,
    p: &Pattern,
    pool: &[Pattern],
) -> Vec<ViewChoice> {
    let mut out = Vec::new();
    for (index, v) in pool.iter().enumerate() {
        if let RewriteAnswer::Rewriting(rw) = session.decide(p, v) {
            out.push(ViewChoice { index, rewriting: rw.pattern().clone() });
        }
    }
    out
}

/// A **contained rewriting**: some `R` with `R ◦ V ⊑ P` and `R ◦ V`
/// satisfiable, so `R(V(t)) ⊆ P(t)` on every document — sound partial
/// answers from the view. Returns `None` when none of the tried candidates
/// works (which does *not* prove none exists; maximally-contained rewriting
/// is the paper's open problem 3).
pub fn contained_rewriting(p: &Pattern, v: &Pattern) -> Option<Pattern> {
    contained_rewriting_in(&ContainmentOracle::new(), p, v)
}

/// [`contained_rewriting`] deciding containments through a shared `oracle`.
pub fn contained_rewriting_in(
    oracle: &ContainmentOracle,
    p: &Pattern,
    v: &Pattern,
) -> Option<Pattern> {
    if v.depth() > p.depth() {
        return None;
    }
    let mut tried: Vec<Pattern> = Vec::new();
    for cand in natural_candidates(p, v) {
        // The branch-reduced variant can only be weaker, hence is tried
        // after the full candidate.
        tried.push(cand.pattern.clone());
        tried.push(remove_redundant_branches(&cand.pattern));
    }
    for r in tried {
        if let Some(rv) = compose(&r, v) {
            if oracle.contained(&rv, p) {
                return Some(r);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpv_pattern::parse_xpath;
    use xpv_semantics::{contained, equivalent};

    fn pat(s: &str) -> Pattern {
        parse_xpath(s).expect("pattern parses")
    }

    #[test]
    fn chain_of_two_views() {
        // V1 = site//item (over the doc), V2 = item/description (over V1's
        // result). Effective view: site//item/description.
        let planner = RewritePlanner::default();
        let v1 = pat("site//item");
        let v2 = pat("item/description");
        let p = pat("site//item/description/parlist");
        let ans = rewrite_using_chain(&planner, &p, &[&v1, &v2]).expect("nonempty chain");
        let eff = ans.effective_view.expect("chain composes");
        assert_eq!(eff.to_string(), "site//item/description");
        let rw = match ans.answer.expect("planned") {
            RewriteAnswer::Rewriting(rw) => rw,
            other => panic!("expected rewriting, got {other:?}"),
        };
        let rv = compose(rw.pattern(), &eff).expect("composes");
        assert!(equivalent(&rv, &p));
    }

    #[test]
    fn chain_with_label_clash_collapses() {
        let planner = RewritePlanner::default();
        let v1 = pat("a/b");
        let v2 = pat("c/d"); // c cannot merge with b
        let p = pat("a/b/c/d");
        let ans = rewrite_using_chain(&planner, &p, &[&v1, &v2]).expect("nonempty chain");
        assert!(ans.effective_view.is_none());
        assert!(ans.answer.is_none());
    }

    #[test]
    fn empty_chain_is_none_not_a_panic() {
        let planner = RewritePlanner::default();
        assert!(rewrite_using_chain(&planner, &pat("a/b"), &[]).is_none());
        assert!(rewrite_using_intersection(&planner, &pat("a/b"), &[]).is_none());
    }

    #[test]
    fn intersection_rewrites_jointly_sufficient_views() {
        // Neither view alone admits a rewriting (each misses a predicate on
        // the *parent* of the output, which no compensation can reach), but
        // their intersection is exactly the query's answer set.
        let planner = RewritePlanner::default();
        let v1 = pat("site/region/item[bids]/name");
        let v2 = pat("site/region/item[shipping]/name");
        let p = pat("site/region/item[bids][shipping]/name");
        assert!(planner.decide(&p, &v1).rewriting().is_none());
        assert!(planner.decide(&p, &v2).rewriting().is_none());

        let ans = rewrite_using_intersection(&planner, &p, &[&v1, &v2]).expect("nonempty");
        let m = ans.intersection.expect("views merge");
        assert_eq!(m.to_string(), "site/region/item[bids][shipping]/name");
        let rw = match ans.answer.expect("planned") {
            RewriteAnswer::Rewriting(rw) => rw,
            other => panic!("expected a compensation, got {other:?}"),
        };
        let rm = compose(rw.pattern(), &m).expect("composes");
        assert!(equivalent(&rm, &p));
    }

    #[test]
    fn intersection_reports_unmergeable_views() {
        let planner = RewritePlanner::default();
        let ans = rewrite_using_intersection(
            &planner,
            &pat("a/b/c"),
            &[&pat("a/b/c"), &pat("a/c")], // depth mismatch: no tree merge
        )
        .expect("nonempty");
        assert!(ans.intersection.is_none());
        assert!(ans.answer.is_none());
    }

    #[test]
    fn pool_ranking_finds_all_usable_views() {
        let planner = RewritePlanner::default();
        let pool = vec![
            pat("site/region"),      // usable
            pat("site//name"),       // output too deep / wrong shape
            pat("site/region/item"), // usable
        ];
        let p = pat("site/region/item/name");
        let choices = rewritable_views(&planner, &p, &pool);
        let indices: Vec<usize> = choices.iter().map(|c| c.index).collect();
        assert_eq!(indices, vec![0, 2]);
        for c in &choices {
            let rv = compose(&c.rewriting, &pool[c.index]).expect("composes");
            assert!(equivalent(&rv, &p));
        }
    }

    #[test]
    fn contained_rewriting_when_equivalent_exists() {
        // When an equivalent rewriting exists, it is in particular contained.
        let p = pat("a/b/c");
        let v = pat("a/b");
        let r = contained_rewriting(&p, &v).expect("contained rewriting");
        let rv = compose(&r, &v).expect("composes");
        assert!(contained(&rv, &p));
    }

    #[test]
    fn contained_rewriting_for_partial_coverage() {
        // V = a[x]/b materializes only b's under x-bearing roots; P = a/b/c.
        // No equivalent rewriting exists (V imposes [x]); but R = b/c gives
        // sound partial answers: R∘V = a[x]/b/c ⊑ P.
        let p = pat("a/b/c");
        let v = pat("a[x]/b");
        assert!(RewritePlanner::default().decide(&p, &v).rewriting().is_none());
        let r = contained_rewriting(&p, &v).expect("partial rewriting");
        let rv = compose(&r, &v).expect("composes");
        assert!(contained(&rv, &p));
        assert!(!equivalent(&rv, &p));
    }

    #[test]
    fn contained_rewriting_rejects_hopeless_views() {
        // Output label clash: no candidate composes into a subset of P.
        let p = pat("a/b/c");
        let v = pat("a/b/x");
        assert!(contained_rewriting(&p, &v).is_none());
        // View deeper than the query.
        let v2 = pat("a/b/c/d");
        assert!(contained_rewriting(&p, &v2).is_none());
    }
}
