//! The PTIME baseline of Xu & Özsoyoglu (VLDB 2005, the paper's \[17\]).
//!
//! For the three sub-fragments `XP{//,[]}`, `XP{//,*}` and `XP{[],*}`,
//! containment is characterized by homomorphisms (Miklau–Suciu), and \[17\]
//! showed the rewriting problem is in PTIME "precisely because one only has
//! to look for a homomorphism to determine containment". This module
//! implements that algorithm faithfully:
//!
//! * the candidates are the natural candidates (which are complete on these
//!   fragments: labeled roots make `P≥k` stable in `XP{//,[]}`; child-only
//!   prefixes cover `XP{[],*}`; linearity puts `XP{//,*}` in GNF/*);
//! * every equivalence test is performed with **homomorphisms only** — two
//!   PTIME checks instead of the coNP canonical-model procedure.
//!
//! On the full fragment the homomorphism test is sound but incomplete, so
//! [`ptime_rewrite`] refuses inputs outside the sub-fragments unless
//! explicitly told to proceed (useful for the benchmark that measures how
//! often the incomplete test loses answers — the "lack of theoretical
//! foundations" the paper's introduction criticizes in \[3, 5, 13, 18\]).

use xpv_pattern::{compose, FragmentFlags, Pattern};
use xpv_semantics::{homomorphism_exists, HomMode};

/// Result of the PTIME baseline.
#[derive(Clone, Debug)]
pub enum PtimeAnswer {
    /// A rewriting verified by two homomorphism checks.
    Rewriting(Box<Pattern>),
    /// No natural candidate passes the homomorphism-equivalence test.
    /// Complete (a real "no") on the homomorphism-complete sub-fragments.
    NoCandidateWorks,
    /// The instance leaves the sub-fragments and `allow_incomplete` was off.
    OutsideFragment {
        /// Fragment of the query.
        query: FragmentFlags,
        /// Fragment of the view.
        view: FragmentFlags,
    },
}

/// Homomorphism-based equivalence: PTIME, complete only on the
/// homomorphism-complete sub-fragments.
pub fn hom_equivalent(a: &Pattern, b: &Pattern) -> bool {
    homomorphism_exists(b, a, HomMode::RootAnchored)
        && homomorphism_exists(a, b, HomMode::RootAnchored)
}

/// The Xu–Özsoyoglu-style PTIME rewriting procedure.
///
/// When `allow_incomplete` is `false`, inputs whose query, view, or candidate
/// *composition* uses all three constructs are rejected with
/// [`PtimeAnswer::OutsideFragment`]; when `true`, the procedure runs anyway
/// and may miss rewritings (never returns a wrong one: homomorphism
/// equivalence is sound).
pub fn ptime_rewrite(p: &Pattern, v: &Pattern, allow_incomplete: bool) -> PtimeAnswer {
    let qf = FragmentFlags::of(p);
    let vf = FragmentFlags::of(v);
    if !allow_incomplete {
        let combined = FragmentFlags {
            wildcard: qf.wildcard || vf.wildcard,
            descendant: qf.descendant || vf.descendant,
            branching: qf.branching || vf.branching,
        };
        if !combined.homomorphism_complete() {
            return PtimeAnswer::OutsideFragment { query: qf, view: vf };
        }
    }
    let k = v.depth();
    if k > p.depth() {
        return PtimeAnswer::NoCandidateWorks;
    }
    let base = p.sub_pattern_geq(k);
    let relaxed = base.relax_root_edges();
    for cand in [base, relaxed] {
        if let Some(rv) = compose(&cand, v) {
            if hom_equivalent(&rv, p) {
                return PtimeAnswer::Rewriting(Box::new(cand));
            }
        }
    }
    PtimeAnswer::NoCandidateWorks
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpv_pattern::parse_xpath;
    use xpv_semantics::equivalent;

    fn pat(s: &str) -> Pattern {
        parse_xpath(s).expect("pattern parses")
    }

    #[test]
    fn no_wildcard_fragment() {
        // XP{//,[]}: labels everywhere.
        match ptime_rewrite(&pat("a[x]//b/c[y]"), &pat("a[x]//b"), false) {
            PtimeAnswer::Rewriting(r) => {
                assert_eq!(r.to_string(), "b/c[y]");
                let rv = compose(&r, &pat("a[x]//b")).expect("composes");
                assert!(equivalent(&rv, &pat("a[x]//b/c[y]")));
            }
            other => panic!("expected rewriting, got {other:?}"),
        }
    }

    #[test]
    fn no_descendant_fragment() {
        // XP{[],*}.
        match ptime_rewrite(&pat("a[*]/b/c"), &pat("a[*]/b"), false) {
            PtimeAnswer::Rewriting(r) => assert_eq!(r.to_string(), "b/c"),
            other => panic!("expected rewriting, got {other:?}"),
        }
    }

    #[test]
    fn linear_fragment() {
        // XP{//,*}: linear patterns.
        match ptime_rewrite(&pat("a//*/c"), &pat("a//*"), false) {
            PtimeAnswer::Rewriting(r) => {
                let rv = compose(&r, &pat("a//*")).expect("composes");
                assert!(equivalent(&rv, &pat("a//*/c")));
            }
            other => panic!("expected rewriting, got {other:?}"),
        }
    }

    #[test]
    fn negative_answer_is_definitive_in_fragment() {
        // XP{//,[]}: V's descendant edge into out(V) cannot be undone.
        match ptime_rewrite(&pat("a/b/c"), &pat("a//b"), false) {
            PtimeAnswer::NoCandidateWorks => {}
            other => panic!("expected no, got {other:?}"),
        }
    }

    #[test]
    fn full_fragment_rejected_by_default() {
        match ptime_rewrite(&pat("a[b]//*/e[d]"), &pat("a[b]/*"), false) {
            PtimeAnswer::OutsideFragment { .. } => {}
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn incomplete_mode_is_sound() {
        // In the full fragment the hom test may find the Figure 2 rewriting
        // or not — but a returned rewriting must be genuine.
        if let PtimeAnswer::Rewriting(r) = ptime_rewrite(&pat("a[b]//*/e[d]"), &pat("a[b]/*"), true)
        {
            let rv = compose(&r, &pat("a[b]/*")).expect("composes");
            assert!(equivalent(&rv, &pat("a[b]//*/e[d]")));
        }
    }

    #[test]
    fn combined_fragment_check_catches_mixed_instances() {
        // Query in XP{//,[]} and view in XP{*}: combined they use all three.
        match ptime_rewrite(&pat("a[x]//b/c"), &pat("a[*]/b").relax_root_edges(), false) {
            PtimeAnswer::OutsideFragment { .. } => {}
            other => panic!("expected rejection, got {other:?}"),
        }
    }
}
