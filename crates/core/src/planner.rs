//! The rewrite planner: a practical decision procedure for the
//! rewriting-existence problem.
//!
//! [`RewritePlanner::decide`] implements the paper's program:
//!
//! 1. **Gates** (Proposition 3.1): `k > d` or a k-node/`out(V)` label clash
//!    rules out every rewriting outright.
//! 2. **Natural candidates** (Section 4): build `P≥k` and `P≥k_r//` in linear
//!    time and test each with the coNP equivalence procedure. A success is a
//!    *verified* rewriting regardless of any condition.
//! 3. **Completeness certificate** (Theorems 4.3–4.16, Section 5): if a
//!    condition applies — possibly through the Section 5 reductions, all of
//!    which preserve the candidate set — a candidate failure proves that *no*
//!    rewriting exists.
//! 4. **Fallback** (Proposition 3.4): otherwise run the budgeted brute force.
//!    `Exhausted` within budget is reported as [`RewriteAnswer::Unknown`]
//!    with `no_small_rewriting = true` (complete only up to the size budget);
//!    a brute-force `Found` on an instance where both candidates failed would
//!    answer the paper's open question 2 negatively and is surfaced loudly in
//!    the certificate.

use xpv_pattern::{NodeTest, Pattern};
use xpv_semantics::{ContainmentOptions, ContainmentOracle, OracleStats};

use crate::brute::{
    brute_force_rewrite, brute_force_rewrite_with_oracle, BruteForceConfig, BruteForceOutcome,
    BruteForceStats,
};
use crate::candidates::{natural_candidates, test_candidate_with_oracle, CandidateTestStats};
use crate::conditions::{find_condition, Condition};

/// How a rewriting was obtained.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Method {
    /// A natural candidate (`relaxed` distinguishes `P≥k_r//` from `P≥k`).
    NaturalCandidate {
        /// `true` for the root-relaxed candidate.
        relaxed: bool,
    },
    /// Found by the Proposition 3.4 brute-force search (and therefore a
    /// counterexample to the natural-candidate conjecture if the candidates
    /// failed — see [`Rewriting::beyond_candidates`]).
    BruteForce,
}

/// A verified rewriting `R` (i.e. `R ◦ V ≡ P` has been checked).
#[derive(Clone, Debug)]
pub struct Rewriting {
    pattern: Pattern,
    /// How the rewriting was found.
    pub method: Method,
    /// The completeness certificate that applied to the instance, if any
    /// (informational for candidate successes).
    pub condition: Option<Condition>,
    /// `true` iff this rewriting was found by brute force *after* both
    /// natural candidates failed — a negative answer to open question 2.
    pub beyond_candidates: bool,
}

impl Rewriting {
    /// The rewriting pattern `R` (apply it to `V(t)` to obtain `P(t)`).
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }
}

/// Why no rewriting exists.
#[derive(Clone, Debug)]
pub enum NoRewriteReason {
    /// `k > d` (Proposition 3.1(1)).
    ViewDeeperThanQuery,
    /// The k-node of `P` and `out(V)` cannot glb-merge into the k-node label
    /// (Proposition 3.1(3)).
    KNodeLabelClash {
        /// The k-node test of the query.
        query_k_test: NodeTest,
        /// The output-node test of the view.
        view_out_test: NodeTest,
    },
    /// A completeness condition applied and every natural candidate failed.
    CandidatesFailUnderCondition(Condition),
}

/// Diagnostics carried by an [`RewriteAnswer::Unknown`] verdict.
#[derive(Clone, Debug)]
pub struct UnknownInfo {
    /// `true` if the brute force exhausted the pruned space up to its size
    /// budget without finding a rewriting (so none with ≤ `max_nodes` nodes
    /// exists).
    pub no_small_rewriting: bool,
    /// Brute-force counters.
    pub brute_stats: Option<BruteForceStats>,
}

/// The planner's verdict.
#[derive(Clone, Debug)]
pub enum RewriteAnswer {
    /// A verified rewriting.
    Rewriting(Rewriting),
    /// Definitively no rewriting exists.
    NoRewriting(NoRewriteReason),
    /// The conditions do not apply and the (budgeted) fallback was
    /// inconclusive.
    Unknown(UnknownInfo),
}

impl RewriteAnswer {
    /// Convenience: the rewriting pattern if the answer is positive.
    pub fn rewriting(&self) -> Option<&Pattern> {
        match self {
            RewriteAnswer::Rewriting(r) => Some(r.pattern()),
            _ => None,
        }
    }

    /// `true` when the verdict is definitive (not `Unknown`).
    pub fn is_definitive(&self) -> bool {
        !matches!(self, RewriteAnswer::Unknown(_))
    }
}

/// Aggregate statistics of one `decide` call (for the benchmark harness).
#[derive(Clone, Copy, Debug, Default)]
pub struct PlannerStats {
    /// Candidate-equivalence statistics.
    pub candidate_tests: CandidateTestStats,
    /// Whether a condition certificate was searched / found.
    pub condition_found: bool,
    /// Whether brute force ran.
    pub brute_forced: bool,
    /// Containment verdicts served from the session oracle's memo during
    /// this call (0 for one-shot `RewritePlanner::decide` calls, which run a
    /// fresh oracle).
    pub memo_hits: u64,
    /// Containment verdicts this call had to compute.
    pub memo_misses: u64,
    /// Canonical-model loops (the coNP work) this call actually ran.
    pub canonical_runs: u64,
}

/// The configurable decision procedure.
#[derive(Clone, Debug)]
pub struct RewritePlanner {
    /// Options threaded into every containment test.
    pub containment: ContainmentOptions,
    /// Reduction-chain fuel for the condition search (Section 5 reductions).
    pub condition_fuel: usize,
    /// Brute-force fallback configuration; `None` disables the fallback.
    pub brute_force: Option<BruteForceConfig>,
}

impl Default for RewritePlanner {
    fn default() -> Self {
        RewritePlanner {
            containment: ContainmentOptions::default(),
            condition_fuel: 3,
            brute_force: Some(BruteForceConfig::default()),
        }
    }
}

impl RewritePlanner {
    /// A planner without the brute-force fallback (pure paper algorithm:
    /// gates, candidates, conditions).
    pub fn without_fallback() -> Self {
        RewritePlanner { brute_force: None, ..Self::default() }
    }

    /// Opens a [`PlanningSession`]: a long-lived oracle wired to this
    /// planner's containment options. Components answering many queries
    /// (caches, batch planners) should decide through one session so
    /// containment verdicts are shared.
    pub fn session(&self) -> PlanningSession {
        PlanningSession::new(self.clone())
    }

    /// Decides the rewriting-existence problem for query `p` and view `v`.
    ///
    /// One-shot convenience: runs a fresh oracle per call. Use
    /// [`RewritePlanner::session`] to amortize across calls.
    pub fn decide(&self, p: &Pattern, v: &Pattern) -> RewriteAnswer {
        self.decide_with_stats(p, v).0
    }

    /// [`RewritePlanner::decide`] with counters (fresh oracle per call).
    pub fn decide_with_stats(&self, p: &Pattern, v: &Pattern) -> (RewriteAnswer, PlannerStats) {
        let oracle = ContainmentOracle::with_options(self.containment);
        self.decide_in(&oracle, p, v)
    }

    /// The decision procedure, deciding every containment through `oracle`.
    ///
    /// The per-call `memo_hits` / `memo_misses` / `canonical_runs` counters
    /// are derived from oracle-stats snapshots around the call; when other
    /// threads decide through the same oracle concurrently the delta
    /// attributes their overlapping work to this call (the counters stay
    /// exact whenever the oracle is driven from one thread at a time).
    pub fn decide_in(
        &self,
        oracle: &ContainmentOracle,
        p: &Pattern,
        v: &Pattern,
    ) -> (RewriteAnswer, PlannerStats) {
        let oracle_before: OracleStats = oracle.stats();
        let (answer, mut stats) = self.decide_inner(oracle, p, v);
        let delta = oracle.stats().since(&oracle_before);
        stats.memo_hits = delta.verdict_memo_hits;
        stats.memo_misses = delta.verdict_memo_misses;
        stats.canonical_runs = delta.canonical_runs;
        (answer, stats)
    }

    fn decide_inner(
        &self,
        oracle: &ContainmentOracle,
        p: &Pattern,
        v: &Pattern,
    ) -> (RewriteAnswer, PlannerStats) {
        let mut stats = PlannerStats::default();
        let d = p.depth();
        let k = v.depth();

        // Gate 1: Proposition 3.1(1).
        if k > d {
            return (RewriteAnswer::NoRewriting(NoRewriteReason::ViewDeeperThanQuery), stats);
        }

        // Gate 2: Proposition 3.1(3) + glb: the composed k-node test
        // glb(root(R), out(V)) must equal P's k-node test for any R.
        let p_k = p.test(p.k_node(k));
        let v_out = v.test(v.output());
        let clash = match (p_k, v_out) {
            (NodeTest::Wildcard, NodeTest::Label(_)) => true,
            (NodeTest::Label(a), NodeTest::Label(b)) => a != b,
            _ => false,
        };
        if clash {
            return (
                RewriteAnswer::NoRewriting(NoRewriteReason::KNodeLabelClash {
                    query_k_test: p_k,
                    view_out_test: v_out,
                }),
                stats,
            );
        }

        // The completeness certificate; cheap and purely syntactic, so it is
        // computed up front (it also annotates positive answers).
        let condition = find_condition(p, v, self.condition_fuel);
        stats.condition_found = condition.is_some();

        // Natural candidates (at most two equivalence tests).
        for cand in natural_candidates(p, v) {
            if test_candidate_with_oracle(p, v, &cand.pattern, oracle, &mut stats.candidate_tests) {
                return (
                    RewriteAnswer::Rewriting(Rewriting {
                        pattern: cand.pattern,
                        method: Method::NaturalCandidate { relaxed: cand.relaxed },
                        condition,
                        beyond_candidates: false,
                    }),
                    stats,
                );
            }
        }

        // Candidates failed. Under a completeness condition that is final.
        if let Some(cond) = condition {
            return (
                RewriteAnswer::NoRewriting(NoRewriteReason::CandidatesFailUnderCondition(cond)),
                stats,
            );
        }

        // Fallback: budgeted Proposition 3.4 search. The session oracle is
        // shared only when its options match the brute-force config; a
        // custom `cfg.containment` (bound ablations etc.) gets its own
        // oracle so the configured knobs actually govern the tests.
        if let Some(cfg) = &self.brute_force {
            stats.brute_forced = true;
            let outcome = if cfg.containment == *oracle.options() {
                brute_force_rewrite_with_oracle(p, v, cfg, oracle)
            } else {
                brute_force_rewrite(p, v, cfg)
            };
            match outcome {
                BruteForceOutcome::Found(r, bf_stats) => {
                    stats.candidate_tests.equivalence_tests +=
                        bf_stats.test_stats.equivalence_tests;
                    return (
                        RewriteAnswer::Rewriting(Rewriting {
                            pattern: *r,
                            method: Method::BruteForce,
                            condition: None,
                            beyond_candidates: true,
                        }),
                        stats,
                    );
                }
                BruteForceOutcome::GateClosed(_) => {
                    // Stronger gate discovered during enumeration setup.
                    return (
                        RewriteAnswer::NoRewriting(NoRewriteReason::KNodeLabelClash {
                            query_k_test: p_k,
                            view_out_test: v_out,
                        }),
                        stats,
                    );
                }
                BruteForceOutcome::Exhausted(bf_stats) => {
                    return (
                        RewriteAnswer::Unknown(UnknownInfo {
                            no_small_rewriting: true,
                            brute_stats: Some(bf_stats),
                        }),
                        stats,
                    );
                }
                BruteForceOutcome::BudgetExceeded(bf_stats) => {
                    return (
                        RewriteAnswer::Unknown(UnknownInfo {
                            no_small_rewriting: false,
                            brute_stats: Some(bf_stats),
                        }),
                        stats,
                    );
                }
            }
        }

        (
            RewriteAnswer::Unknown(UnknownInfo { no_small_rewriting: false, brute_stats: None }),
            stats,
        )
    }
}

/// A long-lived planning context: a [`RewritePlanner`] plus the
/// [`ContainmentOracle`] all its decisions flow through.
///
/// One-shot `RewritePlanner::decide` calls pay the full coNP cost every
/// time; a session shares interned patterns, homomorphism witnesses, and
/// containment verdicts across *all* queries and views it sees, which is
/// what makes repeated traffic cheap (the `ViewCache` holds one for its
/// entire lifetime).
///
/// Like the oracle it wraps, a session is fully shareable: `decide` takes
/// `&self`, so worker threads answering concurrent traffic plan through one
/// session and pool all containment work (the `ShardedViewCache` does
/// exactly this).
///
/// ```
/// use xpv_core::{RewriteAnswer, RewritePlanner};
/// use xpv_pattern::parse_xpath;
///
/// let session = RewritePlanner::default().session();
/// let p = parse_xpath("a[b]//*/e[d]").unwrap();
/// let v = parse_xpath("a[b]/*").unwrap();
/// let first = session.decide_with_stats(&p, &v).1;
/// let second = session.decide_with_stats(&p, &v).1;
/// assert_eq!(second.canonical_runs, 0, "repeat plans run zero coNP work");
/// assert!(second.memo_hits > 0 && first.memo_hits == 0);
/// ```
#[derive(Debug)]
pub struct PlanningSession {
    planner: RewritePlanner,
    oracle: ContainmentOracle,
}

impl PlanningSession {
    /// A session wrapping `planner` with a fresh oracle (wired to the
    /// planner's containment options).
    pub fn new(planner: RewritePlanner) -> PlanningSession {
        let oracle = ContainmentOracle::with_options(planner.containment);
        PlanningSession { planner, oracle }
    }

    /// The planner configuration in effect.
    pub fn planner(&self) -> &RewritePlanner {
        &self.planner
    }

    /// Access to the shared oracle (interning, stats, ablation knobs — all
    /// of which take `&self` on the oracle itself).
    pub fn oracle(&self) -> &ContainmentOracle {
        &self.oracle
    }

    /// Decides the rewriting-existence problem, sharing all containment
    /// work with previous calls on this session.
    pub fn decide(&self, p: &Pattern, v: &Pattern) -> RewriteAnswer {
        self.decide_with_stats(p, v).0
    }

    /// [`PlanningSession::decide`] with per-call counters; `memo_hits` /
    /// `memo_misses` / `canonical_runs` describe exactly this call's share
    /// of the oracle's work when the session is driven from a single thread
    /// (see [`RewritePlanner::decide_in`] for the concurrent caveat).
    pub fn decide_with_stats(&self, p: &Pattern, v: &Pattern) -> (RewriteAnswer, PlannerStats) {
        self.planner.decide_in(&self.oracle, p, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpv_pattern::{compose, parse_xpath};
    use xpv_semantics::equivalent;

    fn pat(s: &str) -> Pattern {
        parse_xpath(s).expect("pattern parses")
    }

    fn decide(ps: &str, vs: &str) -> RewriteAnswer {
        RewritePlanner::default().decide(&pat(ps), &pat(vs))
    }

    /// Every positive answer must verify: R ∘ V ≡ P.
    fn assert_valid_rewriting(ps: &str, vs: &str, answer: &RewriteAnswer) {
        let r = answer.rewriting().expect("rewriting expected");
        let rv = compose(r, &pat(vs)).expect("composition nonempty");
        assert!(equivalent(&rv, &pat(ps)), "R∘V ≢ P for R={r}");
    }

    #[test]
    fn depth_gate() {
        match decide("a/b", "a/b/c") {
            RewriteAnswer::NoRewriting(NoRewriteReason::ViewDeeperThanQuery) => {}
            other => panic!("expected depth gate, got {other:?}"),
        }
    }

    #[test]
    fn label_gates() {
        match decide("a/b/c", "a/b/x") {
            RewriteAnswer::NoRewriting(NoRewriteReason::KNodeLabelClash { .. }) => {}
            other => panic!("expected label clash, got {other:?}"),
        }
        // P's k-node is *, out(V) labeled: the paper's explicit remark after
        // Theorem 4.3.
        match decide("a/*/c", "a/b") {
            RewriteAnswer::NoRewriting(NoRewriteReason::KNodeLabelClash { .. }) => {}
            other => panic!("expected label clash, got {other:?}"),
        }
    }

    #[test]
    fn equal_depth_positive_and_negative() {
        let ans = decide("a/b[c]", "a/*");
        assert_valid_rewriting("a/b[c]", "a/*", &ans);
        // Same depth but V is less selective on a branch P needs... make V
        // not embed-compatible: V = a[z]/b demands a z-branch P never grants.
        match decide("a/b", "a[z]/b") {
            RewriteAnswer::NoRewriting(NoRewriteReason::CandidatesFailUnderCondition(
                Condition::EqualDepth,
            )) => {}
            other => panic!("expected equal-depth failure, got {other:?}"),
        }
    }

    #[test]
    fn fig2_relaxed_candidate_wins() {
        let ans = decide("a[b]//*/e[d]", "a[b]/*");
        match &ans {
            RewriteAnswer::Rewriting(rw) => {
                assert_eq!(rw.method, Method::NaturalCandidate { relaxed: true });
                assert_eq!(rw.pattern().to_string(), "*//e[d]");
            }
            other => panic!("expected relaxed candidate, got {other:?}"),
        }
        assert_valid_rewriting("a[b]//*/e[d]", "a[b]/*", &ans);
    }

    #[test]
    fn unrelaxed_candidate_wins_under_thm_4_3() {
        // P>=1 = b//c stable; V = a//* with out *.
        let ans = decide("a//b//c", "a//*");
        match &ans {
            RewriteAnswer::Rewriting(rw) => {
                assert_eq!(rw.method, Method::NaturalCandidate { relaxed: false });
                assert_eq!(rw.pattern().to_string(), "b//c");
                assert_eq!(rw.condition, Some(Condition::StableSubpattern));
            }
            other => panic!("expected P>=k, got {other:?}"),
        }
        assert_valid_rewriting("a//b//c", "a//*", &ans);
    }

    #[test]
    fn no_rewriting_under_thm_4_9() {
        // V's output is entered by a descendant edge; P has only child edges:
        // P>=1 fails and that is definitive (Theorem 4.9).
        match decide("a/b/c", "a//b") {
            RewriteAnswer::NoRewriting(NoRewriteReason::CandidatesFailUnderCondition(c)) => {
                assert_eq!(c, Condition::StableSubpattern);
                // (P>=1 = b/c is stable — Thm 4.3 fires before 4.9; both are
                // valid certificates.)
            }
            other => panic!("expected definitive no, got {other:?}"),
        }
    }

    #[test]
    fn view_with_branch_requirement_can_still_rewrite() {
        // V = a[x]/b materializes b-children of roots that also have an x
        // child; P = a[x]/b/c matches V's shape.
        let ans = decide("a[x]/b/c", "a[x]/b");
        assert_valid_rewriting("a[x]/b/c", "a[x]/b", &ans);
    }

    #[test]
    fn query_missing_view_branch_has_no_rewriting() {
        // V = a[x]/b requires an x-branch; P = a/b/c does not. R∘V would
        // impose x on every tree, so P ⊑ R∘V fails... actually R∘V ⊑ P holds
        // but not conversely. Certificate: P>=1 = b/c stable.
        match decide("a/b/c", "a[x]/b") {
            RewriteAnswer::NoRewriting(NoRewriteReason::CandidatesFailUnderCondition(_)) => {}
            other => panic!("expected definitive no, got {other:?}"),
        }
    }

    #[test]
    fn planner_without_fallback_reports_unknown() {
        // The adversarial no-condition instance: candidates fail, and without
        // brute force the planner must be honest.
        let planner = RewritePlanner::without_fallback();
        let p = pat("a//*[*/m]/*[*/m]//*[m]");
        let v = pat("a//*/*");
        match planner.decide(&p, &v) {
            RewriteAnswer::Unknown(info) => {
                assert!(!info.no_small_rewriting);
                assert!(info.brute_stats.is_none());
            }
            RewriteAnswer::Rewriting(rw) => {
                // If a candidate happens to work, that is also acceptable
                // behavior for this instance — but it must verify.
                let rv = compose(rw.pattern(), &v).expect("composes");
                assert!(equivalent(&rv, &p));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn brute_force_fallback_is_bounded_honest() {
        let p = pat("a//*[*/m]/*[*/m]//*[m]");
        let v = pat("a//*/*");
        match RewritePlanner::default().decide(&p, &v) {
            RewriteAnswer::Unknown(info) => {
                assert!(info.brute_stats.is_some());
            }
            RewriteAnswer::Rewriting(rw) => {
                let rv = compose(rw.pattern(), &v).expect("composes");
                assert!(equivalent(&rv, &p));
            }
            RewriteAnswer::NoRewriting(r) => panic!("no certificate should exist: {r:?}"),
        }
    }

    #[test]
    fn stats_reflect_work() {
        let (ans, stats) =
            RewritePlanner::default().decide_with_stats(&pat("a[b]//*/e[d]"), &pat("a[b]/*"));
        assert!(ans.is_definitive());
        assert!(stats.condition_found);
        assert!(stats.candidate_tests.equivalence_tests >= 1);
        assert!(!stats.brute_forced);
    }

    #[test]
    fn session_memoizes_across_decides() {
        let session = RewritePlanner::default().session();
        let p = pat("a[b]//*/e[d]");
        let v = pat("a[b]/*");
        let (first_ans, first) = session.decide_with_stats(&p, &v);
        assert!(first_ans.is_definitive());
        assert_eq!(first.memo_hits, 0);
        assert!(first.memo_misses > 0);

        let (second_ans, second) = session.decide_with_stats(&p, &v);
        assert!(matches!(second_ans, RewriteAnswer::Rewriting(_)));
        assert!(second.memo_hits > 0, "repeat decide must hit the oracle memo");
        assert_eq!(second.memo_misses, 0);
        assert_eq!(second.canonical_runs, 0, "repeat decide runs zero coNP loops");

        // A different instance still plans fresh (no false sharing).
        let (_, third) = session.decide_with_stats(&pat("a//b//c"), &pat("a//*"));
        assert!(third.memo_misses > 0);
    }

    #[test]
    fn one_shot_decide_matches_session_decide() {
        let planner = RewritePlanner::default();
        let session = planner.session();
        for (ps, vs) in [
            ("a[b]//*/e[d]", "a[b]/*"),
            ("a/b/c", "a//b"),
            ("a//b//c", "a//*"),
            ("a/b", "a/b/c"),
            ("a/*/c", "a/b"),
        ] {
            let (p, v) = (pat(ps), pat(vs));
            let one_shot = planner.decide(&p, &v);
            let shared = session.decide(&p, &v);
            assert_eq!(
                one_shot.rewriting().map(|r| r.to_string()),
                shared.rewriting().map(|r| r.to_string()),
                "session and one-shot disagree on {ps} / {vs}"
            );
            assert_eq!(one_shot.is_definitive(), shared.is_definitive());
        }
    }

    #[test]
    fn figure1_planner_end_to_end() {
        // The reconstructed Figure 1 instance: R = *//e[d] rewrites
        // P = a[b]//*/e[d] using V = a[b]/*.
        let ans = decide("a[b]//*/e[d]", "a[b]/*");
        let r = ans.rewriting().expect("rewriting");
        assert_eq!(r.to_string(), "*//e[d]");
    }
}
