//! Budgeted brute-force search for rewritings (Proposition 3.4).
//!
//! The paper's decidability argument enumerates a finite (but double-
//! exponential) set `R` of candidate rewritings and tests each with the coNP
//! equivalence procedure. This module implements that search with the
//! theory-derived prunings that make it usable as a ground-truth oracle on
//! small instances:
//!
//! * **depth pinning** — any rewriting `R` satisfies `depth(R) = d − k`
//!   (Proposition 3.1(1) applied to `(R◦V)≥k ≡w P≥k`);
//! * **selection-label pinning** — by Proposition 3.1(3), the `(j−k)`-node of
//!   `R` carries exactly the label of the `j`-node of `P` for `k < j ≤ d`,
//!   and the root test of `R` must glb-combine with `out(V)`'s test into the
//!   `k`-node test of `P`;
//! * **height / label-set bounds** — `height(R) ≤ height(P≥k)` and
//!   `labels(R) ⊆ labels(P≥k)` (from the Proposition 3.4 proof);
//! * **isomorphism dedup** — candidates are deduplicated by canonical key
//!   (sibling order and duplicate sibling subtrees never matter).
//!
//! The enumeration is breadth-first by size. It is **complete up to the size
//! budget**: `Exhausted` means "no rewriting with at most `max_nodes` nodes
//! exists", which the caller must interpret honestly (the planner reports
//! `Unknown` unless a completeness condition applies). Within the test suite
//! the budgets are chosen so the oracle covers every rewriting the generators
//! can produce.

use std::collections::HashSet;

use xpv_pattern::{compose, Axis, NodeTest, PatId, Pattern};
use xpv_semantics::{ContainmentOptions, ContainmentOracle};

use crate::candidates::CandidateTestStats;

/// Budget knobs for the brute-force search.
#[derive(Clone, Copy, Debug)]
pub struct BruteForceConfig {
    /// Maximum number of nodes in a candidate rewriting (spine included).
    pub max_nodes: usize,
    /// Maximum number of candidates to *test* (equivalence tests are coNP).
    pub max_tested: u64,
    /// Expansion/test options threaded into the equivalence procedure.
    pub containment: ContainmentOptions,
}

impl Default for BruteForceConfig {
    fn default() -> Self {
        BruteForceConfig {
            max_nodes: 8,
            max_tested: 20_000,
            containment: ContainmentOptions::default(),
        }
    }
}

/// The verdict of a brute-force run.
#[derive(Clone, Debug)]
pub enum BruteForceOutcome {
    /// A rewriting was found (and verified by the equivalence test).
    Found(Box<Pattern>, BruteForceStats),
    /// The full (pruned) space up to `max_nodes` was enumerated; nothing
    /// rewrites. Definitive **only** for rewritings within the size budget.
    Exhausted(BruteForceStats),
    /// The `max_tested` budget ran out before the space did.
    BudgetExceeded(BruteForceStats),
    /// No candidate shape exists at all (depth or label gates fail) —
    /// definitive non-existence by Proposition 3.1.
    GateClosed(&'static str),
}

/// Counters describing a brute-force run.
#[derive(Clone, Copy, Debug, Default)]
pub struct BruteForceStats {
    /// Distinct candidate patterns generated (after dedup).
    pub generated: u64,
    /// Candidates actually tested for equivalence.
    pub tested: u64,
    /// Candidates rejected by the cheap necessary-condition prefilter
    /// (weakly equivalent patterns share height and label set — the
    /// Proposition 3.4 proof's observation) before any coNP test ran.
    pub prefiltered: u64,
    /// Cumulative candidate-test statistics.
    pub test_stats: CandidateTestStats,
}

/// Root tests allowed for a rewriting of `p` using `v` (see module docs).
fn allowed_root_tests(p: &Pattern, v: &Pattern) -> Result<Vec<NodeTest>, &'static str> {
    let k = v.depth();
    let p_k = p.test(p.k_node(k));
    let v_out = v.test(v.output());
    match (p_k, v_out) {
        (NodeTest::Wildcard, NodeTest::Wildcard) => Ok(vec![NodeTest::Wildcard]),
        (NodeTest::Wildcard, NodeTest::Label(_)) => {
            Err("k-node of P is a wildcard but out(V) is labeled (Prop 3.1(3))")
        }
        (NodeTest::Label(a), NodeTest::Wildcard) => Ok(vec![NodeTest::Label(a)]),
        (NodeTest::Label(a), NodeTest::Label(b)) => {
            if a == b {
                // glb(x, a) = a holds for x ∈ {a, *}.
                Ok(vec![NodeTest::Label(a), NodeTest::Wildcard])
            } else {
                Err("k-node of P and out(V) carry distinct labels")
            }
        }
    }
}

/// Enumerates candidate rewritings of `p` using `v` and tests them with a
/// fresh oracle (wrapper over [`brute_force_rewrite_with_oracle`]).
///
/// # Panics
///
/// Panics if `v.depth() > p.depth()` — callers gate on depth first.
pub fn brute_force_rewrite(p: &Pattern, v: &Pattern, cfg: &BruteForceConfig) -> BruteForceOutcome {
    let oracle = ContainmentOracle::with_options(cfg.containment);
    brute_force_rewrite_with_oracle(p, v, cfg, &oracle)
}

/// [`brute_force_rewrite`] deciding every equivalence test through a shared
/// `oracle`. The enumeration repeatedly composes near-identical candidates
/// with the same view, so consecutive tests hit the oracle's verdict memo for
/// the direction that did not change — and a planner that falls back to brute
/// force reuses the candidate-phase verdicts outright.
pub fn brute_force_rewrite_with_oracle(
    p: &Pattern,
    v: &Pattern,
    cfg: &BruteForceConfig,
    oracle: &ContainmentOracle,
) -> BruteForceOutcome {
    let d = p.depth();
    let k = v.depth();
    assert!(k <= d, "depth gate must be checked before brute force");

    let root_tests = match allowed_root_tests(p, v) {
        Ok(ts) => ts,
        Err(why) => return BruteForceOutcome::GateClosed(why),
    };

    // Pinned spine labels for depths 1..=(d-k) of R (Prop 3.1(3)).
    let spine_tests: Vec<NodeTest> = (k + 1..=d).map(|j| p.test(p.k_node(j))).collect();
    let spine_len = spine_tests.len();

    let p_geq_k = p.sub_pattern_geq(k);
    let max_height = p_geq_k.height();
    if spine_len > max_height {
        return BruteForceOutcome::GateClosed("spine longer than the height bound allows");
    }
    let mut label_pool: Vec<NodeTest> =
        p_geq_k.label_set().into_iter().map(NodeTest::Label).collect();
    label_pool.push(NodeTest::Wildcard);

    let mut stats = BruteForceStats::default();
    let mut seen: HashSet<String> = HashSet::new();

    // Necessary conditions for R∘V ≡ P, derived from Proposition 3.1(2):
    // (R∘V)≥k ≡w P≥k, and weakly equivalent patterns share height and label
    // set. Both are cheap to check and prune most of the space before the
    // coNP equivalence test.
    let target_height = p_geq_k.height();
    let target_labels = p_geq_k.label_set();

    // Seed queue: bare spines over axis choices and root tests.
    let mut queue: Vec<Pattern> = Vec::new();
    for &root_test in &root_tests {
        let mut axes_choice = vec![Axis::Child; spine_len];
        loop {
            let mut r = Pattern::single(root_test);
            let mut cur = r.root();
            for (i, &t) in spine_tests.iter().enumerate() {
                cur = r.add_child(cur, axes_choice[i], t);
            }
            r.set_output(cur);
            if seen.insert(r.canonical_key()) {
                stats.generated += 1;
                queue.push(r);
            }
            // Advance the axis odometer.
            let mut i = 0;
            loop {
                if i == spine_len {
                    break;
                }
                if axes_choice[i] == Axis::Child {
                    axes_choice[i] = Axis::Descendant;
                    break;
                }
                axes_choice[i] = Axis::Child;
                i += 1;
            }
            if i == spine_len {
                break;
            }
        }
    }

    // Breadth-first growth: add one side node anywhere, in every axis/test
    // combination, respecting the height bound and size budget.
    let mut idx = 0;
    while idx < queue.len() {
        let r = queue[idx].clone();
        idx += 1;

        if stats.tested >= cfg.max_tested {
            return BruteForceOutcome::BudgetExceeded(stats);
        }
        if let Some(rv) = compose(&r, v) {
            let rv_geq_k = rv.sub_pattern_geq(k);
            if rv_geq_k.height() != target_height || rv_geq_k.label_set() != target_labels {
                stats.prefiltered += 1;
            } else {
                stats.tested += 1;
                stats.test_stats.equivalence_tests += 1;
                let before = oracle.stats();
                let holds = oracle.contained(&rv, p) && oracle.contained(p, &rv);
                let delta = oracle.stats().since(&before);
                stats.test_stats.models_checked += delta.models_checked;
                stats.test_stats.hom_hits +=
                    u32::try_from(delta.hom_fast_path_hits).unwrap_or(u32::MAX);
                if holds {
                    return BruteForceOutcome::Found(Box::new(r), stats);
                }
            }
        }

        if r.len() >= cfg.max_nodes {
            continue;
        }
        for parent in r.node_ids().collect::<Vec<PatId>>() {
            // Height bound: a new leaf under `parent` sits at depth(parent)+1.
            if node_tree_depth(&r, parent) + 1 > max_height {
                continue;
            }
            for &axis in &[Axis::Child, Axis::Descendant] {
                for &test in &label_pool {
                    let mut grown = r.clone();
                    grown.add_child(parent, axis, test);
                    if seen.insert(grown.canonical_key()) {
                        stats.generated += 1;
                        queue.push(grown);
                    }
                }
            }
        }
    }
    BruteForceOutcome::Exhausted(stats)
}

/// Depth of `n` in the pattern *tree* (number of edges from the root),
/// as opposed to the selection-path depth of `Pattern::node_depth`.
fn node_tree_depth(p: &Pattern, n: PatId) -> usize {
    let mut d = 0;
    let mut cur = n;
    while let Some(par) = p.parent(cur) {
        d += 1;
        cur = par;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpv_pattern::parse_xpath;

    fn pat(s: &str) -> Pattern {
        parse_xpath(s).expect("pattern parses")
    }

    fn run(ps: &str, vs: &str) -> BruteForceOutcome {
        brute_force_rewrite(&pat(ps), &pat(vs), &BruteForceConfig::default())
    }

    #[test]
    fn finds_trivial_suffix_rewriting() {
        // k = 1: the rewriting keeps the merged b node, so R = b/c.
        match run("a/b/c", "a/b") {
            BruteForceOutcome::Found(r, _) => assert_eq!(r.to_string(), "b/c"),
            other => panic!("expected Found, got {other:?}"),
        }
    }

    #[test]
    fn finds_relaxed_candidate_fig2() {
        // Reconstructed Figure 2: the only rewriting shape is *//e[d].
        match run("a[b]//*/e[d]", "a[b]/*") {
            BruteForceOutcome::Found(r, _) => {
                let rv = xpv_pattern::compose(&r, &pat("a[b]/*")).expect("composes");
                assert!(xpv_semantics::equivalent(&rv, &pat("a[b]//*/e[d]")));
            }
            other => panic!("expected Found, got {other:?}"),
        }
    }

    #[test]
    fn gate_closed_on_label_clash() {
        // out(V) labeled x, P's k-node labeled c.
        match run("a/b/c", "a/b/x") {
            BruteForceOutcome::GateClosed(_) => {}
            other => panic!("expected GateClosed, got {other:?}"),
        }
        // P's k-node wildcard, out(V) labeled.
        match run("a/*/c", "a/b") {
            BruteForceOutcome::GateClosed(_) => {}
            other => panic!("expected GateClosed, got {other:?}"),
        }
    }

    #[test]
    fn exhausts_when_no_rewriting_exists() {
        // P = a/b/c, V = a//b: any R must be c with spine... R∘V = a//b/c ≠ P
        // (the descendant edge of V survives composition). With branches the
        // small space is enumerable completely.
        match run("a/b/c", "a//b") {
            BruteForceOutcome::Exhausted(stats) => {
                assert!(stats.tested >= 1);
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    #[test]
    fn budget_exceeded_reported() {
        let cfg = BruteForceConfig {
            max_nodes: 8,
            max_tested: 3,
            containment: ContainmentOptions::default(),
        };
        match brute_force_rewrite(&pat("a//*[x]/e"), &pat("a//*"), &cfg) {
            BruteForceOutcome::BudgetExceeded(stats) => assert_eq!(stats.tested, 3),
            // A tiny budget may still be enough if a rewriting shows up early.
            BruteForceOutcome::Found(..) => {}
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn spine_labels_are_pinned() {
        // Rewritings of P = a/b/x/y using V = a/b (k = 1) must have spine
        // b/x/y; the found rewriting demonstrates the pinning (it IS b/x/y).
        match run("a/b/x/y", "a/b") {
            BruteForceOutcome::Found(r, stats) => {
                assert_eq!(r.to_string(), "b/x/y");
                // The bare spine is among the very first candidates: the
                // pinning means we never enumerate wrong-label spines.
                assert!(stats.tested <= 8, "tested={}", stats.tested);
            }
            other => panic!("expected Found, got {other:?}"),
        }
    }

    #[test]
    fn branch_rewriting_found() {
        // P = a/b/c[z], V = a/b (k = 1): R must be b/c[z].
        match run("a/b/c[z]", "a/b") {
            BruteForceOutcome::Found(r, _) => {
                assert_eq!(r.to_string(), "b/c[z]");
            }
            other => panic!("expected Found, got {other:?}"),
        }
    }

    #[test]
    fn wildcard_root_choice_explored() {
        // P = a/b/c, V = a/b/c ... k = d: R is a single node; root tests may
        // be c or * (glb(·, c) = c either way); both compose to P.
        match run("a/b/c", "a/b/c") {
            BruteForceOutcome::Found(r, _) => {
                assert_eq!(r.depth(), 0);
                assert_eq!(r.len(), 1);
            }
            other => panic!("expected Found, got {other:?}"),
        }
    }
}
