//! The paper's figures as executable objects.
//!
//! The EDBT 2009 paper illustrates its machinery with four figures. Camera-
//! ready PDFs do not survive text extraction well enough to recover the exact
//! drawings, so this module provides **reconstructions**: instances built to
//! satisfy *every property the text states about each figure*, with those
//! properties verified by the test suite (and re-verified by the `figures`
//! benchmark):
//!
//! * **Figure 1** — patterns `V`, `P`, `R` with `R ◦ V ≡ P`; the merged node
//!   is labeled `*` because both `out(V)` and `root(R)` are wildcards.
//! * **Figure 2** — the natural candidates w.r.t. Figure 1's `P` and `V`:
//!   `P≥1` is *not* a rewriting, while `P≥1_r//` *is* (the Theorem 4.10
//!   example).
//! * **Figure 3** — a branch `B` whose maximal child path from the root ends
//!   at a wildcard node with descendant-only outgoing edges, together with
//!   the stepwise relaxation `B′` and the root relaxation `B_r//`;
//!   Lemma 4.12's chain `B ⊑ B_r// ⊑ B′ ≡ B` collapses to equivalence.
//! * **Figure 4** — `V`, `P1`, `P2`, `P3` exercising Theorem 4.16 (applies to
//!   `(P1, V)`; fails for `(P2, V)` because `P2`'s last descendant edge is
//!   the fifth and for `(P3, V)` because `V`'s first edge is a child edge),
//!   Corollary 5.7 (covers `P3`, not `P2`), and the Section 5.3 extension /
//!   output lifting (`V^{+*}`, `P2^{+µ}`, `(P2^{+µ})^{4→}`) that finally
//!   covers `P2`.

use xpv_model::Label;
use xpv_pattern::{parse_xpath, NodeTest, Pattern};

fn pat(s: &str) -> Pattern {
    parse_xpath(s).expect("figure patterns are well-formed")
}

/// Figure 1: a rewriting example.
#[derive(Clone, Debug)]
pub struct Figure1 {
    /// The view `V` (depth 1, child selection edge, wildcard output).
    pub v: Pattern,
    /// The query `P`.
    pub p: Pattern,
    /// The rewriting `R` (root labeled `*`, as the caption notes).
    pub r: Pattern,
}

/// Builds the Figure 1 reconstruction.
pub fn figure1() -> Figure1 {
    Figure1 { v: pat("a[b]/*"), p: pat("a[b]//*/e[d]"), r: pat("*//e[d]") }
}

/// Figure 2: the natural candidates for Figure 1's instance.
#[derive(Clone, Debug)]
pub struct Figure2 {
    /// The view (same as Figure 1).
    pub v: Pattern,
    /// The query (same as Figure 1).
    pub p: Pattern,
    /// `P≥1` — not a rewriting.
    pub cand_base: Pattern,
    /// `P≥1_r//` — a rewriting.
    pub cand_relaxed: Pattern,
}

/// Builds the Figure 2 reconstruction.
pub fn figure2() -> Figure2 {
    let f1 = figure1();
    let cand_base = f1.p.sub_pattern_geq(1);
    let cand_relaxed = cand_base.relax_root_edges();
    Figure2 { v: f1.v, p: f1.p, cand_base, cand_relaxed }
}

/// Figure 3: branch relaxation for Lemma 4.12.
#[derive(Clone, Debug)]
pub struct Figure3 {
    /// The branch `B`: a maximal child path of wildcards from the root,
    /// ending at a node with only descendant-edge children.
    pub b: Pattern,
    /// `B_r//`: only the root-emanating edge relaxed.
    pub b_relaxed: Pattern,
    /// `B′`: every edge of the maximal child path relaxed (the endpoint of
    /// the paper's stepwise process).
    pub b_prime: Pattern,
}

/// Builds the Figure 3 reconstruction.
pub fn figure3() -> Figure3 {
    // B = *(root) /*/* with the deepest * carrying two descendant branches.
    let b = pat("*[*[*[.//b][.//a[*]]]]");
    let b_relaxed = b.relax_root_edges();
    let b_prime = pat("*[.//*[.//*[.//b][.//a[*]]]]");
    Figure3 { b, b_relaxed, b_prime }
}

/// Figure 4: correlation, label extension and output lifting.
#[derive(Clone, Debug)]
pub struct Figure4 {
    /// The view `V = a/*//*/*` (depth 3; second selection edge descendant).
    pub v: Pattern,
    /// `P1 = a/*//*/*/e` — Theorem 4.16 applies (last descendant edge at
    /// depth 2 corresponds to `V`'s descendant edge).
    pub p1: Pattern,
    /// `P2 = a/*//*/*/c//e` — last descendant edge at depth 5: no
    /// corresponding edge of `V`; needs Section 5.3.
    pub p2: Pattern,
    /// `P3 = a//*/*/*/e` — last descendant edge at depth 1 but `V`'s first
    /// edge is a child edge: Theorem 4.16 fails, Corollary 5.7 applies
    /// (`V`'s deepest descendant edge, depth 2, is at least as deep).
    pub p3: Pattern,
    /// `V^{+*}`.
    pub v_ext: Pattern,
    /// `P2^{+µ}` (µ is a fresh label).
    pub p2_ext: Pattern,
    /// `(P2^{+µ})^{4→}`.
    pub p2_ext_lifted: Pattern,
    /// The fresh label µ used by the extension.
    pub mu: Label,
}

/// Builds the Figure 4 reconstruction.
pub fn figure4() -> Figure4 {
    let v = pat("a/*//*/*");
    let p1 = pat("a/*//*/*/e");
    let p2 = pat("a/*//*/*/c//e");
    let p3 = pat("a//*/*/*/e");
    let mu = Label::fresh("µ");
    let v_ext = v.extend(NodeTest::Wildcard);
    let p2_ext = p2.extend(NodeTest::Label(mu));
    let p2_ext_lifted = p2_ext.lift_output(4);
    Figure4 { v, p1, p2, p3, v_ext, p2_ext, p2_ext_lifted, mu }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conditions::{find_condition, Condition};
    use crate::planner::{Method, RewriteAnswer, RewritePlanner};
    use xpv_pattern::{compose, deepest_descendant_selection_edge, Axis};
    use xpv_semantics::{equivalent, weakly_equivalent};

    #[test]
    fn fig1_r_is_a_rewriting() {
        let f = figure1();
        let rv = compose(&f.r, &f.v).expect("composition nonempty");
        assert!(equivalent(&rv, &f.p));
        // The merged node is the 1-node of R∘V and carries a wildcard.
        let merged = rv.k_node(1);
        assert!(rv.test(merged).is_wildcard());
        // out(V) and root(R) are both wildcards (caption property).
        assert!(f.v.test(f.v.output()).is_wildcard());
        assert!(f.r.test(f.r.root()).is_wildcard());
    }

    #[test]
    fn fig2_candidate_gap() {
        let f = figure2();
        // P>=1 is NOT a rewriting.
        let c1v = compose(&f.cand_base, &f.v).expect("composes");
        assert!(!equivalent(&c1v, &f.p));
        // P>=1_r// IS a rewriting.
        let c2v = compose(&f.cand_relaxed, &f.v).expect("composes");
        assert!(equivalent(&c2v, &f.p));
        // V's selection path is a single child edge (the Thm 4.10 setting).
        assert_eq!(f.v.depth(), 1);
        assert_eq!(f.v.selection_axes(), vec![Axis::Child]);
        // The planner certificate is Theorem 4.10 and it picks the relaxed
        // candidate.
        let cond = find_condition(&f.p, &f.v, 3).expect("condition applies");
        assert_eq!(cond, Condition::ViewSelectionAllChild);
        match RewritePlanner::default().decide(&f.p, &f.v) {
            RewriteAnswer::Rewriting(rw) => {
                assert_eq!(rw.method, Method::NaturalCandidate { relaxed: true });
            }
            other => panic!("expected rewriting, got {other:?}"),
        }
    }

    #[test]
    fn fig3_relaxation_chain_is_equivalence() {
        let f = figure3();
        // B ⊑ B_r// ⊑ B′ always (relaxation only weakens); Lemma 4.12's
        // argument closes the circle: B′ ≡ B, hence all three coincide.
        assert!(xpv_semantics::contained(&f.b, &f.b_relaxed));
        assert!(xpv_semantics::contained(&f.b_relaxed, &f.b_prime));
        assert!(equivalent(&f.b, &f.b_prime));
        assert!(equivalent(&f.b, &f.b_relaxed));
        assert!(equivalent(&f.b_relaxed, &f.b_prime));
    }

    #[test]
    fn fig3_preconditions_hold() {
        // The maximal child path from the root has wildcard labels only and
        // its endpoint has only descendant-edge children — the exact shape
        // Lemma 4.11 forces inside rewritings.
        let f = figure3();
        let b = &f.b;
        let mut cur = b.root();
        loop {
            assert!(b.test(cur).is_wildcard());
            let child_kids: Vec<_> =
                b.children(cur).iter().copied().filter(|&c| b.axis(c) == Axis::Child).collect();
            if child_kids.is_empty() {
                // Endpoint: all outgoing edges are descendant edges.
                assert!(b.children(cur).iter().all(|&c| b.axis(c) == Axis::Descendant));
                break;
            }
            assert_eq!(child_kids.len(), 1, "figure uses a single maximal path");
            cur = child_kids[0];
        }
    }

    #[test]
    fn fig4_correlation_properties() {
        let f = figure4();
        // V: depth 3, axes [child, descendant, child].
        assert_eq!(f.v.depth(), 3);
        assert_eq!(f.v.selection_axes(), vec![Axis::Child, Axis::Descendant, Axis::Child]);
        // P1: last descendant edge at depth 2 — matches V's descendant edge.
        assert_eq!(deepest_descendant_selection_edge(&f.p1), Some(2));
        let c1 = find_condition(&f.p1, &f.v, 0).expect("4.16 applies");
        assert_eq!(c1, Condition::CorrespondingLastDescendant { depth: 2 });
        // P2: last descendant edge at depth 5 > k: 4.16 cannot apply at base
        // level (it reports either GNF via linearity or a reduction at
        // deeper fuel; crucially NOT CorrespondingLastDescendant).
        assert_eq!(deepest_descendant_selection_edge(&f.p2), Some(5));
        let c2 = find_condition(&f.p2, &f.v, 0);
        assert!(!matches!(c2, Some(Condition::CorrespondingLastDescendant { .. })));
        // P3: last descendant edge at depth 1, V's first edge is child.
        assert_eq!(deepest_descendant_selection_edge(&f.p3), Some(1));
        let c3 = find_condition(&f.p3, &f.v, 0);
        assert!(!matches!(c3, Some(Condition::CorrespondingLastDescendant { .. })));
        // Corollary 5.7 precondition: deepest descendant edge of V (depth 2)
        // at least as deep as P3's (depth 1) — but not P2's (depth 5).
        let v_deep = deepest_descendant_selection_edge(&f.v).expect("V has one");
        assert!(v_deep >= deepest_descendant_selection_edge(&f.p3).expect("P3 has one"));
        assert!(v_deep < deepest_descendant_selection_edge(&f.p2).expect("P2 has one"));
    }

    #[test]
    fn fig4_rewritings_found() {
        let planner = RewritePlanner::default();
        let f = figure4();
        for (name, p) in [("P1", &f.p1), ("P2", &f.p2), ("P3", &f.p3)] {
            let ans = planner.decide(p, &f.v);
            let r =
                ans.rewriting().unwrap_or_else(|| panic!("{name} should be rewritable using V"));
            let rv = compose(r, &f.v).expect("composes");
            assert!(equivalent(&rv, p), "{name}: R∘V ≢ P");
        }
    }

    #[test]
    fn fig4_extension_shapes() {
        let f = figure4();
        // V+*: output gains a wildcard child; depth grows by one on the
        // extended selection path only after lifting — the output node stays,
        // so depth is unchanged here.
        assert_eq!(f.v_ext.depth(), f.v.depth());
        assert_eq!(f.v_ext.len(), f.v.len() + 1);
        // P2+µ: every leaf got a child (here: only the output leaf e).
        assert_eq!(f.p2_ext.len(), f.p2.len() + 1);
        // Lifting moves the output to the c-node at depth 4.
        assert_eq!(f.p2_ext_lifted.depth(), 4);
        assert_eq!(f.p2_ext_lifted.test(f.p2_ext_lifted.output()), NodeTest::label("c"));
    }

    #[test]
    fn thm_5_9_transfer_on_fig4_p2() {
        // R is a rewriting of P2 using V  iff  (R+µ)^{(j-k)→} is a rewriting
        // of (P2+µ)^{j→} using V+*, with j = 4, k = 3.
        let f = figure4();
        let r = f.p2.sub_pattern_geq(3); // */c//e — the natural candidate
        let rv = compose(&r, &f.v).expect("composes");
        assert!(equivalent(&rv, &f.p2), "precondition: R rewrites P2");

        let r_tr = r.extend(NodeTest::Label(f.mu)).lift_output(4 - 3);
        let rv_tr = compose(&r_tr, &f.v_ext).expect("composes");
        assert!(equivalent(&rv_tr, &f.p2_ext_lifted), "transformed rewriting works");
    }

    #[test]
    fn thm_5_9_transfer_negative_direction() {
        // A non-rewriting stays a non-rewriting under the transformation.
        // (Note: the *root-relaxed* candidate *//c//e IS a rewriting here —
        // wildcard spines absorb the relaxation — so we use R = c//e, which
        // composes into a shallower pattern than P2 requires.)
        let f = figure4();
        let bad = pat("c//e");
        let bad_rv = compose(&bad, &f.v).expect("composes");
        assert!(!equivalent(&bad_rv, &f.p2));
        let bad_tr = bad.extend(NodeTest::Label(f.mu)).lift_output(1);
        let bad_tr_rv = compose(&bad_tr, &f.v_ext).expect("composes");
        assert!(!equivalent(&bad_tr_rv, &f.p2_ext_lifted));
    }

    #[test]
    fn relaxed_candidate_is_also_a_rewriting_for_p2() {
        // Documenting the note above: both natural candidates of (P2, V)
        // happen to be rewritings — the wildcard selection spine makes the
        // relaxation harmless.
        let f = figure4();
        let relaxed = f.p2.sub_pattern_geq(3).relax_root_edges();
        let rv = compose(&relaxed, &f.v).expect("composes");
        assert!(equivalent(&rv, &f.p2));
    }

    #[test]
    fn prop_5_8_extension_preserves_equivalence() {
        // P1 ≡ P2 iff P1+µ ≡ P2+µ, spot-checked on equivalent and
        // inequivalent pairs.
        let mu = NodeTest::Label(Label::fresh("µ"));
        let e1 = pat("a[b][b/c]/d");
        let e2 = pat("a[b/c]/d");
        assert!(equivalent(&e1, &e2));
        assert!(equivalent(&e1.extend(mu), &e2.extend(mu)));
        let n1 = pat("a/b");
        let n2 = pat("a//b");
        assert!(!equivalent(&n1, &n2));
        assert!(!equivalent(&n1.extend(mu), &n2.extend(mu)));
    }

    #[test]
    fn weak_equivalence_of_candidates_matches_prop_3_1() {
        // Proposition 3.1(2): rewritability forces (R∘V)>=k ≡w P>=k; check
        // on Figure 1 that the witness rewriting satisfies it.
        let f = figure1();
        let rv = compose(&f.r, &f.v).expect("composes");
        let k = f.v.depth();
        assert!(weakly_equivalent(&rv.sub_pattern_geq(k), &f.p.sub_pattern_geq(k)));
        // Proposition 3.1(1): equal depths.
        assert_eq!(rv.depth(), f.p.depth());
        // Proposition 3.1(3): same selection labels.
        for i in 0..=f.p.depth() {
            assert_eq!(rv.test(rv.k_node(i)), f.p.test(f.p.k_node(i)), "depth {i}");
        }
    }
}
