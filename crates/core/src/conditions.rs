//! Completeness conditions: when are the natural candidates *potential*
//! rewritings?
//!
//! A pattern `R'` is a **potential rewriting** w.r.t. `(P, V)` if the
//! existence of any rewriting implies that `R'` is one (Section 4). The paper
//! proves that under each of the following conditions at least one natural
//! candidate is potential, so testing the (at most two) candidates decides
//! the rewriting-existence problem:
//!
//! | tag | source | condition |
//! |-----|--------|-----------|
//! | `StableSubpattern` | Thm 4.3 | `P≥k` is stable (Prop 4.1 witnesses) |
//! | `QueryPrefixAllChild` | Thm 4.4 | the selection path of `P≤k` has only child edges |
//! | `DescendantIntoViewOutput` | Thm 4.9 | a descendant edge enters `out(V)` |
//! | `ViewSelectionAllChild` | Thm 4.10 | the selection path of `V` has only child edges |
//! | `CorrespondingLastDescendant` | Thm 4.16 | the last descendant selection edge of `P` corresponds to a descendant edge of `V` |
//! | `StableSuffixReduction` | §5.1, Prop 5.1 | `P≥i` stable for some `i ≤ k`, and the reduced instance `(P≥i, V≥i)` satisfies a condition |
//! | `SlashSlashReduction` | §5.2, Prop 5.6 | the reduced instance `(∗//P≥i, ∗//V≥i)` (for `i` = deepest descendant edge of `V`) satisfies a condition |
//! | `ExtensionLifting` | §5.3, Thm 5.9 / Cor 5.11 | the transformed instance `((P^{+µ})^{j→}, V^{+∗})` satisfies a condition |
//! | `GnfStar` | Thm 5.4 | `P` is in the generalized normal form GNF/* |
//!
//! All three Section 5 transformations preserve the *set of natural
//! candidates* (`P≥k` / `P≥k_r//` are unchanged), so a nested certificate
//! still justifies testing the original candidates — the planner relies on
//! this.

use std::fmt;

use xpv_model::Label;
use xpv_pattern::{
    deepest_descendant_selection_edge, is_gnf_star, selection_prefix_all_child, stability_witness,
    Axis, NodeTest, Pattern,
};

/// A certificate naming the theorem (or reduction chain) under which the
/// natural candidates are complete for an instance `(P, V)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Condition {
    /// The view is exactly as deep as the query (`k = d`; Section 4 preamble).
    EqualDepth,
    /// Theorem 4.3 — `P≥k` is stable.
    StableSubpattern,
    /// Theorem 4.4 — the selection path of `P≤k` has only child edges.
    QueryPrefixAllChild,
    /// Theorem 4.9 — a descendant edge enters `out(V)`.
    DescendantIntoViewOutput,
    /// Theorem 4.10 — the selection path of `V` has only child edges.
    ViewSelectionAllChild,
    /// Theorem 4.16 — the last descendant selection edge of `P` (at depth
    /// `j ≤ k`) corresponds to a descendant selection edge of `V`.
    CorrespondingLastDescendant {
        /// The shared depth of the corresponding edges.
        depth: usize,
    },
    /// Section 5.1 — reduce to `(P≥i, V≥i)` for a stable `P≥i`, then apply
    /// the inner condition.
    StableSuffixReduction {
        /// The reduction depth `i` (1 ≤ i ≤ k).
        at: usize,
        /// The condition holding on the reduced instance.
        inner: Box<Condition>,
    },
    /// Section 5.2 — reduce to `(∗//P≥i, ∗//V≥i)` where `i` is the deepest
    /// descendant selection edge of `V`, then apply the inner condition.
    SlashSlashReduction {
        /// The reduction depth `i`.
        at: usize,
        /// The condition holding on the reduced instance.
        inner: Box<Condition>,
    },
    /// Section 5.3 — transform to `((P^{+µ})^{j→}, V^{+∗})` for a `Σ`-labeled
    /// j-node of `P` (`k ≤ j ≤ d`), then apply the inner condition.
    ExtensionLifting {
        /// The lifting depth `j`.
        at: usize,
        /// The condition holding on the transformed instance.
        inner: Box<Condition>,
    },
    /// Theorem 5.4 — `P` is in GNF/*.
    GnfStar,
}

impl Condition {
    /// The paper reference for this certificate (outermost step).
    pub fn source(&self) -> &'static str {
        match self {
            Condition::EqualDepth => "Section 4 (k = d)",
            Condition::StableSubpattern => "Theorem 4.3",
            Condition::QueryPrefixAllChild => "Theorem 4.4",
            Condition::DescendantIntoViewOutput => "Theorem 4.9",
            Condition::ViewSelectionAllChild => "Theorem 4.10",
            Condition::CorrespondingLastDescendant { .. } => "Theorem 4.16",
            Condition::StableSuffixReduction { .. } => "Proposition 5.1",
            Condition::SlashSlashReduction { .. } => "Proposition 5.6 / Corollary 5.7",
            Condition::ExtensionLifting { .. } => "Theorem 5.9 / Corollary 5.11",
            Condition::GnfStar => "Theorem 5.4",
        }
    }

    /// Nesting depth of the certificate (1 for a base condition).
    pub fn chain_len(&self) -> usize {
        match self {
            Condition::StableSuffixReduction { inner, .. }
            | Condition::SlashSlashReduction { inner, .. }
            | Condition::ExtensionLifting { inner, .. } => 1 + inner.chain_len(),
            _ => 1,
        }
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::EqualDepth => write!(f, "k=d"),
            Condition::StableSubpattern => write!(f, "stable-P≥k [Thm 4.3]"),
            Condition::QueryPrefixAllChild => write!(f, "P-prefix-child [Thm 4.4]"),
            Condition::DescendantIntoViewOutput => write!(f, "desc-into-out(V) [Thm 4.9]"),
            Condition::ViewSelectionAllChild => write!(f, "V-path-child [Thm 4.10]"),
            Condition::CorrespondingLastDescendant { depth } => {
                write!(f, "corresponding-desc@{depth} [Thm 4.16]")
            }
            Condition::StableSuffixReduction { at, inner } => {
                write!(f, "stable-suffix@{at} [Prop 5.1] -> {inner}")
            }
            Condition::SlashSlashReduction { at, inner } => {
                write!(f, "*//-reduction@{at} [Prop 5.6] -> {inner}")
            }
            Condition::ExtensionLifting { at, inner } => {
                write!(f, "extend+lift@{at} [Thm 5.9] -> {inner}")
            }
            Condition::GnfStar => write!(f, "GNF/* [Thm 5.4]"),
        }
    }
}

/// Checks the base (non-reduction) conditions of Section 4 on `(p, v)`.
fn base_condition(p: &Pattern, v: &Pattern) -> Option<Condition> {
    let d = p.depth();
    let k = v.depth();
    debug_assert!(k <= d);
    if k == d {
        return Some(Condition::EqualDepth);
    }
    // Theorem 4.3.
    if stability_witness(&p.sub_pattern_geq(k)).is_some() {
        return Some(Condition::StableSubpattern);
    }
    // Theorem 4.4.
    if selection_prefix_all_child(p, k) {
        return Some(Condition::QueryPrefixAllChild);
    }
    // Theorem 4.9.
    if k >= 1 && p_axis_at(v, k) == Axis::Descendant {
        return Some(Condition::DescendantIntoViewOutput);
    }
    // Theorem 4.10.
    if selection_prefix_all_child(v, k) {
        return Some(Condition::ViewSelectionAllChild);
    }
    // Theorem 4.16.
    if let Some(j) = deepest_descendant_selection_edge(p) {
        if j <= k && p_axis_at(v, j) == Axis::Descendant {
            return Some(Condition::CorrespondingLastDescendant { depth: j });
        }
    }
    None
}

fn p_axis_at(q: &Pattern, i: usize) -> Axis {
    q.axis(q.k_node(i))
}

/// Searches for a completeness certificate for the instance `(p, v)`:
/// the Section 4 conditions first, then the Section 5 reductions (each of
/// which recurses on a transformed instance with the *same* natural
/// candidates), and finally GNF/*.
///
/// `fuel` bounds the reduction-chain length; reductions can otherwise cycle
/// (e.g. the `∗//` reduction maps its own output to itself).
pub fn find_condition(p: &Pattern, v: &Pattern, fuel: usize) -> Option<Condition> {
    if let Some(c) = base_condition(p, v) {
        return Some(c);
    }
    // Theorem 5.4 — cheap and syntactic, so it is tried before the
    // instance-transforming reductions.
    if is_gnf_star(p) {
        return Some(Condition::GnfStar);
    }
    let d = p.depth();
    let k = v.depth();
    if fuel > 0 {
        // Section 5.1: reduce at the deepest stable suffix P≥i, i ≤ k.
        for i in (1..=k).rev() {
            if stability_witness(&p.sub_pattern_geq(i)).is_some() {
                let p_red = p.sub_pattern_geq(i);
                let v_red = v.sub_pattern_geq(i);
                if let Some(inner) = find_condition(&p_red, &v_red, fuel - 1) {
                    return Some(Condition::StableSuffixReduction {
                        at: i,
                        inner: Box::new(inner),
                    });
                }
            }
        }
        // Section 5.2: cut above the deepest descendant selection edge of V.
        if let Some(i) = deepest_descendant_selection_edge(v) {
            let p_red = Pattern::prefix_descendant(NodeTest::Wildcard, &p.sub_pattern_geq(i));
            let v_red = Pattern::prefix_descendant(NodeTest::Wildcard, &v.sub_pattern_geq(i));
            // The reduced instance reproduces itself under this reduction;
            // only recurse if it differs from (p, v).
            if !p_red.structurally_eq(p) || !v_red.structurally_eq(v) {
                if let Some(inner) = find_condition(&p_red, &v_red, fuel - 1) {
                    return Some(Condition::SlashSlashReduction { at: i, inner: Box::new(inner) });
                }
            }
        }
        // Section 5.3: extension + output lifting at a Σ-labeled j-node.
        for j in (k..=d).rev() {
            if !p.test(p.k_node(j)).is_wildcard() {
                let mu = Label::fresh("µ");
                let p_tr = p.extend(NodeTest::Label(mu)).lift_output(j);
                let v_tr = v.extend(NodeTest::Wildcard);
                if let Some(inner) = find_condition(&p_tr, &v_tr, fuel - 1) {
                    return Some(Condition::ExtensionLifting { at: j, inner: Box::new(inner) });
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpv_pattern::parse_xpath;

    fn pat(s: &str) -> Pattern {
        parse_xpath(s).expect("pattern parses")
    }

    fn cond(ps: &str, vs: &str) -> Option<Condition> {
        find_condition(&pat(ps), &pat(vs), 3)
    }

    #[test]
    fn equal_depth() {
        assert_eq!(cond("a/b[c]", "a/*"), Some(Condition::EqualDepth));
    }

    #[test]
    fn thm_4_3_stable_subpattern() {
        // P>=1 = b//c has a labeled root => stable.
        let c = cond("a//b//c", "a//*");
        assert_eq!(c, Some(Condition::StableSubpattern));
    }

    #[test]
    fn thm_4_4_query_prefix() {
        // P's first selection edge is a child edge; P>=1 = *//* unstable.
        let c = cond("a/*//*", "a//*");
        assert_eq!(c, Some(Condition::QueryPrefixAllChild));
    }

    #[test]
    fn thm_4_9_descendant_into_view_output() {
        // P>=1 = *//* unstable; P's prefix has a descendant edge; V's last
        // edge is descendant.
        let c = cond("a//*//*", "a//*");
        assert_eq!(c, Some(Condition::DescendantIntoViewOutput));
    }

    #[test]
    fn thm_4_10_view_all_child() {
        let c = cond("a//*/e[d]", "a/*");
        assert_eq!(c, Some(Condition::ViewSelectionAllChild));
    }

    #[test]
    fn thm_4_16_corresponding_descendant() {
        // Figure 4 shape: V = a/*//*/*; P1 = a/*//*/*/e.
        // P1's last descendant selection edge is at depth 2; V's depth-2 edge
        // is descendant. None of the earlier conditions fire:
        //  - P>=3 = */e... wait that is stable? root * depth 1, labels {e} in
        //    Q>=1 too; not stable. P1 prefix has a descendant edge; V's last
        //    edge is child; V has a descendant edge on its path.
        let c = cond("a/*//*/*/e", "a/*//*/*");
        assert_eq!(c, Some(Condition::CorrespondingLastDescendant { depth: 2 }));
    }

    #[test]
    fn fig4_linear_patterns_fall_under_gnf() {
        // The literal Figure 4 patterns P2 and P3 are linear, so the broad
        // syntactic net of Theorem 5.4 (GNF/*, via linear suffixes) already
        // certifies them; the planner prefers it over the reductions. The
        // Section 5 transformations themselves are exercised on non-linear
        // instances below and through the Theorem 5.9 transfer tests in the
        // `figures` module.
        assert_eq!(cond("a//*/*/*/e", "a/*//*/*"), Some(Condition::GnfStar));
        assert_eq!(cond("a/*//*/*/c//e", "a/*//*/*"), Some(Condition::GnfStar));
    }

    #[test]
    fn sec_5_2_reduction_needed_for_branching_query() {
        // P = a//*[*/e]/*/*/e, V = a/*//*/* (k = 3).
        // Base conditions: P>=3 = */e is unstable; P's prefix and V's path
        // both mix axes; P's deepest descendant selection edge (depth 1) has
        // a child-edge counterpart in V — Thm 4.16 fails. GNF/* dies at the
        // descendant entry into the unstable, branching P>=1. No stable
        // suffix exists at i ≤ k. The ∗// reduction at i = 2 (V's deepest
        // descendant edge) produces P' = *//*/*/e, V' = *//*/*, where the
        // last descendant edges correspond at depth 1 (Thm 4.16).
        let c = cond("a//*[*/e]/*/*/e", "a/*//*/*").expect("certificate exists");
        match &c {
            Condition::SlashSlashReduction { at, inner } => {
                assert_eq!(*at, 2);
                assert_eq!(**inner, Condition::CorrespondingLastDescendant { depth: 1 });
            }
            other => panic!("expected *// reduction, got {other}"),
        }
    }

    #[test]
    fn sec_5_3_extension_lifting_needed_for_branching_query() {
        // P = *//*[*/c]/*/c//e, V = *//*/* (k = 2).
        // Every base condition fails; GNF/* dies at depth 1 (unstable,
        // branching suffix); the ∗// reduction reproduces the instance
        // verbatim (the guard skips it); but the c-labeled 3-node admits the
        // Section 5.3 transformation, after which the depths agree (the
        // extended view gains one selection step).
        let c = cond("*//*[*/c]/*/c//e", "*//*/*").expect("certificate exists");
        match &c {
            Condition::ExtensionLifting { at, .. } => {
                // The search tries the deepest eligible j first (the e-labeled
                // 4-node); the chain bottoms out in a Thm 4.16 correspondence
                // after a second lift onto the c-node.
                assert_eq!(*at, 4);
                assert!(c.chain_len() >= 2, "got {c}");
            }
            other => panic!("expected extension+lifting, got {other}"),
        }
    }

    #[test]
    #[allow(unused_variables)]
    fn gnf_star_fallback() {
        // Linear all-wildcard suffixes: GNF/* via linearity. Construct an
        // instance dodging every earlier condition:
        //   P = a//*//*  (suffixes at 1, 2 are linear wildcards, unstable)
        //   V = a//*     -> Thm 4.9 fires (desc into out(V)). Use V with a
        //   child last edge and a descendant first edge: V = a//*/*.
        //   Then P must have depth > 2... P = a//*//*/*? Its deepest desc
        //   edge (depth 2... wait axes [D,D,C]); j=2 <= k=2, V's 2nd edge is
        //   child -> 4.16 fails. P>=2 = *[]... linear => GNF.
        let p = pat("a//*//*/*");
        let v = pat("a//*/*");
        // Base conditions all fail:
        assert!(stability_witness(&p.sub_pattern_geq(2)).is_none());
        let c = cond("a//*//*/*", "a//*/*");
        assert_eq!(c, Some(Condition::GnfStar));
    }

    #[test]
    fn no_condition_for_adversarial_instance() {
        // Build (P, V) dodging everything:
        //   V = a//*/*                      (k = 2, axes [D, C])
        //   P = a//*[*/m]/*[*/m]//*[m]      (axes [D, C, D], depth 3)
        // P's selection nodes below the root are all wildcards (killing the
        // 5.3 transformation and the stability conditions — the branch label
        // m also appears in every suffix), P>=1 is branching (killing GNF at
        // the descendant entry), P's deepest descendant edge (depth 3) is
        // deeper than V (killing Thm 4.16), V mixes axes (killing 4.9/4.10),
        // and the ∗// reduction reproduces an instance that fails for the
        // same reasons.
        let c = cond("a//*[*/m]/*[*/m]//*[m]", "a//*/*");
        assert_eq!(c, None);
    }

    #[test]
    fn condition_display_and_source() {
        let c = cond("a//*[*/e]/*/*/e", "a/*//*/*").expect("certificate");
        assert!(c.source().contains("5.6"));
        assert!(c.to_string().contains("->"));
        assert!(c.chain_len() >= 2);
    }

    #[test]
    fn fuel_zero_limits_to_base_conditions() {
        // The P2/V instance needs the 5.3 transformation; with fuel 0 only
        // base conditions + GNF are available and GNF fails (descendant entry
        // into branching unstable suffix? P2 is linear actually... P2 =
        // a/*//*/*/c//e is linear, so GNF/* holds via linearity!).
        // GNF via linear suffixes still fires — use the adversarial P.
        assert_eq!(find_condition(&pat("a//*[*/m]/*[*/m]//m[*/m]"), &pat("a//*/*"), 0), None);
        // And P2 with fuel 0 falls back to GNF/*.
        assert_eq!(
            find_condition(&pat("a/*//*/*/c//e"), &pat("a/*//*/*"), 0),
            Some(Condition::GnfStar)
        );
    }
}
