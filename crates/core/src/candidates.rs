//! Natural rewriting candidates (Section 4).
//!
//! Given a query `P` of depth `d` and a view `V` of depth `k ≤ d`, the two
//! **natural candidates** for a rewriting are
//!
//! * `P≥k` — the k-sub-pattern of `P`, and
//! * `P≥k_r//` — the same with the edges emanating from its root relaxed to
//!   descendant edges.
//!
//! Both are constructible in linear time. A candidate `R'` is a rewriting iff
//! `R' ◦ V ≡ P`, which [`test_candidate`] decides with the (coNP) equivalence
//! procedure of `xpv-semantics` — the only non-polynomial step of the whole
//! algorithm, exactly as the paper advertises.

use xpv_pattern::{compose, Pattern};
use xpv_semantics::{ContainmentOptions, ContainmentOracle};

/// A natural candidate, tagged with whether it is the relaxed one.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// The candidate pattern.
    pub pattern: Pattern,
    /// `true` for `P≥k_r//`, `false` for `P≥k`.
    pub relaxed: bool,
}

/// The natural candidates w.r.t. `p` and `v` (Section 4). Returns one or two
/// candidates: the relaxed variant is omitted when it coincides with `P≥k`
/// (no child edges emanate from the root of `P≥k`).
///
/// # Panics
///
/// Panics if `v.depth() > p.depth()` (no candidates exist; Proposition 3.1
/// rules out rewritings altogether).
pub fn natural_candidates(p: &Pattern, v: &Pattern) -> Vec<Candidate> {
    let k = v.depth();
    assert!(k <= p.depth(), "natural candidates undefined for views deeper than the query");
    let base = p.sub_pattern_geq(k);
    let relaxed = base.relax_root_edges();
    let mut out = vec![Candidate { pattern: base.clone(), relaxed: false }];
    if !relaxed.structurally_eq(&base) {
        out.push(Candidate { pattern: relaxed, relaxed: true });
    }
    out
}

/// Statistics from candidate testing (surfaced by the benchmark harness).
#[derive(Clone, Copy, Debug, Default)]
pub struct CandidateTestStats {
    /// Number of equivalence tests performed (each is two containments).
    pub equivalence_tests: u32,
    /// Total canonical models enumerated across all tests.
    pub models_checked: u64,
    /// Containments settled by the homomorphism fast path.
    pub hom_hits: u32,
}

/// Tests whether `r` is a rewriting of `p` using `v`, i.e. `r ◦ v ≡ p`.
/// Label clashes (`r ◦ v = Υ`) are never rewritings since `p` is satisfiable.
///
/// Convenience wrapper running a fresh [`ContainmentOracle`]; planner-scale
/// callers use [`test_candidate_with_oracle`] so verdicts are shared.
pub fn test_candidate(
    p: &Pattern,
    v: &Pattern,
    r: &Pattern,
    opts: &ContainmentOptions,
    stats: &mut CandidateTestStats,
) -> bool {
    let oracle = ContainmentOracle::with_options(*opts);
    test_candidate_with_oracle(p, v, r, &oracle, stats)
}

/// [`test_candidate`] deciding both containments through a shared `oracle`:
/// repeated candidate tests on overlapping instances reuse each other's
/// verdicts (and homomorphism witnesses) instead of recomputing them.
pub fn test_candidate_with_oracle(
    p: &Pattern,
    v: &Pattern,
    r: &Pattern,
    oracle: &ContainmentOracle,
    stats: &mut CandidateTestStats,
) -> bool {
    let Some(rv) = compose(r, v) else {
        return false;
    };
    stats.equivalence_tests += 1;
    let before = oracle.stats();
    let fwd = oracle.contained(&rv, p);
    let holds = fwd && oracle.contained(p, &rv);
    let delta = oracle.stats().since(&before);
    stats.models_checked += delta.models_checked;
    stats.hom_hits += u32::try_from(delta.hom_fast_path_hits).unwrap_or(u32::MAX);
    holds
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpv_pattern::parse_xpath;

    fn pat(s: &str) -> Pattern {
        parse_xpath(s).expect("pattern parses")
    }

    #[test]
    fn two_candidates_when_root_has_child_edges() {
        let p = pat("a[b]//*/e[d]");
        let v = pat("a[b]/*");
        let cands = natural_candidates(&p, &v);
        assert_eq!(cands.len(), 2);
        assert_eq!(cands[0].pattern.to_string(), "*/e[d]");
        assert!(!cands[0].relaxed);
        assert_eq!(cands[1].pattern.to_string(), "*//e[d]");
        assert!(cands[1].relaxed);
    }

    #[test]
    fn one_candidate_when_all_root_edges_are_descendant() {
        let p = pat("a//b//c");
        let v = pat("a//b");
        let cands = natural_candidates(&p, &v);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].pattern.to_string(), "b//c");
    }

    #[test]
    fn single_node_candidate() {
        let p = pat("a/b/c");
        let v = pat("a/b/*");
        let cands = natural_candidates(&p, &v);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].pattern.to_string(), "c");
    }

    #[test]
    fn candidate_testing_fig2() {
        // Reconstructed Figure 2: P>=1 fails, P>=1_r// succeeds.
        let p = pat("a[b]//*/e[d]");
        let v = pat("a[b]/*");
        let cands = natural_candidates(&p, &v);
        let opts = ContainmentOptions::default();
        let mut stats = CandidateTestStats::default();
        assert!(!test_candidate(&p, &v, &cands[0].pattern, &opts, &mut stats));
        assert!(test_candidate(&p, &v, &cands[1].pattern, &opts, &mut stats));
        assert!(stats.equivalence_tests >= 2);
    }

    #[test]
    fn clash_candidate_is_rejected() {
        let p = pat("a/b/c");
        let v = pat("a/b/x");
        // Candidate c composed with V clashes (glb(c, x) = ⋄).
        let cands = natural_candidates(&p, &v);
        let mut stats = CandidateTestStats::default();
        assert!(!test_candidate(
            &p,
            &v,
            &cands[0].pattern,
            &ContainmentOptions::default(),
            &mut stats
        ));
        assert_eq!(stats.equivalence_tests, 0);
    }

    #[test]
    #[should_panic(expected = "deeper")]
    fn deeper_view_panics() {
        let p = pat("a/b");
        let v = pat("a/b/c");
        let _ = natural_candidates(&p, &v);
    }
}
