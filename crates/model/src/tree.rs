//! Rooted, labeled, **unordered** trees — the paper's XML documents.
//!
//! A [`Tree`] is an arena of nodes; [`NodeId`]s are indices into the arena.
//! The root is always node 0 and nodes are stored in creation order, which for
//! all constructors in this crate family is a pre-order (parents precede
//! children). Child order is *not* semantically meaningful: embeddings
//! (Definition 2.1) never inspect sibling order, so structural equality is
//! unordered-tree isomorphism, exposed via [`Tree::canonical_key`] and
//! [`Tree::structurally_eq`].
//!
//! ## Edits and NodeId stability
//!
//! Documents are no longer immutable: [`Tree::remove_subtree`] detaches a
//! subtree and **tombstones** its slots instead of compacting the arena, so
//! every surviving [`NodeId`] keeps meaning the same node across unrelated
//! edits — the property the incremental view maintainer (`xpv-maintain`)
//! and the engine's materialized answer sets rely on. Consequently:
//!
//! * [`Tree::len`] counts **live** nodes (the semantic node count), while
//!   [`Tree::arena_len`] is the exclusive upper bound on raw `NodeId`
//!   indices — size bitsets and lookup tables by `arena_len`, count nodes
//!   with `len`;
//! * [`Tree::node_ids`] yields live nodes only; dead slots are unreachable
//!   from the root and excluded from every traversal that starts there;
//! * tombstoned slots are never reused, so an id observed once never
//!   silently re-binds to a different node;
//! * [`Tree::restore_subtree`] is the exact inverse of
//!   [`Tree::remove_subtree`] (the detached subtree keeps its internal
//!   structure), which is what makes transactional edit application
//!   (apply-then-roll-back-on-error) cheap.

use std::fmt;

use crate::label::Label;

/// Index of a node inside a [`Tree`] arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The arena index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[derive(Clone, Debug)]
struct TreeNode {
    label: Label,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    alive: bool,
}

/// A rooted labeled tree (an XML document in the paper's data model).
#[derive(Clone)]
pub struct Tree {
    nodes: Vec<TreeNode>,
    /// Number of live (non-tombstoned) nodes.
    live: usize,
}

impl Tree {
    /// Creates a tree consisting of a single root labeled `root_label`.
    pub fn new(root_label: Label) -> Tree {
        Tree {
            nodes: vec![TreeNode {
                label: root_label,
                parent: None,
                children: Vec::new(),
                alive: true,
            }],
            live: 1,
        }
    }

    /// The root node (always id 0). The root is never tombstoned.
    #[inline]
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Number of **live** nodes (the semantic size of the document).
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Exclusive upper bound on raw [`NodeId`] indices, tombstones included.
    /// Bitsets and per-node tables over a possibly-edited tree must be sized
    /// by this, not by [`Tree::len`].
    #[inline]
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether `n` is a live node (in bounds and not tombstoned).
    #[inline]
    pub fn is_alive(&self, n: NodeId) -> bool {
        self.nodes.get(n.index()).is_some_and(|node| node.alive)
    }

    /// Trees always contain at least the root; provided for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Appends a new leaf labeled `label` under `parent`, returning its id.
    pub fn add_child(&mut self, parent: NodeId, label: Label) -> NodeId {
        assert!(self.is_alive(parent), "parent out of bounds or removed");
        let id = NodeId(u32::try_from(self.nodes.len()).expect("tree too large"));
        self.nodes.push(TreeNode {
            label,
            parent: Some(parent),
            children: Vec::new(),
            alive: true,
        });
        self.nodes[parent.index()].children.push(id);
        self.live += 1;
        id
    }

    /// Detaches the subtree rooted at `n` and tombstones its slots: the
    /// nodes disappear from every root-based traversal, but their arena
    /// slots are never reused, so all *other* ids stay stable. Returns the
    /// removed ids in pre-order (`n` first).
    ///
    /// The detached subtree keeps its internal structure (labels, children),
    /// which is what lets [`Tree::restore_subtree`] undo the removal
    /// exactly — the transactional seam used by `xpv-maintain`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is the root or not a live node.
    pub fn remove_subtree(&mut self, n: NodeId) -> Vec<NodeId> {
        assert!(self.is_alive(n), "cannot remove: node is out of bounds or already removed");
        let parent = self.parent(n).expect("cannot remove the root");
        let kids = &mut self.nodes[parent.index()].children;
        let pos = kids.iter().position(|&c| c == n).expect("child link consistent");
        kids.remove(pos);
        let removed = self.descendants_inclusive(n);
        for &d in &removed {
            self.nodes[d.index()].alive = false;
        }
        self.live -= removed.len();
        removed
    }

    /// Restores a subtree previously detached by [`Tree::remove_subtree`]:
    /// re-attaches `n` to its (still live) parent and revives every node of
    /// the detached subtree. The exact inverse of the removal as long as no
    /// node *inside* the subtree was edited in between.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a tombstoned node or its recorded parent is not
    /// live.
    pub fn restore_subtree(&mut self, n: NodeId) {
        assert!(
            n.index() < self.nodes.len() && !self.nodes[n.index()].alive,
            "restore_subtree: node is not a tombstone"
        );
        let parent = self.nodes[n.index()].parent.expect("removed subtrees have a parent");
        assert!(self.is_alive(parent), "restore_subtree: parent is not live");
        let revived = self.descendants_inclusive(n);
        for &d in &revived {
            self.nodes[d.index()].alive = true;
        }
        self.live += revived.len();
        self.nodes[parent.index()].children.push(n);
    }

    /// The label of `n`.
    #[inline]
    pub fn label(&self, n: NodeId) -> Label {
        self.nodes[n.index()].label
    }

    /// Relabels node `n` (used by canonical-model construction and the
    /// `Relabel` document edit).
    pub fn set_label(&mut self, n: NodeId, label: Label) {
        assert!(self.is_alive(n), "cannot relabel: node is out of bounds or removed");
        self.nodes[n.index()].label = label;
    }

    /// The parent of `n` (`None` for the root).
    #[inline]
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        self.nodes[n.index()].parent
    }

    /// The children of `n`, in insertion order (order carries no meaning).
    #[inline]
    pub fn children(&self, n: NodeId) -> &[NodeId] {
        &self.nodes[n.index()].children
    }

    /// Returns `true` if `n` has no children.
    #[inline]
    pub fn is_leaf(&self, n: NodeId) -> bool {
        self.nodes[n.index()].children.is_empty()
    }

    /// All **live** node ids in arena order (a pre-order for trees built
    /// top-down; ascending, but not contiguous once subtrees were removed).
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId).filter(|&n| self.nodes[n.index()].alive)
    }

    /// Depth of `n`: number of edges from the root (root has depth 0).
    pub fn depth(&self, n: NodeId) -> usize {
        let mut d = 0;
        let mut cur = n;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// Height of the tree: the maximal number of edges on a root-to-leaf path.
    pub fn height(&self) -> usize {
        self.node_ids().filter(|&n| self.is_leaf(n)).map(|n| self.depth(n)).max().unwrap_or(0)
    }

    /// Returns `true` if `a` is a **proper** ancestor of `b`.
    pub fn is_proper_ancestor(&self, a: NodeId, b: NodeId) -> bool {
        let mut cur = self.parent(b);
        while let Some(p) = cur {
            if p == a {
                return true;
            }
            cur = self.parent(p);
        }
        false
    }

    /// Pre-order traversal of the subtree rooted at `n` (including `n`).
    pub fn descendants_inclusive(&self, n: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![n];
        while let Some(cur) = stack.pop() {
            out.push(cur);
            // Reverse keeps pre-order stable; order is cosmetic anyway.
            for &c in self.children(cur).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Pre-order traversal of the subtree rooted at `n` (including `n`),
    /// invoking `f` on every node without materializing a `Vec` — the
    /// allocation-free counterpart of [`Tree::descendants_inclusive`] for
    /// hot paths (selection propagation, embedding extraction).
    pub fn for_each_descendant(&self, n: NodeId, mut f: impl FnMut(NodeId)) {
        fn rec(t: &Tree, n: NodeId, f: &mut impl FnMut(NodeId)) {
            f(n);
            for &c in t.children(n) {
                rec(t, c, f);
            }
        }
        rec(self, n, &mut f);
    }

    /// The subtree `t↓n` ("t sub n" in the paper: the subtree of `t` rooted at
    /// `n`) copied out as an independent tree. Returns the new tree and, for
    /// callers that need it, the mapping from old ids to new ids.
    pub fn subtree(&self, n: NodeId) -> (Tree, Vec<(NodeId, NodeId)>) {
        let mut t = Tree::new(self.label(n));
        let mut map = vec![(n, t.root())];
        let mut stack = vec![(n, t.root())];
        while let Some((old, new)) = stack.pop() {
            for &c in self.children(old) {
                let nc = t.add_child(new, self.label(c));
                map.push((c, nc));
                stack.push((c, nc));
            }
        }
        (t, map)
    }

    /// Grafts a copy of `other` under `parent`, returning the id of the copy
    /// of `other`'s root.
    pub fn attach_tree(&mut self, parent: NodeId, other: &Tree) -> NodeId {
        let new_root = self.add_child(parent, other.label(other.root()));
        let mut stack = vec![(other.root(), new_root)];
        while let Some((old, new)) = stack.pop() {
            for &c in other.children(old) {
                let nc = self.add_child(new, other.label(c));
                stack.push((c, nc));
            }
        }
        new_root
    }

    /// A canonical serialization of the subtree at `n` under unordered-tree
    /// isomorphism: two subtrees have equal keys iff they are isomorphic as
    /// unordered labeled trees.
    pub fn canonical_key_at(&self, n: NodeId) -> String {
        let mut s = String::new();
        self.canonical_key_into(n, &mut s);
        s
    }

    /// Appends the canonical key of the subtree at `n` to `out` — the
    /// buffer-reusing form of [`Tree::canonical_key_at`], so callers that
    /// serialize many subtrees (the engine's `answer_value_set`) pay one
    /// growing buffer instead of a fresh `String` per level.
    pub fn canonical_key_into(&self, n: NodeId, out: &mut String) {
        let mut child_keys: Vec<String> =
            self.children(n).iter().map(|&c| self.canonical_key_at(c)).collect();
        child_keys.sort();
        out.push('(');
        out.push_str(self.label(n).name());
        for k in &child_keys {
            out.push_str(k);
        }
        out.push(')');
    }

    /// Canonical key of the whole tree (see [`Tree::canonical_key_at`]).
    pub fn canonical_key(&self) -> String {
        self.canonical_key_at(self.root())
    }

    /// Unordered-tree isomorphism test.
    pub fn structurally_eq(&self, other: &Tree) -> bool {
        self.len() == other.len() && self.canonical_key() == other.canonical_key()
    }

    /// The multiset of labels used in the tree, deduplicated and sorted.
    pub fn label_set(&self) -> Vec<Label> {
        let mut ls: Vec<Label> = self.node_ids().map(|n| self.label(n)).collect();
        ls.sort();
        ls.dedup();
        ls
    }
}

impl fmt::Debug for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tree({})", crate::xml::to_xml(self))
    }
}

/// Builds a tree from a nested closure DSL. Mostly a convenience for tests:
///
/// ```
/// use xpv_model::{Label, TreeBuilder};
/// let t = TreeBuilder::root("a", |b| {
///     b.leaf("b");
///     b.child("c", |b| {
///         b.leaf("d");
///     });
/// });
/// assert_eq!(t.len(), 4);
/// ```
pub struct TreeBuilder<'t> {
    tree: &'t mut Tree,
    cur: NodeId,
}

impl TreeBuilder<'_> {
    /// Builds a tree whose root is labeled `root_label`; `f` populates it.
    pub fn root(root_label: &str, f: impl FnOnce(&mut TreeBuilder<'_>)) -> Tree {
        let mut tree = Tree::new(Label::new(root_label));
        let root = tree.root();
        let mut b = TreeBuilder { tree: &mut tree, cur: root };
        f(&mut b);
        tree
    }

    /// Adds a leaf child.
    pub fn leaf(&mut self, label: &str) -> &mut Self {
        self.tree.add_child(self.cur, Label::new(label));
        self
    }

    /// Adds an internal child and recurses into it.
    pub fn child(&mut self, label: &str, f: impl FnOnce(&mut TreeBuilder<'_>)) -> &mut Self {
        let id = self.tree.add_child(self.cur, Label::new(label));
        let mut b = TreeBuilder { tree: self.tree, cur: id };
        f(&mut b);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc_tree() -> Tree {
        // a(b, c(d))
        TreeBuilder::root("a", |b| {
            b.leaf("b");
            b.child("c", |b| {
                b.leaf("d");
            });
        })
    }

    #[test]
    fn construction_and_navigation() {
        let t = abc_tree();
        assert_eq!(t.len(), 4);
        assert_eq!(t.label(t.root()).name(), "a");
        let kids = t.children(t.root());
        assert_eq!(kids.len(), 2);
        assert_eq!(t.parent(kids[0]), Some(t.root()));
        assert_eq!(t.parent(t.root()), None);
    }

    #[test]
    fn depth_and_height() {
        let t = abc_tree();
        assert_eq!(t.height(), 2);
        let c = t.children(t.root())[1];
        let d = t.children(c)[0];
        assert_eq!(t.depth(t.root()), 0);
        assert_eq!(t.depth(c), 1);
        assert_eq!(t.depth(d), 2);
    }

    #[test]
    fn proper_ancestor() {
        let t = abc_tree();
        let c = t.children(t.root())[1];
        let d = t.children(c)[0];
        assert!(t.is_proper_ancestor(t.root(), d));
        assert!(t.is_proper_ancestor(c, d));
        assert!(!t.is_proper_ancestor(d, c));
        assert!(!t.is_proper_ancestor(d, d));
    }

    #[test]
    fn subtree_extraction() {
        let t = abc_tree();
        let c = t.children(t.root())[1];
        let (sub, map) = t.subtree(c);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.label(sub.root()).name(), "c");
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn attach_tree_grafts_copy() {
        let mut t = abc_tree();
        let graft = TreeBuilder::root("x", |b| {
            b.leaf("y");
        });
        let at = t.attach_tree(t.root(), &graft);
        assert_eq!(t.label(at).name(), "x");
        assert_eq!(t.len(), 6);
        assert_eq!(t.children(at).len(), 1);
    }

    #[test]
    fn unordered_isomorphism() {
        let t1 = TreeBuilder::root("a", |b| {
            b.leaf("b");
            b.leaf("c");
        });
        let t2 = TreeBuilder::root("a", |b| {
            b.leaf("c");
            b.leaf("b");
        });
        assert!(t1.structurally_eq(&t2));
        let t3 = TreeBuilder::root("a", |b| {
            b.leaf("c");
            b.leaf("c");
        });
        assert!(!t1.structurally_eq(&t3));
    }

    #[test]
    fn isomorphism_is_not_fooled_by_depth_shift() {
        // a(b(c)) vs a(b, c): same label multiset, different shape.
        let t1 = TreeBuilder::root("a", |b| {
            b.child("b", |b| {
                b.leaf("c");
            });
        });
        let t2 = TreeBuilder::root("a", |b| {
            b.leaf("b");
            b.leaf("c");
        });
        assert!(!t1.structurally_eq(&t2));
    }

    #[test]
    fn descendants_inclusive_covers_subtree() {
        let t = abc_tree();
        let all = t.descendants_inclusive(t.root());
        assert_eq!(all.len(), 4);
        let c = t.children(t.root())[1];
        assert_eq!(t.descendants_inclusive(c).len(), 2);
    }

    #[test]
    fn for_each_descendant_visits_the_same_nodes() {
        let mut t = abc_tree();
        let c = t.children(t.root())[1];
        for anchor in [t.root(), c] {
            let mut seen = Vec::new();
            t.for_each_descendant(anchor, |n| seen.push(n));
            let mut expected = t.descendants_inclusive(anchor);
            seen.sort();
            expected.sort();
            assert_eq!(seen, expected);
        }
        // Tombstoned subtrees are invisible from live anchors.
        t.remove_subtree(c);
        let mut seen = Vec::new();
        t.for_each_descendant(t.root(), |n| seen.push(n));
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn label_set_is_sorted_dedup() {
        let t = TreeBuilder::root("a", |b| {
            b.leaf("b");
            b.leaf("b");
            b.leaf("a");
        });
        let ls = t.label_set();
        assert_eq!(ls.len(), 2);
    }

    #[test]
    fn relabel() {
        let mut t = abc_tree();
        t.set_label(t.root(), Label::bottom());
        assert!(t.label(t.root()).is_bottom());
    }

    #[test]
    fn remove_subtree_tombstones_without_shifting_ids() {
        let mut t = abc_tree(); // a(b, c(d))
        let b = t.children(t.root())[0];
        let c = t.children(t.root())[1];
        let d = t.children(c)[0];
        let removed = t.remove_subtree(c);
        assert_eq!(removed, vec![c, d]);
        assert_eq!(t.len(), 2, "live count shrinks");
        assert_eq!(t.arena_len(), 4, "arena keeps the slots");
        assert!(t.is_alive(b) && !t.is_alive(c) && !t.is_alive(d));
        // Unrelated ids are untouched and traversals skip the tombstones.
        assert_eq!(t.children(t.root()), &[b]);
        assert_eq!(t.node_ids().collect::<Vec<_>>(), vec![t.root(), b]);
        assert_eq!(t.canonical_key(), "(a(b))");
        // New nodes never reuse tombstoned slots.
        let e = t.add_child(b, Label::new("e"));
        assert_eq!(e.index(), 4);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn restore_subtree_is_the_exact_inverse() {
        let mut t = abc_tree();
        let key = t.canonical_key();
        let c = t.children(t.root())[1];
        t.remove_subtree(c);
        assert_ne!(t.canonical_key(), key);
        t.restore_subtree(c);
        assert_eq!(t.canonical_key(), key);
        assert_eq!(t.len(), 4);
        assert!(t.is_alive(c));
    }

    #[test]
    #[should_panic(expected = "cannot remove the root")]
    fn removing_the_root_is_rejected() {
        let mut t = abc_tree();
        t.remove_subtree(t.root());
    }

    #[test]
    #[should_panic(expected = "already removed")]
    fn double_removal_is_rejected() {
        let mut t = abc_tree();
        let c = t.children(t.root())[1];
        t.remove_subtree(c);
        t.remove_subtree(c);
    }

    #[test]
    #[should_panic(expected = "out of bounds or removed")]
    fn adding_under_a_tombstone_is_rejected() {
        let mut t = abc_tree();
        let c = t.children(t.root())[1];
        t.remove_subtree(c);
        t.add_child(c, Label::new("x"));
    }
}
