//! # xpv-model — documents for the XPath-views system
//!
//! This crate is the lowest layer of the `xpath-views` workspace, a Rust
//! reproduction of *On Rewriting XPath Queries Using Views* (Afrati et al.,
//! EDBT 2009). It provides the paper's **data model**:
//!
//! * [`Label`] — interned labels from the alphabet `Σ`, including the reserved
//!   canonical-model label `⊥` and fresh-label generation (for `µ`);
//! * [`Tree`] — rooted, labeled, unordered trees (XML documents `T_Σ`), stored
//!   as arenas with cheap navigation and unordered-isomorphism keys;
//! * [`parse_xml`] / [`to_xml`] — an element-only XML subset;
//! * [`BitSet`] — the set representation used by the embedding matcher;
//! * [`FlatTree`] — a frozen struct-of-arrays snapshot of a tree (label
//!   array, CSR children, parent array, live mask, per-label postings) that
//!   the word-parallel matcher in `xpv-semantics` runs against;
//! * [`AnswerArena`] — a per-batch bump arena of answer node runs with
//!   `Copy` [`AnswerRef`] handles, the serving layer's zero-allocation
//!   return lane.
//!
//! Patterns (queries and views) live one layer up, in `xpv-pattern`.

pub mod arena;
pub mod bitset;
pub mod flat;
pub mod label;
pub mod tree;
pub mod xml;

pub use arena::{AnswerArena, AnswerRef};
pub use bitset::BitSet;
pub use flat::{FlatTree, NO_PARENT};
pub use label::{Label, BOTTOM_NAME};
pub use tree::{NodeId, Tree, TreeBuilder};
pub use xml::{parse_xml, to_xml, XmlError};
