//! A bump arena for answer **node runs** — the zero-allocation return
//! lane of the serving hot path.
//!
//! Answering a batch used to allocate one `Vec<NodeId>` per answer, even
//! when the route came from the plan memo and the nodes from a shared
//! flat evaluation. An [`AnswerArena`] replaces those per-answer vectors
//! with one growable buffer per batch: each answer appends its run of
//! node ids and gets back an [`AnswerRef`] — a `(offset, len)` handle,
//! `Copy`, eight bytes. Repeated queries in a batch fan out by copying
//! the *handle*, sharing one run; the wire encoder reads the run as a
//! borrowed slice ([`AnswerArena::get`]) straight into the response
//! frame. Cleared arenas ([`AnswerArena::clear`]) keep their capacity,
//! so a serving loop reaches a steady state with **zero** per-answer
//! heap traffic.
//!
//! A ref is only meaningful against the arena that issued it (and only
//! until that arena is cleared); [`AnswerArena::get`] panics on a ref
//! from elsewhere that points past the end, and silently returns wrong
//! nodes on one that happens to fit — the same discipline as any index
//! handed across data structures.

use crate::tree::NodeId;

/// A handle to one run of nodes in an [`AnswerArena`]: eight bytes,
/// `Copy`, cheap to fan out to duplicate queries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AnswerRef {
    offset: u32,
    len: u32,
}

impl AnswerRef {
    /// Number of nodes in the run.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the run is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A per-batch bump arena of [`NodeId`] runs (see the module docs).
#[derive(Debug, Default)]
pub struct AnswerArena {
    nodes: Vec<NodeId>,
}

impl AnswerArena {
    /// An empty arena; the first batch grows it to the workload's size.
    pub fn new() -> AnswerArena {
        AnswerArena { nodes: Vec::new() }
    }

    /// An arena pre-sized for `nodes` total answer nodes.
    pub fn with_capacity(nodes: usize) -> AnswerArena {
        AnswerArena { nodes: Vec::with_capacity(nodes) }
    }

    /// Appends one answer's run and returns its handle.
    pub fn push_run(&mut self, run: impl IntoIterator<Item = NodeId>) -> AnswerRef {
        let offset = self.nodes.len() as u32;
        self.nodes.extend(run);
        AnswerRef { offset, len: self.nodes.len() as u32 - offset }
    }

    /// The run behind `r`, as a borrowed slice.
    pub fn get(&self, r: AnswerRef) -> &[NodeId] {
        &self.nodes[r.offset as usize..(r.offset + r.len) as usize]
    }

    /// Total nodes stored across all runs.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Whether any run has been pushed since the last clear.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Forgets every run but keeps the allocation, invalidating all
    /// outstanding refs — call between batches to reuse the buffer.
    pub fn clear(&mut self) {
        self.nodes.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_round_trip_and_share_storage() {
        let mut arena = AnswerArena::new();
        let a = arena.push_run([NodeId(1), NodeId(2)]);
        let b = arena.push_run([]);
        let c = arena.push_run([NodeId(7)]);
        assert_eq!(arena.get(a), &[NodeId(1), NodeId(2)]);
        assert_eq!(arena.get(b), &[] as &[NodeId]);
        assert!(b.is_empty());
        assert_eq!(arena.get(c), &[NodeId(7)]);
        assert_eq!(arena.node_count(), 3);
        // Handles are Copy: fanning out an answer copies 8 bytes, not nodes.
        let a2 = a;
        assert_eq!(arena.get(a2), arena.get(a));
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut arena = AnswerArena::with_capacity(64);
        arena.push_run((0..50).map(NodeId));
        arena.clear();
        assert!(arena.is_empty());
        assert_eq!(arena.node_count(), 0);
        let r = arena.push_run([NodeId(3)]);
        assert_eq!(arena.get(r), &[NodeId(3)]);
    }
}
