//! A frozen struct-of-arrays snapshot of a [`Tree`] for the hot matcher.
//!
//! The embedding matcher spends its time asking three questions about a
//! document: *which nodes carry label ℓ*, *who are `n`'s children*, and
//! *who is `n`'s parent*. The arena [`Tree`] answers them through a
//! pointer-chasing `Vec<TreeNode>` whose per-node `Vec<NodeId>` child lists
//! scatter across the heap. [`FlatTree`] re-packs one tree into contiguous
//! arrays so those questions are answered at memory-bandwidth speed:
//!
//! * **`labels`** — one `u32` label id per arena slot (`0` for tombstones;
//!   real label ids are `NonZeroU32`, so `0` is never a live label);
//! * **CSR children** — `child_offsets` (length `arena_len + 1`) indexing
//!   into one flat `children` array, exactly the compressed-sparse-row
//!   layout used for graph adjacency;
//! * **`parents`** — one `u32` per slot (`NO_PARENT` for the root and for
//!   tombstones);
//! * **`live`** — the live-node mask as a [`BitSet`], the seed set for
//!   wildcard pattern nodes;
//! * **per-label posting bitsets** — for every label in the document, the
//!   bitset of live slots carrying it, the seed set for labeled pattern
//!   nodes.
//!
//! ## Shared-freeze contract
//!
//! A `FlatTree` is **immutable**: it is built once by [`FlatTree::freeze`]
//! and never updated. The engine's `ShardedViewCache` constructs **one**
//! per edit batch, immediately after the batch's edits are applied to the
//! cloned document and *before* view maintenance runs: the same frozen
//! snapshot first drives the word-parallel region re-evaluations (seeded
//! from postings intersected with [`FlatTree::subtree_mask`]) and is then
//! published by the copy-on-write snapshot swap, so every reader that
//! observes the new document also observes its matching flat form. Readers
//! therefore never see a torn (half-updated) index, and the `O(n)` rebuild
//! is paid once per batch and shared between maintenance and serving.
//!
//! ## Why posting lists are sound under tombstoning
//!
//! [`Tree::remove_subtree`] tombstones slots instead of compacting, so raw
//! `NodeId` indices stay stable and answers materialized before an edit
//! remain meaningful after it. The flat form keeps that indexing (slot `i`
//! here is `NodeId(i)` there) but masks tombstones out at freeze time: dead
//! slots get label id `0`, an empty CSR range, `NO_PARENT`, a cleared bit
//! in `live`, and no posting entry. This is sound because a tombstoned
//! subtree is *detached* from its live parent at removal — no live node
//! lists a dead child, and a live node's parent is always live — so a
//! matcher that seeds from postings (live bits only) and walks CSR edges
//! (live edges only) can never reach a dead slot, while the reference
//! matcher over the un-flattened `Tree` skips dead nodes explicitly. The
//! two agree bit-for-bit on live slots.

use std::collections::HashMap;

use crate::bitset::BitSet;
use crate::label::Label;
use crate::tree::{NodeId, Tree};

/// Sentinel parent index for the root and for tombstoned slots.
pub const NO_PARENT: u32 = u32::MAX;

/// A frozen struct-of-arrays view of one [`Tree`] (see the module docs for
/// the layout and the freeze-on-swap contract).
#[derive(Clone, Debug)]
pub struct FlatTree {
    labels: Vec<u32>,
    parents: Vec<u32>,
    child_offsets: Vec<u32>,
    children: Vec<u32>,
    live: BitSet,
    postings: HashMap<u32, BitSet>,
    live_count: usize,
}

impl FlatTree {
    /// Builds the flat form of `t`. `O(arena_len)` time and space; the
    /// result indexes slots exactly like `t` (slot `i` ↔ `NodeId(i)`).
    pub fn freeze(t: &Tree) -> FlatTree {
        let nt = t.arena_len();
        let mut labels = vec![0u32; nt];
        let mut parents = vec![NO_PARENT; nt];
        let mut child_offsets = Vec::with_capacity(nt + 1);
        let mut children = Vec::with_capacity(nt.saturating_sub(1));
        let mut live = BitSet::new(nt);
        let mut postings: HashMap<u32, BitSet> = HashMap::new();
        let mut live_count = 0usize;

        for i in 0..nt {
            child_offsets.push(children.len() as u32);
            let n = NodeId(i as u32);
            if !t.is_alive(n) {
                continue;
            }
            live_count += 1;
            live.insert(i);
            let lid = t.label(n).id();
            labels[i] = lid;
            postings.entry(lid).or_insert_with(|| BitSet::new(nt)).insert(i);
            if let Some(p) = t.parent(n) {
                parents[i] = p.0;
            }
            // Live nodes never list tombstoned children (removal detaches
            // the subtree), so the CSR edge set is exactly the live edges.
            children.extend(t.children(n).iter().map(|c| c.0));
        }
        child_offsets.push(children.len() as u32);

        FlatTree { labels, parents, child_offsets, children, live, postings, live_count }
    }

    /// Exclusive upper bound on slot indices, tombstones included — the
    /// capacity every bitset over this tree must use (mirrors
    /// [`Tree::arena_len`]).
    #[inline]
    pub fn arena_len(&self) -> usize {
        self.labels.len()
    }

    /// Number of live nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// Trees always contain at least the root.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The root slot (always 0; the root is never tombstoned).
    #[inline]
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Whether slot `i` is a live node.
    #[inline]
    pub fn is_alive(&self, i: usize) -> bool {
        i < self.arena_len() && self.live.contains(i)
    }

    /// The label id of slot `i` (`0` for tombstones).
    #[inline]
    pub fn label_id(&self, i: usize) -> u32 {
        self.labels[i]
    }

    /// The parent slot of `i`, or [`NO_PARENT`] for the root and tombstones.
    #[inline]
    pub fn parent(&self, i: usize) -> u32 {
        self.parents[i]
    }

    /// The child slots of `i` (empty for tombstones).
    #[inline]
    pub fn children(&self, i: usize) -> &[u32] {
        let lo = self.child_offsets[i] as usize;
        let hi = self.child_offsets[i + 1] as usize;
        &self.children[lo..hi]
    }

    /// The live-node mask — the seed set for wildcard pattern nodes.
    #[inline]
    pub fn live_mask(&self) -> &BitSet {
        &self.live
    }

    /// The posting bitset of `label` — every live slot carrying it — or
    /// `None` when the label does not occur in the document (the common
    /// fast-path for selective queries: an absent label empties the whole
    /// sub-match set without touching the tree).
    #[inline]
    pub fn posting(&self, label: Label) -> Option<&BitSet> {
        self.postings.get(&label.id())
    }

    /// The subtree mask of slot `n`: a bitset (capacity `arena_len`) with
    /// every slot of `subtree(n)` set, `n` inclusive. For a live `n` this is
    /// exactly the live slots below it (CSR edges never reach tombstones).
    /// This is the region mask the maintenance path hands to the flat
    /// matcher: seeding from `posting ∩ subtree_mask` restricts a
    /// word-parallel re-evaluation to one affected region.
    pub fn subtree_mask(&self, n: usize) -> BitSet {
        let mut mask = BitSet::new(self.arena_len());
        self.for_each_descendant(n, |i| mask.insert(i));
        mask
    }

    /// Pre-order traversal of the subtree rooted at slot `n` (inclusive),
    /// over the CSR arrays.
    pub fn for_each_descendant(&self, n: usize, mut f: impl FnMut(usize)) {
        fn rec(ft: &FlatTree, n: usize, f: &mut impl FnMut(usize)) {
            f(n);
            for &c in ft.children(n) {
                rec(ft, c as usize, f);
            }
        }
        rec(self, n, &mut f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeBuilder;

    fn abc_tree() -> Tree {
        // a(b, c(d))
        TreeBuilder::root("a", |b| {
            b.leaf("b");
            b.child("c", |b| {
                b.leaf("d");
            });
        })
    }

    #[test]
    fn freeze_mirrors_live_structure() {
        let t = abc_tree();
        let ft = FlatTree::freeze(&t);
        assert_eq!(ft.arena_len(), 4);
        assert_eq!(ft.len(), 4);
        assert_eq!(ft.children(0), &[1, 2]);
        assert_eq!(ft.children(2), &[3]);
        assert_eq!(ft.parent(0), NO_PARENT);
        assert_eq!(ft.parent(3), 2);
        for i in 0..4 {
            assert!(ft.is_alive(i));
            assert_eq!(ft.label_id(i), t.label(NodeId(i as u32)).id());
        }
        assert_eq!(ft.live_mask().count(), 4);
    }

    #[test]
    fn postings_index_labels() {
        let t = abc_tree();
        let ft = FlatTree::freeze(&t);
        let cs = ft.posting(Label::new("c")).expect("c occurs");
        assert_eq!(cs.iter().collect::<Vec<_>>(), vec![2]);
        assert!(ft.posting(Label::new("zz-not-here")).is_none());
    }

    #[test]
    fn tombstones_are_masked_out() {
        let mut t = abc_tree();
        let c = t.children(t.root())[1];
        t.remove_subtree(c); // kills c (slot 2) and d (slot 3)
        let ft = FlatTree::freeze(&t);
        assert_eq!(ft.arena_len(), 4, "slots are kept");
        assert_eq!(ft.len(), 2);
        assert!(ft.is_alive(0) && ft.is_alive(1));
        assert!(!ft.is_alive(2) && !ft.is_alive(3));
        assert_eq!(ft.label_id(2), 0);
        assert_eq!(ft.children(0), &[1], "detached child is gone from CSR");
        assert!(ft.children(2).is_empty(), "dead slots have empty ranges");
        assert_eq!(ft.parent(3), NO_PARENT);
        assert!(ft.posting(Label::new("d")).is_none(), "no posting survives removal");
        assert!(!ft.live_mask().contains(2));
    }

    #[test]
    fn for_each_descendant_matches_tree_traversal() {
        let mut t = abc_tree();
        t.add_child(t.children(t.root())[0], Label::new("e"));
        let ft = FlatTree::freeze(&t);
        let mut flat_seen = Vec::new();
        ft.for_each_descendant(0, |i| flat_seen.push(i));
        let mut tree_seen: Vec<usize> =
            t.descendants_inclusive(t.root()).iter().map(|n| n.index()).collect();
        flat_seen.sort_unstable();
        tree_seen.sort_unstable();
        assert_eq!(flat_seen, tree_seen);
    }

    #[test]
    fn subtree_mask_marks_exactly_the_subtree() {
        let mut t = abc_tree();
        t.add_child(t.children(t.root())[1], Label::new("e"));
        let ft = FlatTree::freeze(&t);
        let mask = ft.subtree_mask(2); // c(d, e)
        assert_eq!(mask.iter().collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(mask.capacity(), ft.arena_len());
        let whole = ft.subtree_mask(0);
        assert_eq!(whole.count(), ft.len());
    }

    #[test]
    fn child_indices_exceed_parent_indices() {
        // The matcher's reverse sweep relies on parents preceding children
        // in slot order; `Tree::add_child` only appends, so this holds by
        // construction — pin it down.
        let t = abc_tree();
        let ft = FlatTree::freeze(&t);
        for i in 0..ft.arena_len() {
            for &c in ft.children(i) {
                assert!((c as usize) > i);
            }
        }
    }
}
