//! A compact fixed-capacity bitset.
//!
//! The embedding matcher in `xpv-semantics` maintains, for every pattern node,
//! the set of tree nodes it can map to. Documents in the engine benchmarks
//! reach tens of thousands of nodes, so these sets are kept as `u64` words
//! rather than `HashSet`s (see the perf-book guidance on hashing and
//! allocation pressure).

/// A fixed-capacity set of `usize` values in `0..len`.
#[derive(Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set with capacity for values `0..len`.
    pub fn new(len: usize) -> BitSet {
        BitSet { words: vec![0; len.div_ceil(64)], len }
    }

    /// Capacity (the exclusive upper bound on stored values).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Inserts `i`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Removes `i`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Returns `true` if no element is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of elements.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Makes `self` an exact copy of `other` without reallocating.
    /// Capacities must match — the buffer-reuse path of the flat matcher.
    pub fn copy_from(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        self.words.copy_from_slice(&other.words);
    }

    /// Whether the two sets share any element. Word-parallel with early
    /// exit — the any-common-bit test the matcher and the intersection
    /// planner need without materializing the intersection.
    pub fn intersects(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// The smallest element, or `None` if the set is empty.
    pub fn first_set(&self) -> Option<usize> {
        self.words
            .iter()
            .enumerate()
            .find(|(_, &w)| w != 0)
            .map(|(wi, w)| wi * 64 + w.trailing_zeros() as usize)
    }

    /// The raw `u64` word array (bit `i` of the set lives at word `i / 64`,
    /// bit position `i % 64`). Exposed for word-parallel consumers like the
    /// flat matcher in `xpv-semantics`.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Iterates over set elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.count(), 3);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn iter_in_order() {
        let mut s = BitSet::new(200);
        for i in [5usize, 63, 64, 65, 190] {
            s.insert(i);
        }
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![5, 63, 64, 65, 190]);
    }

    #[test]
    fn union_and_intersection() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(1);
        a.insert(50);
        b.insert(50);
        b.insert(99);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 50, 99]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![50]);
    }

    #[test]
    fn clear_empties() {
        let mut s = BitSet::new(10);
        s.insert(3);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn zero_capacity() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn intersects_early_exit_semantics() {
        let mut a = BitSet::new(300);
        let mut b = BitSet::new(300);
        assert!(!a.intersects(&b), "empty sets are disjoint");
        a.insert(0);
        a.insert(299);
        b.insert(150);
        assert!(!a.intersects(&b));
        b.insert(299);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a), "symmetric");
        // Agreement with the naive definition on a mixed pair.
        let naive = a.iter().any(|i| b.contains(i));
        assert_eq!(a.intersects(&b), naive);
    }

    #[test]
    fn first_set_finds_lowest_bit() {
        let mut s = BitSet::new(200);
        assert_eq!(s.first_set(), None);
        s.insert(190);
        assert_eq!(s.first_set(), Some(190));
        s.insert(64);
        assert_eq!(s.first_set(), Some(64));
        s.insert(0);
        assert_eq!(s.first_set(), Some(0));
        s.remove(0);
        s.remove(64);
        assert_eq!(s.first_set(), Some(190));
    }

    #[test]
    fn words_exposes_backing_storage() {
        let mut s = BitSet::new(130);
        s.insert(0);
        s.insert(65);
        s.insert(129);
        let w = s.words();
        assert_eq!(w.len(), 3);
        assert_eq!(w[0], 1);
        assert_eq!(w[1], 2);
        assert_eq!(w[2], 2);
    }
}
