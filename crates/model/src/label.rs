//! Interned node labels.
//!
//! The paper draws document labels from an infinite alphabet `Σ`. We model `Σ`
//! with a global, thread-safe string interner: a [`Label`] is a small integer
//! handle, so label comparison (the innermost operation of every embedding
//! test) is a single integer compare.
//!
//! Two labels receive special treatment, mirroring the paper:
//!
//! * `⊥` ([`Label::bottom`]) — the reserved label used when building canonical
//!   models (Section 2.1 of the paper). Patterns are forbidden from using it.
//! * fresh labels ([`Label::fresh`]) — labels guaranteed to differ from every
//!   label interned so far, used for the `µ` label of Section 5.3 and for the
//!   "new label" constructions inside proofs (e.g. Lemma 4.11).
//!
//! Interned strings are leaked (the label universe of any run is small and
//! bounded by the workload), which lets [`Label::name`] hand out
//! `&'static str` without reference-counting.

use std::collections::HashMap;
use std::fmt;
use std::num::NonZeroU32;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};

/// An interned node label (an element of the paper's alphabet `Σ`).
///
/// Labels are cheap to copy and compare. The wildcard `*` is **not** a label:
/// it belongs to patterns, not documents, and is represented by
/// `xpv_pattern::NodeTest::Wildcard`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(NonZeroU32);

struct Interner {
    by_name: HashMap<&'static str, Label>,
    names: Vec<&'static str>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| RwLock::new(Interner { by_name: HashMap::new(), names: Vec::new() }))
}

/// The reserved spelling of the canonical-model label `⊥`.
pub const BOTTOM_NAME: &str = "\u{22a5}";

impl Label {
    /// Interns `name` and returns its handle. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty or contains characters that the XPath/XML
    /// grammars of this crate family reserve (`/`, `[`, `]`, `*`, `<`, `>`,
    /// whitespace). The label `⊥` is allowed here (documents may use it) but is
    /// rejected by pattern constructors.
    pub fn new(name: &str) -> Label {
        assert!(
            Self::is_valid_name(name),
            "invalid label name: {name:?} (must be nonempty, without /[]*<> or whitespace)"
        );
        Self::intern(name)
    }

    /// Returns whether `name` is an acceptable label spelling.
    pub fn is_valid_name(name: &str) -> bool {
        !name.is_empty()
            && !name
                .chars()
                .any(|c| c.is_whitespace() || matches!(c, '/' | '[' | ']' | '*' | '<' | '>' | '"'))
    }

    fn intern(name: &str) -> Label {
        // Fast path: already interned.
        if let Some(&l) = interner().read().expect("label interner poisoned").by_name.get(name) {
            return l;
        }
        let mut w = interner().write().expect("label interner poisoned");
        if let Some(&l) = w.by_name.get(name) {
            return l;
        }
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let id = u32::try_from(w.names.len() + 1).expect("label space exhausted");
        let label = Label(NonZeroU32::new(id).expect("nonzero by construction"));
        w.names.push(leaked);
        w.by_name.insert(leaked, label);
        label
    }

    /// The reserved label `⊥` used by canonical models (Section 2.1).
    pub fn bottom() -> Label {
        Self::intern(BOTTOM_NAME)
    }

    /// Returns `true` if this is the reserved canonical-model label `⊥`.
    pub fn is_bottom(self) -> bool {
        self == Self::bottom()
    }

    /// Returns a label that is distinct from every label interned so far
    /// (and therefore from every label appearing in any pattern or document
    /// built before this call). Used for the `µ` label of Section 5.3 and for
    /// the fresh labels inside proofs.
    pub fn fresh(prefix: &str) -> Label {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        loop {
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let candidate = format!("{prefix}\u{00b7}{n}");
            if interner()
                .read()
                .expect("label interner poisoned")
                .by_name
                .contains_key(candidate.as_str())
            {
                continue;
            }
            return Self::intern(&candidate);
        }
    }

    /// The spelling of this label.
    pub fn name(self) -> &'static str {
        interner().read().expect("label interner poisoned").names[(self.0.get() - 1) as usize]
    }

    /// A stable integer id (useful as an index key in hot paths).
    pub fn id(self) -> u32 {
        self.0.get()
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Label({})", self.name())
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl From<&str> for Label {
    fn from(s: &str) -> Label {
        Label::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a1 = Label::new("a");
        let a2 = Label::new("a");
        assert_eq!(a1, a2);
        assert_eq!(a1.name(), "a");
    }

    #[test]
    fn distinct_names_distinct_labels() {
        assert_ne!(Label::new("x1"), Label::new("x2"));
    }

    #[test]
    fn bottom_is_reserved_and_recognized() {
        assert!(Label::bottom().is_bottom());
        assert!(!Label::new("a").is_bottom());
        assert_eq!(Label::bottom(), Label::new(BOTTOM_NAME));
    }

    #[test]
    fn fresh_labels_are_unique() {
        let f1 = Label::fresh("mu");
        let f2 = Label::fresh("mu");
        assert_ne!(f1, f2);
        assert_ne!(f1, Label::new("mu\u{00b7}x"));
    }

    #[test]
    fn fresh_label_differs_from_existing() {
        let existing = Label::new("q");
        let f = Label::fresh("q");
        assert_ne!(existing, f);
    }

    #[test]
    #[should_panic(expected = "invalid label name")]
    fn empty_name_rejected() {
        let _ = Label::new("");
    }

    #[test]
    #[should_panic(expected = "invalid label name")]
    fn wildcard_name_rejected() {
        let _ = Label::new("*");
    }

    #[test]
    #[should_panic(expected = "invalid label name")]
    fn slash_name_rejected() {
        let _ = Label::new("a/b");
    }

    #[test]
    fn display_and_debug() {
        let l = Label::new("venue");
        assert_eq!(l.to_string(), "venue");
        assert_eq!(format!("{l:?}"), "Label(venue)");
    }

    #[test]
    fn ids_are_stable() {
        let l = Label::new("stable-id-check");
        assert_eq!(l.id(), Label::new("stable-id-check").id());
    }
}
