//! A minimal XML subset parser and serializer.
//!
//! The paper's data model is element-only trees, so this module supports
//! exactly that: nested elements `<a>...</a>` and self-closing elements
//! `<a/>`. Attributes, text content, comments, processing instructions and
//! namespaces are rejected with a descriptive error — the rewriting theory
//! never inspects them, and accepting-and-dropping content would silently
//! change query answers. (This is the documented substitution for a
//! third-party XML crate; see DESIGN.md §1.)

use std::fmt;

use crate::label::Label;
use crate::tree::{NodeId, Tree};

/// An error raised while parsing the XML subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XmlError {}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, XmlError> {
        Err(XmlError { offset: self.pos, message: message.into() })
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.input.len() - trimmed.len();
    }

    fn eat(&mut self, prefix: &str) -> bool {
        if self.rest().starts_with(prefix) {
            self.pos += prefix.len();
            true
        } else {
            false
        }
    }

    fn parse_name(&mut self) -> Result<&'a str, XmlError> {
        let rest = self.rest();
        let end = rest
            .char_indices()
            .find(|(_, c)| c.is_whitespace() || matches!(c, '>' | '/' | '<'))
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        if end == 0 {
            return self.err("expected element name");
        }
        let name = &rest[..end];
        if !Label::is_valid_name(name) {
            return self.err(format!("invalid element name {name:?}"));
        }
        self.pos += end;
        Ok(name)
    }

    /// Parses one element (having already consumed nothing). On success the
    /// element has been appended under `parent` (or made the root).
    fn parse_element(
        &mut self,
        tree: &mut Option<Tree>,
        parent: Option<NodeId>,
    ) -> Result<(), XmlError> {
        if !self.eat("<") {
            return self.err("expected '<'");
        }
        let name = self.parse_name()?;
        self.skip_ws();
        let label = Label::new(name);
        let id = match (tree.as_mut(), parent) {
            (None, None) => {
                *tree = Some(Tree::new(label));
                tree.as_ref().expect("just set").root()
            }
            (Some(t), Some(p)) => t.add_child(p, label),
            _ => unreachable!("root/child bookkeeping"),
        };
        if self.eat("/>") {
            return Ok(());
        }
        if !self.eat(">") {
            return self.err("expected '>' or '/>' (attributes are not supported)");
        }
        loop {
            self.skip_ws();
            if self.eat("</") {
                let close = self.parse_name()?;
                if close != name {
                    return self.err(format!(
                        "mismatched close tag: expected </{name}>, found </{close}>"
                    ));
                }
                self.skip_ws();
                if !self.eat(">") {
                    return self.err("expected '>' after close tag name");
                }
                return Ok(());
            }
            if self.rest().starts_with('<') {
                self.parse_element(tree, Some(id))?;
            } else if self.rest().is_empty() {
                return self.err(format!("unexpected end of input inside <{name}>"));
            } else {
                return self.err("text content is not supported by the element-only XML subset");
            }
        }
    }
}

/// Parses the element-only XML subset into a [`Tree`].
pub fn parse_xml(input: &str) -> Result<Tree, XmlError> {
    let mut p = Parser { input, pos: 0 };
    p.skip_ws();
    let mut tree = None;
    p.parse_element(&mut tree, None)?;
    p.skip_ws();
    if !p.rest().is_empty() {
        return p.err("trailing content after document element");
    }
    Ok(tree.expect("parse_element sets the tree on success"))
}

fn write_node(t: &Tree, n: NodeId, out: &mut String) {
    let name = t.label(n).name();
    if t.is_leaf(n) {
        out.push('<');
        out.push_str(name);
        out.push_str("/>");
    } else {
        out.push('<');
        out.push_str(name);
        out.push('>');
        for &c in t.children(n) {
            write_node(t, c, out);
        }
        out.push_str("</");
        out.push_str(name);
        out.push('>');
    }
}

/// Serializes a [`Tree`] to the element-only XML subset (no whitespace).
pub fn to_xml(t: &Tree) -> String {
    let mut out = String::new();
    write_node(t, t.root(), &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeBuilder;

    #[test]
    fn roundtrip_simple() {
        let t = TreeBuilder::root("a", |b| {
            b.leaf("b");
            b.child("c", |b| {
                b.leaf("d");
            });
        });
        let xml = to_xml(&t);
        assert_eq!(xml, "<a><b/><c><d/></c></a>");
        let t2 = parse_xml(&xml).expect("roundtrip parse");
        assert!(t.structurally_eq(&t2));
    }

    #[test]
    fn parses_whitespace_between_elements() {
        let t = parse_xml("  <a>\n  <b/>\n  <c></c>\n</a>\n").expect("parse");
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn self_closing_root() {
        let t = parse_xml("<solo/>").expect("parse");
        assert_eq!(t.len(), 1);
        assert_eq!(t.label(t.root()).name(), "solo");
    }

    #[test]
    fn rejects_mismatched_close() {
        let e = parse_xml("<a><b></a></a>").unwrap_err();
        assert!(e.message.contains("mismatched"), "{e}");
    }

    #[test]
    fn rejects_text_content() {
        let e = parse_xml("<a>hello</a>").unwrap_err();
        assert!(e.message.contains("text content"), "{e}");
    }

    #[test]
    fn rejects_attributes() {
        let e = parse_xml("<a x=\"1\"/>").unwrap_err();
        assert!(e.message.contains("attributes"), "{e}");
    }

    #[test]
    fn rejects_trailing_garbage() {
        let e = parse_xml("<a/><b/>").unwrap_err();
        assert!(e.message.contains("trailing"), "{e}");
    }

    #[test]
    fn rejects_unclosed() {
        assert!(parse_xml("<a><b/>").is_err());
        assert!(parse_xml("<a").is_err());
        assert!(parse_xml("").is_err());
    }

    #[test]
    fn unicode_labels_roundtrip() {
        let t = parse_xml("<caf\u{e9}><\u{3b1}\u{3b2}/></caf\u{e9}>").expect("unicode parse");
        assert_eq!(t.len(), 2);
        let xml = to_xml(&t);
        assert!(parse_xml(&xml).expect("reparse").structurally_eq(&t));
    }

    #[test]
    fn wide_fanout_roundtrip() {
        let mut xml = String::from("<root>");
        for _ in 0..500 {
            xml.push_str("<kid/>");
        }
        xml.push_str("</root>");
        let t = parse_xml(&xml).expect("wide parse");
        assert_eq!(t.len(), 501);
        assert_eq!(t.children(t.root()).len(), 500);
        assert_eq!(to_xml(&t), xml);
    }

    #[test]
    fn rejects_reserved_chars_in_names() {
        assert!(parse_xml("<a*b/>").is_err());
        assert!(parse_xml("<a[b]/>").is_err());
        assert!(parse_xml("<>").is_err());
    }

    #[test]
    fn deep_nesting_roundtrip() {
        let mut xml = String::new();
        for _ in 0..200 {
            xml.push_str("<d>");
        }
        xml.push_str("<leaf/>");
        for _ in 0..200 {
            xml.push_str("</d>");
        }
        let t = parse_xml(&xml).expect("deep parse");
        assert_eq!(t.len(), 201);
        assert_eq!(t.height(), 200);
        assert_eq!(to_xml(&t), xml);
    }
}
