//! Parser for the XPath fragment `XP{//,[],*}`.
//!
//! The grammar is the paper's `q ::= q/q | q//q | q[q] | l | *`, concretely:
//!
//! ```text
//! pattern  := step (sep step)*
//! sep      := "//" | "/"
//! step     := nodetest pred*
//! nodetest := "*" | NAME
//! pred     := "[" ("." sep)? pattern "]"
//! ```
//!
//! The output node is the last step of the main path. Predicates attach to
//! their step with a **child** edge by default; the XPath-style prefixes
//! `./` (child, explicit) and `.//` (descendant) select the attachment axis.
//! Absolute paths (leading `/` or `//`) are rejected with a hint: in the
//! paper's semantics the pattern root *is* the document root, so `//a` should
//! be written `*//a` (a wildcard root) instead.
//!
//! There is no third-party XPath crate involved (see DESIGN.md §1).

use std::fmt;

use crate::pattern::{Axis, NodeTest, PatId, Pattern};
use xpv_model::Label;

/// An error raised while parsing a pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XPath parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

const NAME_STOP: &[char] = &['/', '[', ']', '*', '.', '<', '>', '"', '(', ')'];

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { offset: self.pos, message: message.into() })
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.input.len() - trimmed.len();
    }

    fn eat(&mut self, tok: &str) -> bool {
        if self.rest().starts_with(tok) {
            self.pos += tok.len();
            true
        } else {
            false
        }
    }

    fn peek(&self, tok: &str) -> bool {
        self.rest().starts_with(tok)
    }

    /// Parses a separator if present. `//` must be tried before `/`.
    fn parse_sep(&mut self) -> Option<Axis> {
        if self.eat("//") {
            Some(Axis::Descendant)
        } else if self.eat("/") {
            Some(Axis::Child)
        } else {
            None
        }
    }

    fn parse_nodetest(&mut self) -> Result<NodeTest, ParseError> {
        self.skip_ws();
        if self.eat("*") {
            return Ok(NodeTest::Wildcard);
        }
        let rest = self.rest();
        let end = rest
            .char_indices()
            .find(|(_, c)| c.is_whitespace() || NAME_STOP.contains(c))
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        if end == 0 {
            return self.err("expected a node test (label or '*')");
        }
        let name = &rest[..end];
        if !Label::is_valid_name(name) {
            return self.err(format!("invalid label {name:?}"));
        }
        let label = Label::new(name);
        if label.is_bottom() {
            return self.err("the reserved label ⊥ cannot appear in patterns");
        }
        self.pos += end;
        Ok(NodeTest::Label(label))
    }

    /// Parses `pattern` (a step sequence), attaching its first step to
    /// `parent` via `axis` (or making it the root when `parent` is `None`).
    /// Returns the id of the **last** step of the main path.
    fn parse_path(
        &mut self,
        pat: &mut Option<Pattern>,
        parent: Option<PatId>,
        axis: Axis,
    ) -> Result<PatId, ParseError> {
        let mut cur = self.parse_step(pat, parent, axis)?;
        loop {
            self.skip_ws();
            if self.peek("]") || self.rest().is_empty() {
                return Ok(cur);
            }
            let Some(next_axis) = self.parse_sep() else {
                return self.err("expected '/', '//', '[' or end of pattern");
            };
            cur = self.parse_step(pat, Some(cur), next_axis)?;
        }
    }

    /// Parses `step` (node test plus predicates), attaching it under
    /// `parent` via `axis`.
    fn parse_step(
        &mut self,
        pat: &mut Option<Pattern>,
        parent: Option<PatId>,
        axis: Axis,
    ) -> Result<PatId, ParseError> {
        let test = self.parse_nodetest()?;
        let id = match (pat.as_mut(), parent) {
            (None, None) => {
                *pat = Some(Pattern::single(test));
                pat.as_ref().expect("just set").root()
            }
            (Some(p), Some(par)) => p.add_child(par, axis, test),
            _ => unreachable!("root/child bookkeeping"),
        };
        loop {
            self.skip_ws();
            if !self.eat("[") {
                return Ok(id);
            }
            self.skip_ws();
            let pred_axis = if self.eat(".") {
                match self.parse_sep() {
                    Some(a) => a,
                    None => return self.err("expected '/' or '//' after '.' in predicate"),
                }
            } else {
                Axis::Child
            };
            self.parse_path(pat, Some(id), pred_axis)?;
            self.skip_ws();
            if !self.eat("]") {
                return self.err("expected ']' to close predicate");
            }
        }
    }
}

/// Parses a pattern from the fragment's XPath syntax.
pub fn parse_xpath(input: &str) -> Result<Pattern, ParseError> {
    let mut p = Parser { input, pos: 0 };
    p.skip_ws();
    if p.peek("/") {
        return p.err(
            "absolute paths are not part of the pattern model; the pattern root is the \
             document root — write '*//a' instead of '//a' and 'a' instead of '/a'",
        );
    }
    let mut pat = None;
    let out = p.parse_path(&mut pat, None, Axis::Child)?;
    p.skip_ws();
    if !p.rest().is_empty() {
        return p.err("trailing content after pattern");
    }
    let mut pat = pat.expect("parse_path sets the pattern on success");
    pat.set_output(out);
    Ok(pat)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_label() {
        let p = parse_xpath("a").expect("parse");
        assert_eq!(p.len(), 1);
        assert_eq!(p.depth(), 0);
        assert_eq!(p.test(p.root()), NodeTest::label("a"));
        assert_eq!(p.output(), p.root());
    }

    #[test]
    fn single_wildcard() {
        let p = parse_xpath("*").expect("parse");
        assert!(p.test(p.root()).is_wildcard());
    }

    #[test]
    fn child_and_descendant_separators() {
        let p = parse_xpath("a/b//c").expect("parse");
        assert_eq!(p.depth(), 2);
        assert_eq!(p.selection_axes(), vec![Axis::Child, Axis::Descendant]);
    }

    #[test]
    fn predicates_attach_with_child_axis_by_default() {
        let p = parse_xpath("a[b][c]/d").expect("parse");
        assert_eq!(p.depth(), 1);
        let kids = p.children(p.root());
        assert_eq!(kids.len(), 3);
        assert!(kids.iter().all(|&c| {
            // b and c branches: child axis; d selection child: child axis.
            p.axis(c) == Axis::Child
        }));
    }

    #[test]
    fn dot_slashslash_predicate_is_descendant() {
        let p = parse_xpath("a[.//b]/c").expect("parse");
        let kids = p.children(p.root());
        let b = kids.iter().copied().find(|&c| p.test(c) == NodeTest::label("b")).expect("b child");
        assert_eq!(p.axis(b), Axis::Descendant);
        let p2 = parse_xpath("a[./b]/c").expect("parse");
        let b2 = p2.children(p2.root())[0];
        assert_eq!(p2.axis(b2), Axis::Child);
    }

    #[test]
    fn nested_predicates() {
        let p = parse_xpath("a[b[c]/d]//e").expect("parse");
        assert_eq!(p.len(), 5);
        assert_eq!(p.depth(), 1);
        // b has two children: c (branch) and d (path continuation).
        let b = p.children(p.root())[0];
        assert_eq!(p.children(b).len(), 2);
    }

    #[test]
    fn predicate_paths_do_not_move_output() {
        let p = parse_xpath("a[b/c/d]").expect("parse");
        assert_eq!(p.depth(), 0);
        assert_eq!(p.output(), p.root());
    }

    #[test]
    fn whitespace_tolerated() {
        let p = parse_xpath("  a [ b ] // c ").expect("parse");
        assert_eq!(p.depth(), 1);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn rejects_absolute_paths() {
        let e = parse_xpath("/a/b").unwrap_err();
        assert!(e.message.contains("absolute"), "{e}");
        let e = parse_xpath("//a").unwrap_err();
        assert!(e.message.contains("absolute"), "{e}");
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_xpath("").is_err());
        assert!(parse_xpath("a[").is_err());
        assert!(parse_xpath("a[b").is_err());
        assert!(parse_xpath("a]").is_err());
        assert!(parse_xpath("a/").is_err());
        assert!(parse_xpath("a//").is_err());
        assert!(parse_xpath("a b").is_err());
        assert!(parse_xpath("[b]").is_err());
    }

    #[test]
    fn rejects_bottom_label() {
        let e = parse_xpath(xpv_model::BOTTOM_NAME).unwrap_err();
        assert!(e.message.contains("⊥"), "{e}");
    }

    #[test]
    fn deeply_nested_predicates_parse() {
        let mut s = String::from("a");
        for _ in 0..30 {
            s.push_str("[b");
        }
        for _ in 0..30 {
            s.push(']');
        }
        let p = parse_xpath(&s).expect("nested predicates parse");
        assert_eq!(p.len(), 31);
        assert_eq!(p.depth(), 0);
        // Round-trips through the printer.
        let printed = crate::print::to_xpath(&p);
        assert!(parse_xpath(&printed).expect("reparse").structurally_eq(&p));
    }

    #[test]
    fn long_spines_parse() {
        let s = format!("r{}", "/x".repeat(100));
        let p = parse_xpath(&s).expect("long spine parses");
        assert_eq!(p.depth(), 100);
        assert_eq!(p.selection_axes().len(), 100);
    }

    #[test]
    fn fig4_style_patterns() {
        let v = parse_xpath("a/*//*/*").expect("parse");
        assert_eq!(v.depth(), 3);
        assert_eq!(v.selection_axes(), vec![Axis::Child, Axis::Descendant, Axis::Child]);
        let p2 = parse_xpath("a/*//*/*/c//e").expect("parse");
        assert_eq!(p2.depth(), 5);
        assert_eq!(p2.selection_axes().last(), Some(&Axis::Descendant));
    }
}
