//! Pattern **signatures** — word-sized necessary conditions for rewriting.
//!
//! The rewrite planner in `xpv-core` pays a coNP containment decision per
//! candidate view; on a plan-memo miss the serving layer scans the whole
//! pool. A [`ViewSignature`] compresses the facets of a view pattern that
//! any *equivalent* rewriting must respect into a few words, so the pool
//! scan can reject most candidates with bit operations before the first
//! canonical-model run. The filter is a **necessary condition**: a
//! rejected `(query, view)` pair provably admits no equivalent rewriting,
//! so filtering never changes an answer, only skips doomed oracle calls
//! (`tests/planner_audit.rs` property-checks this against the un-filtered
//! oracle).
//!
//! # Why each condition is necessary
//!
//! Fix a query `P` of selection depth `d` and a view `V` of selection
//! depth `k`, and suppose some compensation `R` satisfies `R ∘ V ≡ P`.
//!
//! 1. **Depth** — `k ≤ d`. `R ∘ V`'s selection path goes through `V`'s
//!    output at depth ≥ `k`, and an equivalent pattern has the same
//!    selection depth `d ≥ k` (Proposition 3.1(1) of the paper; the
//!    planner already gates on this, the signature makes it free).
//! 2. **Label subset** — `labels(V) ⊆ labels(P)`. Equivalent patterns
//!    have equal label sets: take the canonical tree of `P` with every
//!    wildcard instantiated to one fresh label `z ∉ labels(P) ∪
//!    labels(R∘V)`; equivalence forces an embedding of `R ∘ V` into it,
//!    so `labels(R∘V) ⊆ labels(P) ∪ {z}`, and `z` fresh gives
//!    `labels(R∘V) ⊆ labels(P)` (the symmetric argument gives equality).
//!    Composition keeps every node of `V` (the junction glb preserves any
//!    concrete label), so `labels(V) ⊆ labels(R∘V) ⊆ labels(P)`. Hashing
//!    labels into a 64-bit mask preserves the subset direction, so
//!    `mask(V) & !mask(P) ≠ 0` soundly rejects.
//! 3. **Output class** — the test of `V`'s output node must *unify* with
//!    the test of `P`'s `k`-node: composition glbs the two, and an
//!    equivalent pattern carries `P`'s `k`-node test at that position
//!    (Proposition 3.1(3)); `(∗, label)` and two distinct labels clash.
//! 4. **`//`-spine** — if `V`'s selection path uses a descendant edge,
//!    `P`'s must too. A spine `//`-edge of `R ∘ V` can be *pumped* in its
//!    canonical model (insert a fresh-labeled node in the middle of the
//!    edge's path; every canonical-model edge hosts one pattern edge, so
//!    all other embeddings survive), which moves the selected node to a
//!    second depth — impossible for a `//`-free-spine `P`, which selects
//!    at exactly depth `d` in every tree. Branch (non-spine) `//`-edges
//!    force nothing and are ignored.
//!
//! Conditions 2 and 4 can reject pairs for which the planner would
//! return `Unknown` (outside its complete fragments) rather than
//! `NoRewriting` — equally safe, since `Unknown` also yields no route.
//!
//! Signatures also **union** cheaply ([`ViewSignature::union`]), giving
//! the same necessary condition for the *exact intersection pattern* of
//! several equal-depth views (the `xpv-intersect` enumeration): the
//! intersection keeps every node of every participant, so its label set
//! is the union of theirs and its output test is the glb of theirs.

use crate::pattern::{Axis, NodeTest, Pattern};

/// The unification class of a node test: wildcard, or one interned label.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutClass {
    /// `*` — unifies with anything.
    Wildcard,
    /// A concrete label, by interned id ([`xpv_model::Label::id`]).
    Label(u32),
}

impl OutClass {
    /// Classifies a node test.
    pub fn of(test: NodeTest) -> OutClass {
        match test.as_label() {
            Some(l) => OutClass::Label(l.id()),
            None => OutClass::Wildcard,
        }
    }

    /// Whether a view-side test can glb against this query-side test in
    /// an equivalent composition: `(query ∗, view label)` clashes (the
    /// composed pattern would carry a label the query's k-node lacks),
    /// as do two distinct labels.
    pub fn unifies_with_view(self, view: OutClass) -> bool {
        match (self, view) {
            (OutClass::Wildcard, OutClass::Label(_)) => false,
            (OutClass::Label(a), OutClass::Label(b)) => a == b,
            _ => true,
        }
    }

    /// The glb of two classes, `None` on a label clash (used when
    /// unioning signatures for an intersection pattern).
    fn glb(self, other: OutClass) -> Option<OutClass> {
        match (self, other) {
            (OutClass::Wildcard, x) | (x, OutClass::Wildcard) => Some(x),
            (OutClass::Label(a), OutClass::Label(b)) if a == b => Some(OutClass::Label(a)),
            _ => None,
        }
    }
}

/// The rewriting-relevant facets of a **view** pattern, precomputed once
/// per registration and stored alongside the pool snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ViewSignature {
    /// One bit per concrete label (`Label::id() % 64`); a set bit the
    /// query mask lacks proves a label outside the query's set.
    pub label_mask: u64,
    /// Selection depth `k` (edges on the selection path).
    pub depth: u32,
    /// Whether the selection path uses a descendant edge.
    pub spine_desc: bool,
    /// Unification class of the output node's test.
    pub out: OutClass,
}

impl ViewSignature {
    /// Computes the signature of `p` (one pass over the pattern).
    pub fn of(p: &Pattern) -> ViewSignature {
        ViewSignature {
            label_mask: label_mask(p),
            depth: p.depth() as u32,
            spine_desc: p.selection_axes().contains(&Axis::Descendant),
            out: OutClass::of(p.test(p.output())),
        }
    }

    /// The signature of the exact intersection pattern of two equal-depth
    /// **mergeable** views (child edges everywhere below the root edge,
    /// the `xpv-intersect` precondition): label masks union, output tests
    /// glb. The spine flag **ands**: a mergeable view's only possible
    /// spine `//` is its root edge, and the intersection's root edge is
    /// descendant exactly when *every* participant's is (a single child
    /// root edge pins the selected node to depth `k`, and the
    /// intersection selects a subset of that view's nodes). `None` when
    /// the output tests clash (the structural merge would fail) or the
    /// depths differ (no exact intersection exists).
    pub fn union(&self, other: &ViewSignature) -> Option<ViewSignature> {
        if self.depth != other.depth {
            return None;
        }
        Some(ViewSignature {
            label_mask: self.label_mask | other.label_mask,
            depth: self.depth,
            spine_desc: self.spine_desc && other.spine_desc,
            out: self.out.glb(other.out)?,
        })
    }
}

/// The query side: the same facets plus the per-depth spine test classes,
/// computed **once per plan** and consulted per candidate.
#[derive(Clone, Debug)]
pub struct QuerySignature {
    /// One bit per concrete label of the query.
    pub label_mask: u64,
    /// Selection depth `d`.
    pub depth: u32,
    /// Whether the selection path uses a descendant edge.
    pub spine_desc: bool,
    /// `spine_tests[k]` is the class of the query's `k`-node test, for
    /// `k` in `0..=depth` — the position a depth-`k` view's output must
    /// unify with.
    pub spine_tests: Vec<OutClass>,
}

impl QuerySignature {
    /// Computes the signature of `p` (one pass over the pattern).
    pub fn of(p: &Pattern) -> QuerySignature {
        let path = p.selection_path();
        QuerySignature {
            label_mask: label_mask(p),
            depth: (path.len() - 1) as u32,
            spine_desc: path[1..].iter().any(|&n| p.axis(n) == Axis::Descendant),
            spine_tests: path.iter().map(|&n| OutClass::of(p.test(n))).collect(),
        }
    }

    /// The necessary-condition filter: `false` means **no equivalent
    /// rewriting of this query over this view can exist** (see the module
    /// docs for the four conditions and why each is necessary); `true`
    /// means the expensive planner must decide.
    pub fn admits(&self, v: &ViewSignature) -> bool {
        v.depth <= self.depth
            && v.label_mask & !self.label_mask == 0
            && (!v.spine_desc || self.spine_desc)
            && self.spine_tests[v.depth as usize].unifies_with_view(v.out)
    }
}

/// The 64-bit label-set hash shared by both signature sides.
fn label_mask(p: &Pattern) -> u64 {
    let mut mask = 0u64;
    for n in p.node_ids() {
        if let Some(l) = p.test(n).as_label() {
            mask |= 1u64 << (l.id() % 64);
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_xpath;

    fn pat(s: &str) -> Pattern {
        parse_xpath(s).expect("pattern parses")
    }

    fn admits(q: &str, v: &str) -> bool {
        QuerySignature::of(&pat(q)).admits(&ViewSignature::of(&pat(v)))
    }

    #[test]
    fn depth_condition_rejects_deeper_views() {
        assert!(!admits("a/b", "a/b/c"));
        assert!(admits("a/b/c", "a/b"));
        assert!(admits("a/b", "a/b"));
    }

    #[test]
    fn label_condition_rejects_foreign_labels() {
        // The view mentions `z`, which the query never does.
        assert!(!admits("a/b/c", "a/b[z]"));
        assert!(!admits("a/b/c", "a/z"));
        // Subset label sets pass (wildcards contribute no labels).
        assert!(admits("a/b[c]/d", "a/b"));
        assert!(admits("a/b[c]/d", "a/*"));
    }

    #[test]
    fn output_condition_mirrors_the_k_node_clash() {
        // Query 1-node is `*`, view output is the label `b`: clash.
        assert!(!admits("a/*/c", "a/b"));
        // Distinct labels clash.
        assert!(!admits("a/b/c", "a/c"));
        // View output `*` under a labeled k-node unifies.
        assert!(admits("a/b/c", "a/*"));
        // Equal labels unify.
        assert!(admits("a/b/c", "a/b"));
    }

    #[test]
    fn spine_condition_rejects_descendant_views_for_child_queries() {
        assert!(!admits("a/b/c", "a//b"));
        // The query's own spine `//` licenses view spine `//`.
        assert!(admits("a//b/c", "a//b"));
        // Branch-only `//` in the view forces nothing.
        assert!(admits("a/b[x//y]/c", "a/b[x//y]"));
    }

    #[test]
    fn union_models_the_intersection_pattern() {
        let a = ViewSignature::of(&pat("s/r/i[b]/n"));
        let b = ViewSignature::of(&pat("s/r/i[h]/n"));
        let u = a.union(&b).expect("same depth, same labeled output");
        assert_eq!(u.depth, a.depth);
        assert_eq!(u.label_mask, a.label_mask | b.label_mask);
        let m = ViewSignature::of(&pat("s/r/i[b][h]/n"));
        assert_eq!(u, m, "union equals the exact intersection pattern's signature");
        // Depth mismatch → no exact intersection.
        assert!(a.union(&ViewSignature::of(&pat("s/r/i"))).is_none());
        // Output-label clash → merge would fail.
        let c = ViewSignature::of(&pat("s/r/i[b]/m"));
        assert!(a.union(&c).is_none());
        // Wildcard output glbs to the labeled side.
        let w = ViewSignature::of(&pat("s/r/i[h]/*"));
        assert_eq!(a.union(&w).expect("glb fine").out, a.out);
    }

    #[test]
    fn signatures_are_stable_across_isomorphs() {
        let s1 = ViewSignature::of(&pat("a/b[c][d]/e"));
        let s2 = ViewSignature::of(&pat("a/b[d][c]/e"));
        assert_eq!(s1, s2);
    }
}
