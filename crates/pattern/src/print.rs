//! Pretty-printer for patterns (the inverse of [`crate::parse`]).
//!
//! The printer renders the selection path as the main XPath spine and every
//! non-selection subtree as a predicate. Descendant-axis predicate
//! attachments use the `.//` prefix. `parse_xpath(to_xpath(p))` is
//! structurally equal to `p` for every pattern (property-tested).

use crate::pattern::{Axis, PatId, Pattern};

fn push_branch(p: &Pattern, n: PatId, out: &mut String) {
    if p.axis(n) == Axis::Descendant {
        out.push_str(".//");
    }
    push_branch_node(p, n, out);
}

/// Renders the subtree at `n` (a non-selection subtree) without the leading
/// axis marker.
fn push_branch_node(p: &Pattern, n: PatId, out: &mut String) {
    out.push_str(&p.test(n).to_string());
    let kids = p.children(n);
    if kids.len() == 1 {
        let c = kids[0];
        out.push_str(p.axis(c).separator());
        push_branch_node(p, c, out);
    } else {
        for &c in kids {
            out.push('[');
            push_branch(p, c, out);
            out.push(']');
        }
    }
}

/// Renders a pattern in the fragment's XPath syntax.
pub fn to_xpath(p: &Pattern) -> String {
    let path = p.selection_path();
    let mut out = String::new();
    for (i, &n) in path.iter().enumerate() {
        if i > 0 {
            out.push_str(p.axis(n).separator());
        }
        out.push_str(&p.test(n).to_string());
        let sel_child = path.get(i + 1).copied();
        for &c in p.children(n) {
            if Some(c) == sel_child {
                continue;
            }
            out.push('[');
            push_branch(p, c, &mut out);
            out.push(']');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_xpath;
    use crate::pattern::{NodeTest, Pattern, PatternBuilder};

    fn roundtrip(s: &str) {
        let p = parse_xpath(s).expect("parse");
        let printed = to_xpath(&p);
        let p2 = parse_xpath(&printed).expect("reparse");
        assert!(p.structurally_eq(&p2), "roundtrip failed: {s} -> {printed}");
    }

    #[test]
    fn roundtrips() {
        for s in [
            "a",
            "*",
            "a/b",
            "a//b",
            "a[b]//c[e]/d",
            "a[.//b]/c",
            "a[b[c]/d]//e",
            "*//*[*]/x",
            "a[b/c][.//d//e]/f//g[h]",
            "root[x[y][z]]//mid[.//deep/leaf]/out",
        ] {
            roundtrip(s);
        }
    }

    #[test]
    fn exact_rendering() {
        let cases = ["a", "a/b", "a//b", "a[b]//c[e]/d", "a[.//b]/c", "a[b/c]/d"];
        for s in cases {
            assert_eq!(to_xpath(&parse_xpath(s).expect("parse")), s);
        }
    }

    #[test]
    fn output_in_the_middle_renders_remaining_as_predicates() {
        // Build a/b where output is a and b is a branch: prints a[b].
        let mut p = Pattern::single(NodeTest::label("a"));
        let root = p.root();
        p.add_child(root, Axis::Child, NodeTest::label("b"));
        assert_eq!(to_xpath(&p), "a[b]");
        // Output at root of deeper pattern.
        let p2 = PatternBuilder::root_label("a", |b| {
            b.child(Axis::Descendant, "c", |b| {
                b.leaf(Axis::Child, "d");
            });
        });
        // Single-child branches render path-style inside the predicate.
        assert_eq!(to_xpath(&p2), "a[.//c/d]");
    }

    #[test]
    fn multi_child_branch_uses_nested_predicates() {
        let p = parse_xpath("a[b[c][.//d]]/e").expect("parse");
        let printed = to_xpath(&p);
        let p2 = parse_xpath(&printed).expect("reparse");
        assert!(p.structurally_eq(&p2));
        assert_eq!(printed, "a[b[c][.//d]]/e");
    }
}
