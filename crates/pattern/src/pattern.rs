//! The tree-pattern type for the fragment `XP{//,[],*}`.
//!
//! A [`Pattern`] (Section 2.1 of the paper) is a rooted labeled tree whose
//! labels come from `Σ ∪ {*}` ([`NodeTest`]), whose edges are either *child*
//! or *descendant* edges ([`Axis`]), and which carries a distinguished
//! **output node**. The path from the root to the output node is the
//! *selection path*; its length is the pattern's *depth*.
//!
//! The arena representation mirrors [`xpv_model::Tree`]: nodes are indices,
//! each non-root node stores the axis of its (unique) incoming edge.
//!
//! The **empty pattern `Υ`** (the result of a label clash during composition)
//! is deliberately *not* a value of this type: operations that can produce it
//! return `Option<Pattern>`, which keeps every in-hand `Pattern` nonempty and
//! satisfiable (every pattern has a canonical model).

use std::fmt;

use xpv_model::Label;

/// The label constraint of a pattern node: a concrete label or the wildcard.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeTest {
    /// `*` — matches any label.
    Wildcard,
    /// A concrete label from `Σ`.
    Label(Label),
}

impl NodeTest {
    /// Convenience constructor from a label name.
    pub fn label(name: &str) -> NodeTest {
        NodeTest::Label(Label::new(name))
    }

    /// Returns the concrete label, if any.
    pub fn as_label(self) -> Option<Label> {
        match self {
            NodeTest::Wildcard => None,
            NodeTest::Label(l) => Some(l),
        }
    }

    /// Returns `true` for the wildcard.
    pub fn is_wildcard(self) -> bool {
        matches!(self, NodeTest::Wildcard)
    }

    /// Whether a document node labeled `l` satisfies this test
    /// (label-preservation of Definition 2.1).
    #[inline]
    pub fn matches(self, l: Label) -> bool {
        match self {
            NodeTest::Wildcard => true,
            NodeTest::Label(me) => me == l,
        }
    }

    /// The greatest lower bound of two tests (Section 2.3). Returns `None`
    /// for the clash value `⋄` (two distinct concrete labels).
    pub fn glb(a: NodeTest, b: NodeTest) -> Option<NodeTest> {
        match (a, b) {
            (NodeTest::Wildcard, x) | (x, NodeTest::Wildcard) => Some(x),
            (NodeTest::Label(la), NodeTest::Label(lb)) if la == lb => Some(a),
            _ => None,
        }
    }
}

impl fmt::Debug for NodeTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for NodeTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeTest::Wildcard => f.write_str("*"),
            NodeTest::Label(l) => f.write_str(l.name()),
        }
    }
}

/// The axis of a pattern edge.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Axis {
    /// `/` — child edge (`E_/` in the paper).
    Child,
    /// `//` — descendant edge (`E_//`), matched by a *proper* descendant.
    Descendant,
}

impl Axis {
    /// The XPath separator for this axis.
    pub fn separator(self) -> &'static str {
        match self {
            Axis::Child => "/",
            Axis::Descendant => "//",
        }
    }
}

/// Index of a node inside a [`Pattern`] arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PatId(pub u32);

impl PatId {
    /// The arena index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PatId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[derive(Clone, Debug)]
struct PatNode {
    test: NodeTest,
    parent: Option<PatId>,
    /// Axis of the incoming edge; meaningless (Child) for the root.
    axis: Axis,
    children: Vec<PatId>,
}

/// A nonempty tree pattern in `XP{//,[],*}` with a distinguished output node.
#[derive(Clone)]
pub struct Pattern {
    nodes: Vec<PatNode>,
    output: PatId,
}

impl Pattern {
    /// A single-node pattern; the node is both root and output.
    pub fn single(test: NodeTest) -> Pattern {
        Self::assert_test_allowed(test);
        Pattern {
            nodes: vec![PatNode { test, parent: None, axis: Axis::Child, children: Vec::new() }],
            output: PatId(0),
        }
    }

    fn assert_test_allowed(test: NodeTest) {
        if let NodeTest::Label(l) = test {
            assert!(!l.is_bottom(), "patterns must not use the reserved canonical-model label ⊥");
        }
    }

    /// The root node (always id 0).
    #[inline]
    pub fn root(&self) -> PatId {
        PatId(0)
    }

    /// The output node `out(P)`.
    #[inline]
    pub fn output(&self) -> PatId {
        self.output
    }

    /// Marks `n` as the output node.
    pub fn set_output(&mut self, n: PatId) {
        assert!(n.index() < self.nodes.len(), "output out of bounds");
        self.output = n;
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Patterns are never empty (`Υ` is modeled as `Option<Pattern>::None`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Appends a node under `parent` with the given incoming `axis`.
    pub fn add_child(&mut self, parent: PatId, axis: Axis, test: NodeTest) -> PatId {
        Self::assert_test_allowed(test);
        assert!(parent.index() < self.nodes.len(), "parent out of bounds");
        let id = PatId(u32::try_from(self.nodes.len()).expect("pattern too large"));
        self.nodes.push(PatNode { test, parent: Some(parent), axis, children: Vec::new() });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// The node test of `n`.
    #[inline]
    pub fn test(&self, n: PatId) -> NodeTest {
        self.nodes[n.index()].test
    }

    /// Replaces the node test of `n` (used by composition's glb merge).
    pub fn set_test(&mut self, n: PatId, test: NodeTest) {
        Self::assert_test_allowed(test);
        self.nodes[n.index()].test = test;
    }

    /// Axis of the edge entering `n`. Meaningless for the root.
    #[inline]
    pub fn axis(&self, n: PatId) -> Axis {
        self.nodes[n.index()].axis
    }

    /// Re-axes the edge entering `n` (used by relaxation).
    pub fn set_axis(&mut self, n: PatId, axis: Axis) {
        assert!(self.parent(n).is_some(), "the root has no incoming edge");
        self.nodes[n.index()].axis = axis;
    }

    /// The parent of `n` (`None` for the root).
    #[inline]
    pub fn parent(&self, n: PatId) -> Option<PatId> {
        self.nodes[n.index()].parent
    }

    /// The children of `n` (order carries no meaning).
    #[inline]
    pub fn children(&self, n: PatId) -> &[PatId] {
        &self.nodes[n.index()].children
    }

    /// Returns `true` if `n` has no children.
    #[inline]
    pub fn is_leaf(&self, n: PatId) -> bool {
        self.nodes[n.index()].children.is_empty()
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = PatId> + '_ {
        (0..self.nodes.len() as u32).map(PatId)
    }

    /// The selection path: nodes from the root to the output node, inclusive.
    /// Its `k`-th entry is the paper's *k-node*.
    pub fn selection_path(&self) -> Vec<PatId> {
        let mut path = vec![self.output];
        let mut cur = self.output;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// The depth `d` of the pattern: number of edges on the selection path.
    pub fn depth(&self) -> usize {
        self.selection_path().len() - 1
    }

    /// The *k-node*: the selection node at depth `k` (Section 3.1).
    ///
    /// # Panics
    ///
    /// Panics if `k > depth()`.
    pub fn k_node(&self, k: usize) -> PatId {
        let path = self.selection_path();
        assert!(k < path.len(), "k={k} exceeds pattern depth {}", path.len() - 1);
        path[k]
    }

    /// The axes of the selection edges: entry `i` is the axis of the edge
    /// entering the `(i+1)`-node, so the vector has `depth()` entries.
    pub fn selection_axes(&self) -> Vec<Axis> {
        let path = self.selection_path();
        path[1..].iter().map(|&n| self.axis(n)).collect()
    }

    /// The extended depth of an arbitrary node: the depth of its deepest
    /// ancestor (or itself) on the selection path (Section 3.1).
    pub fn node_depth(&self, n: PatId) -> usize {
        let path = self.selection_path();
        let mut cur = n;
        loop {
            if let Some(pos) = path.iter().position(|&s| s == cur) {
                return pos;
            }
            cur = self.parent(cur).expect("walk reaches the selection path at the root");
        }
    }

    /// The height: maximal number of edges on any root-to-leaf path.
    pub fn height(&self) -> usize {
        fn rec(p: &Pattern, n: PatId) -> usize {
            p.children(n).iter().map(|&c| 1 + rec(p, c)).max().unwrap_or(0)
        }
        rec(self, self.root())
    }

    /// The set of concrete labels (elements of `Σ`) used in the pattern,
    /// sorted and deduplicated. Wildcards are not labels and are excluded.
    pub fn label_set(&self) -> Vec<Label> {
        let mut ls: Vec<Label> = self.node_ids().filter_map(|n| self.test(n).as_label()).collect();
        ls.sort();
        ls.dedup();
        ls
    }

    /// Copies the subtree of `self` rooted at `n` into `dst` under
    /// `dst_parent` via `axis`. Returns the id in `dst` of the copy of `n`
    /// and records the full old→new id correspondence in `map` (pass a
    /// scratch vector when the mapping is not needed). The single
    /// subtree-copier behind every structural op in [`crate::ops`] and the
    /// external pattern builders (e.g. the workload's view splitter).
    pub fn copy_subtree_into(
        &self,
        n: PatId,
        dst: &mut Pattern,
        dst_parent: PatId,
        axis: Axis,
        map: &mut Vec<(PatId, PatId)>,
    ) -> PatId {
        let new_n = dst.add_child(dst_parent, axis, self.test(n));
        map.push((n, new_n));
        let children: Vec<PatId> = self.children(n).to_vec();
        for c in children {
            self.copy_subtree_into(c, dst, new_n, self.axis(c), map);
        }
        new_n
    }

    /// A canonical serialization under unordered-pattern isomorphism that
    /// respects node tests, edge axes, and the output marker: two patterns
    /// are isomorphic (in the sense used by Proposition 3.4's candidate set)
    /// iff their keys are equal.
    pub fn canonical_key(&self) -> String {
        self.canonical_key_at(self.root())
    }

    /// The canonical key of the subtree rooted at `n` (output marker
    /// included if the output node lies inside it).
    pub fn canonical_key_at(&self, n: PatId) -> String {
        fn rec(p: &Pattern, n: PatId, out: PatId) -> String {
            let mut child_keys: Vec<String> = p
                .children(n)
                .iter()
                .map(|&c| {
                    let sep = p.axis(c).separator();
                    format!("{}{}", sep, rec(p, c, out))
                })
                .collect();
            child_keys.sort();
            let mut s = String::from("(");
            match p.test(n) {
                NodeTest::Wildcard => s.push('*'),
                NodeTest::Label(l) => s.push_str(l.name()),
            }
            if n == out {
                s.push('!');
            }
            for k in child_keys {
                s.push_str(&k);
            }
            s.push(')');
            s
        }
        rec(self, n, self.output)
    }

    /// Unordered-pattern isomorphism (same shape, tests, axes, output).
    pub fn structurally_eq(&self, other: &Pattern) -> bool {
        self.len() == other.len() && self.canonical_key() == other.canonical_key()
    }
}

impl fmt::Debug for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pattern({})", crate::print::to_xpath(self))
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::print::to_xpath(self))
    }
}

/// A fluent builder for patterns, used pervasively in tests and examples.
///
/// ```
/// use xpv_pattern::{PatternBuilder, Axis};
/// // a[b]//c  (output c)
/// let p = PatternBuilder::root_label("a", |b| {
///     b.leaf(Axis::Child, "b");
///     b.output_child(Axis::Descendant, "c", |_| {});
/// });
/// assert_eq!(p.to_string(), "a[b]//c");
/// ```
pub struct PatternBuilder<'p> {
    pat: &'p mut Pattern,
    cur: PatId,
}

impl PatternBuilder<'_> {
    /// Builds a pattern rooted at a labeled node. If `f` never calls an
    /// `output_*` method, the root is the output node.
    pub fn root_label(label: &str, f: impl FnOnce(&mut PatternBuilder<'_>)) -> Pattern {
        Self::root(NodeTest::label(label), f)
    }

    /// Builds a pattern rooted at a wildcard node.
    pub fn root_star(f: impl FnOnce(&mut PatternBuilder<'_>)) -> Pattern {
        Self::root(NodeTest::Wildcard, f)
    }

    /// Builds a pattern rooted at `test`.
    pub fn root(test: NodeTest, f: impl FnOnce(&mut PatternBuilder<'_>)) -> Pattern {
        let mut pat = Pattern::single(test);
        let root = pat.root();
        let mut b = PatternBuilder { pat: &mut pat, cur: root };
        f(&mut b);
        pat
    }

    fn test_of(label: &str) -> NodeTest {
        if label == "*" {
            NodeTest::Wildcard
        } else {
            NodeTest::label(label)
        }
    }

    /// Adds a leaf child (`"*"` means wildcard).
    pub fn leaf(&mut self, axis: Axis, label: &str) -> &mut Self {
        self.pat.add_child(self.cur, axis, Self::test_of(label));
        self
    }

    /// Adds an internal child and recurses into it.
    pub fn child(
        &mut self,
        axis: Axis,
        label: &str,
        f: impl FnOnce(&mut PatternBuilder<'_>),
    ) -> &mut Self {
        let id = self.pat.add_child(self.cur, axis, Self::test_of(label));
        let mut b = PatternBuilder { pat: self.pat, cur: id };
        f(&mut b);
        self
    }

    /// Adds a child, recurses, and marks it as the output node.
    pub fn output_child(
        &mut self,
        axis: Axis,
        label: &str,
        f: impl FnOnce(&mut PatternBuilder<'_>),
    ) -> &mut Self {
        let id = self.pat.add_child(self.cur, axis, Self::test_of(label));
        self.pat.set_output(id);
        let mut b = PatternBuilder { pat: self.pat, cur: id };
        f(&mut b);
        self
    }

    /// Marks the current node as the output node.
    pub fn mark_output(&mut self) -> &mut Self {
        let cur = self.cur;
        self.pat.set_output(cur);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `a[b]//c/d` with output `d`, plus a side branch `e` under `c`.
    fn sample() -> Pattern {
        PatternBuilder::root_label("a", |b| {
            b.leaf(Axis::Child, "b");
            b.child(Axis::Descendant, "c", |b| {
                b.leaf(Axis::Child, "e");
                b.output_child(Axis::Child, "d", |_| {});
            });
        })
    }

    #[test]
    fn selection_path_and_depth() {
        let p = sample();
        assert_eq!(p.depth(), 2);
        let path = p.selection_path();
        assert_eq!(path.len(), 3);
        assert_eq!(p.test(path[0]), NodeTest::label("a"));
        assert_eq!(p.test(path[1]), NodeTest::label("c"));
        assert_eq!(p.test(path[2]), NodeTest::label("d"));
        assert_eq!(p.selection_axes(), vec![Axis::Descendant, Axis::Child]);
    }

    #[test]
    fn k_node_lookup() {
        let p = sample();
        assert_eq!(p.k_node(0), p.root());
        assert_eq!(p.k_node(2), p.output());
    }

    #[test]
    #[should_panic(expected = "exceeds pattern depth")]
    fn k_node_out_of_range() {
        let _ = sample().k_node(3);
    }

    #[test]
    fn node_depth_extends_selection_depth() {
        let p = sample();
        // Side branch `b` hangs off the root => depth 0.
        let b = p.children(p.root())[0];
        assert_eq!(p.node_depth(b), 0);
        // Side branch `e` hangs off the 1-node => depth 1.
        let c = p.children(p.root())[1];
        let e = p.children(c)[0];
        assert_eq!(p.node_depth(e), 1);
        assert_eq!(p.node_depth(p.output()), 2);
    }

    #[test]
    fn height_and_labels() {
        let p = sample();
        assert_eq!(p.height(), 2);
        let labels: Vec<&str> = p.label_set().iter().map(|l| l.name()).collect();
        assert_eq!(labels.len(), 5);
    }

    #[test]
    fn glb_rules() {
        let a = NodeTest::label("a");
        let b = NodeTest::label("b");
        let star = NodeTest::Wildcard;
        assert_eq!(NodeTest::glb(a, a), Some(a));
        assert_eq!(NodeTest::glb(a, star), Some(a));
        assert_eq!(NodeTest::glb(star, a), Some(a));
        assert_eq!(NodeTest::glb(star, star), Some(star));
        assert_eq!(NodeTest::glb(a, b), None);
    }

    #[test]
    fn canonical_key_ignores_sibling_order() {
        let p1 = PatternBuilder::root_label("a", |b| {
            b.leaf(Axis::Child, "x");
            b.leaf(Axis::Descendant, "y");
        });
        let p2 = PatternBuilder::root_label("a", |b| {
            b.leaf(Axis::Descendant, "y");
            b.leaf(Axis::Child, "x");
        });
        assert!(p1.structurally_eq(&p2));
    }

    #[test]
    fn canonical_key_distinguishes_axes_and_output() {
        let p1 = PatternBuilder::root_label("a", |b| {
            b.leaf(Axis::Child, "x");
        });
        let p2 = PatternBuilder::root_label("a", |b| {
            b.leaf(Axis::Descendant, "x");
        });
        assert!(!p1.structurally_eq(&p2));

        let mut p3 = p1.clone();
        let x = p3.children(p3.root())[0];
        p3.set_output(x);
        assert!(!p1.structurally_eq(&p3));
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn bottom_label_rejected_in_patterns() {
        let _ = Pattern::single(NodeTest::Label(xpv_model::Label::bottom()));
    }

    #[test]
    fn wildcard_matching() {
        let l = xpv_model::Label::new("z");
        assert!(NodeTest::Wildcard.matches(l));
        assert!(NodeTest::label("z").matches(l));
        assert!(!NodeTest::label("w").matches(l));
    }
}
