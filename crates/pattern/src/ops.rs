//! Structural operations on patterns.
//!
//! This module implements every pattern-level construction the paper uses:
//!
//! * the *k-sub-pattern* `P≥k` and the *k-upper-pattern* `P≤k` (Section 3.1),
//!   together with their strict variants `P>k`, `P<k`;
//! * root-edge relaxation `Q_r//` (Section 4);
//! * pattern combination `P1 k⇒ P2` (Section 3.1);
//! * pattern composition `R ◦ V` (Section 2.3) — the algebraic heart of
//!   view-based rewriting, with the glb label merge and the empty pattern `Υ`
//!   modeled as `None`;
//! * the `l`-extension `Q^{+l}` and output lifting `Q^{j→}` (Section 5.3);
//! * the prefix construction `l//Q` (Section 5.2).
//!
//! All operations are persistent: they return fresh patterns and never mutate
//! their inputs.

use crate::pattern::{Axis, NodeTest, PatId, Pattern};

impl Pattern {
    /// Copies this pattern, optionally skipping the subtree rooted at
    /// `exclude`. Returns the copy and the old→new id map (excluded nodes do
    /// not appear in the map). The output marker is **not** transferred;
    /// callers position it themselves.
    fn copy_excluding(&self, exclude: Option<PatId>) -> (Pattern, Vec<(PatId, PatId)>) {
        assert_ne!(exclude, Some(self.root()), "cannot exclude the root");
        let mut out = Pattern::single(self.test(self.root()));
        let mut map = vec![(self.root(), out.root())];
        let mut stack = vec![(self.root(), out.root())];
        while let Some((old, new)) = stack.pop() {
            for &c in self.children(old) {
                if Some(c) == exclude {
                    continue;
                }
                let nc = out.add_child(new, self.axis(c), self.test(c));
                map.push((c, nc));
                stack.push((c, nc));
            }
        }
        (out, map)
    }

    fn mapped(map: &[(PatId, PatId)], old: PatId) -> PatId {
        map.iter()
            .find(|(o, _)| *o == old)
            .map(|(_, n)| *n)
            .expect("node must be present in the copy")
    }

    /// The *k-sub-pattern* `P≥k`: the subtree of `P` rooted at the k-node,
    /// keeping `P`'s output node (Section 3.1).
    ///
    /// # Panics
    ///
    /// Panics if `k > depth()`.
    pub fn sub_pattern_geq(&self, k: usize) -> Pattern {
        let k_node = self.k_node(k);
        let mut out = Pattern::single(self.test(k_node));
        let mut map = vec![(k_node, out.root())];
        let children: Vec<PatId> = self.children(k_node).to_vec();
        for c in children {
            let dst_root = out.root();
            self.copy_subtree_into(c, &mut out, dst_root, self.axis(c), &mut map);
        }
        let new_out = Self::mapped(&map, self.output());
        out.set_output(new_out);
        out
    }

    /// The strict variant `P>k`, defined as `P≥(k+1)` (Section 3.1).
    pub fn sub_pattern_gt(&self, k: usize) -> Pattern {
        self.sub_pattern_geq(k + 1)
    }

    /// The *k-upper-pattern* `P≤k`: `P` with the subtree rooted at the
    /// (k+1)-node pruned; the output node becomes the k-node (Section 3.1).
    /// For `k = depth()` this is `P` itself.
    pub fn upper_pattern_leq(&self, k: usize) -> Pattern {
        let d = self.depth();
        assert!(k <= d, "k={k} exceeds pattern depth {d}");
        let exclude = if k < d { Some(self.k_node(k + 1)) } else { None };
        let (mut out, map) = self.copy_excluding(exclude);
        let new_out = Self::mapped(&map, self.k_node(k));
        out.set_output(new_out);
        out
    }

    /// The strict variant `P<k`, defined as `P≤(k-1)` (Section 3.1).
    pub fn upper_pattern_lt(&self, k: usize) -> Pattern {
        assert!(k >= 1, "P<k requires k >= 1");
        self.upper_pattern_leq(k - 1)
    }

    /// Root-edge relaxation `Q_r//` (Section 4): every edge emanating from
    /// the root becomes a descendant edge. `Q ⊑ Q_r//` always holds.
    pub fn relax_root_edges(&self) -> Pattern {
        let mut out = self.clone();
        let kids: Vec<PatId> = out.children(out.root()).to_vec();
        for c in kids {
            out.set_axis(c, Axis::Descendant);
        }
        out
    }

    /// Pattern combination `P1 k⇒ P2` (Section 3.1): a descendant edge is
    /// introduced from the k-node of `self` to the root of `other`; the
    /// result keeps `self`'s root and takes `other`'s output node.
    pub fn combine(&self, k: usize, other: &Pattern) -> Pattern {
        let (mut out, map) = self.copy_excluding(None);
        let at = Self::mapped(&map, self.k_node(k));
        let mut omap = Vec::new();
        other.copy_subtree_into(other.root(), &mut out, at, Axis::Descendant, &mut omap);
        let new_out = Self::mapped(&omap, other.output());
        out.set_output(new_out);
        out
    }

    /// The `l`-extension `Q^{+l}` (Section 5.3): the output node gets a new
    /// child with test `new_test`; every *other* leaf gets a new wildcard
    /// child. All new edges are child edges.
    pub fn extend(&self, new_test: NodeTest) -> Pattern {
        let mut out = self.clone();
        let leaves: Vec<PatId> = out.node_ids().filter(|&n| out.is_leaf(n)).collect();
        for leaf in leaves {
            if leaf != out.output() {
                out.add_child(leaf, Axis::Child, NodeTest::Wildcard);
            }
        }
        let o = out.output();
        out.add_child(o, Axis::Child, new_test);
        out
    }

    /// Output lifting `Q^{j→}` (Section 5.3): the same pattern with the
    /// output node moved to the j-node. `Q^{d→} = Q`.
    pub fn lift_output(&self, j: usize) -> Pattern {
        let mut out = self.clone();
        let target = out.k_node(j);
        out.set_output(target);
        out
    }

    /// Returns the pattern with the subtree rooted at `n` removed. Used by
    /// the redundancy-elimination pass in `xpv-semantics` (cf. the paper's
    /// discussion of non-redundancy, after \[10\]).
    ///
    /// # Panics
    ///
    /// Panics if `n` is the root or lies on the selection path (removing it
    /// would not leave a pattern with the same output node).
    pub fn without_subtree(&self, n: PatId) -> Pattern {
        assert!(!self.selection_path().contains(&n), "cannot remove a selection-path node");
        let (mut out, map) = self.copy_excluding(Some(n));
        let new_out = Self::mapped(&map, self.output());
        out.set_output(new_out);
        out
    }

    /// Removes duplicate sibling subtrees (same axis, isomorphic subtree):
    /// a purely syntactic, always equivalence-preserving reduction — two
    /// identical sibling branches impose identical constraints.
    pub fn dedup_sibling_branches(&self) -> Pattern {
        let mut out = self.clone();
        loop {
            let mut victim: Option<PatId> = None;
            let selection = out.selection_path();
            'outer: for n in out.node_ids() {
                let kids = out.children(n);
                for (i, &a) in kids.iter().enumerate() {
                    for &b in &kids[i + 1..] {
                        if selection.contains(&b) {
                            continue;
                        }
                        if out.axis(a) == out.axis(b)
                            && subtree_key(&out, a) == subtree_key(&out, b)
                        {
                            victim = Some(b);
                            break 'outer;
                        }
                    }
                }
            }
            match victim {
                Some(v) => out = out.without_subtree(v),
                None => return out,
            }
        }
    }

    /// The prefix construction `l//Q` (Section 5.2): a new root with test
    /// `root_test` is connected to `Q`'s root by a descendant edge; the
    /// output node is `Q`'s.
    pub fn prefix_descendant(root_test: NodeTest, q: &Pattern) -> Pattern {
        let mut out = Pattern::single(root_test);
        let mut map = Vec::new();
        let dst_root = out.root();
        q.copy_subtree_into(q.root(), &mut out, dst_root, Axis::Descendant, &mut map);
        let new_out = Self::mapped(&map, q.output());
        out.set_output(new_out);
        out
    }
}

fn subtree_key(p: &Pattern, n: PatId) -> String {
    format!("{}{}", p.axis(n).separator(), p.canonical_key_at(n))
}

/// Pattern composition `R ◦ V` (Section 2.3).
///
/// The output node of `V` and the root of `R` are merged into one node
/// carrying the glb of their tests; the children of the merged node are those
/// of both. The result has `V`'s root and `R`'s output node (the merged node
/// itself when `root(R) = out(R)`).
///
/// Returns `None` for the empty pattern `Υ` (glb clash `⋄`): applying `Υ` to
/// any tree yields the empty result.
pub fn compose(r: &Pattern, v: &Pattern) -> Option<Pattern> {
    let merged_test = NodeTest::glb(r.test(r.root()), v.test(v.output()))?;
    let (mut out, vmap) = v.copy_excluding(None);
    let merged = Pattern::mapped(&vmap, v.output());
    out.set_test(merged, merged_test);
    let mut rmap = vec![(r.root(), merged)];
    let r_kids: Vec<PatId> = r.children(r.root()).to_vec();
    for c in r_kids {
        r.copy_subtree_into(c, &mut out, merged, r.axis(c), &mut rmap);
    }
    let new_out = Pattern::mapped(&rmap, r.output());
    out.set_output(new_out);
    Some(out)
}

/// Iterated composition `R ◦ V1 ◦ V2 ◦ …` (left-associated onto the view
/// chain). Propagates `Υ`.
pub fn compose_chain(r: &Pattern, views: &[&Pattern]) -> Option<Pattern> {
    let mut acc = r.clone();
    for v in views {
        acc = compose(&acc, v)?;
    }
    Some(acc)
}

/// The **exact intersection pattern** of several patterns: a single pattern
/// `M` with `M(t) = P1(t) ∩ … ∩ Pn(t)` (as output-*node* sets) on **every**
/// document `t`, when one exists in the fragment.
///
/// In general the intersection of tree-pattern answer sets is only
/// expressible as a DAG pattern (Cautis, Deutsch, Ileana & Onose,
/// *Rewriting XPath Queries using View Intersections*). This function
/// handles the tree-expressible case, where the selection paths of all
/// participants are forced to map onto the *same* document nodes for any
/// shared output node:
///
/// * all patterns have the same selection depth `k`;
/// * in every pattern, each selection edge **below the root edge** is a
///   child edge (the root edge may be `/` or `//` per pattern — the root is
///   pinned to the document root, and child edges pin every deeper
///   selection node to a fixed ancestor of the output node);
/// * the node tests along the selection paths are glb-compatible.
///
/// Under those conditions `M` is the node-wise glb of the selection paths —
/// the root edge is `/` if *any* participant uses `/`, else `//` — carrying
/// every predicate branch of every participant at the corresponding
/// selection node (duplicates removed). An embedding of `M` restricts to an
/// embedding of each `Pi` (so `M(t) ⊆ ∩ Pi(t)`), and conversely any output
/// node in every `Pi(t)` satisfies all of `M`'s constraints on the forced
/// selection mapping (so `∩ Pi(t) ⊆ M(t)`).
///
/// Returns `None` when the patterns do not meet the shape conditions *or*
/// when a glb clash makes the intersection empty on every document (the
/// empty pattern `Υ` is not a value of [`Pattern`]); callers that need to
/// distinguish the two cases can test the clash separately via
/// [`NodeTest::glb`].
pub fn intersect_patterns(patterns: &[&Pattern]) -> Option<Pattern> {
    let (first, rest) = patterns.split_first()?;
    if rest.is_empty() {
        return Some((*first).clone());
    }
    let k = first.depth();
    for p in patterns {
        if p.depth() != k {
            return None;
        }
        // Every selection edge below the root edge must be a child edge,
        // otherwise the selection mapping is not forced by the output node.
        if p.selection_axes().iter().skip(1).any(|&a| a != Axis::Child) {
            return None;
        }
    }

    // glb-merge the selection spines.
    let mut tests: Vec<NodeTest> = first.selection_path().iter().map(|&n| first.test(n)).collect();
    for p in rest {
        for (j, &n) in p.selection_path().iter().enumerate() {
            tests[j] = NodeTest::glb(tests[j], p.test(n))?;
        }
    }
    let root_axis =
        if patterns.iter().any(|p| k >= 1 && p.axis(p.selection_path()[1]) == Axis::Child) {
            Axis::Child
        } else {
            Axis::Descendant
        };

    // Build the spine, then hang every participant's predicate branches at
    // the corresponding spine node.
    let mut out = Pattern::single(tests[0]);
    let mut spine = vec![out.root()];
    for (j, &test) in tests.iter().enumerate().skip(1) {
        let axis = if j == 1 { root_axis } else { Axis::Child };
        let prev = spine[j - 1];
        spine.push(out.add_child(prev, axis, test));
    }
    out.set_output(spine[k]);
    for p in patterns {
        let path = p.selection_path();
        for (j, &sel) in path.iter().enumerate() {
            for &c in p.children(sel) {
                if j + 1 < path.len() && c == path[j + 1] {
                    continue; // the selection child is the spine itself
                }
                let mut map = Vec::new();
                p.copy_subtree_into(c, &mut out, spine[j], p.axis(c), &mut map);
            }
        }
    }
    // Identical branches contributed by different participants collapse.
    Some(out.dedup_sibling_branches())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_xpath;

    fn pat(s: &str) -> Pattern {
        parse_xpath(s).expect("test pattern parses")
    }

    #[test]
    fn sub_pattern_geq_basic() {
        let p = pat("a[b]//c[e]/d");
        // depth 2, selection path a,c,d
        assert_eq!(p.depth(), 2);
        let p1 = p.sub_pattern_geq(1);
        assert_eq!(p1.to_string(), "c[e]/d");
        assert_eq!(p1.depth(), 1);
        let p2 = p.sub_pattern_geq(2);
        assert_eq!(p2.to_string(), "d");
        let p0 = p.sub_pattern_geq(0);
        assert!(p0.structurally_eq(&p));
    }

    #[test]
    fn upper_pattern_leq_prunes_only_selection_branch() {
        let p = pat("a[b]//c[e]/d");
        let up1 = p.upper_pattern_leq(1);
        // The d-subtree goes; the e-branch of c stays; output becomes c.
        assert_eq!(up1.to_string(), "a[b]//c[e]");
        assert_eq!(up1.depth(), 1);
        let up0 = p.upper_pattern_leq(0);
        assert_eq!(up0.to_string(), "a[b]");
        assert_eq!(up0.depth(), 0);
        let up2 = p.upper_pattern_leq(2);
        assert!(up2.structurally_eq(&p));
    }

    #[test]
    fn strict_variants_alias() {
        let p = pat("a/b/c/d");
        assert!(p.sub_pattern_gt(1).structurally_eq(&p.sub_pattern_geq(2)));
        assert!(p.upper_pattern_lt(2).structurally_eq(&p.upper_pattern_leq(1)));
    }

    #[test]
    fn relax_root_edges_only_touches_root() {
        let p = pat("a[b]/c/d");
        let r = p.relax_root_edges();
        assert_eq!(r.to_string(), "a[.//b]//c/d");
        // Deeper edges unchanged.
        let c = r.k_node(1);
        let d = r.k_node(2);
        assert_eq!(r.axis(c), Axis::Descendant);
        assert_eq!(r.axis(d), Axis::Child);
    }

    #[test]
    fn combine_reconstructs_pattern_with_descendant_entry() {
        // If a descendant edge enters the k-node, P<k (k-1)=> P>=k equals P.
        let p = pat("a/b//c/d");
        let upper = p.upper_pattern_lt(2); // a/b
        let lower = p.sub_pattern_geq(2); // c/d
        let rebuilt = upper.combine(1, &lower);
        assert!(rebuilt.structurally_eq(&p));
    }

    #[test]
    fn compose_merges_with_glb() {
        // Figure 1 setting: out(V) and root(R) both wildcard => merged node *.
        let v = pat("a[b]/*");
        let r = pat("*//e[d]");
        let rv = compose(&r, &v).expect("compatible");
        assert_eq!(rv.to_string(), "a[b]/*//e[d]");
        assert_eq!(rv.depth(), 2);

        // Label on one side wins.
        let v2 = pat("a/x");
        let r2 = pat("*//e");
        assert_eq!(compose(&r2, &v2).expect("ok").to_string(), "a/x//e");
        let r3 = pat("x//e");
        assert_eq!(compose(&r3, &v2).expect("ok").to_string(), "a/x//e");
    }

    #[test]
    fn compose_clash_is_empty_pattern() {
        let v = pat("a/x");
        let r = pat("y//e");
        assert!(compose(&r, &v).is_none());
    }

    #[test]
    fn compose_single_node_rewriting() {
        // root(R) = out(R): the merged node is the output of R◦V.
        let v = pat("a//b/*");
        let r = pat("e");
        let rv = compose(&r, &v).expect("ok");
        assert_eq!(rv.to_string(), "a//b/e");
        assert_eq!(rv.output(), rv.k_node(2));
    }

    #[test]
    fn compose_keeps_children_of_both_sides() {
        let v = pat("a/*[w]");
        let r = pat("*[x]//y");
        let rv = compose(&r, &v).expect("ok");
        // Merged node has branches w (from V) and x (from R) and the selection
        // child y (from R).
        let merged = rv.k_node(1);
        assert_eq!(rv.children(merged).len(), 3);
        assert_eq!(rv.depth(), 2);
    }

    #[test]
    fn compose_chain_folds() {
        let v1 = pat("a/*");
        let v2 = pat("*/b");
        let r = pat("*//c");
        let direct = compose(&compose(&r, &v2).expect("ok"), &v1).expect("ok");
        let chained = compose_chain(&r, &[&v2, &v1]).expect("ok");
        assert!(direct.structurally_eq(&chained));
    }

    #[test]
    fn extend_adds_children_per_paper() {
        // out is internal: out gets the l-child, every leaf gets a *-child.
        let p = pat("a[b]/c/d"); // leaves: b, d(=out)
        let e = p.extend(NodeTest::label("mu_label"));
        // b (leaf, not out) gains a * child; d gains the mu_label child only.
        // The output node stays d, so the new child prints as a predicate.
        assert_eq!(e.to_string(), "a[b/*]/c/d[mu_label]");

        // out is a leaf: only the l-child is added to it.
        let p2 = pat("a/b");
        let e2 = p2.extend(NodeTest::Wildcard);
        assert_eq!(e2.to_string(), "a/b[*]");
    }

    #[test]
    fn extend_output_stays_put() {
        let p = pat("a/b");
        let e = p.extend(NodeTest::label("mu2"));
        // Output is still the b node, not the new child.
        assert_eq!(e.depth(), 1);
        assert_eq!(e.test(e.output()), NodeTest::label("b"));
    }

    #[test]
    fn lift_output_moves_selection() {
        let p = pat("a/b/c/d");
        let l2 = p.lift_output(2);
        assert_eq!(l2.depth(), 2);
        assert_eq!(l2.test(l2.output()), NodeTest::label("c"));
        // Lifting to d (the depth) is the identity.
        assert!(p.lift_output(3).structurally_eq(&p));
        // The pruned-away part is NOT pruned: lifting keeps all nodes.
        assert_eq!(l2.len(), 4);
    }

    #[test]
    fn prefix_descendant_builds_star_slashslash() {
        let q = pat("b[c]/d");
        let p = Pattern::prefix_descendant(NodeTest::Wildcard, &q);
        assert_eq!(p.to_string(), "*//b[c]/d");
        assert_eq!(p.depth(), q.depth() + 1);
    }

    #[test]
    fn without_subtree_removes_branch() {
        let p = pat("a[b/c][d]//e");
        let b = p.children(p.root())[0];
        let smaller = p.without_subtree(b);
        assert_eq!(smaller.to_string(), "a[d]//e");
        assert_eq!(smaller.len(), p.len() - 2);
    }

    #[test]
    #[should_panic(expected = "selection-path")]
    fn without_subtree_rejects_selection_nodes() {
        let p = pat("a/b/c");
        let b = p.k_node(1);
        let _ = p.without_subtree(b);
    }

    #[test]
    fn dedup_sibling_branches_removes_twins() {
        let p = pat("a[b][b]/c");
        let d = p.dedup_sibling_branches();
        assert_eq!(d.to_string(), "a[b]/c");
        // Deep twins too.
        let p2 = pat("a[x[y]][x[y]][x[z]]/c");
        let d2 = p2.dedup_sibling_branches();
        assert_eq!(d2.len(), p2.len() - 2);
        // Different axes are not twins.
        let p3 = pat("a[b][.//b]/c");
        assert_eq!(p3.dedup_sibling_branches().len(), p3.len());
    }

    #[test]
    fn dedup_preserves_selection_branch() {
        // The selection child is never removed even if a twin branch exists.
        let p = pat("a[b]/b");
        let d = p.dedup_sibling_branches();
        assert_eq!(d.depth(), 1);
        // The branch b and the selection b are NOT twins (output marker).
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn intersect_patterns_merges_spines_and_predicates() {
        let v1 = pat("site/region/item[bids]/name");
        let v2 = pat("site/region/item[shipping]/name");
        let m = intersect_patterns(&[&v1, &v2]).expect("merges");
        assert_eq!(m.to_string(), "site/region/item[bids][shipping]/name");
        assert_eq!(m.depth(), 3);
        // Identical predicate branches collapse.
        let m2 = intersect_patterns(&[&v1, &v1]).expect("merges");
        assert!(m2.structurally_eq(&v1));
    }

    #[test]
    fn intersect_patterns_glbs_tests_and_root_axis() {
        // Wildcards resolve to the concrete label; a `/` root edge wins
        // over `//`.
        let v1 = pat("a//*[x]/c");
        let v2 = pat("a/b[y]/c");
        let m = intersect_patterns(&[&v1, &v2]).expect("merges");
        assert_eq!(m.to_string(), "a/b[x][y]/c");
        // All-descendant root edges stay descendant.
        let m2 = intersect_patterns(&[&pat("a//b[x]/c"), &pat("a//b[y]/c")]).expect("merges");
        assert_eq!(m2.to_string(), "a//b[x][y]/c");
    }

    #[test]
    fn intersect_patterns_rejects_unforced_shapes() {
        // Depth mismatch.
        assert!(intersect_patterns(&[&pat("a/b/c"), &pat("a/c")]).is_none());
        // A descendant edge below the root edge leaves the selection mapping
        // unforced.
        assert!(intersect_patterns(&[&pat("a/b//c"), &pat("a/b/c")]).is_none());
        // glb clash on a spine node: the intersection is empty on every
        // document.
        assert!(intersect_patterns(&[&pat("a/b/c"), &pat("a/d/c")]).is_none());
        // Empty input.
        assert!(intersect_patterns(&[]).is_none());
    }

    #[test]
    fn intersect_patterns_singleton_and_depth_zero() {
        let v = pat("a[b]//c");
        assert!(intersect_patterns(&[&v]).expect("singleton").structurally_eq(&v));
        let m = intersect_patterns(&[&pat("a[x]"), &pat("a[y]")]).expect("depth-0 merge");
        assert_eq!(m.to_string(), "a[x][y]");
        assert_eq!(m.depth(), 0);
    }

    #[test]
    fn intersect_patterns_keeps_predicates_below_output() {
        let v1 = pat("a/b[c/d]");
        let v2 = pat("a/b[e]");
        let m = intersect_patterns(&[&v1, &v2]).expect("merges");
        assert_eq!(m.to_string(), "a/b[c/d][e]");
    }

    #[test]
    fn ops_do_not_mutate_inputs() {
        let p = pat("a[b]//c/d");
        let before = p.canonical_key();
        let _ = p.sub_pattern_geq(1);
        let _ = p.upper_pattern_leq(1);
        let _ = p.relax_root_edges();
        let _ = p.extend(NodeTest::Wildcard);
        let _ = p.lift_output(0);
        let q = pat("x/y");
        let _ = p.combine(1, &q);
        let _ = compose(&q, &p);
        assert_eq!(p.canonical_key(), before);
    }
}
