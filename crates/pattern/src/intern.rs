//! Structural hashing and interning of patterns.
//!
//! The containment oracle (`xpv_semantics::ContainmentOracle`) memoizes
//! verdicts across calls, which requires patterns to act as cheap hashable
//! keys. Two ingredients provide that:
//!
//! * [`Pattern::fingerprint`] — a 64-bit structural hash, **stable under
//!   sibling reordering** (child hashes are sorted before mixing), that
//!   respects node tests, edge axes, and the output marker. Equal patterns
//!   (in the sense of [`Pattern::structurally_eq`]) always share a
//!   fingerprint; collisions are possible but only cost a string compare.
//! * [`PatternInterner`] — an arena that deduplicates patterns by
//!   fingerprint (with exact structural confirmation on bucket collisions)
//!   and hands out dense [`PatternKey`] ids. Interning the same pattern
//!   (or any sibling-reordered isomorph) twice returns the same key, so
//!   downstream memo tables key on `(PatternKey, PatternKey)` pairs instead
//!   of re-hashing whole trees.
//!
//! The interner is deliberately append-only: keys stay valid for the life of
//! the interner, which is what lets a long-lived `ViewCache` reuse plans
//! across queries.

use std::collections::HashMap;

use crate::pattern::{NodeTest, PatId, Pattern};

/// A dense handle to an interned pattern (see [`PatternInterner`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PatternKey(u32);

impl PatternKey {
    /// The arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl Pattern {
    /// A 64-bit structural hash of the pattern, stable under sibling
    /// reordering: `p.structurally_eq(&q)` implies
    /// `p.fingerprint() == q.fingerprint()`.
    ///
    /// Computed bottom-up with sorted child digests, so it costs
    /// `O(n log n)` without materializing the canonical-key string.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint_at(self.root())
    }

    /// The fingerprint of the subtree rooted at `n` (output marker included
    /// when the output node lies inside the subtree).
    pub fn fingerprint_at(&self, n: PatId) -> u64 {
        fn mix(mut h: u64, v: u64) -> u64 {
            // splitmix64-style avalanche of the running digest.
            h ^= v;
            h = h.wrapping_mul(0xFF51AFD7ED558CCD);
            h ^= h >> 33;
            h = h.wrapping_mul(0xC4CEB9FE1A85EC53);
            h ^ (h >> 33)
        }
        fn rec(p: &Pattern, n: PatId, out: PatId) -> u64 {
            let mut h: u64 = match p.test(n) {
                NodeTest::Wildcard => 0x9E3779B97F4A7C15,
                NodeTest::Label(l) => mix(0xA076_1D64_78BD_642F, l.id() as u64),
            };
            if n == out {
                h = mix(h, 0x2545F4914F6CDD1D);
            }
            let mut child_digests: Vec<u64> = p
                .children(n)
                .iter()
                .map(|&c| {
                    let axis_salt = match p.axis(c) {
                        crate::pattern::Axis::Child => 0x94D0_49BB_1331_11EB,
                        crate::pattern::Axis::Descendant => 0xBF58_476D_1CE4_E5B9,
                    };
                    mix(axis_salt, rec(p, c, out))
                })
                .collect();
            // Sorting makes the digest order-independent, matching the
            // unordered semantics of sibling branches.
            child_digests.sort_unstable();
            for d in child_digests {
                h = mix(h, d);
            }
            h
        }
        rec(self, n, self.output())
    }
}

/// An append-only arena deduplicating patterns by structural identity.
///
/// ```
/// use xpv_pattern::{parse_xpath, PatternInterner};
/// let mut interner = PatternInterner::new();
/// let k1 = interner.intern(&parse_xpath("a[b][c]/d").unwrap());
/// let k2 = interner.intern(&parse_xpath("a[c][b]/d").unwrap()); // reordered siblings
/// assert_eq!(k1, k2);
/// assert_eq!(interner.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct PatternInterner {
    /// fingerprint → keys sharing it. Distinct patterns intern without any
    /// string building; only same-fingerprint entries (dedup hits, plus the
    /// astronomically rare true collision) fall back to the exact
    /// canonical-key comparison inside [`Pattern::structurally_eq`].
    lookup: HashMap<u64, Vec<PatternKey>>,
    arena: Vec<Pattern>,
    hits: u64,
}

impl PatternInterner {
    /// An empty interner.
    pub fn new() -> PatternInterner {
        PatternInterner::default()
    }

    /// Interns `p`, returning the key of its structural equivalence class.
    /// The first pattern of a class is cloned into the arena as the
    /// representative.
    pub fn intern(&mut self, p: &Pattern) -> PatternKey {
        self.intern_prehashed(p.fingerprint(), p)
    }

    /// Read-only lookup of `p`'s key given its precomputed fingerprint.
    ///
    /// Returns `None` when `p` has not been interned yet. Unlike
    /// [`PatternInterner::intern`] this takes `&self`, so a concurrent
    /// wrapper (the containment oracle's `RwLock`-guarded interner) can
    /// serve the hot repeated-query path under a shared read lock and only
    /// upgrade to a write lock on genuinely new patterns.
    pub fn lookup_prehashed(&self, fingerprint: u64, p: &Pattern) -> Option<PatternKey> {
        let bucket = self.lookup.get(&fingerprint)?;
        bucket.iter().copied().find(|key| self.arena[key.index()].structurally_eq(p))
    }

    /// [`PatternInterner::intern`] with the fingerprint computed by the
    /// caller (so a lookup-then-intern sequence hashes the pattern once).
    pub fn intern_prehashed(&mut self, fingerprint: u64, p: &Pattern) -> PatternKey {
        let bucket = self.lookup.entry(fingerprint).or_default();
        for &key in bucket.iter() {
            if self.arena[key.index()].structurally_eq(p) {
                self.hits += 1;
                return key;
            }
        }
        let key = PatternKey(u32::try_from(self.arena.len()).expect("pattern interner exhausted"));
        bucket.push(key);
        self.arena.push(p.clone());
        key
    }

    /// The representative pattern of `key`.
    ///
    /// # Panics
    ///
    /// Panics if `key` comes from a different interner.
    pub fn resolve(&self, key: PatternKey) -> &Pattern {
        &self.arena[key.index()]
    }

    /// Number of distinct structural classes interned.
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// `true` when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }

    /// How many [`PatternInterner::intern`] calls were deduplicated.
    pub fn hits(&self) -> u64 {
        self.hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_xpath;

    fn pat(s: &str) -> Pattern {
        parse_xpath(s).expect("pattern parses")
    }

    #[test]
    fn fingerprint_ignores_sibling_order() {
        let p1 = pat("a[b][c//d]/e");
        let p2 = pat("a[c//d][b]/e");
        assert!(p1.structurally_eq(&p2));
        assert_eq!(p1.fingerprint(), p2.fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_axes_tests_and_output() {
        assert_ne!(pat("a/b").fingerprint(), pat("a//b").fingerprint());
        assert_ne!(pat("a/b").fingerprint(), pat("a/*").fingerprint());
        assert_ne!(pat("a/b").fingerprint(), pat("a[b]").fingerprint());
    }

    #[test]
    fn interner_dedups_isomorphs() {
        let mut i = PatternInterner::new();
        let k1 = i.intern(&pat("a[b][c]/d"));
        let k2 = i.intern(&pat("a[c][b]/d"));
        let k3 = i.intern(&pat("a[b]/d"));
        assert_eq!(k1, k2);
        assert_ne!(k1, k3);
        assert_eq!(i.len(), 2);
        assert_eq!(i.hits(), 1);
        assert!(i.resolve(k1).structurally_eq(&pat("a[b][c]/d")));
    }

    #[test]
    fn prehashed_lookup_agrees_with_intern() {
        let mut i = PatternInterner::new();
        let p = pat("a[b][c]/d");
        let fp = p.fingerprint();
        assert_eq!(i.lookup_prehashed(fp, &p), None);
        let k = i.intern_prehashed(fp, &p);
        assert_eq!(i.lookup_prehashed(fp, &p), Some(k));
        // A sibling-reordered isomorph shares fingerprint and key.
        let iso = pat("a[c][b]/d");
        assert_eq!(i.lookup_prehashed(iso.fingerprint(), &iso), Some(k));
    }

    #[test]
    fn keys_are_stable_across_growth() {
        let mut i = PatternInterner::new();
        let k1 = i.intern(&pat("a"));
        for s in ["a/b", "a//b", "a[x]/y", "q//r[s]"] {
            i.intern(&pat(s));
        }
        assert_eq!(i.intern(&pat("a")), k1);
        assert!(i.resolve(k1).structurally_eq(&pat("a")));
    }
}
