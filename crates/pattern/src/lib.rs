//! # xpv-pattern — tree patterns for `XP{//,[],*}`
//!
//! Queries and views in *On Rewriting XPath Queries Using Views* (Afrati et
//! al., EDBT 2009) are **tree patterns**: rooted trees labeled over
//! `Σ ∪ {*}` with child and descendant edges and a distinguished output node
//! (Section 2.1 of the paper). This crate provides:
//!
//! * the arena [`Pattern`] type with selection-path machinery ([`Pattern::k_node`],
//!   [`Pattern::sub_pattern_geq`], [`Pattern::upper_pattern_leq`], …);
//! * every structural operation of the paper: composition
//!   ([`compose`], Section 2.3), combination ([`Pattern::combine`]),
//!   root relaxation ([`Pattern::relax_root_edges`]), `l`-extension
//!   ([`Pattern::extend`]), output lifting ([`Pattern::lift_output`]) and the
//!   `l//Q` prefix ([`Pattern::prefix_descendant`]);
//! * the **exact intersection pattern** ([`intersect_patterns`]): a single
//!   pattern whose answer set equals the node-set intersection of several
//!   patterns' answers, in the tree-expressible case (the algebraic core of
//!   the `xpv-intersect` multi-view rewriter);
//! * a parser ([`parse_xpath`]) and printer ([`to_xpath`]) for the fragment's
//!   XPath syntax `q ::= q/q | q//q | q[q] | l | *`;
//! * structural hashing and interning ([`Pattern::fingerprint`],
//!   [`PatternInterner`] / [`PatternKey`]) — stable under sibling
//!   reordering — so patterns can serve as cheap memo keys for the
//!   containment oracle in `xpv-semantics`;
//! * word-sized **signatures** ([`ViewSignature`] / [`QuerySignature`]):
//!   necessary conditions for an equivalent rewriting, used by the serving
//!   layer to reject most candidate views before any containment call (the
//!   soundness argument lives in the [`signature`] module docs);
//! * syntactic classification: fragments ([`FragmentFlags`]), linearity,
//!   the Proposition 4.1 stability witnesses ([`stability_witness`]) and the
//!   GNF/* normal form of Definition 5.3 ([`is_gnf_star`]).
//!
//! Semantics (embeddings, evaluation, containment) live in `xpv-semantics`.

pub mod classify;
pub mod intern;
pub mod ops;
pub mod parse;
pub mod pattern;
pub mod print;
pub mod signature;

pub use classify::{
    deepest_descendant_selection_edge, gnf_star_certificate, is_gnf_star, is_linear,
    selection_node_labeled, selection_prefix_all_child, stability_witness, star_chain_len,
    FragmentFlags, GnfCase, StabilityWitness,
};
pub use intern::{PatternInterner, PatternKey};
pub use ops::{compose, compose_chain, intersect_patterns};
pub use parse::{parse_xpath, ParseError};
pub use pattern::{Axis, NodeTest, PatId, Pattern, PatternBuilder};
pub use print::to_xpath;
pub use signature::{OutClass, QuerySignature, ViewSignature};
