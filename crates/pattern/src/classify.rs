//! Syntactic classification of patterns.
//!
//! This module hosts everything the paper decides by *looking* at a pattern
//! (as opposed to reasoning about its models):
//!
//! * fragment membership — which of the three constructs (`//`, `[]`, `*`)
//!   a pattern uses, identifying the sub-fragments `XP{//,[]}`, `XP{//,*}`,
//!   `XP{[],*}` for which containment is PTIME (Miklau–Suciu, cited as \[14\]);
//! * linearity (a pattern that forms a path — Definition 5.3's third case);
//! * the **sufficient stability conditions** of Proposition 4.1;
//! * the **generalized normal form GNF/\*** of Definition 5.3;
//! * selection-path probes used by the rewriting conditions (all-child
//!   prefixes, deepest descendant selection edge, corresponding edges).

use crate::pattern::{Axis, NodeTest, Pattern};
use xpv_model::Label;

/// Which of the three XP constructs a pattern uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FragmentFlags {
    /// Uses at least one wildcard node test.
    pub wildcard: bool,
    /// Uses at least one descendant edge.
    pub descendant: bool,
    /// Has a node with two or more children (a "branch", i.e. a predicate).
    pub branching: bool,
}

impl FragmentFlags {
    /// Computes the flags for `p`.
    ///
    /// A pattern "uses branches" when it cannot be written without the `[]`
    /// construct: some node has two or more children, or the output node has
    /// a child (a linear pattern whose output is an interior node, such as
    /// `a[b]`, still needs a predicate).
    pub fn of(p: &Pattern) -> FragmentFlags {
        FragmentFlags {
            wildcard: p.node_ids().any(|n| p.test(n).is_wildcard()),
            descendant: p
                .node_ids()
                .any(|n| p.parent(n).is_some() && p.axis(n) == Axis::Descendant),
            branching: !(is_linear(p) && p.is_leaf(p.output())),
        }
    }

    /// `true` when the pattern lies in one of the three sub-fragments for
    /// which containment is characterized by homomorphisms (at most two of
    /// the three constructs are used).
    pub fn homomorphism_complete(self) -> bool {
        !(self.wildcard && self.descendant && self.branching)
    }

    /// A compact human-readable fragment name, e.g. `XP{//,[],*}`.
    pub fn name(self) -> String {
        let mut parts = Vec::new();
        if self.descendant {
            parts.push("//");
        }
        if self.branching {
            parts.push("[]");
        }
        if self.wildcard {
            parts.push("*");
        }
        format!("XP{{{}}}", parts.join(","))
    }
}

/// Returns `true` if the pattern is linear (forms a path: every node has at
/// most one child) — the third disjunct of Definition 5.3.
pub fn is_linear(p: &Pattern) -> bool {
    p.node_ids().all(|n| p.children(n).len() <= 1)
}

/// A certificate that a pattern is *stable* (weak equivalence to it implies
/// equivalence), per the sufficient conditions of Proposition 4.1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StabilityWitness {
    /// The root's label is not `*`.
    RootLabeled,
    /// The pattern has depth 0.
    DepthZero,
    /// Depth ≥ 1 and the pattern contains a `Σ`-label that does not appear
    /// in `Q≥1` (it must therefore sit in a branch emanating from the root,
    /// or be the root's own label).
    FreshLabelOutsideQGeq1(Label),
}

/// Checks the Proposition 4.1 conditions. `Some(w)` proves stability; `None`
/// means *unknown* (the conditions are sufficient, not necessary).
pub fn stability_witness(p: &Pattern) -> Option<StabilityWitness> {
    if !p.test(p.root()).is_wildcard() {
        return Some(StabilityWitness::RootLabeled);
    }
    if p.depth() == 0 {
        return Some(StabilityWitness::DepthZero);
    }
    let q_geq1 = p.sub_pattern_geq(1);
    let inner = q_geq1.label_set();
    let fresh = p.label_set().into_iter().find(|l| inner.binary_search(l).is_err());
    fresh.map(StabilityWitness::FreshLabelOutsideQGeq1)
}

/// Per-depth explanation of GNF/* membership (Definition 5.3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GnfCase {
    /// A child edge enters the i-node.
    ChildEntry,
    /// `Q≥i` is stable (by Proposition 4.1's sufficient conditions).
    StableSuffix(StabilityWitness),
    /// `Q≥i` is linear.
    LinearSuffix,
}

/// Checks membership in the generalized normal form GNF/* (Definition 5.3),
/// returning the per-depth certificates. Uses the *sufficient* stability
/// conditions of Proposition 4.1, so the check is sound (everything it
/// accepts is in GNF/*) but may miss patterns whose suffix stability has no
/// syntactic witness.
pub fn gnf_star_certificate(p: &Pattern) -> Option<Vec<GnfCase>> {
    let d = p.depth();
    let axes = p.selection_axes();
    let mut cases = Vec::with_capacity(d);
    for i in 1..=d {
        if axes[i - 1] == Axis::Child {
            cases.push(GnfCase::ChildEntry);
            continue;
        }
        let suffix = p.sub_pattern_geq(i);
        if let Some(w) = stability_witness(&suffix) {
            cases.push(GnfCase::StableSuffix(w));
            continue;
        }
        if is_linear(&suffix) {
            cases.push(GnfCase::LinearSuffix);
            continue;
        }
        return None;
    }
    Some(cases)
}

/// Returns `true` if `p` is (certifiably) in GNF/*.
pub fn is_gnf_star(p: &Pattern) -> bool {
    gnf_star_certificate(p).is_some()
}

/// The depth of the deepest descendant edge on the selection path, i.e. the
/// largest `i` such that a descendant edge enters the i-node. `None` when the
/// selection path has only child edges.
pub fn deepest_descendant_selection_edge(p: &Pattern) -> Option<usize> {
    p.selection_axes().iter().rposition(|&a| a == Axis::Descendant).map(|idx| idx + 1)
}

/// Returns `true` if the first `upto` selection edges are all child edges.
/// (`upto` is clamped to the pattern depth.)
pub fn selection_prefix_all_child(p: &Pattern, upto: usize) -> bool {
    p.selection_axes().iter().take(upto).all(|&a| a == Axis::Child)
}

/// Returns `true` if the i-node of `p` carries a non-wildcard label.
pub fn selection_node_labeled(p: &Pattern, i: usize) -> bool {
    !p.test(p.k_node(i)).is_wildcard()
}

/// The maximum number of nodes in a chain of **wildcard** nodes connected by
/// child edges. This quantity drives the canonical-model expansion bound used
/// by the containment test in `xpv-semantics` (see DESIGN.md §3): only
/// wildcard nodes can be mapped onto the `⊥`-labeled interior of an expansion
/// chain, and rigid (child-edge) crossings are bounded by this length.
pub fn star_chain_len(p: &Pattern) -> usize {
    fn rec(p: &Pattern, n: crate::pattern::PatId, best: &mut usize) -> usize {
        // Length of the longest star chain starting at n going downward via
        // child edges, counting n if it is a wildcard.
        let mut down_best = 0usize;
        for &c in p.children(n) {
            let via = rec(p, c, best);
            if p.axis(c) == Axis::Child {
                down_best = down_best.max(via);
            }
        }
        let here = if p.test(n).is_wildcard() { 1 + down_best } else { 0 };
        *best = (*best).max(here);
        here
    }
    let mut best = 0;
    rec(p, p.root(), &mut best);
    best
}

/// Decides whether `test` of a document label is even expressible: utility
/// used by generators to avoid emitting `⊥`.
pub fn test_uses_reserved(test: NodeTest) -> bool {
    matches!(test, NodeTest::Label(l) if l.is_bottom())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_xpath;

    fn pat(s: &str) -> Pattern {
        parse_xpath(s).expect("test pattern parses")
    }

    #[test]
    fn fragment_flags_detect_constructs() {
        let f = FragmentFlags::of(&pat("a/b"));
        assert!(!f.wildcard && !f.descendant && !f.branching);
        assert!(f.homomorphism_complete());

        let f = FragmentFlags::of(&pat("a//b[*]"));
        assert!(f.wildcard && f.descendant && f.branching);
        assert!(!f.homomorphism_complete());
        assert_eq!(f.name(), "XP{//,[],*}");

        let f = FragmentFlags::of(&pat("a//b[c]"));
        assert!(!f.wildcard && f.descendant && f.branching);
        assert!(f.homomorphism_complete());
        assert_eq!(f.name(), "XP{//,[]}");
    }

    #[test]
    fn linearity() {
        assert!(is_linear(&pat("a//b/c")));
        assert!(!is_linear(&pat("a[b]/c")));
        assert!(is_linear(&pat("a")));
    }

    #[test]
    fn stability_root_labeled() {
        assert_eq!(stability_witness(&pat("a//*")), Some(StabilityWitness::RootLabeled));
    }

    #[test]
    fn stability_depth_zero() {
        assert_eq!(stability_witness(&pat("*")), Some(StabilityWitness::DepthZero));
        // Depth 0 with branches is still depth 0.
        assert_eq!(stability_witness(&pat("*[a][b]")), Some(StabilityWitness::DepthZero));
    }

    #[test]
    fn stability_fresh_branch_label() {
        // Root is *, depth 1; branch label `b` does not appear in Q>=1 = `c`.
        let w = stability_witness(&pat("*[b]/c")).expect("stable");
        assert_eq!(w, StabilityWitness::FreshLabelOutsideQGeq1(Label::new("b")));
    }

    #[test]
    fn stability_unknown_for_pure_star_spine() {
        // Root *, depth >= 1, every label of the pattern appears in Q>=1.
        assert_eq!(stability_witness(&pat("*//c")), None);
        assert_eq!(stability_witness(&pat("*[c]/c")), None);
        assert_eq!(stability_witness(&pat("*/*")), None);
    }

    #[test]
    fn gnf_star_cases() {
        // All child entries.
        assert!(is_gnf_star(&pat("a/b/c")));
        // Descendant entry with stable suffix (labeled node).
        assert!(is_gnf_star(&pat("a//b/c")));
        // Descendant entry with linear wildcard suffix.
        assert!(is_gnf_star(&pat("a//*/*")));
        // Descendant entry into a branching, unstable wildcard suffix.
        assert!(!is_gnf_star(&pat("a//*[*/c]/c")));
        // Certificate shape.
        let cert = gnf_star_certificate(&pat("a//b/c")).expect("in gnf");
        assert_eq!(cert.len(), 2);
        assert!(matches!(cert[0], GnfCase::StableSuffix(_)));
        assert_eq!(cert[1], GnfCase::ChildEntry);
    }

    #[test]
    fn deepest_descendant_edge_probe() {
        assert_eq!(deepest_descendant_selection_edge(&pat("a/b/c")), None);
        assert_eq!(deepest_descendant_selection_edge(&pat("a//b/c")), Some(1));
        assert_eq!(deepest_descendant_selection_edge(&pat("a//b//c/d")), Some(2));
        // Branch descendant edges do not count: selection path only.
        assert_eq!(deepest_descendant_selection_edge(&pat("a[.//x]/b")), None);
    }

    #[test]
    fn prefix_all_child() {
        assert!(selection_prefix_all_child(&pat("a/b//c"), 1));
        assert!(!selection_prefix_all_child(&pat("a/b//c"), 2));
        assert!(selection_prefix_all_child(&pat("a/b/c"), 2));
        assert!(selection_prefix_all_child(&pat("a"), 5));
    }

    #[test]
    fn star_chain_lengths() {
        assert_eq!(star_chain_len(&pat("a/b")), 0);
        assert_eq!(star_chain_len(&pat("*")), 1);
        assert_eq!(star_chain_len(&pat("*/*/*")), 3);
        // Descendant edges break rigid chains.
        assert_eq!(star_chain_len(&pat("*//*/*")), 2);
        // Chains may sit inside branches.
        assert_eq!(star_chain_len(&pat("a[*/*/*/*]/b")), 4);
        // Label interruptions break chains.
        assert_eq!(star_chain_len(&pat("*/a/*")), 1);
    }
}
