//! Experiment E-T6 (table T4): ablations of the design choices DESIGN.md
//! calls out.
//!
//! * homomorphism fast path on/off — how much of the workload the PTIME
//!   witness absorbs before the canonical loop runs;
//! * expansion bound `B` vs `B+2` — the bound is provably sufficient, so a
//!   larger bound only costs time (the answers are asserted identical in the
//!   integration tests);
//! * brute-force spine pinning — the Proposition 3.1(3) label pinning is
//!   what keeps the oracle usable (here: with vs without the relaxed-size
//!   budget as proxy, since un-pinning is not expressible without weakening
//!   the enumerator's correctness).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use xpv_bench::containment_batch;
use xpv_semantics::{contained_with, expansion_bound, ContainmentOptions};
use xpv_workload::Fragment;

fn hom_fast_path(c: &mut Criterion) {
    let batch = containment_batch(Fragment::Full, 3, 12, 0xFEED);
    let on = ContainmentOptions { hom_fast_path: true, bound_override: None };
    let off = ContainmentOptions { hom_fast_path: false, bound_override: None };
    let mut group = c.benchmark_group("ablation_hom_fast_path");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::from_parameter("on"), &batch, |b, batch| {
        b.iter(|| {
            batch.iter().filter(|(p1, p2)| contained_with(black_box(p1), p2, &on).holds).count()
        })
    });
    group.bench_with_input(BenchmarkId::from_parameter("off"), &batch, |b, batch| {
        b.iter(|| {
            batch.iter().filter(|(p1, p2)| contained_with(black_box(p1), p2, &off).holds).count()
        })
    });
    group.finish();
}

fn expansion_bound_padding(c: &mut Criterion) {
    let batch = containment_batch(Fragment::Full, 3, 8, 0xF00D);
    let mut group = c.benchmark_group("ablation_expansion_bound");
    group.sample_size(10);
    for pad in [0usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(pad), &batch, |b, batch| {
            b.iter(|| {
                batch
                    .iter()
                    .filter(|(p1, p2)| {
                        let opts = ContainmentOptions {
                            hom_fast_path: false,
                            bound_override: Some(expansion_bound(p2) + pad),
                        };
                        contained_with(black_box(p1), p2, &opts).holds
                    })
                    .count()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, hom_fast_path, expansion_bound_padding);
criterion_main!(benches);
