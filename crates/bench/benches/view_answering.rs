//! Experiment E-T4 (figure C2): answering queries from materialized views vs
//! direct evaluation, over growing documents.
//!
//! This is the paper's motivating application (caching, Section 1). Planning
//! (rewritability decisions) is document-size independent; evaluation from a
//! pre-filtered view beats a full-document scan by a factor that grows with
//! the selectivity of the view. Both phases are measured separately.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use xpv_core::{RewriteAnswer, RewritePlanner};
use xpv_engine::MaterializedView;
use xpv_semantics::evaluate;
use xpv_workload::{site_catalog, site_doc};

fn view_vs_direct(c: &mut Criterion) {
    let planner = RewritePlanner::without_fallback();
    let catalog = site_catalog();
    let mut group = c.benchmark_group("view_answering_site");
    for scale in [4usize, 8, 16, 32] {
        let doc = site_doc(scale, scale, 7);
        group.throughput(Throughput::Elements(doc.len() as u64));

        // Materialize the "items" view and pre-plan the rewriting for the
        // catalog's item_names query (planning is done once; the cache would
        // amortize it identically).
        let view_def = catalog.views[0].1.clone();
        let view = MaterializedView::materialize("items", view_def.clone(), &doc);
        let query = catalog
            .queries
            .iter()
            .find(|(n, _)| *n == "item_listitems")
            .map(|(_, q)| q.clone())
            .expect("catalog query");
        let rewriting = match planner.decide(&query, &view_def) {
            RewriteAnswer::Rewriting(rw) => rw.pattern().clone(),
            other => panic!("expected rewriting for the bench query, got {other:?}"),
        };
        // Correctness anchor.
        assert_eq!(view.apply_virtual(&rewriting, &doc), evaluate(&query, &doc));

        group.bench_with_input(BenchmarkId::new("direct", doc.len()), &doc, |b, doc| {
            b.iter(|| evaluate(black_box(&query), doc))
        });
        group.bench_with_input(
            BenchmarkId::new("via_view", doc.len()),
            &(&view, &doc),
            |b, (view, doc)| b.iter(|| view.apply_virtual(black_box(&rewriting), doc)),
        );
    }
    group.finish();
}

fn planning_latency(c: &mut Criterion) {
    // Planning is independent of the document: decide every catalog query
    // against every catalog view.
    let planner = RewritePlanner::without_fallback();
    let catalog = site_catalog();
    c.bench_function("plan_site_catalog", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for (_, q) in &catalog.queries {
                for (_, v) in &catalog.views {
                    if v.depth() <= q.depth() {
                        hits += usize::from(matches!(
                            planner.decide(black_box(q), v),
                            RewriteAnswer::Rewriting(_)
                        ));
                    }
                }
            }
            hits
        })
    });
}

fn materialization(c: &mut Criterion) {
    let catalog = site_catalog();
    let mut group = c.benchmark_group("materialize_views");
    for scale in [8usize, 16] {
        let doc = site_doc(scale, scale, 7);
        group.bench_with_input(BenchmarkId::from_parameter(doc.len()), &doc, |b, doc| {
            b.iter(|| {
                catalog
                    .views
                    .iter()
                    .map(|(n, v)| MaterializedView::materialize(*n, v.clone(), doc).len())
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, view_vs_direct, planning_latency, materialization);
criterion_main!(benches);
