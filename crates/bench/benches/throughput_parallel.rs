//! Parallel throughput under repeated traffic: the scaling experiment for
//! the sharded serving path.
//!
//! A [`ShardedViewCache`] over an XMark-shaped document serves the same
//! Zipf-distributed query stream as the single-threaded throughput bench,
//! but split round-robin across `T` worker threads that answer concurrently
//! through one shared cache (`&self` end to end: sharded plan memo, sharded
//! containment-oracle memo, copy-on-write view pool).
//!
//! For each thread count the bench measures whole-stream wall time on a
//! fresh cache (so every configuration pays the same cold planning work)
//! and emits a machine-readable scaling curve to
//! `BENCH_throughput_parallel.json` at the repository root, including the
//! `threads = 4` vs `threads = 1` speedup and the hardware parallelism of
//! the machine that produced it (the curve can only bend up to that line).
//!
//! Before timing anything, every thread-count configuration is checked to
//! produce answers identical to the single-threaded `ViewCache` — the
//! correctness contract of the sharded path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

use xpv_engine::{ShardedViewCache, ViewCache};
use xpv_pattern::Pattern;
use xpv_workload::{catalog_zipf_stream, site_catalog, site_doc};

const SHARDS: usize = 16;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn query_stream(count: usize) -> Vec<Pattern> {
    catalog_zipf_stream(&site_catalog(), count, 0x21F)
}

fn fresh_sharded() -> ShardedViewCache {
    let cache = ShardedViewCache::new(site_doc(12, 12, 7)).with_shards(SHARDS);
    for (name, def) in site_catalog().views {
        cache.add_view(name, def);
    }
    cache
}

/// Round-robin split of the stream into per-thread slices.
fn partition(stream: &[Pattern], threads: usize) -> Vec<Vec<Pattern>> {
    let mut chunks: Vec<Vec<Pattern>> = vec![Vec::new(); threads];
    for (i, q) in stream.iter().enumerate() {
        chunks[i % threads].push(q.clone());
    }
    chunks
}

/// One timed pass: `threads` workers drain their chunks concurrently.
/// Returns queries per second over the whole stream.
fn run_parallel(cache: &ShardedViewCache, chunks: &[Vec<Pattern>]) -> f64 {
    let total: usize = chunks.iter().map(Vec::len).sum();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for chunk in chunks {
            scope.spawn(move || {
                let answers = cache.answer_batch(chunk);
                black_box(answers.len())
            });
        }
    });
    total as f64 / start.elapsed().as_secs_f64()
}

fn write_summary_json(stream_len: usize, scaling: &[(usize, f64)], cache: &ShardedViewCache) {
    let qps_at = |t: usize| scaling.iter().find(|(n, _)| *n == t).map(|(_, q)| *q);
    let speedup = match (qps_at(4), qps_at(1)) {
        (Some(q4), Some(q1)) if q1 > 0.0 => q4 / q1,
        _ => 0.0,
    };
    let hardware = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let s = cache.stats();
    let curve: Vec<String> = scaling
        .iter()
        .map(|(t, qps)| {
            format!(
                "    {{ \"threads\": {t}, \"qps\": {qps:.1}, \"mean_us_per_query\": {:.3} }}",
                1e6 / qps.max(f64::MIN_POSITIVE)
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"throughput_parallel_zipf_site\",\n",
            "  \"stream_len\": {},\n",
            "  \"shards\": {},\n",
            "  \"hardware_threads\": {},\n",
            "  \"scaling\": [\n{}\n  ],\n",
            "  \"speedup_4_threads_vs_1\": {:.3},\n",
            "  \"last_run_plan_memo_hits\": {},\n",
            "  \"last_run_plan_memo_misses\": {},\n",
            "  \"last_run_oracle_canonical_runs\": {}\n",
            "}}\n"
        ),
        stream_len,
        SHARDS,
        hardware,
        curve.join(",\n"),
        speedup,
        s.plan_memo_hits,
        s.plan_memo_misses,
        s.oracle_canonical_runs,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput_parallel.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
    print!("{json}");
}

fn throughput_parallel(c: &mut Criterion) {
    let stream = query_stream(2000);

    // Correctness anchor: the sharded cache on every thread count returns
    // exactly the single-threaded ViewCache's answers and routes.
    {
        let mut serial = ViewCache::new(site_doc(12, 12, 7));
        for (name, def) in site_catalog().views {
            serial.add_view(name, def);
        }
        let reference: Vec<_> = serial.answer_batch(&stream[..200]);
        for &threads in &[1usize, 4] {
            let cache = fresh_sharded();
            let chunks = partition(&stream[..200], threads);
            std::thread::scope(|scope| {
                for chunk in &chunks {
                    let cache = &cache;
                    scope.spawn(move || {
                        for q in chunk {
                            black_box(cache.answer(q));
                        }
                    });
                }
            });
            // Replay serially against the warm concurrent cache: routes and
            // nodes must be what the single-threaded cache produced.
            for (q, want) in stream[..200].iter().zip(&reference) {
                let got = cache.answer(q);
                assert_eq!(got.nodes, want.nodes, "nodes diverged for {q} at {threads} threads");
                assert_eq!(got.route, want.route, "route diverged for {q} at {threads} threads");
            }
        }
    }

    // The scaling curve (fresh cache per configuration: each pays the same
    // cold planning work; the JSON records the final configuration's stats).
    let mut scaling: Vec<(usize, f64)> = Vec::new();
    let mut last_cache = None;
    for &threads in &THREAD_COUNTS {
        let cache = fresh_sharded();
        let chunks = partition(&stream, threads);
        let qps = run_parallel(&cache, &chunks);
        println!("threads={threads:<2} qps={qps:>10.1}");
        scaling.push((threads, qps));
        last_cache = Some(cache);
    }
    let last_cache = last_cache.expect("at least one configuration ran");
    assert_eq!(
        last_cache.stats().plan_memo_hits + last_cache.stats().plan_memo_misses,
        stream.len() as u64
    );
    write_summary_json(stream.len(), &scaling, &last_cache);

    // Criterion timings over a shorter slice: steady-state (warm) serving at
    // 1 vs 4 threads.
    let slice: Vec<Pattern> = stream[..400].to_vec();
    let mut group = c.benchmark_group("throughput_parallel_zipf_site");
    group.sample_size(10);
    for &threads in &[1usize, 4] {
        let cache = fresh_sharded();
        let chunks = partition(&slice, threads);
        // Warm pass so the criterion loop measures steady state.
        let _ = run_parallel(&cache, &chunks);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("threads_{threads}")),
            &chunks,
            |b, chunks| b.iter(|| run_parallel(&cache, black_box(chunks))),
        );
    }
    group.finish();
}

criterion_group!(benches, throughput_parallel);
criterion_main!(benches);
