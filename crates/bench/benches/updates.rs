//! Document-update maintenance: incremental affected-region refresh vs
//! full re-materialization.
//!
//! The cache serves a Zipf query workload while a Zipf-skewed edit stream
//! (inserts/deletes/relabels, `xpv_workload::edits`) churns the document.
//! Two maintenance modes are timed end to end:
//!
//! * **incremental** — `apply_edits` patches each view from the edit's
//!   affected region (ancestor spine + touched subtree, `xpv-maintain`);
//! * **full** — every view is re-materialized over the whole document per
//!   batch (the rebuild-the-world baseline).
//!
//! Answers are asserted byte-identical between the modes (and against
//! direct evaluation) before anything is timed. The machine-readable
//! summary with the same ablation lives in `BENCH_updates.json`, written by
//! `xpv update-bench` (the CLI twin of this bench).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use xpv_engine::{Edit, ShardedViewCache};
use xpv_workload::{edit_batches, edit_stream, site_doc, site_intersect_catalog, EditMix};

fn fresh_cache(incremental: bool) -> ShardedViewCache {
    let cache = ShardedViewCache::new(site_doc(12, 12, 7));
    cache.set_incremental_maintenance(incremental);
    for (name, def) in site_intersect_catalog().views {
        cache.add_view(name, def);
    }
    cache
}

fn batches() -> Vec<Vec<Edit>> {
    let doc = site_doc(12, 12, 7);
    edit_batches(&edit_stream(&doc, 200, EditMix::default(), 0xED17), 10)
}

fn updates(c: &mut Criterion) {
    let batches = batches();

    // Correctness anchor: both maintenance modes converge to identical
    // answers after the whole stream.
    {
        let incremental = fresh_cache(true);
        let full = fresh_cache(false);
        for batch in &batches {
            incremental.apply_edits(batch).expect("valid batch");
            full.apply_edits(batch).expect("valid batch");
        }
        for (_, q) in site_intersect_catalog().queries {
            let a = incremental.answer(&q);
            let b = full.answer(&q);
            assert_eq!(a.nodes, b.nodes, "maintenance modes diverged on {q}");
            assert_eq!(a.nodes, incremental.answer_direct(&q), "wrong answer for {q}");
        }
    }

    let mut group = c.benchmark_group("update_maintenance");
    for (label, incremental) in [("incremental", true), ("full_recompute", false)] {
        group.bench_with_input(BenchmarkId::new("apply_edits", label), &batches, |b, batches| {
            b.iter(|| {
                let cache = fresh_cache(incremental);
                for batch in batches {
                    black_box(cache.apply_edits(batch).expect("valid batch"));
                }
                cache
            });
        });
    }
    group.finish();
}

criterion_group!(benches, updates);
criterion_main!(benches);
