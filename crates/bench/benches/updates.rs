//! Document-update maintenance: coalesced batch refresh vs per-edit
//! incremental refresh vs full re-materialization.
//!
//! The cache serves a Zipf query workload while a **bursty** edit stream
//! (inserts/deletes/relabels clustered under a few hot subtrees,
//! `xpv_workload::edits`) churns the document. Three maintenance modes are
//! timed end to end:
//!
//! * **coalesced** — `apply_edits` applies the whole batch, merges
//!   overlapping/nested affected regions, and re-scans each view against
//!   the few surviving disjoint regions off one shared flat freeze, fanning
//!   independent regions across worker threads (`xpv-maintain::coalesce`);
//! * **per_edit** — the legacy path: one affected-region scan per
//!   (view, edit) pair (the `--no-coalesce` ablation);
//! * **full** — every view is re-materialized over the whole document per
//!   batch (the rebuild-the-world baseline).
//!
//! Answers are asserted byte-identical across the modes (and against
//! direct evaluation) before anything is timed. The machine-readable
//! summary with the full ablation grid lives in `BENCH_updates.json`,
//! written by `xpv update-bench` (the CLI twin of this bench).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use xpv_engine::{Edit, ShardedViewCache};
use xpv_workload::{
    edit_batches, edit_stream_clustered, site_doc, site_intersect_catalog, EditLocality, EditMix,
};

#[derive(Clone, Copy)]
enum Mode {
    Coalesced,
    PerEdit,
    Full,
}

fn fresh_cache(mode: Mode) -> ShardedViewCache {
    let cache = ShardedViewCache::new(site_doc(12, 12, 7));
    match mode {
        Mode::Coalesced => {}
        Mode::PerEdit => cache.set_coalesce_enabled(false),
        Mode::Full => cache.set_incremental_maintenance(false),
    }
    for (name, def) in site_intersect_catalog().views {
        cache.add_view(name, def);
    }
    cache
}

fn batches() -> Vec<Vec<Edit>> {
    let doc = site_doc(12, 12, 7);
    let stream =
        edit_stream_clustered(&doc, 200, EditMix::default(), EditLocality::default(), 0xED17);
    edit_batches(&stream, 10)
}

fn updates(c: &mut Criterion) {
    let batches = batches();

    // Correctness anchor: all three maintenance modes converge to
    // identical answers after the whole stream.
    {
        let coalesced = fresh_cache(Mode::Coalesced);
        let per_edit = fresh_cache(Mode::PerEdit);
        let full = fresh_cache(Mode::Full);
        for batch in &batches {
            coalesced.apply_edits(batch).expect("valid batch");
            per_edit.apply_edits(batch).expect("valid batch");
            full.apply_edits(batch).expect("valid batch");
        }
        for (_, q) in site_intersect_catalog().queries {
            let a = coalesced.answer(&q);
            assert_eq!(a.nodes, per_edit.answer(&q).nodes, "coalesced vs per-edit on {q}");
            assert_eq!(a.nodes, full.answer(&q).nodes, "maintenance modes diverged on {q}");
            assert_eq!(a.nodes, coalesced.answer_direct(&q), "wrong answer for {q}");
        }
    }

    let mut group = c.benchmark_group("update_maintenance");
    for (label, mode) in [
        ("coalesced", Mode::Coalesced),
        ("per_edit", Mode::PerEdit),
        ("full_recompute", Mode::Full),
    ] {
        group.bench_with_input(BenchmarkId::new("apply_edits", label), &batches, |b, batches| {
            b.iter(|| {
                let cache = fresh_cache(mode);
                for batch in batches {
                    black_box(cache.apply_edits(batch).expect("valid batch"));
                }
                cache
            });
        });
    }
    group.finish();
}

criterion_group!(benches, updates);
criterion_main!(benches);
