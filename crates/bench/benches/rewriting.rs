//! Experiment E-T3 (table T2): the planner's "few containment tests" vs the
//! Proposition 3.4 brute force.
//!
//! The paper's headline practical claim: under the completeness conditions,
//! rewriting-existence costs at most two equivalence tests (coNP in the
//! input, but the input is small), while the only previously known complete
//! procedure is the double-exponential enumeration. This bench measures both
//! on the same instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use xpv_bench::{condition_catalog, instance_batch};
use xpv_core::{brute_force_rewrite, BruteForceConfig, RewritePlanner};
use xpv_workload::Fragment;

fn planner_on_conditions(c: &mut Criterion) {
    let planner = RewritePlanner::without_fallback();
    let mut group = c.benchmark_group("planner_conditions");
    for (name, p, v) in condition_catalog() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &(p, v), |b, (p, v)| {
            b.iter(|| planner.decide(black_box(p), black_box(v)))
        });
    }
    group.finish();
}

fn planner_vs_brute_force(c: &mut Criterion) {
    let planner = RewritePlanner::without_fallback();
    let bf_cfg = BruteForceConfig { max_nodes: 6, max_tested: 500, ..Default::default() };
    let mut group = c.benchmark_group("planner_vs_bruteforce");
    group.sample_size(10);
    for depth in [2usize, 3, 4] {
        let batch = instance_batch(Fragment::Full, depth, 8, 0xBEEF + depth as u64);
        group.bench_with_input(BenchmarkId::new("planner", depth), &batch, |b, batch| {
            b.iter(|| {
                for (p, v) in batch {
                    let _ = black_box(planner.decide(p, v));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("bruteforce", depth), &batch, |b, batch| {
            b.iter(|| {
                for (p, v) in batch {
                    if v.depth() <= p.depth() {
                        let _ = black_box(brute_force_rewrite(p, v, &bf_cfg));
                    }
                }
            })
        });
    }
    group.finish();
}

fn ptime_baseline(c: &mut Criterion) {
    // The Xu–Özsoyoglu baseline on the sub-fragments vs the full planner.
    let planner = RewritePlanner::without_fallback();
    let mut group = c.benchmark_group("ptime_baseline");
    for (name, fragment) in [
        ("XP{//,[]}", Fragment::NoWildcard),
        ("XP{[],*}", Fragment::NoDescendant),
        ("XP{//,*}", Fragment::NoBranch),
    ] {
        let batch = instance_batch(fragment, 4, 12, 0xABCD);
        group.bench_with_input(BenchmarkId::new("hom_only", name), &batch, |b, batch| {
            b.iter(|| {
                for (p, v) in batch {
                    let _ = black_box(xpv_core::ptime_rewrite(p, v, false));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("full_planner", name), &batch, |b, batch| {
            b.iter(|| {
                for (p, v) in batch {
                    let _ = black_box(planner.decide(p, v));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, planner_on_conditions, planner_vs_brute_force, ptime_baseline);
criterion_main!(benches);
