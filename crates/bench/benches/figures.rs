//! Experiments E-F1..E-F4: the paper's figures, re-verified and timed.
//!
//! Each iteration re-runs the figure's *claim*: Figure 1's composition
//! equivalence, Figure 2's candidate gap, Figure 3's relaxation chain, and
//! Figure 4's planner decisions. The assertions run once up front so a
//! regression fails the bench loudly rather than producing garbage timings.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use xpv_core::{figure1, figure2, figure3, figure4, RewritePlanner};
use xpv_pattern::compose;
use xpv_semantics::equivalent;

fn fig1(c: &mut Criterion) {
    let f = figure1();
    let rv = compose(&f.r, &f.v).expect("composes");
    assert!(equivalent(&rv, &f.p), "Figure 1 claim violated");
    c.bench_function("fig1_compose_and_verify", |b| {
        b.iter(|| {
            let rv = compose(black_box(&f.r), black_box(&f.v)).expect("composes");
            equivalent(&rv, &f.p)
        })
    });
}

fn fig2(c: &mut Criterion) {
    let f = figure2();
    let base = compose(&f.cand_base, &f.v).expect("composes");
    let relaxed = compose(&f.cand_relaxed, &f.v).expect("composes");
    assert!(!equivalent(&base, &f.p) && equivalent(&relaxed, &f.p), "Figure 2 claim violated");
    c.bench_function("fig2_candidate_tests", |b| {
        b.iter(|| {
            let b1 = compose(black_box(&f.cand_base), &f.v).expect("composes");
            let b2 = compose(black_box(&f.cand_relaxed), &f.v).expect("composes");
            (equivalent(&b1, &f.p), equivalent(&b2, &f.p))
        })
    });
}

fn fig3(c: &mut Criterion) {
    let f = figure3();
    assert!(equivalent(&f.b, &f.b_prime), "Figure 3 claim violated");
    c.bench_function("fig3_relaxation_chain", |b| {
        b.iter(|| (equivalent(black_box(&f.b), &f.b_relaxed), equivalent(&f.b_relaxed, &f.b_prime)))
    });
}

fn fig4(c: &mut Criterion) {
    let f = figure4();
    let planner = RewritePlanner::without_fallback();
    for (name, p) in [("P1", &f.p1), ("P2", &f.p2), ("P3", &f.p3)] {
        assert!(planner.decide(p, &f.v).rewriting().is_some(), "Figure 4 {name} claim violated");
    }
    c.bench_function("fig4_planner_p1_p2_p3", |b| {
        b.iter(|| {
            (
                planner.decide(black_box(&f.p1), &f.v).rewriting().is_some(),
                planner.decide(black_box(&f.p2), &f.v).rewriting().is_some(),
                planner.decide(black_box(&f.p3), &f.v).rewriting().is_some(),
            )
        })
    });
}

criterion_group!(benches, fig1, fig2, fig3, fig4);
criterion_main!(benches);
