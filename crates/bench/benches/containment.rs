//! Experiment E-T2 (figure C1): containment latency across fragments and
//! sizes.
//!
//! The paper's complexity landscape (Section 1): containment is PTIME on the
//! three sub-fragments (homomorphism) and coNP-complete on `XP{//,[],*}`.
//! This bench shows the *shape* of that landscape: per-fragment latency
//! scaling, the homomorphism fast path vs the canonical-model loop, and the
//! hom-gap family where only the canonical loop can answer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use xpv_bench::containment_batch;
use xpv_semantics::{contained, contained_with, ContainmentOptions};
use xpv_workload::{conp_stress_instance, hom_gap_instance, Fragment};

fn fragment_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("containment_by_fragment");
    group.sample_size(20);
    for (name, fragment) in [
        ("XP{//,[]}", Fragment::NoWildcard),
        ("XP{[],*}", Fragment::NoDescendant),
        ("XP{//,*}", Fragment::NoBranch),
        ("XP{//,[],*}", Fragment::Full),
    ] {
        for depth in [2usize, 3, 4] {
            let batch = containment_batch(fragment, depth, 16, 0xC0FFEE + depth as u64);
            group.bench_with_input(BenchmarkId::new(name, depth), &batch, |b, batch| {
                b.iter(|| {
                    let mut holds = 0usize;
                    for (p1, p2) in batch {
                        holds += usize::from(contained(black_box(p1), black_box(p2)));
                    }
                    holds
                })
            });
        }
    }
    group.finish();
}

fn hom_gap(c: &mut Criterion) {
    let mut group = c.benchmark_group("containment_hom_gap");
    for n in [1usize, 2, 3, 4] {
        let (p1, p2) = hom_gap_instance(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &(p1, p2), |b, (p1, p2)| {
            b.iter(|| contained(black_box(p1), black_box(p2)))
        });
    }
    group.finish();
}

fn conp_stress(c: &mut Criterion) {
    let mut group = c.benchmark_group("containment_conp_stress");
    group.sample_size(10);
    let opts = ContainmentOptions { hom_fast_path: false, bound_override: None };
    for m in [1usize, 2, 3] {
        let (p1, p2) = conp_stress_instance(m, 2);
        group.bench_with_input(BenchmarkId::from_parameter(m), &(p1, p2), |b, (p1, p2)| {
            b.iter(|| contained_with(black_box(p1), black_box(p2), &opts).holds)
        });
    }
    group.finish();
}

criterion_group!(benches, fragment_scaling, hom_gap, conp_stress);
criterion_main!(benches);
