//! Throughput under repeated traffic: the tentpole experiment for the
//! containment-oracle + plan-memo architecture.
//!
//! A `ViewCache` over an XMark-shaped document serves a Zipf-distributed
//! query stream (heavy repetition of a few hot queries — the regime a
//! production cache actually sees). Three configurations are timed:
//!
//! * **memo on** — the shipped configuration: long-lived planning session,
//!   oracle memo, plan memo;
//! * **memo off** — the ablation: every arrival replans from scratch
//!   (`ViewCache::set_memo_enabled` is kept exactly for this comparison);
//! * **direct** — no views at all, every query evaluated on the document.
//!
//! A second pass drives the **overlapping-view** catalog, whose hot queries
//! no single view can answer, with intersection routes on vs. off
//! (`ViewCache::set_intersect_enabled`) — the multi-view ablation. At this
//! document scale direct evaluation is cheap, so the headline there is the
//! route counters (how much traffic moves off the document and onto the
//! views), not the latency delta; on documents where direct evaluation is
//! the expensive path, the hit counters are the capacity win.
//!
//! A third pass measures the **plan-miss fast path**: the plan memo is
//! disabled (every arrival replans cold) against a ~40-view pool derived
//! from the site *and* bib catalogs — most candidates can never rewrite a
//! site query, which is exactly the regime the per-view signature filter
//! targets. Filter on vs. off must return identical answers and routes;
//! the filter-on run reports how many candidates were rejected before any
//! oracle call (`sig_rejects / candidates_tried`).
//!
//! Besides the criterion timings, the bench writes a machine-readable
//! summary to `BENCH_throughput.json` at the repository root: mean
//! per-query latency for each configuration, the amortized speedup, the
//! memo-hit counters that prove repeated queries run zero canonical-model
//! containment calls, the intersect-route counters showing how often
//! multi-view routes fired, and the signature-filter ablation block.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

use xpv_engine::{CacheStats, ViewCache};
use xpv_pattern::Pattern;
use xpv_workload::{
    bib_catalog, catalog_zipf_stream, derived_view_pool, site_catalog, site_doc,
    site_intersect_catalog,
};

/// The workload: a Zipf-repeated stream over the site catalog's queries
/// (shared with the parallel bench and the CLI via `xpv_workload::zipf`).
fn query_stream(count: usize) -> Vec<Pattern> {
    catalog_zipf_stream(&site_catalog(), count, 0x21F)
}

fn fresh_cache(memo: bool) -> ViewCache {
    let doc = site_doc(12, 12, 7);
    let mut cache = ViewCache::new(doc);
    if !memo {
        cache.set_memo_enabled(false);
    }
    for (name, def) in site_catalog().views {
        cache.add_view(name, def);
    }
    cache
}

/// A cache over the overlapping-view catalog (whose hot queries only
/// multi-view intersections can serve), with intersect routes on or off.
fn intersect_cache(intersect: bool) -> ViewCache {
    let doc = site_doc(12, 12, 7);
    let mut cache = ViewCache::new(doc);
    cache.set_intersect_enabled(intersect);
    for (name, def) in site_intersect_catalog().views {
        cache.add_view(name, def);
    }
    cache
}

/// The multi-tenant-shaped view pool for the plan-miss ablation: a few
/// views derived from the site catalog plus a large block derived from
/// the foreign bib catalog — candidates a cold planner must wade through
/// but that can never rewrite a site query.
fn sig_pool() -> Vec<(String, Pattern)> {
    let mut pool = derived_view_pool(&[&site_catalog()], 1, 0xC01D);
    pool.extend(derived_view_pool(&[&bib_catalog()], 9, 0xC01D ^ 1));
    pool
}

/// A memo-disabled cache over [`sig_pool`]: every arrival is a cold plan
/// miss against ~40 candidates — the regime the per-view signature
/// filter targets.
fn sig_pool_cache(sig_filter: bool) -> ViewCache {
    let doc = site_doc(12, 12, 7);
    let mut cache = ViewCache::new(doc);
    cache.set_memo_enabled(false);
    cache.set_sig_filter_enabled(sig_filter);
    for (name, def) in sig_pool() {
        cache.add_view(&name, def);
    }
    cache
}

/// One timed pass over the stream; (mean total µs, mean **planning** µs)
/// per query — the planning share is what the signature filter attacks.
fn run_stream_phases(cache: &mut ViewCache, stream: &[Pattern]) -> (f64, f64) {
    let start = Instant::now();
    let answers = cache.answer_batch(stream);
    let elapsed = start.elapsed();
    assert_eq!(answers.len(), stream.len());
    let plan: std::time::Duration = answers.iter().map(|a| a.planning).sum();
    (
        elapsed.as_secs_f64() * 1e6 / stream.len() as f64,
        plan.as_secs_f64() * 1e6 / stream.len() as f64,
    )
}

/// One timed pass over the stream; mean µs per query.
fn run_stream(cache: &mut ViewCache, stream: &[Pattern]) -> f64 {
    let start = Instant::now();
    let answers = cache.answer_batch(stream);
    let elapsed = start.elapsed();
    assert_eq!(answers.len(), stream.len());
    elapsed.as_secs_f64() * 1e6 / stream.len() as f64
}

#[allow(clippy::too_many_arguments)]
fn write_summary_json(
    stream_len: usize,
    mean_on_us: f64,
    mean_off_us: f64,
    mean_direct_us: f64,
    cache_on: &ViewCache,
    mean_ix_on_us: f64,
    mean_ix_off_us: f64,
    ix_stats: &CacheStats,
    pool_views: usize,
    sig_on: (f64, f64),
    sig_off: (f64, f64),
    sig_stats: &CacheStats,
) {
    let s = cache_on.stats();
    let speedup = if mean_on_us > 0.0 { mean_off_us / mean_on_us } else { 0.0 };
    let ix_speedup = if mean_ix_on_us > 0.0 { mean_ix_off_us / mean_ix_on_us } else { 0.0 };
    let (mean_sig_on_us, plan_sig_on_us) = sig_on;
    let (mean_sig_off_us, plan_sig_off_us) = sig_off;
    // The filter attacks the planning phase; evaluation is identical
    // across the two arms, so the headline speedup compares plan time.
    let sig_speedup = if plan_sig_on_us > 0.0 { plan_sig_off_us / plan_sig_on_us } else { 0.0 };
    let sig_candidates = sig_stats.sig_rejects + sig_stats.sig_passes;
    let sig_reject_rate =
        if sig_candidates > 0 { sig_stats.sig_rejects as f64 / sig_candidates as f64 } else { 0.0 };
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"throughput_zipf_site\",\n",
            "  \"stream_len\": {},\n",
            "  \"mean_us_per_query_memo_on\": {:.3},\n",
            "  \"mean_us_per_query_memo_off\": {:.3},\n",
            "  \"mean_us_per_query_direct\": {:.3},\n",
            "  \"amortized_speedup_memo_on_vs_off\": {:.3},\n",
            "  \"plan_memo_hits\": {},\n",
            "  \"plan_memo_misses\": {},\n",
            "  \"oracle_memo_hits\": {},\n",
            "  \"oracle_canonical_runs\": {},\n",
            "  \"view_hits\": {},\n",
            "  \"direct\": {},\n",
            "  \"intersect\": {{\n",
            "    \"mean_us_per_query_intersect_on\": {:.3},\n",
            "    \"mean_us_per_query_intersect_off\": {:.3},\n",
            "    \"speedup_intersect_on_vs_off\": {:.3},\n",
            "    \"intersect_hits\": {},\n",
            "    \"intersect_routes\": {},\n",
            "    \"intersect_candidates_tried\": {},\n",
            "    \"intersect_participants\": {},\n",
            "    \"view_hits\": {},\n",
            "    \"direct\": {}\n",
            "  }},\n",
            "  \"sig_filter\": {{\n",
            "    \"pool_views\": {},\n",
            "    \"mean_us_per_query_filter_on\": {:.3},\n",
            "    \"mean_us_per_query_filter_off\": {:.3},\n",
            "    \"mean_plan_us_per_query_filter_on\": {:.3},\n",
            "    \"mean_plan_us_per_query_filter_off\": {:.3},\n",
            "    \"speedup_filter_on_vs_off\": {:.3},\n",
            "    \"sig_rejects\": {},\n",
            "    \"sig_passes\": {},\n",
            "    \"candidates_tried\": {},\n",
            "    \"sig_reject_rate\": {:.4},\n",
            "    \"answers_identical\": true\n",
            "  }}\n",
            "}}\n"
        ),
        stream_len,
        mean_on_us,
        mean_off_us,
        mean_direct_us,
        speedup,
        s.plan_memo_hits,
        s.plan_memo_misses,
        s.oracle_memo_hits,
        s.oracle_canonical_runs,
        s.view_hits,
        s.direct,
        mean_ix_on_us,
        mean_ix_off_us,
        ix_speedup,
        ix_stats.intersect_hits,
        ix_stats.intersect_routes,
        ix_stats.intersect_candidates_tried,
        ix_stats.intersect_participants,
        ix_stats.view_hits,
        ix_stats.direct,
        pool_views,
        mean_sig_on_us,
        mean_sig_off_us,
        plan_sig_on_us,
        plan_sig_off_us,
        sig_speedup,
        sig_stats.sig_rejects,
        sig_stats.sig_passes,
        sig_candidates,
        sig_reject_rate,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
    print!("{json}");
}

fn throughput(c: &mut Criterion) {
    let stream = query_stream(300);

    // Correctness anchor: memoized answers equal memo-less and direct ones.
    {
        let mut on = fresh_cache(true);
        let mut off = fresh_cache(false);
        for q in stream.iter().take(40) {
            let a = on.answer(q);
            let b = off.answer(q);
            assert_eq!(a.nodes, b.nodes, "memo changed an answer for {q}");
            assert_eq!(a.nodes, on.answer_direct(q), "cache answer wrong for {q}");
        }
    }

    // The JSON summary pass (measured once, outside criterion's loop, so the
    // memo-on numbers include the cold first pass exactly once).
    let mut cache_on = fresh_cache(true);
    let mean_on_us = run_stream(&mut cache_on, &stream);
    let mut cache_off = fresh_cache(false);
    let mean_off_us = run_stream(&mut cache_off, &stream);
    let direct_cache = fresh_cache(true);
    let direct_start = Instant::now();
    for q in &stream {
        black_box(direct_cache.answer_direct(q));
    }
    let mean_direct_us = direct_start.elapsed().as_secs_f64() * 1e6 / stream.len() as f64;

    // Intersect-route ablation over the overlapping-view catalog: the hot
    // queries are only answerable jointly, so intersect-off degrades them
    // to direct evaluation.
    let ix_stream = catalog_zipf_stream(&site_intersect_catalog(), 300, 0x21F);
    let mut ix_on = intersect_cache(true);
    let mean_ix_on_us = run_stream(&mut ix_on, &ix_stream);
    let ix_stats = ix_on.stats();
    assert!(ix_stats.intersect_hits > 0, "the overlapping catalog must fire intersect routes");
    {
        // Correctness anchor: intersection answers equal direct evaluation.
        let mut check = intersect_cache(true);
        for q in ix_stream.iter().take(40) {
            assert_eq!(
                check.answer(q).nodes,
                check.answer_direct(q),
                "intersection answer wrong for {q}"
            );
        }
    }
    let mut ix_off = intersect_cache(false);
    let mean_ix_off_us = run_stream(&mut ix_off, &ix_stream);
    assert_eq!(ix_off.stats().intersect_hits, 0, "ablation must disable intersect routes");

    // Plan-miss fast path ablation: cold planning on every arrival against
    // the derived ~40-view pool, signature filter on vs. off. The filter
    // must be invisible in the answers and routes, and must reject most of
    // the pool before any oracle call.
    let pool_views = sig_pool().len();
    {
        let mut a = sig_pool_cache(true);
        let mut b = sig_pool_cache(false);
        for q in stream.iter().take(40) {
            let x = a.answer(q);
            let y = b.answer(q);
            assert_eq!(x.nodes, y.nodes, "signature filter changed an answer for {q}");
            assert_eq!(x.route, y.route, "signature filter changed a route for {q}");
        }
    }
    let sig_stream = query_stream(240);
    let mut sig_on = sig_pool_cache(true);
    let sig_on_run = run_stream_phases(&mut sig_on, &sig_stream);
    let sig_stats = sig_on.stats();
    assert!(sig_stats.sig_rejects > 0, "the derived pool must trigger signature rejections");
    let mut sig_off = sig_pool_cache(false);
    let sig_off_run = run_stream_phases(&mut sig_off, &sig_stream);
    assert_eq!(sig_off.stats().sig_rejects, 0, "ablation must disable the signature filter");

    write_summary_json(
        stream.len(),
        mean_on_us,
        mean_off_us,
        mean_direct_us,
        &cache_on,
        mean_ix_on_us,
        mean_ix_off_us,
        &ix_stats,
        pool_views,
        sig_on_run,
        sig_off_run,
        &sig_stats,
    );
    assert_eq!(
        cache_on.stats().plan_memo_hits + cache_on.stats().plan_memo_misses,
        stream.len() as u64
    );

    // Criterion timings over a shorter slice (each iteration re-answers the
    // slice; the memo-on cache is warm after its first iteration, which is
    // exactly the steady state being measured).
    let slice = &stream[..100];
    let mut group = c.benchmark_group("throughput_zipf_site");
    group.sample_size(10);
    let mut warm = fresh_cache(true);
    group.bench_with_input(BenchmarkId::from_parameter("memo_on"), &slice, |b, slice| {
        b.iter(|| {
            let mut n = 0usize;
            for a in warm.answer_batch(black_box(slice)) {
                n += a.nodes.len();
            }
            n
        })
    });
    let mut cold = fresh_cache(false);
    group.bench_with_input(BenchmarkId::from_parameter("memo_off"), &slice, |b, slice| {
        b.iter(|| {
            let mut n = 0usize;
            for a in cold.answer_batch(black_box(slice)) {
                n += a.nodes.len();
            }
            n
        })
    });
    group.finish();
}

criterion_group!(benches, throughput);
criterion_main!(benches);
