//! # xpv-bench — shared fixtures for the benchmark harness
//!
//! The Criterion benches (`benches/`) and the `experiments` binary both draw
//! their instances from here so that timings and tables describe the same
//! workloads. Every fixture is seeded and deterministic.

use xpv_pattern::{parse_xpath, Pattern};
use xpv_workload::{Fragment, PatternGen, PatternGenConfig};

/// Parses a pattern, panicking on error (fixtures are static).
pub fn pat(s: &str) -> Pattern {
    parse_xpath(s).expect("fixture pattern parses")
}

/// A deterministic batch of (query, correlated view) instances in the given
/// fragment at the given selection depth.
pub fn instance_batch(
    fragment: Fragment,
    depth: usize,
    count: usize,
    seed: u64,
) -> Vec<(Pattern, Pattern)> {
    let cfg = PatternGenConfig { depth: (depth, depth), fragment, ..PatternGenConfig::default() };
    let mut g = PatternGen::new(cfg, seed);
    (0..count).map(|_| g.instance()).collect()
}

/// A deterministic batch of containment pairs in the given fragment, mixing
/// three kinds so the decision procedure sees both verdicts:
///
/// * `(p, p_r//)` — containment holds (homomorphism-witnessed);
/// * `(p_r//, p)` — usually fails (the canonical loop must refute);
/// * `(p, q)` for independent `p`, `q` — rarely related.
pub fn containment_batch(
    fragment: Fragment,
    depth: usize,
    count: usize,
    seed: u64,
) -> Vec<(Pattern, Pattern)> {
    let cfg = PatternGenConfig { depth: (depth, depth), fragment, ..PatternGenConfig::default() };
    let mut g = PatternGen::new(cfg, seed);
    (0..count)
        .map(|i| {
            let p = g.pattern();
            match i % 3 {
                0 => {
                    let gen = p.relax_root_edges();
                    (p, gen)
                }
                1 => {
                    let gen = p.relax_root_edges();
                    (gen, p)
                }
                _ => {
                    let q = g.pattern();
                    (p, q)
                }
            }
        })
        .collect()
}

/// Independent (query, view) pairs — unlike [`instance_batch`], the view is
/// *not* derived from the query, so the planner's depth/label gates fire
/// often. Used by the gate ablation.
pub fn independent_batch(
    fragment: Fragment,
    depth: usize,
    count: usize,
    seed: u64,
) -> Vec<(Pattern, Pattern)> {
    let cfg = PatternGenConfig { depth: (1, depth), fragment, ..PatternGenConfig::default() };
    let mut g = PatternGen::new(cfg, seed);
    (0..count)
        .map(|_| {
            let p = g.pattern();
            let v = g.pattern();
            (p, v)
        })
        .collect()
}

/// The per-condition instance catalog used by the completeness audit (table
/// T1): for each completeness condition, a handful of hand-built instances
/// known to fall under it. The `(pos)`/`(neg)` suffix encodes whether a
/// rewriting exists — pinned by the `catalog_labels_are_accurate` test.
pub fn condition_catalog() -> Vec<(&'static str, Pattern, Pattern)> {
    vec![
        ("k=d (pos)", pat("a/b[c]"), pat("a/*")),
        ("k=d (neg)", pat("a/b"), pat("a[z]/b")),
        ("Thm4.3 stable (pos)", pat("a//b//c"), pat("a//*")),
        ("Thm4.3 stable (neg)", pat("a/b/c"), pat("a//b")),
        ("Thm4.4 prefix (pos)", pat("a/*//*"), pat("a//*")),
        ("Thm4.4 prefix (neg)", pat("a/*//c/d"), pat("a[w]/*")),
        ("Thm4.9 desc-out (pos)", pat("a//*//e"), pat("a//*")),
        ("Thm4.9 desc-out (neg)", pat("a//*//e"), pat("a[w]//*")),
        ("Thm4.10 V-child (pos)", pat("a[b]//*/e[d]"), pat("a[b]/*")),
        ("Thm4.10 V-child (neg)", pat("a[b]//*/e[d]"), pat("a[q]/*")),
        ("Thm4.16 correl (pos)", pat("a/*//*/*/e"), pat("a/*//*/*")),
        ("Thm5.4 GNF (pos)", pat("a//*/*/*/e"), pat("a/*//*/*")),
        ("Prop5.6 *// (neg)", pat("a//*[*/e]/*/*/e"), pat("a/*//*/*")),
        ("Thm5.9 ext (neg)", pat("*//*[c/c]/*/c//e"), pat("*//*/*")),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpv_core::{RewriteAnswer, RewritePlanner};
    use xpv_workload::Fragment;

    #[test]
    fn catalog_labels_are_accurate() {
        let planner = RewritePlanner::without_fallback();
        for (name, p, v) in condition_catalog() {
            let ans = planner.decide(&p, &v);
            let expect_pos = name.contains("(pos)");
            match (&ans, expect_pos) {
                (RewriteAnswer::Rewriting(_), true) | (RewriteAnswer::NoRewriting(_), false) => {}
                other => panic!("catalog entry {name} mislabeled: got {other:?}"),
            }
        }
    }

    #[test]
    fn batches_are_deterministic() {
        let a = instance_batch(Fragment::Full, 3, 5, 9);
        let b = instance_batch(Fragment::Full, 3, 5, 9);
        for ((p1, v1), (p2, v2)) in a.iter().zip(&b) {
            assert!(p1.structurally_eq(p2) && v1.structurally_eq(v2));
        }
        let c = containment_batch(Fragment::Full, 3, 6, 9);
        assert_eq!(c.len(), 6);
        let d = independent_batch(Fragment::Full, 3, 6, 9);
        assert_eq!(d.len(), 6);
    }

    #[test]
    fn containment_batch_mixes_verdicts() {
        let batch = containment_batch(Fragment::Full, 3, 18, 0xC0FFEE);
        let holds = batch.iter().filter(|(a, b)| xpv_semantics::contained(a, b)).count();
        assert!(holds > 0, "some pairs must be contained");
        assert!(holds < batch.len(), "some pairs must not be contained");
    }
}
