//! Regenerates every table of EXPERIMENTS.md.
//!
//! Usage: `cargo run --release -p xpv-bench --bin experiments [--quick]`
//!
//! Tables:
//! * **T1** — completeness audit: planner vs brute-force oracle on the
//!   per-condition catalog and on random instances (agreement must be 100%).
//! * **T2** — planner vs brute-force latency (the "two containment tests vs
//!   double exponential" claim).
//! * **T3** — candidate-completeness search (the paper's open question 2):
//!   random certificate-free instances; a brute-force rewriting where both
//!   natural candidates fail would be a counterexample.
//! * **C1** — containment latency by fragment and size; hom-gap and
//!   coNP-stress series.
//! * **C2** — view-based answering vs direct evaluation over growing
//!   documents.
//! * **T4** — ablations: hom fast-path hit rate; expansion-bound padding
//!   agreement and cost.

use std::time::{Duration, Instant};

use xpv_bench::{condition_catalog, instance_batch, pat};
use xpv_core::{
    brute_force_rewrite, BruteForceConfig, BruteForceOutcome, RewriteAnswer, RewritePlanner,
};
use xpv_engine::MaterializedView;
use xpv_pattern::compose;
use xpv_semantics::{
    contained, contained_with, equivalent, evaluate, expansion_bound, ContainmentOptions,
};
use xpv_workload::{
    conp_stress_instance, hom_gap_instance, no_condition_instance, site_catalog, site_doc, Fragment,
};

fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

fn mean_micros(samples: &[Duration]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().map(|d| d.as_secs_f64() * 1e6).sum::<f64>() / samples.len() as f64
}

/// The brute-force oracle's three verdicts for the audit.
enum Oracle {
    Found,
    NoneUpTo(usize),
    Inconclusive,
}

fn oracle_verdict(
    p: &xpv_pattern::Pattern,
    v: &xpv_pattern::Pattern,
    bf: &BruteForceConfig,
) -> Oracle {
    if v.depth() > p.depth() {
        return Oracle::NoneUpTo(usize::MAX);
    }
    match brute_force_rewrite(p, v, bf) {
        BruteForceOutcome::Found(..) => Oracle::Found,
        BruteForceOutcome::Exhausted(_) => Oracle::NoneUpTo(bf.max_nodes),
        BruteForceOutcome::GateClosed(_) => Oracle::NoneUpTo(usize::MAX),
        BruteForceOutcome::BudgetExceeded(_) => Oracle::Inconclusive,
    }
}

/// Audits one instance: returns (rewrite, no_rw, unknown, disagree, oracle_open).
fn audit_instance(
    planner: &RewritePlanner,
    bf: &BruteForceConfig,
    p: &xpv_pattern::Pattern,
    v: &xpv_pattern::Pattern,
) -> (u32, u32, u32, u32, u32) {
    let ans = planner.decide(p, v);
    match ans {
        RewriteAnswer::Rewriting(r) => {
            // Soundness is checked unconditionally: R ∘ V ≡ P.
            let rv = compose(r.pattern(), v).expect("verified rewriting composes");
            assert!(equivalent(&rv, p), "planner returned a wrong rewriting");
            // The oracle disagrees only if it *exhausted* a space that
            // includes the found rewriting's size.
            let disagree = match oracle_verdict(p, v, bf) {
                Oracle::NoneUpTo(cap) if r.pattern().len() <= cap => 1,
                _ => 0,
            };
            (1, 0, 0, disagree, 0)
        }
        RewriteAnswer::NoRewriting(_) => {
            let disagree = match oracle_verdict(p, v, bf) {
                Oracle::Found => 1,
                _ => 0,
            };
            (0, 1, 0, disagree, 0)
        }
        RewriteAnswer::Unknown(_) => {
            let open = match oracle_verdict(p, v, bf) {
                Oracle::Inconclusive => 1,
                _ => 0,
            };
            (0, 0, 1, 0, open)
        }
    }
}

fn table_t1(quick: bool) {
    println!("\n== T1: completeness audit (planner vs brute-force oracle) ==");
    println!(
        "{:<28} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "class", "instances", "rewrite", "no-rw", "unknown", "disagree"
    );
    let planner = RewritePlanner::without_fallback();
    let bf = BruteForceConfig { max_nodes: 7, max_tested: 20_000, ..Default::default() };

    let mut disagreements_total = 0u32;
    for (name, p, v) in condition_catalog() {
        let (rw, no_rw, unknown, disagree, _) = audit_instance(&planner, &bf, &p, &v);
        disagreements_total += disagree;
        println!("{name:<28} {:>9} {rw:>9} {no_rw:>9} {unknown:>9} {disagree:>10}", 1);
    }

    let per_class = if quick { 40 } else { 150 };
    for (name, fragment) in [
        ("random XP{//,[]}", Fragment::NoWildcard),
        ("random XP{[],*}", Fragment::NoDescendant),
        ("random XP{//,*}", Fragment::NoBranch),
        ("random XP{//,[],*}", Fragment::Full),
    ] {
        let batch = instance_batch(fragment, 3, per_class, 0x5EED);
        let (mut rw, mut no_rw, mut unknown, mut disagree) = (0u32, 0u32, 0u32, 0u32);
        for (p, v) in &batch {
            let (a, b, c, d, _) = audit_instance(&planner, &bf, p, v);
            rw += a;
            no_rw += b;
            unknown += c;
            disagree += d;
        }
        disagreements_total += disagree;
        println!("{name:<28} {:>9} {rw:>9} {no_rw:>9} {unknown:>9} {disagree:>10}", batch.len());
    }
    println!("TOTAL disagreements: {disagreements_total} (expected: 0)");
}

fn table_t2(quick: bool) {
    println!("\n== T2: planner vs brute force latency (µs, mean) ==");
    println!("{:<8} {:>14} {:>14} {:>10}", "depth", "planner", "bruteforce", "ratio");
    let planner = RewritePlanner::without_fallback();
    // The brute force is budget-capped, so its timings are a LOWER bound on
    // the full Proposition 3.4 cost; the ratio only grows without the cap.
    let bf = BruteForceConfig { max_nodes: 6, max_tested: 2_000, ..Default::default() };
    let reps = if quick { 1 } else { 3 };
    for depth in [2usize, 3, 4] {
        let batch = instance_batch(Fragment::Full, depth, 8, 0xBEEF + depth as u64);
        let mut tp = Vec::new();
        let mut tb = Vec::new();
        for _ in 0..reps {
            for (p, v) in &batch {
                let (_, d) = time(|| planner.decide(p, v));
                tp.push(d);
                if v.depth() <= p.depth() {
                    let (_, d) = time(|| brute_force_rewrite(p, v, &bf));
                    tb.push(d);
                }
            }
        }
        let (mp, mb) = (mean_micros(&tp), mean_micros(&tb));
        println!("{depth:<8} {mp:>14.1} {mb:>14.1} {:>10.1}x", mb / mp.max(1e-9));
    }
}

fn table_t3(quick: bool) {
    println!("\n== T3: candidate-completeness search (open question 2) ==");
    let planner = RewritePlanner::without_fallback();
    let bf = BruteForceConfig { max_nodes: 7, max_tested: 80_000, ..Default::default() };
    let per_seg = if quick { 1 } else { 2 };
    let mut counterexamples = 0u32;
    let mut searched = 0u32;

    // Structured certificate-free family.
    for segments in 1..=per_seg {
        let (p, v) = no_condition_instance(segments);
        searched += 1;
        let planner_ans = planner.decide(&p, &v);
        if let RewriteAnswer::Unknown(_) = planner_ans {
            if let BruteForceOutcome::Found(r, _) = brute_force_rewrite(&p, &v, &bf) {
                counterexamples += 1;
                println!("  COUNTEREXAMPLE: P={p} V={v} R={r}");
            }
        }
    }

    // Random certificate-free instances: wildcard- and branch-heavy shapes
    // dodge the stability/GNF certificates far more often.
    let n_random = if quick { 60 } else { 300 };
    let cfg = xpv_workload::PatternGenConfig {
        depth: (3, 4),
        wildcard_prob: 0.85,
        branch_prob: 0.8,
        descendant_prob: 0.5,
        ..Default::default()
    };
    let mut g = xpv_workload::PatternGen::new(cfg, 0xD15C);
    let batch: Vec<_> = (0..n_random).map(|_| g.instance()).collect();
    for (p, v) in &batch {
        if v.depth() > p.depth() {
            continue;
        }
        if let (RewriteAnswer::Unknown(_), _) =
            RewritePlanner::without_fallback().decide_with_stats(p, v)
        {
            searched += 1;
            if let BruteForceOutcome::Found(r, _) = brute_force_rewrite(p, v, &bf) {
                // A brute-force hit alone is not a counterexample — only if
                // both natural candidates fail (Unknown already implies the
                // candidates failed in the planner).
                counterexamples += 1;
                println!("  COUNTEREXAMPLE: P={p} V={v} R={r}");
            }
        }
    }
    println!(
        "certificate-free instances searched: {searched}; rewritings beyond the natural \
         candidates found: {counterexamples} (paper conjectures 0)"
    );
}

fn table_c1(quick: bool) {
    println!("\n== C1: containment latency by fragment (µs, mean over batch) ==");
    println!("{:<14} {:>7} {:>12} {:>12}", "fragment", "depth", "time", "hom-hit%");
    let reps = if quick { 2 } else { 5 };
    for (name, fragment) in [
        ("XP{//,[]}", Fragment::NoWildcard),
        ("XP{[],*}", Fragment::NoDescendant),
        ("XP{//,*}", Fragment::NoBranch),
        ("XP{//,[],*}", Fragment::Full),
    ] {
        for depth in [2usize, 4, 6] {
            let batch = xpv_bench::containment_batch(fragment, depth, 16, 0xC0FFEE + depth as u64);
            let mut samples = Vec::new();
            let mut hom_hits = 0u32;
            let mut total = 0u32;
            for _ in 0..reps {
                for (p1, p2) in &batch {
                    let (out, d) = time(|| contained_with(p1, p2, &ContainmentOptions::default()));
                    samples.push(d);
                    total += 1;
                    hom_hits += u32::from(out.via_homomorphism);
                }
            }
            println!(
                "{name:<14} {depth:>7} {:>10.1}µs {:>11.0}%",
                mean_micros(&samples),
                100.0 * f64::from(hom_hits) / f64::from(total.max(1))
            );
        }
    }

    println!("\n-- C1b: hom-gap family (canonical loop forced) --");
    for n in 1..=4usize {
        let (p1, p2) = hom_gap_instance(n);
        let (out, d) = time(|| contained_with(&p1, &p2, &ContainmentOptions::default()));
        assert!(out.holds && !out.via_homomorphism);
        println!(
            "  n={n}: {:>8.1}µs  models={}  ({p1} ⊑ {p2})",
            d.as_secs_f64() * 1e6,
            out.models_checked
        );
    }

    println!("\n-- C1c: coNP stress (hom fast path disabled) --");
    let m_max = if quick { 3 } else { 4 };
    let opts = ContainmentOptions { hom_fast_path: false, bound_override: None };
    for m in 1..=m_max {
        let (p1, p2) = conp_stress_instance(m, 2);
        let (out, d) = time(|| contained_with(&p1, &p2, &opts));
        println!(
            "  m={m}: {:>10.1}µs  models={}  holds={}",
            d.as_secs_f64() * 1e6,
            out.models_checked,
            out.holds
        );
    }
}

fn table_c2(quick: bool) {
    println!("\n== C2: view-based answering vs direct evaluation (site docs) ==");
    println!(
        "{:<8} {:>9} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "scale", "doc-nodes", "view-size", "direct", "virtual", "material.", "spd(virt)"
    );
    let planner = RewritePlanner::without_fallback();
    let catalog = site_catalog();
    let scales: &[usize] = if quick { &[4, 8, 16] } else { &[4, 8, 16, 32, 64] };
    for &scale in scales {
        let doc = site_doc(scale, scale, 7);
        // Selective view: the bids (a small slice of the document).
        let view_def = pat("site//bid");
        let view = MaterializedView::materialize("bids", view_def.clone(), &doc);
        let (_, query) =
            catalog.queries.iter().find(|(n, _)| *n == "bid_prices").expect("catalog query");
        let rewriting = match planner.decide(query, &view_def) {
            RewriteAnswer::Rewriting(rw) => rw.pattern().clone(),
            other => panic!("expected rewriting, got {other:?}"),
        };
        // Correctness: virtual equals direct (node identity); materialized
        // equals both by value.
        let direct_answer = evaluate(query, &doc);
        assert_eq!(view.apply_virtual(&rewriting, &doc), direct_answer);
        assert_eq!(
            view.apply_materialized(&rewriting).len(),
            xpv_engine::answer_value_set(&doc, &direct_answer).len()
        );

        let reps = if quick { 5 } else { 20 };
        let (mut td, mut tv, mut tm) = (Vec::new(), Vec::new(), Vec::new());
        for _ in 0..reps {
            let (_, d) = time(|| evaluate(query, &doc));
            td.push(d);
            let (_, d) = time(|| view.apply_virtual(&rewriting, &doc));
            tv.push(d);
            let (_, d) = time(|| view.apply_materialized(&rewriting));
            tm.push(d);
        }
        let view_size: usize = view.trees().iter().map(xpv_model::Tree::len).sum();
        let (md, mv, mm) = (mean_micros(&td), mean_micros(&tv), mean_micros(&tm));
        println!(
            "{scale:<8} {:>9} {view_size:>10} {md:>10.1}µs {mv:>10.1}µs {mm:>8.1}µs {:>9.2}x",
            doc.len(),
            md / mv.max(1e-9)
        );
    }
}

fn table_t4(quick: bool) {
    println!("\n== T4: ablations ==");
    let batch =
        xpv_bench::containment_batch(Fragment::Full, 4, if quick { 12 } else { 24 }, 0xFEED);

    // (a) hom fast path.
    let on = ContainmentOptions { hom_fast_path: true, bound_override: None };
    let off = ContainmentOptions { hom_fast_path: false, bound_override: None };
    let (hits, t_on) = time(|| {
        batch.iter().filter(|(p1, p2)| contained_with(p1, p2, &on).via_homomorphism).count()
    });
    let (_, t_off) =
        time(|| batch.iter().filter(|(p1, p2)| contained_with(p1, p2, &off).holds).count());
    println!(
        "hom fast path: hit {}/{} checks; total {:.1}µs (on) vs {:.1}µs (off)",
        hits,
        batch.len(),
        t_on.as_secs_f64() * 1e6,
        t_off.as_secs_f64() * 1e6
    );

    // (b) expansion bound padding: answers must agree; cost grows.
    let mut mismatches = 0usize;
    let mut times = Vec::new();
    for pad in [0usize, 2] {
        let (answers, d) = time(|| {
            batch
                .iter()
                .map(|(p1, p2)| {
                    let opts = ContainmentOptions {
                        hom_fast_path: false,
                        bound_override: Some(expansion_bound(p2) + pad),
                    };
                    contained_with(p1, p2, &opts).holds
                })
                .collect::<Vec<bool>>()
        });
        times.push((pad, d, answers));
    }
    let base = times[0].2.clone();
    for (pad, d, answers) in &times {
        mismatches += answers.iter().zip(&base).filter(|(a, b)| a != b).count();
        println!(
            "bound B+{pad}: {:.1}µs for {} checks (agreement with B+0: {})",
            d.as_secs_f64() * 1e6,
            answers.len(),
            answers.iter().zip(&base).filter(|(a, b)| a == b).count()
        );
    }
    println!("bound-padding mismatches: {mismatches} (expected 0)");

    // (c) the role of the gates: on *independent* (query, view) pairs, how
    // many instances the depth/label gates settle without any containment
    // test. (On derived views the gates never fire — the view is built to be
    // compatible.)
    let instances =
        xpv_bench::independent_batch(Fragment::Full, 4, if quick { 60 } else { 200 }, 0xA11);
    let planner = RewritePlanner::without_fallback();
    let mut gated = 0usize;
    for (p, v) in &instances {
        let (ans, stats) = planner.decide_with_stats(p, v);
        if matches!(ans, RewriteAnswer::NoRewriting(_))
            && stats.candidate_tests.equivalence_tests == 0
        {
            gated += 1;
        }
    }
    println!(
        "gates settle {gated}/{} independent instances with zero equivalence tests",
        instances.len()
    );
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!(
        "xpath-views experiments (seeded, deterministic){}",
        if quick { " [quick]" } else { "" }
    );
    // Correctness anchor for the figures before any table.
    let f1 = xpv_core::figure1();
    let rv = compose(&f1.r, &f1.v).expect("composes");
    assert!(equivalent(&rv, &f1.p));
    assert!(contained(&rv, &f1.p) && contained(&f1.p, &rv));

    table_t1(quick);
    table_t2(quick);
    table_t3(quick);
    table_c1(quick);
    table_c2(quick);
    table_t4(quick);
    println!("\nall tables regenerated; disagreement counters above must read 0");
}
