//! Affected-region computation: which part of the document an edit can
//! influence, for one view pattern.
//!
//! ## The decomposition
//!
//! Write the view's selection path as `u_0 … u_k` (root to output) and, for
//! each spine node `u_i`, let `B_i(v)` hold when the document node `v`
//! satisfies `u_i`'s node test **and** every non-spine branch hanging off
//! `u_i` matches below `v` (child branches at children of `v`, descendant
//! branches at proper descendants). Then
//!
//! > `n ∈ P(t)`  ⇔  there are `v_0 = root(t), v_1, …, v_k = n` respecting
//! > the spine axes with `B_i(v_i)` for all `i`.
//!
//! Each `B_i(v)` depends only on `label(v)` and the subtree below `v`. This
//! is what bounds the re-evaluation region of an edit anchored at `e` (the
//! deepest surviving node whose subtree content changed):
//!
//! * for a node `v` that is neither an ancestor of `e` nor inside the
//!   edited subtree, `subtree(v)` is untouched, so every `B_i(v)` is
//!   unchanged;
//! * hence for an answer candidate `n` outside the edited subtree, the
//!   `B` values along its ancestor path can only have changed at **common
//!   ancestors of `n` and `e`** — nodes on the spine `root → e`;
//! * so if no spine node changed any `B_i`, memberships outside the edited
//!   subtree are unchanged, and the region to re-evaluate is exactly the
//!   edited subtree; otherwise it is the subtree of the **highest** spine
//!   node whose `B`-vector changed (which contains the edited subtree).
//!
//! [`SpineScan`] computes the `B`-vectors along the spine (memoized branch
//! matching), and [`region_answers`] runs the spine-reachability dynamic
//! program over one region subtree — the restricted evaluation whose
//! results patch the stored answer set. With the region chosen as above the
//! patched set is **equal to full recomputation**; `tests/
//! maintain_properties.rs` checks this against `xpv_semantics::evaluate`
//! on randomized documents, views, and edit streams.

use std::collections::HashMap;

use xpv_model::{BitSet, NodeId, Tree};
use xpv_pattern::{Axis, PatId, Pattern};

/// Spine positions are tracked in a `u64` reachability mask; deeper
/// patterns fall back to full recomputation (sound, never observed in
/// practice).
pub const MAX_TRACKED_DEPTH: usize = 63;

/// The per-view pattern decomposition: selection spine plus the non-spine
/// branches hanging off each spine node. Built once per view and reused
/// across edits.
#[derive(Clone, Debug)]
pub struct SpineInfo {
    /// The selection path `u_0 … u_k`.
    spine: Vec<PatId>,
    /// `axes[i]` is the axis of the spine edge entering `u_i` (`i ≥ 1`;
    /// entry 0 is a meaningless placeholder).
    axes: Vec<Axis>,
    /// For each spine position, the non-spine children of `u_i`.
    branches: Vec<Vec<PatId>>,
    /// Whether any node test is the wildcard (disables the label fast path).
    has_wildcard: bool,
    /// Sorted concrete labels used by the pattern.
    labels: Vec<xpv_model::Label>,
}

impl SpineInfo {
    /// Decomposes `p` into spine and branches.
    pub fn new(p: &Pattern) -> SpineInfo {
        let spine = p.selection_path();
        let axes = spine
            .iter()
            .enumerate()
            .map(|(i, &u)| if i == 0 { Axis::Child } else { p.axis(u) })
            .collect();
        let branches = spine
            .iter()
            .enumerate()
            .map(|(i, &u)| {
                let next = spine.get(i + 1).copied();
                p.children(u).iter().copied().filter(|&c| Some(c) != next).collect()
            })
            .collect();
        SpineInfo {
            spine,
            axes,
            branches,
            has_wildcard: p.node_ids().any(|n| p.test(n).is_wildcard()),
            labels: p.label_set(),
        }
    }

    /// Number of spine edges (`k`).
    pub fn depth(&self) -> usize {
        self.spine.len() - 1
    }

    /// `true` when the reachability mask can track every spine position.
    pub fn trackable(&self) -> bool {
        self.depth() <= MAX_TRACKED_DEPTH
    }

    /// The label-disjointness fast path: a pattern without wildcards whose
    /// label set is disjoint from every label an edit touched cannot change
    /// its answer set — touched nodes can never be embedding images, and
    /// the edit alters neither labels nor ancestor relations of any other
    /// node.
    pub fn unaffected_by_labels(&self, touched: &[xpv_model::Label]) -> bool {
        !self.has_wildcard && touched.iter().all(|l| self.labels.binary_search(l).is_err())
    }
}

/// Memoizing subtree matcher for one (pattern, tree-state) pair. Both memo
/// tables key on raw ids, so a matcher must not outlive the tree state it
/// was built against — the maintainer constructs one per (view, edit) side.
pub struct SubMatcher<'a> {
    p: &'a Pattern,
    t: &'a Tree,
    /// `(pattern node, tree node) →` does the pattern subtree match here?
    node_memo: HashMap<(u32, u32), bool>,
    /// `(pattern node, tree node) →` does it match at a proper descendant?
    desc_memo: HashMap<(u32, u32), bool>,
}

impl<'a> SubMatcher<'a> {
    /// A fresh matcher over the current tree state.
    pub fn new(p: &'a Pattern, t: &'a Tree) -> SubMatcher<'a> {
        SubMatcher { p, t, node_memo: HashMap::new(), desc_memo: HashMap::new() }
    }

    /// Does the pattern subtree rooted at `q` embed with `q ↦ w`?
    fn matches_at(&mut self, q: PatId, w: NodeId) -> bool {
        if let Some(&v) = self.node_memo.get(&(q.0, w.0)) {
            return v;
        }
        // Copying the `&'a` field out lets the children slice (lifetime
        // `'a`, not `self`'s) outlive the `&mut self` recursion — no
        // per-node clone of the child list.
        let p = self.p;
        let ok = p.test(q).matches(self.t.label(w))
            && p.children(q).iter().all(|&c| self.witness_below(c, w));
        self.node_memo.insert((q.0, w.0), ok);
        ok
    }

    /// Does the pattern subtree at `c` match at a child (child axis) or
    /// proper descendant (descendant axis) of `v`?
    fn witness_below(&mut self, c: PatId, v: NodeId) -> bool {
        match self.p.axis(c) {
            Axis::Child => {
                let t = self.t;
                t.children(v).iter().any(|&w| self.matches_at(c, w))
            }
            Axis::Descendant => self.desc_witness(c, v),
        }
    }

    fn desc_witness(&mut self, c: PatId, v: NodeId) -> bool {
        if let Some(&hit) = self.desc_memo.get(&(c.0, v.0)) {
            return hit;
        }
        let t = self.t;
        let hit = t.children(v).iter().any(|&w| self.matches_at(c, w) || self.desc_witness(c, w));
        self.desc_memo.insert((c.0, v.0), hit);
        hit
    }

    /// `B_i(v)`: node test of the `i`-th spine node plus all its branches.
    pub fn b_holds(&mut self, info: &SpineInfo, i: usize, v: NodeId) -> bool {
        self.p.test(info.spine[i]).matches(self.t.label(v))
            && info.branches[i].iter().all(|&c| self.witness_below(c, v))
    }

    /// The full `B`-vector at `v` as a bitmask over spine positions.
    pub fn b_vector(&mut self, info: &SpineInfo, v: NodeId) -> u64 {
        let mut mask = 0u64;
        for i in 0..info.spine.len() {
            if self.b_holds(info, i, v) {
                mask |= 1 << i;
            }
        }
        mask
    }
}

/// The root-first ancestor path `root → n`, inclusive.
pub fn spine_to(t: &Tree, n: NodeId) -> Vec<NodeId> {
    let mut path = vec![n];
    let mut cur = n;
    while let Some(p) = t.parent(cur) {
        path.push(p);
        cur = p;
    }
    path.reverse();
    path
}

/// Restricted evaluation: the view's answers **inside `subtree(region_root)`**
/// on the current tree, plus a bitset marking the scanned region (sized by
/// `arena_len`). Runs the spine-reachability DP: reach masks flow from the
/// root down the path to `region_root` and then through the region subtree;
/// a node is an answer iff bit `k` of its reach mask is set.
pub fn region_answers(
    info: &SpineInfo,
    t: &Tree,
    region_root: NodeId,
    matcher: &mut SubMatcher<'_>,
) -> (Vec<NodeId>, BitSet) {
    debug_assert!(info.trackable());
    let k = info.depth();
    let mut region = BitSet::new(t.arena_len());
    let mut found: Vec<NodeId> = Vec::new();

    // Walk the path root → region_root, computing reach and the union of
    // ancestor reach masks (for descendant spine edges).
    let path = spine_to(t, region_root);
    let mut reach_here = 0u64;
    let mut anc_union = 0u64;
    for (step, &v) in path.iter().enumerate() {
        let (r, a) = if step == 0 {
            // Only the document root can host u_0 (strong embeddings).
            (if matcher.b_holds(info, 0, v) { 1u64 } else { 0 }, 0u64)
        } else {
            let a = anc_union | reach_here;
            (step_reach(info, v, reach_here, a, matcher), a)
        };
        reach_here = r;
        anc_union = a;
    }

    // DFS through the region subtree.
    let mut stack: Vec<(NodeId, u64, u64)> = vec![(region_root, reach_here, anc_union)];
    while let Some((v, reach, anc)) = stack.pop() {
        region.insert(v.index());
        if reach & (1 << k) != 0 {
            found.push(v);
        }
        let below_anc = anc | reach;
        for &c in t.children(v) {
            let r = step_reach(info, c, reach, below_anc, matcher);
            stack.push((c, r, below_anc));
        }
    }
    found.sort();
    (found, region)
}

/// One downward step of the reachability DP: the reach mask of `v` given
/// its parent's mask and the union over its proper ancestors.
fn step_reach(
    info: &SpineInfo,
    v: NodeId,
    parent_reach: u64,
    anc_union: u64,
    matcher: &mut SubMatcher<'_>,
) -> u64 {
    let mut r = 0u64;
    for i in 1..info.spine.len() {
        let prev_ok = match info.axes[i] {
            Axis::Child => parent_reach & (1 << (i - 1)) != 0,
            Axis::Descendant => anc_union & (1 << (i - 1)) != 0,
        };
        if prev_ok && matcher.b_holds(info, i, v) {
            r |= 1 << i;
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpv_model::TreeBuilder;
    use xpv_pattern::parse_xpath;
    use xpv_semantics::evaluate;

    fn pat(s: &str) -> Pattern {
        parse_xpath(s).expect("pattern parses")
    }

    fn doc() -> Tree {
        TreeBuilder::root("site", |b| {
            b.child("region", |b| {
                b.child("item", |b| {
                    b.leaf("name");
                    b.leaf("bids");
                });
                b.child("item", |b| {
                    b.leaf("name");
                });
            });
        })
    }

    /// Region evaluation rooted at the document root is exactly full
    /// evaluation, for a mix of axes, wildcards, and branches.
    #[test]
    fn whole_tree_region_matches_evaluate() {
        let t = doc();
        for q in [
            "site/region/item/name",
            "site//name",
            "site/region/item[bids]/name",
            "site//*",
            "site/region/item[bids]",
            "*//item/name",
            "site",
        ] {
            let p = pat(q);
            let info = SpineInfo::new(&p);
            let mut m = SubMatcher::new(&p, &t);
            let (found, region) = region_answers(&info, &t, t.root(), &mut m);
            assert_eq!(found, evaluate(&p, &t), "query {q}");
            assert_eq!(region.count(), t.len(), "{q} scans the whole tree");
        }
    }

    /// A region rooted below the root returns exactly the global answers
    /// that fall inside it.
    #[test]
    fn subtree_region_matches_restriction() {
        let t = doc();
        let region_root = t.children(t.children(t.root())[0])[0]; // first item
        for q in ["site/region/item/name", "site//name", "site/region/item[bids]/name"] {
            let p = pat(q);
            let info = SpineInfo::new(&p);
            let mut m = SubMatcher::new(&p, &t);
            let (found, region) = region_answers(&info, &t, region_root, &mut m);
            let global = evaluate(&p, &t);
            let expected: Vec<NodeId> =
                global.into_iter().filter(|n| region.contains(n.index())).collect();
            assert_eq!(found, expected, "query {q}");
        }
    }

    #[test]
    fn label_fast_path_requires_no_wildcards() {
        let with_star = SpineInfo::new(&pat("site//*"));
        assert!(!with_star.unaffected_by_labels(&[xpv_model::Label::new("zzz")]));
        let plain = SpineInfo::new(&pat("site/region/item"));
        assert!(plain.unaffected_by_labels(&[xpv_model::Label::new("zzz")]));
        assert!(!plain.unaffected_by_labels(&[xpv_model::Label::new("item")]));
    }
}
