//! Batch coalescing: turn k edits into few disjoint re-evaluation regions.
//!
//! The per-edit maintainer (see [`crate::refresh`]) interleaves edit
//! application with view patching: for every edit it records pre-edit
//! `B`-vectors, applies, diffs, and scans one region per (view, edit) pair.
//! A bursty batch — many edits under one hot subtree — pays k nearly
//! identical region scans per view. This module reorders the work:
//!
//! 1. [`prepare_batch`] applies the **whole batch first** (transactionality
//!    is unchanged: undo receipts roll back on an invalid edit), recording
//!    each edit's anchor spine, touched labels, and inserted root;
//! 2. [`coalesce_plan`] compares, per view, the spine `B`-vectors between
//!    the **pre-batch** tree `t0` and the **post-batch** tree `t1` in one
//!    pass, collects one region root per affected edit, and
//!    [merges](merge_regions) nested roots — a region contained in another
//!    collapses into it, and edits sharing a changed ancestor spine node
//!    collapse to the highest such node — so k edits under one hot subtree
//!    cost **one** region scan per view;
//! 3. the caller scans each surviving `(view, region)` task (serially, via
//!    the flat matcher, or fanned across threads — regions are disjoint by
//!    construction, so the tasks are independent) and
//!    [`apply_region_results`] patches the answer sets.
//!
//! ## Why the cumulative `t0` → `t1` comparison is sound
//!
//! Fix a view with spine `u_0 … u_k` and per-position predicates `B_i(v)`
//! (node test plus branch witnesses below `v`; each `B_i(v)` reads only
//! `label(v)` and `subtree(v)` — see [`crate::region`]). Membership in
//! `P(t1)` factors through chains of live-`t1` nodes, so it is determined
//! by the `B` values of nodes **alive in `t1`**. Consider any such node `v`
//! whose `B`-vector differs between `t0` and `t1` (treating a node that did
//! not exist in `t0` as having the all-false vector — it hosted nothing):
//!
//! * Edits whose touched labels are disjoint from a wildcard-free view's
//!   labels change **no** `B` value of that view (inserted/removed/relabeled
//!   nodes can never be witness images, and no other node's label or
//!   ancestor relations move), so the `t0 → t1` difference at `v`
//!   telescopes over the view's *affected* edits only.
//! * If `v` existed in `t0`, some affected edit `j` changed `subtree(v)` or
//!   `label(v)` across its application, which makes `v` an ancestor-or-self
//!   of edit `j`'s anchor — i.e. `v` lies on `j`'s **recorded spine** and is
//!   compared directly (ancestor paths of surviving nodes never change, so
//!   the spine recorded mid-batch is the `t1` path too).
//! * If `v` is new in `t1`, it lies inside some inserted subtree. Either a
//!   compared ancestor's `B` changed (that region contains `v`), or the
//!   insert's surviving `inserted_root` is taken as a region root, or `v`
//!   sits on a later affected edit's spine where the all-false-`t0` rule
//!   flags it the moment its `t1` vector is non-zero. In every case the
//!   chosen region (the subtree of the highest flagged node) contains every
//!   answer whose chain runs through `v`, because hosting `u_i` at `v`
//!   places the output image inside `subtree(v)`.
//!
//! Nodes dead in `t1` need no comparison: they cannot host chain images,
//! and tombstoned answers are dropped by the liveness filter during
//! patching. Answers outside every merged region therefore kept their
//! entire chain's `B` values, and answers inside are recomputed exactly —
//! the patched set equals full re-materialization, which the property suite
//! (`tests/maintain_properties.rs`) checks against the per-edit maintainer
//! *and* a from-scratch evaluation on randomized batches.

use std::collections::HashSet;

use xpv_model::{BitSet, NodeId, Tree};
use xpv_pattern::Pattern;
use xpv_semantics::evaluate;

use crate::edit::{undo, validate_edit, AppliedEdit, Edit, EditError};
use crate::refresh::MaintainStats;
use crate::region::{region_answers, spine_to, SpineInfo, SubMatcher};

/// What [`prepare_batch`] records about one applied edit: everything the
/// coalescer needs without re-reading mid-batch tree states.
#[derive(Clone, Debug)]
pub struct BatchAnchor {
    /// Root-first ancestor path to the edit's anchor (the deepest surviving
    /// node whose subtree content changed), recorded at application time.
    /// Ancestor paths of surviving nodes are stable, so this is also the
    /// post-batch path; nodes deleted by later edits are skipped when read.
    pub spine: Vec<NodeId>,
    /// For inserts, the id of the grafted subtree's root.
    pub inserted_root: Option<NodeId>,
    /// Sorted, deduplicated labels the edit touched (the label-disjointness
    /// fast-path input).
    pub touched: Vec<xpv_model::Label>,
}

/// A whole batch applied up front: receipts (for the engine's delta
/// accounting) plus per-edit anchors (for the coalescer).
#[derive(Clone, Debug)]
pub struct PreparedBatch {
    /// Application receipts, in batch order.
    pub receipts: Vec<AppliedEdit>,
    /// One anchor record per edit, in batch order.
    pub anchors: Vec<BatchAnchor>,
}

/// Validates and applies the whole batch to `doc`, recording anchors.
/// **Transactional**: on an invalid edit every applied edit is undone (in
/// reverse) and the error names the offending batch position.
pub fn prepare_batch(doc: &mut Tree, edits: &[Edit]) -> Result<PreparedBatch, EditError> {
    let mut receipts: Vec<AppliedEdit> = Vec::with_capacity(edits.len());
    let mut anchors: Vec<BatchAnchor> = Vec::with_capacity(edits.len());
    for (idx, edit) in edits.iter().enumerate() {
        if let Err(e) = validate_edit(doc, edit, idx) {
            for receipt in receipts.iter().rev() {
                undo(doc, receipt);
            }
            return Err(e);
        }
        let anchor = edit.anchor(doc).expect("validated edits have an anchor");
        let spine = spine_to(doc, anchor);
        let receipt = crate::edit::apply_edit(doc, edit).expect("validated edit applies");
        let inserted_root = match &receipt {
            AppliedEdit::Inserted { root, .. } => Some(*root),
            _ => None,
        };
        anchors.push(BatchAnchor { spine, inserted_root, touched: receipt.touched_labels() });
        receipts.push(receipt);
    }
    Ok(PreparedBatch { receipts, anchors })
}

/// How one view is refreshed after coalescing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ViewDisposition {
    /// Every edit was label-disjoint: the answer set is provably untouched
    /// (no liveness filter needed — a deleted answer's label would have
    /// intersected the view's).
    Clean,
    /// Some edits were relevant but no spine `B`-vector changed and no
    /// inserted subtree survived: only tombstoned answers can have dropped.
    SpineClean,
    /// The spine is too deep for the reachability mask: re-evaluate the
    /// whole document once for the batch (the per-edit path pays this per
    /// edit).
    Full,
    /// Re-scan exactly these merged region roots (ascending, disjoint
    /// subtrees).
    Regions(Vec<NodeId>),
}

/// The coalesced refresh plan for one batch: per-view dispositions, the
/// shared content-retag set, and the partially filled batch counters.
#[derive(Clone, Debug)]
pub struct CoalescedPlan {
    /// One disposition per view, in `defs` order.
    pub dispositions: Vec<ViewDisposition>,
    /// The per-view spine decompositions (reusable by the region scanner).
    pub infos: Vec<SpineInfo>,
    /// Live nodes on some edit's spine: surviving answers in here had their
    /// subtree **content** changed and must refresh materialized copies.
    /// Identical for every view (the per-edit maintainer marks every spine
    /// into every view's set too; membership is filtered per view at delta
    /// time).
    pub retag: HashSet<NodeId>,
    /// Counters filled so far (`edits_applied`, `view_edit_checks`,
    /// `label_skips`, `spine_clean`, `regions_before_merge`); the scan /
    /// patch phases add the rest.
    pub stats: MaintainStats,
}

/// One independent scan: re-evaluate view `view` inside `subtree(root)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegionTask {
    /// Index into the plan's `defs`/`dispositions`.
    pub view: usize,
    /// The merged region's root (a live post-batch node).
    pub root: NodeId,
}

impl CoalescedPlan {
    /// All region scans of the plan, ordered by `(view, root)` — the
    /// deterministic order results are combined in regardless of execution
    /// schedule.
    pub fn region_tasks(&self) -> Vec<RegionTask> {
        let mut out = Vec::new();
        for (view, d) in self.dispositions.iter().enumerate() {
            if let ViewDisposition::Regions(roots) = d {
                out.extend(roots.iter().map(|&root| RegionTask { view, root }));
            }
        }
        out
    }
}

/// Computes the coalesced refresh plan by diffing spine `B`-vectors between
/// the pre-batch tree `t0` and the post-batch tree `t1` (see the module
/// docs for the correctness argument). One `SubMatcher` per (view, side)
/// is shared across the whole batch, so overlapping spines of a bursty
/// batch amortize their branch matching.
pub fn coalesce_plan(
    t0: &Tree,
    t1: &Tree,
    defs: &[&Pattern],
    prep: &PreparedBatch,
) -> CoalescedPlan {
    let infos: Vec<SpineInfo> = defs.iter().map(|d| SpineInfo::new(d)).collect();
    let mut stats =
        MaintainStats { edits_applied: prep.receipts.len() as u64, ..MaintainStats::default() };

    let mut retag: HashSet<NodeId> = HashSet::new();
    for a in &prep.anchors {
        retag.extend(a.spine.iter().copied().filter(|&n| t1.is_alive(n)));
    }

    let t0_bound = t0.arena_len();
    let mut dispositions = Vec::with_capacity(defs.len());
    for (def, info) in defs.iter().zip(&infos) {
        stats.view_edit_checks += prep.anchors.len() as u64;
        let affected: Vec<&BatchAnchor> = prep
            .anchors
            .iter()
            .filter(|a| {
                if info.unaffected_by_labels(&a.touched) {
                    stats.label_skips += 1;
                    false
                } else {
                    true
                }
            })
            .collect();
        if affected.is_empty() {
            dispositions.push(ViewDisposition::Clean);
            continue;
        }
        if !info.trackable() {
            dispositions.push(ViewDisposition::Full);
            continue;
        }

        let mut m0 = SubMatcher::new(def, t0);
        let mut m1 = SubMatcher::new(def, t1);
        let mut roots: Vec<NodeId> = Vec::new();
        for a in affected {
            // Highest spine node whose B-vector changed wins; nodes new in
            // t1 compare against the all-false vector (they hosted nothing
            // in t0), nodes dead in t1 host nothing now and are skipped.
            let mut dirty: Option<NodeId> = None;
            for &v in &a.spine {
                if !t1.is_alive(v) {
                    continue;
                }
                let b1 = m1.b_vector(info, v);
                let b0 = if v.index() < t0_bound { m0.b_vector(info, v) } else { 0 };
                if b0 != b1 {
                    dirty = Some(v);
                    break;
                }
            }
            let region = dirty.or(a.inserted_root.filter(|&r| t1.is_alive(r)));
            if let Some(r) = region {
                roots.push(r);
            }
        }

        if roots.is_empty() {
            stats.spine_clean += 1;
            dispositions.push(ViewDisposition::SpineClean);
        } else {
            stats.regions_before_merge += roots.len() as u64;
            dispositions.push(ViewDisposition::Regions(merge_regions(t1, roots)));
        }
    }

    CoalescedPlan { dispositions, infos, retag, stats }
}

/// Merges region roots: drops every root with a proper ancestor in the set
/// (its subtree is contained in the ancestor's), returning the survivors
/// ascending — deterministic and pairwise disjoint. Roots that were chosen
/// as "highest changed spine node" for several edits collapse here too:
/// they dedup to one entry.
pub fn merge_regions(t: &Tree, mut roots: Vec<NodeId>) -> Vec<NodeId> {
    roots.sort();
    roots.dedup();
    let set: HashSet<NodeId> = roots.iter().copied().collect();
    roots
        .into_iter()
        .filter(|&r| {
            let mut cur = t.parent(r);
            while let Some(p) = cur {
                if set.contains(&p) {
                    return false;
                }
                cur = t.parent(p);
            }
            true
        })
        .collect()
}

/// Patches every answer set from its disposition and the per-task region
/// results (`results[i]` is the answer/mask pair of `tasks[i]`, produced by
/// either `region_answers` or `xpv_semantics::region_answers_flat`).
/// Schedule-invariant: tasks arrive in `(view, root)` order and regions of
/// one view are disjoint, so the patched set is independent of how the
/// scans were executed.
pub fn apply_region_results(
    t1: &Tree,
    defs: &[&Pattern],
    answers: &mut [Vec<NodeId>],
    plan: &CoalescedPlan,
    tasks: &[RegionTask],
    results: &[(Vec<NodeId>, BitSet)],
    stats: &mut MaintainStats,
) {
    assert_eq!(tasks.len(), results.len(), "one result per region task");
    for (v, d) in plan.dispositions.iter().enumerate() {
        match d {
            ViewDisposition::Clean | ViewDisposition::Regions(_) => {}
            ViewDisposition::SpineClean => answers[v].retain(|&n| t1.is_alive(n)),
            ViewDisposition::Full => {
                stats.full_recomputes += 1;
                answers[v] = evaluate(defs[v], t1);
            }
        }
    }

    // Group the task results by view (tasks are view-major) and patch:
    // keep old answers that are alive and outside every region, splice in
    // the fresh region answers. Inserted slots sit at the arena's end, so
    // region id ranges interleave — the union must be re-sorted.
    let mut idx = 0;
    while idx < tasks.len() {
        let v = tasks[idx].view;
        let mut end = idx;
        let mut mask = BitSet::new(t1.arena_len());
        let mut fresh: Vec<NodeId> = Vec::new();
        while end < tasks.len() && tasks[end].view == v {
            let (found, region) = &results[end];
            stats.regions_scanned += 1;
            stats.region_nodes += region.count() as u64;
            fresh.extend_from_slice(found);
            mask.union_with(region);
            end += 1;
        }
        let mut next: Vec<NodeId> = answers[v]
            .iter()
            .copied()
            .filter(|&n| t1.is_alive(n) && !mask.contains(n.index()))
            .collect();
        next.extend(fresh);
        next.sort();
        answers[v] = next;
        idx = end;
    }
    stats.scans_saved += stats.regions_before_merge.saturating_sub(stats.regions_scanned);
}

/// Runs the serial `Tree`-path coalesced scan for `plan` (one memoizing
/// matcher per view, reused across its regions). The engine substitutes the
/// flat matcher and a thread fan-out for this loop; the property suite pins
/// all three to the same answers.
pub fn scan_regions_serial(
    t1: &Tree,
    defs: &[&Pattern],
    plan: &CoalescedPlan,
    tasks: &[RegionTask],
) -> Vec<(Vec<NodeId>, BitSet)> {
    let mut results = Vec::with_capacity(tasks.len());
    let mut current: Option<(usize, SubMatcher<'_>)> = None;
    for task in tasks {
        if current.as_ref().map(|(v, _)| *v) != Some(task.view) {
            current = Some((task.view, SubMatcher::new(defs[task.view], t1)));
        }
        let (_, m) = current.as_mut().expect("matcher installed above");
        results.push(region_answers(&plan.infos[task.view], t1, task.root, m));
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpv_model::TreeBuilder;
    use xpv_pattern::parse_xpath;

    fn pat(s: &str) -> Pattern {
        parse_xpath(s).expect("pattern parses")
    }

    fn doc() -> Tree {
        TreeBuilder::root("site", |b| {
            b.child("region", |b| {
                b.child("item", |b| {
                    b.leaf("name");
                    b.leaf("bids");
                });
                b.child("item", |b| {
                    b.leaf("name");
                });
            });
            b.child("region", |b| {
                b.child("item", |b| {
                    b.leaf("name");
                });
            });
        })
    }

    #[test]
    fn nested_regions_merge_into_ancestors() {
        let t = doc();
        let r0 = t.children(t.root())[0];
        let item = t.children(r0)[0];
        let name = t.children(item)[0];
        let r1 = t.children(t.root())[1];
        let merged = merge_regions(&t, vec![name, item, r1, item]);
        assert_eq!(merged, vec![item, r1], "nested + duplicate roots collapse");
        assert_eq!(merge_regions(&t, vec![t.root(), item]), vec![t.root()]);
        assert_eq!(merge_regions(&t, vec![]), vec![]);
    }

    #[test]
    fn bursty_batch_coalesces_to_one_region_per_view() {
        let t = doc();
        let r0 = t.children(t.root())[0];
        let item = t.children(r0)[0];
        let graft = || {
            TreeBuilder::root("item", |b| {
                b.leaf("name");
                b.leaf("bids");
            })
        };
        // Three inserts under one hot subtree; the first flips the
        // `[comment]` predicate at the shared spine node r0, so every
        // edit's dirty scan lands on r0 and the roots dedup to one region.
        let edits = vec![
            Edit::InsertSubtree { parent: r0, subtree: TreeBuilder::root("comment", |_| {}) },
            Edit::InsertSubtree { parent: r0, subtree: graft() },
            Edit::InsertSubtree { parent: item, subtree: graft() },
        ];
        let t0 = t.clone();
        let mut t1 = t.clone();
        let q = pat("site/region[comment]/item/name");
        let prep = prepare_batch(&mut t1, &edits).expect("valid batch");
        let plan = coalesce_plan(&t0, &t1, &[&q], &prep);
        assert_eq!(plan.stats.regions_before_merge, 3);
        let tasks = plan.region_tasks();
        assert_eq!(tasks.len(), 1, "three hot-subtree edits collapse to one scan");
        assert_eq!(tasks[0].root, r0, "the shared dirty spine node hosts the merged region");
        // And the coalesced scan reproduces a fresh evaluation.
        let mut answers = vec![evaluate(&q, &t0)];
        let results = scan_regions_serial(&t1, &[&q], &plan, &tasks);
        let mut stats = plan.stats;
        apply_region_results(&t1, &[&q], &mut answers, &plan, &tasks, &results, &mut stats);
        assert_eq!(answers[0], evaluate(&q, &t1));
        assert_eq!(stats.scans_saved, 2);
    }

    #[test]
    fn label_disjoint_batches_are_clean() {
        let t = doc();
        let r0 = t.children(t.root())[0];
        let edits = vec![Edit::InsertSubtree {
            parent: r0,
            subtree: TreeBuilder::root("comment", |b| {
                b.leaf("text");
            }),
        }];
        let t0 = t.clone();
        let mut t1 = t.clone();
        let q = pat("site/region/item/name");
        let prep = prepare_batch(&mut t1, &edits).expect("valid");
        let plan = coalesce_plan(&t0, &t1, &[&q], &prep);
        assert_eq!(plan.dispositions[0], ViewDisposition::Clean);
        assert_eq!(plan.stats.label_skips, 1);
        assert!(plan.region_tasks().is_empty());
    }

    #[test]
    fn prepare_batch_rolls_back_on_invalid_edit() {
        let t = doc();
        let r0 = t.children(t.root())[0];
        let mut t1 = t.clone();
        let err = prepare_batch(
            &mut t1,
            &[
                Edit::InsertSubtree { parent: r0, subtree: TreeBuilder::root("x", |_| {}) },
                Edit::DeleteSubtree { node: NodeId(9999) },
            ],
        )
        .unwrap_err();
        assert!(matches!(err, EditError::NotLive { edit_index: 1, .. }));
        assert_eq!(t1.canonical_key(), t.canonical_key());
    }

    /// A node inserted by one (label-skipped) edit and made view-relevant by
    /// a later relabel: only the cumulative all-false-in-`t0` rule catches
    /// it — the regression the module-doc argument hinges on.
    #[test]
    fn relabel_inside_inserted_subtree_is_detected() {
        let t = doc();
        let r0 = t.children(t.root())[0];
        let q = pat("site//name");
        let t0 = t.clone();
        let mut t1 = t.clone();
        // Edit 0 inserts a view-irrelevant subtree; edit 1 relabels its leaf
        // to a view label.
        let prep = prepare_batch(
            &mut t1,
            &[Edit::InsertSubtree {
                parent: r0,
                subtree: TreeBuilder::root("comment", |b| {
                    b.leaf("text");
                }),
            }],
        )
        .expect("valid");
        let inserted = prep.anchors[0].inserted_root.expect("insert receipt");
        let leaf = t1.children(inserted)[0];
        let prep2 = prepare_batch(
            &mut t1,
            &[Edit::Relabel { node: leaf, label: xpv_model::Label::new("name") }],
        )
        .expect("valid");
        // Coalesce BOTH batches' anchors against the original t0.
        let prep_all = PreparedBatch {
            receipts: prep.receipts.into_iter().chain(prep2.receipts).collect(),
            anchors: prep.anchors.into_iter().chain(prep2.anchors).collect(),
        };
        let plan = coalesce_plan(&t0, &t1, &[&q], &prep_all);
        let tasks = plan.region_tasks();
        let mut answers = vec![evaluate(&q, &t0)];
        let results = scan_regions_serial(&t1, &[&q], &plan, &tasks);
        let mut stats = plan.stats;
        apply_region_results(&t1, &[&q], &mut answers, &plan, &tasks, &results, &mut stats);
        assert_eq!(answers[0], evaluate(&q, &t1), "new name inside inserted subtree found");
        assert!(answers[0].contains(&leaf));
    }
}
