//! The incremental maintainer: apply an edit batch and patch every view's
//! answer set so it equals a from-scratch re-materialization.
//!
//! [`maintain_views`] is the entry point. The default
//! [`MaintainMode::Coalesced`] applies the whole batch first and refreshes
//! each view from its merged region set (see [`crate::coalesce`]); the
//! legacy [`MaintainMode::Incremental`] path below interleaves application
//! and patching. Per edit, the legacy path:
//!
//! 1. computes the edit's **anchor** (deepest surviving node whose subtree
//!    content changes) and the ancestor spine `root → anchor`;
//! 2. records, for every view, the `B`-vectors along that spine on the
//!    *pre-edit* tree (see [`crate::region`] for the decomposition);
//! 3. applies the edit (transactionally, with rollback on invalid edits);
//! 4. recomputes the spine `B`-vectors and picks the **highest** changed
//!    spine node; the re-evaluation region is its subtree (or just the
//!    inserted subtree when nothing on the spine changed);
//! 5. re-runs the restricted evaluation over that region only and patches
//!    the view's answer vector: answers outside the region are provably
//!    unchanged, answers inside are replaced by the fresh region results
//!    (a bitset diff), tombstoned answers are dropped.
//!
//! Views whose label set is disjoint from the labels an edit touched (and
//! that use no wildcard) are skipped outright — the Zipf-skewed regime the
//! update benchmark measures. Either way the maintainer reports which
//! surviving answers had their subtree **content** changed (the edit point
//! lies inside their copy), so materialized representations can refresh
//! exactly those subtree copies (a canonical-key diff rather than a full
//! re-copy).

use std::collections::HashSet;

use xpv_model::{BitSet, NodeId, Tree};
use xpv_pattern::Pattern;
use xpv_semantics::evaluate;

use crate::edit::{apply_edits, validate_edit, AppliedEdit, Edit, EditError};
use crate::region::{region_answers, spine_to, SpineInfo, SubMatcher};

/// How [`maintain_views`] refreshes the answer sets — the ablation knob of
/// `xpv update-bench`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MaintainMode {
    /// Apply the whole batch first, then patch each view from its merged,
    /// deduplicated region set (see [`crate::coalesce`]) — the default.
    #[default]
    Coalesced,
    /// The legacy per-edit path: patch each view from each edit's affected
    /// region, one scan per (view, edit) pair — the `--no-coalesce`
    /// ablation arm and the PR 6 baseline.
    Incremental,
    /// Re-evaluate every view over the whole document after the batch —
    /// the rebuild-the-world baseline.
    FullRecompute,
}

/// The net change to one view's answers over a maintained batch.
#[derive(Clone, Debug, Default)]
pub struct ViewDelta {
    /// Answer nodes dropped by the batch (ascending).
    pub removed: Vec<NodeId>,
    /// Answer nodes gained by the batch (ascending).
    pub added: Vec<NodeId>,
    /// Surviving answer nodes whose subtree **content** changed (ascending):
    /// their virtual form is intact, but materialized copies are stale.
    pub retagged: Vec<NodeId>,
}

impl ViewDelta {
    /// `true` when the batch left the view's answers *and* their contents
    /// untouched.
    pub fn is_empty(&self) -> bool {
        self.removed.is_empty() && self.added.is_empty() && self.retagged.is_empty()
    }

    /// `true` when the answer **set** changed (content-only refreshes do
    /// not count) — the condition under which plan-memo routes that depend
    /// on this view are invalidated.
    pub fn answers_changed(&self) -> bool {
        !self.removed.is_empty() || !self.added.is_empty()
    }
}

/// Counters describing one maintained batch (aggregated by the engine).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaintainStats {
    /// Edits applied.
    pub edits_applied: u64,
    /// (view, edit) pairs examined.
    pub view_edit_checks: u64,
    /// Pairs dismissed by the label-disjointness fast path.
    pub label_skips: u64,
    /// Pairs whose spine scan proved the answer set unchanged (no region
    /// re-evaluation at all, beyond dropping tombstoned answers).
    pub spine_clean: u64,
    /// Region re-evaluations run.
    pub regions_scanned: u64,
    /// Nodes visited across all region re-evaluations.
    pub region_nodes: u64,
    /// Whole-document re-evaluations (`FullRecompute` mode, or a spine too
    /// deep for the reachability mask).
    pub full_recomputes: u64,
    /// Answer nodes added across all views.
    pub answers_added: u64,
    /// Answer nodes removed across all views.
    pub answers_removed: u64,
    /// Per-(view, edit) region roots before coalescing merged them.
    pub regions_before_merge: u64,
    /// Region scans the merge eliminated (`regions_before_merge` minus the
    /// scans actually run) — what the per-edit path would have paid extra.
    pub scans_saved: u64,
    /// Batches whose maintenance reused the snapshot-swap `FlatTree` freeze
    /// (the engine's shared-freeze path).
    pub freeze_reused: u64,
    /// Region scans dispatched to the parallel fan-out.
    pub parallel_tasks: u64,
    /// Widest worker fan-out used (aggregates as a maximum).
    pub parallel_width: u64,
    /// Microseconds applying edits (`prepare_batch`).
    pub apply_us: u64,
    /// Microseconds freezing the post-batch `FlatTree`.
    pub freeze_us: u64,
    /// Microseconds diffing spines and merging regions (`coalesce_plan`).
    pub coalesce_us: u64,
    /// Microseconds scanning regions (serial or parallel, wall-clock).
    pub scan_us: u64,
    /// Microseconds patching answer sets and finalizing deltas.
    pub patch_us: u64,
}

impl MaintainStats {
    /// Field-wise sum, used by the engine's lifetime aggregation.
    pub fn add(&mut self, other: &MaintainStats) {
        self.edits_applied += other.edits_applied;
        self.view_edit_checks += other.view_edit_checks;
        self.label_skips += other.label_skips;
        self.spine_clean += other.spine_clean;
        self.regions_scanned += other.regions_scanned;
        self.region_nodes += other.region_nodes;
        self.full_recomputes += other.full_recomputes;
        self.answers_added += other.answers_added;
        self.answers_removed += other.answers_removed;
        self.regions_before_merge += other.regions_before_merge;
        self.scans_saved += other.scans_saved;
        self.freeze_reused += other.freeze_reused;
        self.parallel_tasks += other.parallel_tasks;
        self.parallel_width = self.parallel_width.max(other.parallel_width);
        self.apply_us += other.apply_us;
        self.freeze_us += other.freeze_us;
        self.coalesce_us += other.coalesce_us;
        self.scan_us += other.scan_us;
        self.patch_us += other.patch_us;
    }

    /// The canonical counter enumeration: one `(name, value)` pair per
    /// field, in declaration order. The observability registry exposes
    /// these under `xpv_maintain_*`, and `Display` renders the same list
    /// — one naming authority, so the rendered line and the exposition
    /// can never drift (see the `xpv-obs` crate docs). Note
    /// `parallel_width` aggregates as a maximum, not a sum.
    pub fn visit(&self, f: &mut dyn FnMut(&'static str, u64)) {
        f("edits_applied", self.edits_applied);
        f("view_edit_checks", self.view_edit_checks);
        f("label_skips", self.label_skips);
        f("spine_clean", self.spine_clean);
        f("regions_scanned", self.regions_scanned);
        f("region_nodes", self.region_nodes);
        f("full_recomputes", self.full_recomputes);
        f("answers_added", self.answers_added);
        f("answers_removed", self.answers_removed);
        f("regions_before_merge", self.regions_before_merge);
        f("scans_saved", self.scans_saved);
        f("freeze_reused", self.freeze_reused);
        f("parallel_tasks", self.parallel_tasks);
        f("parallel_width", self.parallel_width);
        f("apply_us", self.apply_us);
        f("freeze_us", self.freeze_us);
        f("coalesce_us", self.coalesce_us);
        f("scan_us", self.scan_us);
        f("patch_us", self.patch_us);
    }
}

impl std::fmt::Display for MaintainStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        xpv_obs::write_kv_line(f, |emit| self.visit(emit))
    }
}

/// Applies `edits` to `doc` and keeps every `answers[i]` equal to
/// `evaluate(defs[i], doc)` throughout, patching incrementally (or fully,
/// per `mode`). Returns one cumulative [`ViewDelta`] per view plus the
/// batch counters.
///
/// **Transactional**: on an invalid edit the document and every answer set
/// are restored to their pre-batch state and the error names the offending
/// batch position.
///
/// `defs.len()` must equal `answers.len()`, each `answers[i]` must be the
/// ascending answer set of `defs[i]` on the incoming document (as
/// `xpv_semantics::evaluate` produces).
pub fn maintain_views(
    doc: &mut Tree,
    defs: &[&Pattern],
    answers: &mut [Vec<NodeId>],
    edits: &[Edit],
    mode: MaintainMode,
) -> Result<(Vec<ViewDelta>, MaintainStats), EditError> {
    assert_eq!(defs.len(), answers.len(), "one answer set per view definition");
    let mut stats = MaintainStats::default();
    let saved: Vec<Vec<NodeId>> = answers.to_vec();

    if mode == MaintainMode::FullRecompute {
        apply_edits(doc, edits)?;
        stats.edits_applied = edits.len() as u64;
        for (def, ans) in defs.iter().zip(answers.iter_mut()) {
            stats.view_edit_checks += 1;
            stats.full_recomputes += 1;
            *ans = evaluate(def, doc);
        }
        // The baseline refreshes every materialized copy: retag all
        // survivors.
        let retag_all: Vec<HashSet<NodeId>> =
            answers.iter().map(|a| a.iter().copied().collect()).collect();
        let deltas = finish_deltas(doc, &saved, answers, |i| retag_all[i].clone());
        count_delta_stats(&deltas, &mut stats);
        return Ok((deltas, stats));
    }

    if mode == MaintainMode::Coalesced {
        // Batch-coalesced path: apply everything, diff spines t0 → t1 once,
        // scan the merged regions (serially here; the engine swaps in the
        // flat matcher and a thread fan-out for the same plan).
        let t0 = doc.clone();
        let prep = crate::coalesce::prepare_batch(doc, edits)?;
        let plan = crate::coalesce::coalesce_plan(&t0, doc, defs, &prep);
        let tasks = plan.region_tasks();
        let results = crate::coalesce::scan_regions_serial(doc, defs, &plan, &tasks);
        let mut stats = plan.stats;
        crate::coalesce::apply_region_results(
            doc, defs, answers, &plan, &tasks, &results, &mut stats,
        );
        let deltas = finish_deltas(doc, &saved, answers, |_| plan.retag.clone());
        count_delta_stats(&deltas, &mut stats);
        return Ok((deltas, stats));
    }

    let infos: Vec<SpineInfo> = defs.iter().map(|d| SpineInfo::new(d)).collect();
    let mut retagged: Vec<HashSet<NodeId>> = vec![HashSet::new(); defs.len()];
    let mut applied: Vec<AppliedEdit> = Vec::with_capacity(edits.len());

    for (idx, edit) in edits.iter().enumerate() {
        if let Err(e) = validate_edit(doc, edit, idx) {
            // Roll back: restore the document (reverse order) and the
            // answer sets.
            rollback(doc, &applied);
            for (ans, old) in answers.iter_mut().zip(saved.iter()) {
                *ans = old.clone();
            }
            return Err(e);
        }

        let anchor = edit.anchor(doc).expect("validated edits have an anchor");
        let spine = spine_to(doc, anchor);

        // Pre-edit B-vectors along the spine, per view (skipping views the
        // edit provably cannot affect). The touched labels are only fully
        // known post-application for inserts/deletes, but they can be read
        // off the edit itself pre-application.
        let touched = touched_labels_of(doc, edit);
        let mut old_b: Vec<Option<Vec<u64>>> = Vec::with_capacity(defs.len());
        for (def, info) in defs.iter().zip(&infos) {
            stats.view_edit_checks += 1;
            if info.unaffected_by_labels(&touched) {
                stats.label_skips += 1;
                old_b.push(None);
                continue;
            }
            if !info.trackable() {
                old_b.push(None);
                continue;
            }
            let mut m = SubMatcher::new(def, doc);
            old_b.push(Some(spine.iter().map(|&a| m.b_vector(info, a)).collect()));
        }

        let receipt = crate::edit::apply_edit(doc, edit).expect("validated edit applies");
        stats.edits_applied += 1;
        let inserted_root = match &receipt {
            AppliedEdit::Inserted { root, .. } => Some(*root),
            _ => None,
        };

        for (v, (def, info)) in defs.iter().zip(&infos).enumerate() {
            let Some(old_vec) = &old_b[v] else {
                if info.unaffected_by_labels(&touched) {
                    // Provably unchanged answer set; only materialized
                    // content along the spine may be stale.
                    retag_spine(&spine, &mut retagged[v]);
                    continue;
                }
                // Untrackable spine: fall back to a full re-evaluation.
                stats.full_recomputes += 1;
                answers[v] = evaluate(def, doc);
                retag_spine(&spine, &mut retagged[v]);
                continue;
            };

            let mut m = SubMatcher::new(def, doc);
            let mut dirty: Option<NodeId> = None;
            for (i, &a) in spine.iter().enumerate() {
                if m.b_vector(info, a) != old_vec[i] {
                    dirty = Some(a);
                    break; // highest changed spine node wins
                }
            }
            let region_root = dirty.or(inserted_root);

            match region_root {
                None => {
                    // No spine change and nothing inserted: the answer set
                    // can only have lost tombstoned nodes.
                    stats.spine_clean += 1;
                    if matches!(receipt, AppliedEdit::Deleted { .. }) {
                        answers[v].retain(|&n| doc.is_alive(n));
                    }
                }
                Some(root) => {
                    let (fresh, region) = region_answers(info, doc, root, &mut m);
                    stats.regions_scanned += 1;
                    stats.region_nodes += region.count() as u64;
                    let mut next: Vec<NodeId> = answers[v]
                        .iter()
                        .copied()
                        .filter(|&n| doc.is_alive(n) && !region.contains(n.index()))
                        .collect();
                    next.extend(fresh);
                    next.sort();
                    answers[v] = next;
                }
            }
            retag_spine(&spine, &mut retagged[v]);
        }

        applied.push(receipt);
    }

    let deltas = finish_deltas(doc, &saved, answers, |i| retagged[i].clone());
    count_delta_stats(&deltas, &mut stats);
    Ok((deltas, stats))
}

/// Collects the labels an edit touches, readable pre-application.
fn touched_labels_of(doc: &Tree, edit: &Edit) -> Vec<xpv_model::Label> {
    match edit {
        Edit::InsertSubtree { subtree, .. } => subtree.label_set(),
        Edit::DeleteSubtree { node } => {
            let mut ls: Vec<xpv_model::Label> =
                doc.descendants_inclusive(*node).into_iter().map(|n| doc.label(n)).collect();
            ls.sort();
            ls.dedup();
            ls
        }
        Edit::Relabel { node, label } => {
            let mut ls = vec![doc.label(*node), *label];
            ls.sort();
            ls.dedup();
            ls
        }
    }
}

/// Marks every spine node as content-stale. Unconditional on purpose: a
/// node may not be an answer *right now* yet still end the batch as a
/// surviving answer with edited content (drop out, get edited, re-enter
/// across edits of one batch), so membership is only checked once at the
/// end — [`finish_deltas`] filters the marks down to nodes that are
/// answers both before and after the batch.
fn retag_spine(spine: &[NodeId], retagged: &mut HashSet<NodeId>) {
    retagged.extend(spine.iter().copied());
}

fn rollback(doc: &mut Tree, applied: &[AppliedEdit]) {
    for receipt in applied.iter().rev() {
        crate::edit::undo(doc, receipt);
    }
}

/// Engine-facing delta finalizer for externally driven coalesced
/// maintenance: diffs saved vs final answers, filters the shared retag set
/// per view, and folds the added/removed counts into `stats`. Produces
/// exactly what [`maintain_views`] would for the same answers.
pub fn finalize_deltas(
    doc: &Tree,
    saved: &[Vec<NodeId>],
    finals: &[Vec<NodeId>],
    retag: &HashSet<NodeId>,
    stats: &mut MaintainStats,
) -> Vec<ViewDelta> {
    let deltas = finish_deltas(doc, saved, finals, |_| retag.clone());
    count_delta_stats(&deltas, stats);
    deltas
}

/// Builds the per-view cumulative deltas by diffing the saved initial
/// answers against the final ones (a bitset diff over the final arena).
fn finish_deltas(
    doc: &Tree,
    saved: &[Vec<NodeId>],
    finals: &[Vec<NodeId>],
    retagged_of: impl Fn(usize) -> HashSet<NodeId>,
) -> Vec<ViewDelta> {
    saved
        .iter()
        .zip(finals)
        .enumerate()
        .map(|(i, (old, new))| {
            let cap = doc.arena_len();
            let mut old_set = BitSet::new(cap);
            for &n in old {
                old_set.insert(n.index());
            }
            let mut new_set = BitSet::new(cap);
            for &n in new {
                new_set.insert(n.index());
            }
            let removed: Vec<NodeId> =
                old.iter().copied().filter(|&n| !new_set.contains(n.index())).collect();
            let added: Vec<NodeId> =
                new.iter().copied().filter(|&n| !old_set.contains(n.index())).collect();
            let retag = retagged_of(i);
            let mut retagged: Vec<NodeId> = new
                .iter()
                .copied()
                .filter(|&n| old_set.contains(n.index()) && retag.contains(&n))
                .collect();
            retagged.sort();
            ViewDelta { removed, added, retagged }
        })
        .collect()
}

fn count_delta_stats(deltas: &[ViewDelta], stats: &mut MaintainStats) {
    for d in deltas {
        stats.answers_added += d.added.len() as u64;
        stats.answers_removed += d.removed.len() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpv_model::{Label, TreeBuilder};
    use xpv_pattern::parse_xpath;

    fn pat(s: &str) -> Pattern {
        parse_xpath(s).expect("pattern parses")
    }

    fn doc() -> Tree {
        TreeBuilder::root("site", |b| {
            b.child("region", |b| {
                b.child("item", |b| {
                    b.leaf("name");
                    b.leaf("bids");
                });
                b.child("item", |b| {
                    b.leaf("name");
                });
            });
        })
    }

    fn item_graft() -> Tree {
        TreeBuilder::root("item", |b| {
            b.leaf("name");
            b.leaf("bids");
        })
    }

    /// Runs a batch through the incremental maintainer and asserts every
    /// view equals a fresh evaluation afterwards.
    fn check(doc0: &Tree, defs: &[&Pattern], edits: &[Edit]) -> (Tree, Vec<ViewDelta>) {
        let mut t = doc0.clone();
        let mut answers: Vec<Vec<NodeId>> = defs.iter().map(|d| evaluate(d, &t)).collect();
        let (deltas, _) =
            maintain_views(&mut t, defs, &mut answers, edits, MaintainMode::Incremental)
                .expect("valid batch");
        for (def, ans) in defs.iter().zip(&answers) {
            assert_eq!(ans, &evaluate(def, &t), "view {def} diverged from full recompute");
        }
        (t, deltas)
    }

    #[test]
    fn insert_extends_answers() {
        let t = doc();
        let region = t.children(t.root())[0];
        let q1 = pat("site/region/item/name");
        let q2 = pat("site/region/item[bids]/name");
        let (t2, deltas) = check(
            &t,
            &[&q1, &q2],
            &[Edit::InsertSubtree { parent: region, subtree: item_graft() }],
        );
        assert_eq!(deltas[0].added.len(), 1);
        assert_eq!(deltas[1].added.len(), 1);
        assert!(deltas[0].removed.is_empty());
        assert_eq!(evaluate(&q1, &t2).len(), 3);
    }

    #[test]
    fn delete_shrinks_answers_and_flips_predicates() {
        let t = doc();
        let region = t.children(t.root())[0];
        let first_item = t.children(region)[0];
        let bids = t.children(first_item)[1];
        assert_eq!(t.label(bids).name(), "bids");
        let q = pat("site/region/item[bids]/name");
        // Deleting the bids leaf flips B at the *item* (an ancestor):
        // the name under it must drop out of the predicate view.
        let (_, deltas) = check(&t, &[&q], &[Edit::DeleteSubtree { node: bids }]);
        assert_eq!(deltas[0].removed.len(), 1);
        assert!(deltas[0].added.is_empty());
    }

    #[test]
    fn relabel_moves_membership_both_ways() {
        let t = doc();
        let region = t.children(t.root())[0];
        let second_item = t.children(region)[1];
        let q = pat("site/region/item/name");
        let (_, deltas) = check(
            &t,
            &[&q],
            &[
                Edit::Relabel { node: second_item, label: Label::new("lot") },
                Edit::Relabel { node: second_item, label: Label::new("item") },
            ],
        );
        // Net effect of the two relabels is zero.
        assert!(deltas[0].added.is_empty() && deltas[0].removed.is_empty());
    }

    #[test]
    fn label_disjoint_edits_skip_reevaluation() {
        let t = doc();
        let region = t.children(t.root())[0];
        let q = pat("site/region/item/name");
        let mut t2 = t.clone();
        let mut answers = vec![evaluate(&q, &t2)];
        let graft = TreeBuilder::root("comment", |b| {
            b.leaf("text");
        });
        let (deltas, stats) = maintain_views(
            &mut t2,
            &[&q],
            &mut answers,
            &[Edit::InsertSubtree { parent: region, subtree: graft }],
            MaintainMode::Incremental,
        )
        .expect("valid");
        assert_eq!(stats.label_skips, 1);
        assert_eq!(stats.regions_scanned, 0);
        assert!(!deltas[0].answers_changed());
        assert_eq!(answers[0], evaluate(&q, &t2));
    }

    #[test]
    fn deep_edits_retag_ancestor_answers() {
        let t = doc();
        let region = t.children(t.root())[0];
        let first_item = t.children(region)[0];
        // The items view materializes subtrees; adding a leaf *inside* an
        // answer's subtree keeps the answer but stales its copy.
        let q = pat("site/region/item");
        let graft = TreeBuilder::root("shipping", |_| {});
        let (_, deltas) =
            check(&t, &[&q], &[Edit::InsertSubtree { parent: first_item, subtree: graft }]);
        assert!(!deltas[0].answers_changed());
        assert_eq!(deltas[0].retagged, vec![first_item]);
    }

    /// An answer can drop out, have its content edited, and re-enter
    /// within one batch: it must come back **retagged** so materialized
    /// copies are rebuilt (regression: membership-gated retagging missed
    /// this and left a stale copy behind an empty delta).
    #[test]
    fn reentering_answers_with_edited_content_are_retagged() {
        let t = TreeBuilder::root("site", |b| {
            b.leaf("flag");
            b.child("item", |b| {
                b.leaf("name");
            });
        });
        let flag = t.children(t.root())[0];
        let item = t.children(t.root())[1];
        let q = pat("site[flag]/item");
        let mut doc = t.clone();
        let mut answers = vec![evaluate(&q, &doc)];
        assert_eq!(answers[0], vec![item]);
        let batch = [
            // 1: the item stops being an answer (flag gone)…
            Edit::DeleteSubtree { node: flag },
            // 2: …its content changes while it is not an answer…
            Edit::InsertSubtree { parent: item, subtree: TreeBuilder::root("extra", |_| {}) },
            // 3: …and it re-enters when the flag returns.
            Edit::InsertSubtree { parent: t.root(), subtree: TreeBuilder::root("flag", |_| {}) },
        ];
        let (deltas, _) =
            maintain_views(&mut doc, &[&q], &mut answers, &batch, MaintainMode::Incremental)
                .expect("valid batch");
        assert_eq!(answers[0], evaluate(&q, &doc));
        assert_eq!(answers[0], vec![item], "same surviving answer node");
        assert_eq!(
            deltas[0].retagged,
            vec![item],
            "the re-entering answer's content changed: its copy must refresh"
        );
    }

    #[test]
    fn invalid_batch_restores_doc_and_answers() {
        let t = doc();
        let region = t.children(t.root())[0];
        let q = pat("site/region/item/name");
        let mut t2 = t.clone();
        let before = evaluate(&q, &t2);
        let mut answers = vec![before.clone()];
        let err = maintain_views(
            &mut t2,
            &[&q],
            &mut answers,
            &[
                Edit::InsertSubtree { parent: region, subtree: item_graft() },
                Edit::DeleteSubtree { node: NodeId(9999) },
            ],
            MaintainMode::Incremental,
        )
        .unwrap_err();
        assert!(matches!(err, EditError::NotLive { edit_index: 1, .. }));
        assert_eq!(t2.canonical_key(), t.canonical_key());
        assert_eq!(answers[0], before);
    }

    #[test]
    fn full_recompute_mode_agrees_with_incremental() {
        let t = doc();
        let region = t.children(t.root())[0];
        let q1 = pat("site/region/item[bids]/name");
        let q2 = pat("site//name");
        let edits = vec![
            Edit::InsertSubtree { parent: region, subtree: item_graft() },
            Edit::DeleteSubtree { node: t.children(region)[1] },
        ];
        let mut ti = t.clone();
        let mut ai = vec![evaluate(&q1, &ti), evaluate(&q2, &ti)];
        maintain_views(&mut ti, &[&q1, &q2], &mut ai, &edits, MaintainMode::Incremental)
            .expect("valid");
        let mut tf = t.clone();
        let mut af = vec![evaluate(&q1, &tf), evaluate(&q2, &tf)];
        maintain_views(&mut tf, &[&q1, &q2], &mut af, &edits, MaintainMode::FullRecompute)
            .expect("valid");
        assert_eq!(ai, af, "both modes converge to the same answers");
        assert_eq!(ti.canonical_key(), tf.canonical_key());
    }
}
