//! # xpv-maintain — incremental view maintenance under document updates
//!
//! The `xpath-views` caches materialize view answers once and serve queries
//! from them; this crate is what lets the cached document **change** without
//! rebuilding the world. It provides:
//!
//! * the **edit log** ([`Edit`], [`apply_edits`]) — insert-subtree /
//!   delete-subtree / relabel mutations applied transactionally to
//!   `xpv_model::Tree`, with `NodeId`s stable across unrelated edits
//!   (removal tombstones arena slots, insertion appends);
//! * the **incremental maintainer** ([`maintain_views`]) — per edit it
//!   re-evaluates each view only against the edit's *affected region* and
//!   patches the stored answer set, provably matching a from-scratch
//!   re-materialization;
//! * the [`MaintainMode::FullRecompute`] baseline — the ablation arm of
//!   `xpv update-bench`.
//!
//! ## Why the affected region suffices
//!
//! Decompose a view pattern into its selection spine `u_0 … u_k` and, per
//! spine node, a predicate `B_i(v)` ("`v` matches `u_i`'s test and all of
//! `u_i`'s branches match below `v`"). Membership factors through the spine:
//! `n ∈ P(t)` iff some axis-respecting chain `root = v_0, …, v_k = n` has
//! `B_i(v_i)` for all `i`. Each `B_i(v)` reads only `label(v)` and
//! `subtree(v)`.
//!
//! An edit anchored at `e` (the deepest surviving node whose subtree
//! content changed) leaves `subtree(v)` untouched for every `v` that is
//! neither an ancestor of `e` nor inside the edited subtree. For a
//! candidate `n` **outside** the edited subtree, the ancestors of `n`
//! whose `B` values could have changed are exactly the common ancestors of
//! `n` and `e` — nodes on the spine `root → e`. Hence:
//!
//! * if no spine node's `B`-vector changed, only the edited subtree needs
//!   re-evaluation;
//! * otherwise the subtree of the **highest** changed spine node (which
//!   contains the edited subtree) is re-evaluated — in the worst case the
//!   whole document, exactly when a predicate visible from the root
//!   flipped and the whole answer set may genuinely move.
//!
//! The restricted evaluation ([`region_answers`]) runs the same
//! spine-reachability dynamic program a full evaluation would, but only
//! down one subtree, with branch matching memoized. Answers outside the
//! region are kept verbatim (minus tombstoned nodes); answers inside are
//! replaced by the fresh region results — a bitset diff. Materialized
//! (subtree-copy) representations additionally refresh the copies of
//! surviving answers that lie on the edit's ancestor spine (their *content*
//! changed even though their membership did not) — a canonical-key diff
//! handled by the engine's `MaterializedView::apply_delta`.
//!
//! The property suite (`tests/maintain_properties.rs`) checks incremental ≡
//! full re-materialization on randomized documents, view pools, and edit
//! streams, and the engine's update path is stress-tested against serial
//! replay.

pub mod edit;
pub mod refresh;
pub mod region;

pub use edit::{apply_edit, apply_edits, validate_edit, AppliedEdit, Edit, EditError};
pub use refresh::{maintain_views, MaintainMode, MaintainStats, ViewDelta};
pub use region::{region_answers, spine_to, SpineInfo, SubMatcher, MAX_TRACKED_DEPTH};
