//! # xpv-maintain — incremental view maintenance under document updates
//!
//! The `xpath-views` caches materialize view answers once and serve queries
//! from them; this crate is what lets the cached document **change** without
//! rebuilding the world. It provides:
//!
//! * the **edit log** ([`Edit`], [`apply_edits`]) — insert-subtree /
//!   delete-subtree / relabel mutations applied transactionally to
//!   `xpv_model::Tree`, with `NodeId`s stable across unrelated edits
//!   (removal tombstones arena slots, insertion appends);
//! * the **batch-coalesced maintainer** ([`maintain_views`] in its default
//!   [`MaintainMode::Coalesced`]) — it applies the whole batch first, diffs
//!   each view's spine predicates between the pre- and post-batch trees in
//!   one pass, **merges overlapping and nested regions** ([`coalesce`]),
//!   and re-evaluates each view only against the few surviving disjoint
//!   regions, provably matching a from-scratch re-materialization; a burst
//!   of k edits under one hot subtree costs one region scan per view
//!   instead of k;
//! * the legacy **per-edit maintainer** ([`MaintainMode::Incremental`]) —
//!   one affected-region scan per (view, edit) pair, kept as the
//!   `--no-coalesce` ablation arm and cross-check;
//! * the [`MaintainMode::FullRecompute`] baseline — the rebuild-the-world
//!   ablation arm of `xpv update-bench`.
//!
//! ## Why the affected region suffices
//!
//! Decompose a view pattern into its selection spine `u_0 … u_k` and, per
//! spine node, a predicate `B_i(v)` ("`v` matches `u_i`'s test and all of
//! `u_i`'s branches match below `v`"). Membership factors through the spine:
//! `n ∈ P(t)` iff some axis-respecting chain `root = v_0, …, v_k = n` has
//! `B_i(v_i)` for all `i`. Each `B_i(v)` reads only `label(v)` and
//! `subtree(v)`.
//!
//! An edit anchored at `e` (the deepest surviving node whose subtree
//! content changed) leaves `subtree(v)` untouched for every `v` that is
//! neither an ancestor of `e` nor inside the edited subtree. For a
//! candidate `n` **outside** the edited subtree, the ancestors of `n`
//! whose `B` values could have changed are exactly the common ancestors of
//! `n` and `e` — nodes on the spine `root → e`. Hence:
//!
//! * if no spine node's `B`-vector changed, only the edited subtree needs
//!   re-evaluation;
//! * otherwise the subtree of the **highest** changed spine node (which
//!   contains the edited subtree) is re-evaluated — in the worst case the
//!   whole document, exactly when a predicate visible from the root
//!   flipped and the whole answer set may genuinely move.
//!
//! ## Why merged regions suffice for a whole batch
//!
//! The coalesced path compares `B`-vectors **once**, between the pre-batch
//! tree `t0` and the post-batch tree `t1`, along every edit's recorded
//! anchor spine (ancestor paths of surviving nodes never move, so a spine
//! recorded mid-batch is also the `t1` path). Any `t1`-live node whose `B`
//! values differ lies on some affected edit's spine (its subtree or label
//! changed across that edit) or inside an inserted subtree — nodes new in
//! `t1` compare against the all-false vector and are flagged the moment
//! they host anything, and surviving `inserted_root`s are taken as region
//! roots outright. The region root set is then **merged**: a root with a
//! proper ancestor in the set collapses into it, and edits whose highest
//! changed spine node coincides dedup to one root, leaving pairwise
//! disjoint subtrees whose union contains every node with a changed `B`
//! value — so answers outside the union kept their whole chain intact and
//! answers inside are recomputed exactly. The full argument, including why
//! label-skipped edits contribute nothing to the telescoped `t0 → t1`
//! difference, lives in [`coalesce`]'s module docs. Disjointness is also
//! what makes the region scans embarrassingly parallel: the engine fans
//! them across scoped threads and combines results in `(view, region
//! root)` order, so answers, deltas, and counters are schedule-invariant.
//!
//! The restricted evaluation ([`region_answers`]) runs the same
//! spine-reachability dynamic program a full evaluation would, but only
//! down one subtree, with branch matching memoized. Answers outside the
//! region are kept verbatim (minus tombstoned nodes); answers inside are
//! replaced by the fresh region results — a bitset diff. Materialized
//! (subtree-copy) representations additionally refresh the copies of
//! surviving answers that lie on the edit's ancestor spine (their *content*
//! changed even though their membership did not) — a canonical-key diff
//! handled by the engine's `MaterializedView::apply_delta`.
//!
//! The property suite (`tests/maintain_properties.rs`) checks incremental ≡
//! full re-materialization on randomized documents, view pools, and edit
//! streams, and the engine's update path is stress-tested against serial
//! replay.

pub mod coalesce;
pub mod edit;
pub mod refresh;
pub mod region;

pub use coalesce::{
    apply_region_results, coalesce_plan, merge_regions, prepare_batch, scan_regions_serial,
    BatchAnchor, CoalescedPlan, PreparedBatch, RegionTask, ViewDisposition,
};
pub use edit::{apply_edit, apply_edits, validate_edit, AppliedEdit, Edit, EditError};
pub use refresh::{finalize_deltas, maintain_views, MaintainMode, MaintainStats, ViewDelta};
pub use region::{region_answers, spine_to, SpineInfo, SubMatcher, MAX_TRACKED_DEPTH};
