//! The document edit log: tree edits applied transactionally.
//!
//! An [`Edit`] is one of the three primitive mutations of the paper's data
//! model — graft a subtree, prune a subtree, relabel a node. Edits are
//! applied to `xpv_model::Tree` through [`apply_edit`] / [`apply_edits`],
//! which validate before mutating and (for batches) roll back on failure,
//! so a cache holding the tree never observes a half-applied batch.
//!
//! [`NodeId`]s are **stable across unrelated edits**: removal tombstones
//! arena slots instead of compacting (see `xpv_model::tree`), and insertion
//! only appends, so an id held by a materialized answer set keeps meaning
//! the same node until that node itself is deleted. Every applied edit
//! returns an [`AppliedEdit`] receipt recording what actually happened —
//! the inserted ids, the removed ids, the label transition — which is
//! exactly what the incremental maintainer needs to bound its re-evaluation
//! region, and what the transactional rollback replays in reverse.

use std::fmt;

use xpv_model::{Label, NodeId, Tree};

/// One primitive document mutation.
#[derive(Clone, Debug)]
pub enum Edit {
    /// Graft a copy of `subtree` as a new child of `parent`. The inserted
    /// nodes receive fresh ids at the end of the arena.
    InsertSubtree {
        /// The live node the subtree is grafted under.
        parent: NodeId,
        /// The subtree to copy in (its root becomes a child of `parent`).
        subtree: Tree,
    },
    /// Prune the subtree rooted at `node` (which must not be the root).
    DeleteSubtree {
        /// The live, non-root node whose subtree is removed.
        node: NodeId,
    },
    /// Replace the label of `node`.
    Relabel {
        /// The live node to relabel.
        node: NodeId,
        /// Its new label.
        label: Label,
    },
}

impl Edit {
    /// The **anchor** of the edit: the deepest node that survives the edit
    /// and whose subtree content changes — the bottom end of the ancestor
    /// spine the maintainer re-checks. `None` when the edit targets a node
    /// that is currently invalid (validation reports the precise error).
    pub fn anchor(&self, t: &Tree) -> Option<NodeId> {
        match *self {
            Edit::InsertSubtree { parent, .. } => t.is_alive(parent).then_some(parent),
            Edit::DeleteSubtree { node } => {
                if t.is_alive(node) {
                    t.parent(node)
                } else {
                    None
                }
            }
            Edit::Relabel { node, .. } => t.is_alive(node).then_some(node),
        }
    }
}

impl fmt::Display for Edit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Edit::InsertSubtree { parent, subtree } => {
                write!(f, "insert {} node(s) under {parent:?}", subtree.len())
            }
            Edit::DeleteSubtree { node } => write!(f, "delete subtree at {node:?}"),
            Edit::Relabel { node, label } => write!(f, "relabel {node:?} to {}", label.name()),
        }
    }
}

/// Why an edit could not be applied. Carries the index of the offending
/// edit within its batch (`0` for single-edit application).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EditError {
    /// The targeted node is out of bounds or tombstoned.
    NotLive {
        /// Position of the edit in the submitted batch.
        edit_index: usize,
        /// The invalid target.
        node: NodeId,
    },
    /// A `DeleteSubtree` targeted the document root.
    DeleteRoot {
        /// Position of the edit in the submitted batch.
        edit_index: usize,
    },
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EditError::NotLive { edit_index, node } => {
                write!(f, "edit {edit_index}: target {node:?} is out of bounds or removed")
            }
            EditError::DeleteRoot { edit_index } => {
                write!(f, "edit {edit_index}: the document root cannot be deleted")
            }
        }
    }
}

impl std::error::Error for EditError {}

/// The receipt of one applied edit: what the mutation actually did, in
/// terms the maintainer and the rollback both consume.
#[derive(Clone, Debug)]
pub enum AppliedEdit {
    /// A subtree was grafted: `root` is the id of the copy of the inserted
    /// subtree's root, and `labels` the (deduplicated) labels it brought in.
    Inserted {
        /// The graft point.
        parent: NodeId,
        /// Id of the inserted subtree's root in the document.
        root: NodeId,
        /// Number of inserted nodes.
        nodes: usize,
        /// Sorted, deduplicated labels of the inserted nodes.
        labels: Vec<Label>,
    },
    /// A subtree was pruned: `removed` lists the tombstoned ids (pre-order,
    /// the target first) and `labels` the labels they carried.
    Deleted {
        /// The node the subtree hung under.
        parent: NodeId,
        /// The pruned subtree's root.
        node: NodeId,
        /// All tombstoned ids, pre-order.
        removed: Vec<NodeId>,
        /// Sorted, deduplicated labels of the removed nodes.
        labels: Vec<Label>,
    },
    /// A node changed label.
    Relabeled {
        /// The relabeled node.
        node: NodeId,
        /// Its previous label.
        from: Label,
        /// Its new label.
        to: Label,
    },
}

impl AppliedEdit {
    /// Sorted, deduplicated labels the edit touched (inserted, removed, or
    /// both sides of a relabel) — the input of the maintainer's
    /// label-disjointness fast path.
    pub fn touched_labels(&self) -> Vec<Label> {
        match self {
            AppliedEdit::Inserted { labels, .. } | AppliedEdit::Deleted { labels, .. } => {
                labels.clone()
            }
            AppliedEdit::Relabeled { from, to, .. } => {
                let mut ls = vec![*from, *to];
                ls.sort();
                ls.dedup();
                ls
            }
        }
    }
}

/// Validates `edit` against the current tree without mutating anything.
pub fn validate_edit(t: &Tree, edit: &Edit, edit_index: usize) -> Result<(), EditError> {
    match *edit {
        Edit::InsertSubtree { parent, .. } => {
            if !t.is_alive(parent) {
                return Err(EditError::NotLive { edit_index, node: parent });
            }
        }
        Edit::DeleteSubtree { node } => {
            if !t.is_alive(node) {
                return Err(EditError::NotLive { edit_index, node });
            }
            if node == t.root() {
                return Err(EditError::DeleteRoot { edit_index });
            }
        }
        Edit::Relabel { node, .. } => {
            if !t.is_alive(node) {
                return Err(EditError::NotLive { edit_index, node });
            }
        }
    }
    Ok(())
}

/// Applies one edit, validating first: on `Err` the tree is untouched.
pub fn apply_edit(t: &mut Tree, edit: &Edit) -> Result<AppliedEdit, EditError> {
    validate_edit(t, edit, 0)?;
    Ok(apply_validated(t, edit))
}

/// Applies a pre-validated edit (the caller ran [`validate_edit`] against
/// the *current* tree state).
fn apply_validated(t: &mut Tree, edit: &Edit) -> AppliedEdit {
    match edit {
        Edit::InsertSubtree { parent, subtree } => {
            let root = t.attach_tree(*parent, subtree);
            AppliedEdit::Inserted {
                parent: *parent,
                root,
                nodes: subtree.len(),
                labels: subtree.label_set(),
            }
        }
        Edit::DeleteSubtree { node } => {
            let parent = t.parent(*node).expect("validated: not the root");
            let removed = t.remove_subtree(*node);
            // Tombstones keep their labels readable.
            let mut labels: Vec<Label> = removed.iter().map(|&n| t.label(n)).collect();
            labels.sort();
            labels.dedup();
            AppliedEdit::Deleted { parent, node: *node, removed, labels }
        }
        Edit::Relabel { node, label } => {
            let from = t.label(*node);
            t.set_label(*node, *label);
            AppliedEdit::Relabeled { node: *node, from, to: *label }
        }
    }
}

/// Undoes one applied edit (used by the batch rollback). Undoing an
/// insertion tombstones the inserted slots — the live structure is restored
/// exactly; only dead arena slots remain.
/// Undoes one applied edit (shared by the batch rollbacks here and in
/// `refresh::maintain_views`). Undoing an insertion tombstones the
/// inserted slots — the live structure is restored exactly; only dead
/// arena slots remain.
pub(crate) fn undo(t: &mut Tree, applied: &AppliedEdit) {
    match applied {
        AppliedEdit::Inserted { root, .. } => {
            t.remove_subtree(*root);
        }
        AppliedEdit::Deleted { node, .. } => t.restore_subtree(*node),
        AppliedEdit::Relabeled { node, from, .. } => t.set_label(*node, *from),
    }
}

/// Applies a batch of edits **transactionally**: each edit is validated
/// against the tree state produced by its predecessors; on the first
/// failure every already-applied edit is undone (in reverse) and the error
/// names the offending batch position. On success the receipts come back in
/// batch order.
pub fn apply_edits(t: &mut Tree, edits: &[Edit]) -> Result<Vec<AppliedEdit>, EditError> {
    let mut applied: Vec<AppliedEdit> = Vec::with_capacity(edits.len());
    for (i, edit) in edits.iter().enumerate() {
        match validate_edit(t, edit, i) {
            Ok(()) => applied.push(apply_validated(t, edit)),
            Err(e) => {
                for done in applied.iter().rev() {
                    undo(t, done);
                }
                return Err(e);
            }
        }
    }
    Ok(applied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpv_model::TreeBuilder;

    fn doc() -> Tree {
        TreeBuilder::root("a", |b| {
            b.leaf("b");
            b.child("c", |b| {
                b.leaf("d");
            });
        })
    }

    fn graft() -> Tree {
        TreeBuilder::root("x", |b| {
            b.leaf("y");
        })
    }

    #[test]
    fn insert_delete_relabel_receipts() {
        let mut t = doc();
        let b = t.children(t.root())[0];
        let c = t.children(t.root())[1];
        let batch = [
            Edit::InsertSubtree { parent: c, subtree: graft() },
            Edit::Relabel { node: c, label: Label::new("cc") },
            Edit::DeleteSubtree { node: b },
        ];
        let receipts = apply_edits(&mut t, &batch).expect("valid batch");
        assert_eq!(receipts.len(), 3);
        match &receipts[0] {
            AppliedEdit::Inserted { root, nodes, labels, .. } => {
                assert_eq!(*nodes, 2);
                assert!(t.is_alive(*root));
                assert_eq!(labels.len(), 2);
            }
            other => panic!("expected Inserted, got {other:?}"),
        }
        assert_eq!(t.label(c).name(), "cc");
        assert_eq!(t.canonical_key(), "(a(cc(d)(x(y))))");
    }

    #[test]
    fn batch_failure_rolls_back_everything() {
        let mut t = doc();
        let key = t.canonical_key();
        let arena = t.arena_len();
        let c = t.children(t.root())[1];
        let d = t.children(c)[0];
        let batch = [
            Edit::InsertSubtree { parent: c, subtree: graft() },
            Edit::DeleteSubtree { node: c },
            // c's subtree is gone: relabeling inside it must fail...
            Edit::Relabel { node: d, label: Label::new("z") },
        ];
        let err = apply_edits(&mut t, &batch).unwrap_err();
        assert!(matches!(err, EditError::NotLive { edit_index: 2, .. }));
        // ... and the whole batch is undone (live structure restored;
        // rolled-back insertions may leave dead arena slots).
        assert_eq!(t.canonical_key(), key);
        assert_eq!(t.len(), 4);
        assert!(t.arena_len() >= arena);
    }

    #[test]
    fn deleting_the_root_is_an_error() {
        let mut t = doc();
        let batch = [Edit::DeleteSubtree { node: t.root() }];
        let err = apply_edits(&mut t, &batch).unwrap_err();
        assert_eq!(err, EditError::DeleteRoot { edit_index: 0 });
    }

    #[test]
    fn anchors() {
        let t = doc();
        let b = t.children(t.root())[0];
        let c = t.children(t.root())[1];
        assert_eq!(Edit::InsertSubtree { parent: c, subtree: graft() }.anchor(&t), Some(c));
        assert_eq!(Edit::DeleteSubtree { node: b }.anchor(&t), Some(t.root()));
        assert_eq!(Edit::Relabel { node: b, label: Label::new("z") }.anchor(&t), Some(b));
    }

    #[test]
    fn touched_labels_are_sorted_dedup() {
        let mut t = doc();
        let c = t.children(t.root())[1];
        let r =
            apply_edit(&mut t, &Edit::Relabel { node: c, label: Label::new("c") }).expect("valid");
        assert_eq!(r.touched_labels().len(), 1, "self-relabel touches one label");
    }
}
