//! Zipf-distributed query streams over scenario catalogs.
//!
//! Production caches see heavily skewed traffic: a few hot queries dominate
//! while a long tail trickles in. These helpers produce that regime
//! reproducibly — the throughput benches, the concurrency stress test, and
//! the `xpv serve-bench` CLI all draw their streams from here so every
//! consumer measures the same workload.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xpv_pattern::Pattern;

use crate::scenarios::Catalog;

/// Zipf(s = 1) ranks over `n` items: item `i` has weight `1 / (i + 1)`.
/// Returns `count` sampled indices in `0..n` (empty when `n == 0`).
pub fn zipf_indices(n: usize, count: usize, seed: u64) -> Vec<usize> {
    if n == 0 {
        return Vec::new();
    }
    let weights: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();
    let total: f64 = weights.iter().sum();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let mut x = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * total;
            for (i, w) in weights.iter().enumerate() {
                if x < *w {
                    return i;
                }
                x -= w;
            }
            n - 1
        })
        .collect()
}

/// A Zipf-repeated stream of `count` queries drawn from `queries` (hot
/// queries first: `queries[0]` is the heaviest rank).
pub fn zipf_stream(queries: &[Pattern], count: usize, seed: u64) -> Vec<Pattern> {
    zipf_indices(queries.len(), count, seed).into_iter().map(|i| queries[i].clone()).collect()
}

/// [`zipf_stream`] over a scenario catalog's query set — the canonical
/// throughput-bench workload.
pub fn catalog_zipf_stream(catalog: &Catalog, count: usize, seed: u64) -> Vec<Pattern> {
    let queries: Vec<Pattern> = catalog.queries.iter().map(|(_, q)| q.clone()).collect();
    zipf_stream(&queries, count, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::site_catalog;

    #[test]
    fn indices_are_deterministic_and_in_range() {
        let a = zipf_indices(6, 200, 0x21F);
        let b = zipf_indices(6, 200, 0x21F);
        assert_eq!(a, b);
        assert!(a.iter().all(|&i| i < 6));
        assert_ne!(a, zipf_indices(6, 200, 0x220), "seed must matter");
    }

    #[test]
    fn hot_ranks_dominate() {
        let idx = zipf_indices(6, 3000, 7);
        let count0 = idx.iter().filter(|&&i| i == 0).count();
        let count5 = idx.iter().filter(|&&i| i == 5).count();
        assert!(count0 > 3 * count5, "rank 0 ({count0}) must dwarf rank 5 ({count5})");
    }

    #[test]
    fn catalog_stream_draws_catalog_queries() {
        let catalog = site_catalog();
        let stream = catalog_zipf_stream(&catalog, 50, 1);
        assert_eq!(stream.len(), 50);
        for q in &stream {
            assert!(
                catalog.queries.iter().any(|(_, c)| c.structurally_eq(q)),
                "stream query {q} not in catalog"
            );
        }
    }

    #[test]
    fn empty_universe_yields_empty_stream() {
        assert!(zipf_indices(0, 10, 3).is_empty());
        assert!(zipf_stream(&[], 10, 3).is_empty());
    }
}
