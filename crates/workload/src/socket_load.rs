//! Socket load generation over the xpv wire protocol.
//!
//! [`run_socket_load`] is the client side of the serving ablation: it
//! opens `connections` protocol connections (one OS thread each — the
//! *client* may burn threads; the point under test is that the **server**
//! does not), splits a query stream across them, and pumps batches with a
//! bounded pipelining depth, respecting each connection's credit window.
//! The `serve-bench --transport {unix,tcp}` CLI and the async stress
//! tests both drive their traffic through here so every consumer measures
//! the same workload shape.

use std::collections::VecDeque;
use std::io;
use std::time::{Duration, Instant};

use xpv_net::{Response, WireClient};
use xpv_pattern::Pattern;

/// What one [`run_socket_load`] run did.
#[derive(Clone, Copy, Debug)]
pub struct SocketLoadReport {
    /// Connections that carried traffic.
    pub connections: usize,
    /// Query batches sent.
    pub batches: usize,
    /// Individual query answers received.
    pub answered: usize,
    /// Wall-clock time from first send to last response.
    pub elapsed: Duration,
}

impl SocketLoadReport {
    /// Queries answered per second.
    pub fn qps(&self) -> f64 {
        if self.elapsed.as_secs_f64() > 0.0 {
            self.answered as f64 / self.elapsed.as_secs_f64()
        } else {
            0.0
        }
    }
}

/// Drives `stream` through `connections` wire-protocol connections
/// (created by `connect`, e.g. a closure over [`WireClient::connect_tcp`])
/// as tenant `"{tenant_prefix}{i}"`, in batches of `batch_size`, keeping
/// up to `pipeline` batches in flight per connection (clamped to the
/// server-granted window). Returns once every answer has arrived and all
/// connections closed cleanly.
pub fn run_socket_load<C>(
    connect: C,
    connections: usize,
    stream: &[Pattern],
    batch_size: usize,
    pipeline: usize,
    tenant_prefix: &str,
) -> io::Result<SocketLoadReport>
where
    C: Fn() -> io::Result<WireClient> + Sync,
{
    let connections = connections.max(1);
    let per_conn = stream.len().div_ceil(connections).max(1);
    let start = Instant::now();
    let results: Vec<io::Result<(usize, usize)>> = std::thread::scope(|scope| {
        let connect = &connect;
        let handles: Vec<_> = stream
            .chunks(per_conn)
            .enumerate()
            .map(|(i, chunk)| {
                let tenant = format!("{tenant_prefix}{i}");
                scope.spawn(move || {
                    pump_connection(connect()?, &tenant, chunk, batch_size, pipeline)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("load connection panicked")).collect()
    });
    let mut batches = 0;
    let mut answered = 0;
    let mut used = 0;
    for result in results {
        let (b, a) = result?;
        batches += b;
        answered += a;
        used += 1;
    }
    Ok(SocketLoadReport { connections: used, batches, answered, elapsed: start.elapsed() })
}

/// One connection's pump loop: send up to `pipeline` batches ahead of the
/// oldest unanswered one, then drain and say goodbye.
fn pump_connection(
    mut client: WireClient,
    tenant: &str,
    queries: &[Pattern],
    batch_size: usize,
    pipeline: usize,
) -> io::Result<(usize, usize)> {
    let depth = pipeline.clamp(1, client.window().max(1) as usize);
    let mut in_flight: VecDeque<u64> = VecDeque::new();
    let mut batches = 0;
    let mut answered = 0;
    for batch in queries.chunks(batch_size.max(1)) {
        if in_flight.len() >= depth {
            let id = in_flight.pop_front().expect("nonempty window");
            answered += take_answers(&mut client, id)?;
        }
        in_flight.push_back(client.send_queries(tenant, batch)?);
        batches += 1;
    }
    while let Some(id) = in_flight.pop_front() {
        answered += take_answers(&mut client, id)?;
    }
    client.goodbye()?;
    Ok((batches, answered))
}

fn take_answers(client: &mut WireClient, id: u64) -> io::Result<usize> {
    match client.recv_for(id)? {
        Response::Answers { answers, .. } => Ok(answers.len()),
        Response::Rejected { reason, .. } => {
            Err(io::Error::new(io::ErrorKind::ConnectionRefused, reason))
        }
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected Answers for batch {id}, got {other:?}"),
        )),
    }
}
