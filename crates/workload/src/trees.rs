//! Seeded random document generation.
//!
//! Random trees drive the falsification side of the property tests (a
//! containment claimed by the decision procedure must hold on every random
//! document) and the scaling axis of the engine benchmarks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xpv_model::{Label, NodeId, Tree};

use crate::patterns::workload_labels;

/// Configuration for [`TreeGen`].
#[derive(Clone, Debug)]
pub struct TreeGenConfig {
    /// Target number of nodes (the generator stops adding once reached).
    pub size: usize,
    /// Maximum depth of any node.
    pub max_depth: usize,
    /// Maximum children per node.
    pub max_children: usize,
    /// Number of distinct labels (shared universe with the pattern
    /// generators, plus a root label).
    pub label_count: usize,
}

impl Default for TreeGenConfig {
    fn default() -> Self {
        TreeGenConfig { size: 30, max_depth: 6, max_children: 4, label_count: 4 }
    }
}

/// A reproducible random document generator.
#[derive(Clone, Debug)]
pub struct TreeGen {
    cfg: TreeGenConfig,
    rng: StdRng,
    labels: Vec<Label>,
}

impl TreeGen {
    /// Creates a generator from a config and seed.
    pub fn new(cfg: TreeGenConfig, seed: u64) -> TreeGen {
        let labels = workload_labels(cfg.label_count);
        TreeGen { cfg, rng: StdRng::seed_from_u64(seed), labels }
    }

    fn label(&mut self) -> Label {
        self.labels[self.rng.gen_range(0..self.labels.len())]
    }

    /// Draws one document.
    pub fn tree(&mut self) -> Tree {
        let root_label = self.label();
        let mut t = Tree::new(root_label);
        // Open slots: nodes that may still take children.
        let mut open: Vec<NodeId> = vec![t.root()];
        while t.len() < self.cfg.size && !open.is_empty() {
            let slot = self.rng.gen_range(0..open.len());
            let parent = open[slot];
            let label = self.label();
            let child = t.add_child(parent, label);
            if t.depth(child) < self.cfg.max_depth {
                open.push(child);
            }
            if t.children(parent).len() >= self.cfg.max_children {
                open.swap_remove(slot);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut g1 = TreeGen::new(TreeGenConfig::default(), 99);
        let mut g2 = TreeGen::new(TreeGenConfig::default(), 99);
        for _ in 0..10 {
            assert!(g1.tree().structurally_eq(&g2.tree()));
        }
    }

    #[test]
    fn respects_bounds() {
        let cfg = TreeGenConfig { size: 60, max_depth: 4, max_children: 3, label_count: 3 };
        let mut g = TreeGen::new(cfg, 5);
        for _ in 0..20 {
            let t = g.tree();
            assert!(t.len() <= 60);
            assert!(t.height() <= 4);
            for n in t.node_ids() {
                assert!(t.children(n).len() <= 3);
            }
        }
    }

    #[test]
    fn reaches_target_size_with_room() {
        let cfg = TreeGenConfig { size: 50, max_depth: 10, max_children: 8, label_count: 2 };
        let mut g = TreeGen::new(cfg, 1);
        let t = g.tree();
        assert_eq!(t.len(), 50);
    }
}
