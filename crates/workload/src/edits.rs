//! Seeded document **edit streams** — the update workload.
//!
//! Production documents don't churn uniformly: a few hot regions absorb
//! most writes while the rest of the tree stays cold. These generators
//! produce that regime reproducibly — Zipf-skewed edit targets (the hottest
//! targets are the deepest, most recently grown parts of the tree) over a
//! configurable insert/delete/relabel [`EditMix`]. The update benchmark
//! (`xpv update-bench`), the maintenance property suite, and the
//! concurrency stress test all draw their streams from here, so every
//! consumer measures the same workload.
//!
//! Streams are **replayable**: each generated [`Edit`] is validated against
//! (and applied to) a working copy as it is drawn, and edit application is
//! deterministic in the ids it assigns, so applying the returned stream to
//! a fresh copy of the same document always succeeds and produces the same
//! final tree.

use std::fmt;
use std::str::FromStr;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xpv_maintain::{apply_edit, Edit};
use xpv_model::{Label, NodeId, Tree};

/// Relative weights of the three edit kinds in a stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EditMix {
    /// Weight of `InsertSubtree` edits.
    pub insert: u32,
    /// Weight of `DeleteSubtree` edits.
    pub delete: u32,
    /// Weight of `Relabel` edits.
    pub relabel: u32,
}

impl EditMix {
    /// A mix with the given weights (at least one must be nonzero).
    pub fn new(insert: u32, delete: u32, relabel: u32) -> EditMix {
        assert!(insert + delete + relabel > 0, "edit mix must have a nonzero weight");
        EditMix { insert, delete, relabel }
    }

    fn total(&self) -> u32 {
        self.insert + self.delete + self.relabel
    }
}

impl Default for EditMix {
    /// Insert-heavy churn: half inserts, a quarter each deletes/relabels.
    fn default() -> EditMix {
        EditMix { insert: 50, delete: 25, relabel: 25 }
    }
}

impl fmt::Display for EditMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.insert, self.delete, self.relabel)
    }
}

impl FromStr for EditMix {
    type Err = String;

    /// Parses `insert:delete:relabel` weight triples, e.g. `50:25:25`.
    fn from_str(s: &str) -> Result<EditMix, String> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 3 {
            return Err(format!("edit mix {s:?}: expected insert:delete:relabel"));
        }
        let mut w = [0u32; 3];
        for (slot, part) in w.iter_mut().zip(&parts) {
            *slot = part.parse::<u32>().map_err(|e| format!("edit mix {s:?}: {e}"))?;
        }
        if w.iter().all(|&x| x == 0) {
            return Err(format!("edit mix {s:?}: all weights are zero"));
        }
        Ok(EditMix { insert: w[0], delete: w[1], relabel: w[2] })
    }
}

/// Burst locality of an edit stream: `hot_percent`% of a stream's edits
/// land inside one of `hot_subtrees` fixed **hot subtrees** (the largest
/// depth-2 subtrees of the document, pairwise disjoint by construction).
/// This is the regime batch coalescing exploits — many edits under few
/// roots collapse to few merged regions — and `xpv update-bench
/// --edit-locality` exposes it directly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EditLocality {
    /// Number of hot subtrees the bursty share of edits clusters under.
    pub hot_subtrees: u32,
    /// Percentage (0–100) of edits targeting a hot subtree; the rest draw
    /// from the whole document like [`edit_stream`].
    pub hot_percent: u32,
}

impl EditLocality {
    /// A locality with the given shape (`hot_subtrees >= 1`,
    /// `hot_percent <= 100`).
    pub fn new(hot_subtrees: u32, hot_percent: u32) -> EditLocality {
        assert!(hot_subtrees >= 1, "need at least one hot subtree");
        assert!(hot_percent <= 100, "hot percent is a percentage");
        EditLocality { hot_subtrees, hot_percent }
    }
}

impl Default for EditLocality {
    /// The bursty default: 90% of edits under 4 hot subtrees.
    fn default() -> EditLocality {
        EditLocality { hot_subtrees: 4, hot_percent: 90 }
    }
}

impl fmt::Display for EditLocality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.hot_subtrees, self.hot_percent)
    }
}

impl FromStr for EditLocality {
    type Err = String;

    /// Parses `hot_subtrees:hot_percent` pairs, e.g. `4:90`.
    fn from_str(s: &str) -> Result<EditLocality, String> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 2 {
            return Err(format!("edit locality {s:?}: expected hot_subtrees:hot_percent"));
        }
        let subtrees = parts[0].parse::<u32>().map_err(|e| format!("edit locality {s:?}: {e}"))?;
        let percent = parts[1].parse::<u32>().map_err(|e| format!("edit locality {s:?}: {e}"))?;
        if subtrees == 0 {
            return Err(format!("edit locality {s:?}: need at least one hot subtree"));
        }
        if percent > 100 {
            return Err(format!("edit locality {s:?}: percent exceeds 100"));
        }
        Ok(EditLocality { hot_subtrees: subtrees, hot_percent: percent })
    }
}

/// Growable harmonic prefix sums: `sums[i] = Σ_{j=1..=i} 1/j` — the
/// cumulative Zipf(s = 1) weights, shared across draws so each draw is a
/// binary search instead of an O(n) scan.
struct Harmonic {
    sums: Vec<f64>,
}

impl Harmonic {
    fn new() -> Harmonic {
        Harmonic { sums: vec![0.0] }
    }

    /// Zipf rank draw over `0..n` (rank 0 hottest).
    fn draw(&mut self, rng: &mut StdRng, n: usize) -> usize {
        debug_assert!(n > 0);
        while self.sums.len() <= n {
            let k = self.sums.len();
            self.sums.push(self.sums[k - 1] + 1.0 / k as f64);
        }
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * self.sums[n];
        // Smallest rank whose cumulative weight exceeds `u`.
        self.sums[1..=n].partition_point(|&h| h <= u).min(n - 1)
    }
}

/// Size of the subtree rooted at `n` (live nodes).
fn subtree_size(t: &Tree, n: NodeId) -> usize {
    t.descendants_inclusive(n).len()
}

/// Generates a replayable stream of `count` edits against `doc` (the
/// document is not modified; an internal working copy tracks validity).
/// Targets are Zipf-skewed toward the deepest / most recently grown nodes;
/// kinds follow `mix`. Deletes are bounded (small subtrees only) and
/// suppressed while the document is small, falling back to relabels, so
/// the tree never collapses. Deterministic in `(doc, count, mix, seed)`.
pub fn edit_stream(doc: &Tree, count: usize, mix: EditMix, seed: u64) -> Vec<Edit> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut working = doc.clone();
    let labels: Vec<Label> = doc.label_set();
    let mut out: Vec<Edit> = Vec::with_capacity(count);
    let mut harmonic = Harmonic::new();
    // Live non-root targets, arena order: later ids are the deepest, most
    // recently inserted nodes — the hot end of the Zipf ranks. Maintained
    // incrementally from the edit receipts (appends for inserts, a retain
    // for deletes), so a draw costs a binary search, not a tree walk.
    let mut candidates: Vec<NodeId> = working.node_ids().skip(1).collect();

    for _ in 0..count {
        if candidates.is_empty() {
            break;
        }
        let rank = harmonic.draw(&mut rng, candidates.len());
        let target = candidates[candidates.len() - 1 - rank];

        let roll = rng.gen_range(0..mix.total() as usize) as u32;
        let kind = if roll < mix.insert {
            0
        } else if roll < mix.insert + mix.delete {
            1
        } else {
            2
        };

        let edit = match kind {
            0 => {
                // Graft a small subtree (1–3 nodes) of workload labels
                // under the target's parent — churn next to hot content.
                let parent = working.parent(target).expect("non-root target");
                let mut graft = Tree::new(labels[rng.gen_range(0..labels.len())]);
                for _ in 0..rng.gen_range(0..=2usize) {
                    graft.add_child(graft.root(), labels[rng.gen_range(0..labels.len())]);
                }
                Edit::InsertSubtree { parent, subtree: graft }
            }
            1 if working.len() > 8 && subtree_size(&working, target) <= 16 => {
                Edit::DeleteSubtree { node: target }
            }
            _ => Edit::Relabel { node: target, label: labels[rng.gen_range(0..labels.len())] },
        };
        let before = working.arena_len();
        let receipt =
            apply_edit(&mut working, &edit).expect("generated edits are valid by construction");
        match receipt {
            xpv_maintain::AppliedEdit::Inserted { nodes, .. } => {
                // Inserted ids are the contiguous arena tail, already in
                // ascending order.
                debug_assert_eq!(working.arena_len(), before + nodes);
                candidates.extend((before..before + nodes).map(|i| NodeId(i as u32)));
            }
            xpv_maintain::AppliedEdit::Deleted { removed, .. } => {
                let dead: std::collections::HashSet<NodeId> = removed.into_iter().collect();
                candidates.retain(|n| !dead.contains(n));
            }
            xpv_maintain::AppliedEdit::Relabeled { .. } => {}
        }
        out.push(edit);
    }
    out
}

/// Like [`edit_stream`], but **clustered**: `locality.hot_percent`% of the
/// edits target one of `locality.hot_subtrees` fixed hot subtrees (the
/// largest depth-2 subtrees of `doc`, so they are pairwise disjoint), with
/// Zipf skew *within* each hot subtree; the remainder draw from the whole
/// document. Deletes never remove a hot root or one of its ancestors, so
/// the clusters persist for the stream's whole length. Deterministic in
/// `(doc, count, mix, locality, seed)` and replayable like `edit_stream`.
pub fn edit_stream_clustered(
    doc: &Tree,
    count: usize,
    mix: EditMix,
    locality: EditLocality,
    seed: u64,
) -> Vec<Edit> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut working = doc.clone();
    let labels: Vec<Label> = doc.label_set();
    let mut out: Vec<Edit> = Vec::with_capacity(count);
    let mut harmonic = Harmonic::new();

    // Hot roots: largest depth-2 subtrees (grandchildren of the root),
    // falling back to depth-1 children on shallow documents. Siblings and
    // cousins, hence pairwise disjoint.
    let depth1: Vec<NodeId> = working.children(working.root()).to_vec();
    let mut pool: Vec<NodeId> = depth1.iter().flat_map(|&c| working.children(c).to_vec()).collect();
    if pool.is_empty() {
        pool = depth1;
    }
    pool.sort_by_key(|&n| std::cmp::Reverse(subtree_size(&working, n)));
    pool.truncate(locality.hot_subtrees as usize);
    let hot_roots: Vec<NodeId> = pool;
    // Ancestors of hot roots (and the roots themselves) are never deleted:
    // removing one would dissolve its cluster mid-stream.
    let mut protected: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
    for &r in &hot_roots {
        let mut v = Some(r);
        while let Some(n) = v {
            protected.insert(n);
            v = working.parent(n);
        }
    }

    let mut candidates: Vec<NodeId> = working.node_ids().skip(1).collect();
    // Per-hot-subtree candidate lists, arena order (hot end last), kept in
    // sync from the edit receipts like the global list.
    let mut hot: Vec<Vec<NodeId>> = hot_roots
        .iter()
        .map(|&r| {
            let mut d = working.descendants_inclusive(r);
            d.sort();
            d
        })
        .collect();

    for _ in 0..count {
        if candidates.is_empty() {
            break;
        }
        let burst = !hot.is_empty() && rng.gen_range(0..100usize) < locality.hot_percent as usize;
        let target = if burst {
            let w = rng.gen_range(0..hot.len());
            let list = if hot[w].is_empty() { &candidates } else { &hot[w] };
            let rank = harmonic.draw(&mut rng, list.len());
            list[list.len() - 1 - rank]
        } else {
            let rank = harmonic.draw(&mut rng, candidates.len());
            candidates[candidates.len() - 1 - rank]
        };

        let roll = rng.gen_range(0..mix.total() as usize) as u32;
        let kind = if roll < mix.insert {
            0
        } else if roll < mix.insert + mix.delete {
            1
        } else {
            2
        };

        let edit = match kind {
            0 => {
                let parent = working.parent(target).expect("non-root target");
                let mut graft = Tree::new(labels[rng.gen_range(0..labels.len())]);
                for _ in 0..rng.gen_range(0..=2usize) {
                    graft.add_child(graft.root(), labels[rng.gen_range(0..labels.len())]);
                }
                Edit::InsertSubtree { parent, subtree: graft }
            }
            1 if working.len() > 8
                && !protected.contains(&target)
                && subtree_size(&working, target) <= 16 =>
            {
                Edit::DeleteSubtree { node: target }
            }
            _ => Edit::Relabel { node: target, label: labels[rng.gen_range(0..labels.len())] },
        };
        let before = working.arena_len();
        let receipt =
            apply_edit(&mut working, &edit).expect("generated edits are valid by construction");
        match receipt {
            xpv_maintain::AppliedEdit::Inserted { parent, nodes, .. } => {
                debug_assert_eq!(working.arena_len(), before + nodes);
                let fresh = (before..before + nodes).map(|i| NodeId(i as u32));
                candidates.extend(fresh.clone());
                // New nodes belong to the hot subtree containing the
                // insertion parent, if any (climb; hot roots are shallow).
                let mut v = Some(parent);
                while let Some(n) = v {
                    if let Some(w) = hot_roots.iter().position(|&r| r == n) {
                        hot[w].extend(fresh);
                        break;
                    }
                    v = working.parent(n);
                }
            }
            xpv_maintain::AppliedEdit::Deleted { removed, .. } => {
                let dead: std::collections::HashSet<NodeId> = removed.into_iter().collect();
                candidates.retain(|n| !dead.contains(n));
                for list in hot.iter_mut() {
                    list.retain(|n| !dead.contains(n));
                }
            }
            xpv_maintain::AppliedEdit::Relabeled { .. } => {}
        }
        out.push(edit);
    }
    out
}

/// Splits a stream into `batches` contiguous chunks (the last may be
/// short) — the shape `apply_edits` consumes.
pub fn edit_batches(stream: &[Edit], batches: usize) -> Vec<Vec<Edit>> {
    let size = stream.len().div_ceil(batches.max(1)).max(1);
    stream.chunks(size).map(|c| c.to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::site_doc;
    use xpv_maintain::apply_edits;

    #[test]
    fn streams_are_deterministic_and_replayable() {
        let doc = site_doc(4, 4, 7);
        let a = edit_stream(&doc, 60, EditMix::default(), 0xE1);
        let b = edit_stream(&doc, 60, EditMix::default(), 0xE1);
        assert_eq!(a.len(), 60);
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "same seed, same stream");
        // Replay from a fresh copy succeeds end to end.
        let mut replay = doc.clone();
        apply_edits(&mut replay, &a).expect("stream replays");
        let mut replay2 = doc.clone();
        apply_edits(&mut replay2, &b).expect("stream replays");
        assert_eq!(replay.canonical_key(), replay2.canonical_key());
    }

    #[test]
    fn mix_weights_are_respected() {
        let doc = site_doc(6, 6, 7);
        let stream = edit_stream(&doc, 300, EditMix::new(1, 0, 0), 9);
        assert!(stream.iter().all(|e| matches!(e, Edit::InsertSubtree { .. })));
        let stream = edit_stream(&doc, 300, EditMix::new(0, 0, 1), 9);
        assert!(stream.iter().all(|e| matches!(e, Edit::Relabel { .. })));
        // A delete-only mix still falls back to relabels for oversized
        // subtrees but must produce a healthy share of deletes.
        let stream = edit_stream(&doc, 300, EditMix::new(0, 1, 0), 9);
        let deletes = stream.iter().filter(|e| matches!(e, Edit::DeleteSubtree { .. })).count();
        assert!(deletes > 100, "only {deletes} deletes out of 300");
    }

    #[test]
    fn edit_targets_are_skewed() {
        let doc = site_doc(8, 8, 7);
        let stream = edit_stream(&doc, 200, EditMix::new(0, 0, 1), 11);
        let mut targets: Vec<u32> = stream
            .iter()
            .map(|e| match e {
                Edit::Relabel { node, .. } => node.0,
                _ => unreachable!("relabel-only mix"),
            })
            .collect();
        let total = targets.len();
        targets.sort();
        targets.dedup();
        assert!(targets.len() < total, "Zipf skew must revisit hot targets");
    }

    #[test]
    fn mix_parses_and_displays() {
        let mix: EditMix = "40:30:30".parse().expect("parses");
        assert_eq!(mix, EditMix::new(40, 30, 30));
        assert_eq!(mix.to_string(), "40:30:30");
        assert!("1:2".parse::<EditMix>().is_err());
        assert!("0:0:0".parse::<EditMix>().is_err());
        assert!("a:b:c".parse::<EditMix>().is_err());
    }

    #[test]
    fn clustered_streams_are_deterministic_and_replayable() {
        let doc = site_doc(6, 6, 7);
        let loc = EditLocality::new(3, 85);
        let a = edit_stream_clustered(&doc, 80, EditMix::default(), loc, 0xC1);
        let b = edit_stream_clustered(&doc, 80, EditMix::default(), loc, 0xC1);
        assert_eq!(a.len(), 80);
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "same seed, same stream");
        let mut replay = doc.clone();
        apply_edits(&mut replay, &a).expect("clustered stream replays");
    }

    #[test]
    fn clustered_streams_concentrate_under_hot_roots() {
        let doc = site_doc(8, 8, 7);
        // Relabel-only keeps every edit's target visible in the stream.
        let stream =
            edit_stream_clustered(&doc, 300, EditMix::new(0, 0, 1), EditLocality::new(2, 100), 3);
        let mut targets: Vec<NodeId> = stream
            .iter()
            .map(|e| match e {
                Edit::Relabel { node, .. } => *node,
                _ => unreachable!("relabel-only mix"),
            })
            .collect();
        targets.sort();
        targets.dedup();
        // Two hot subtrees of a (8, 8)-fanout document cover a small
        // fraction of its nodes; a 100% bursty stream must stay inside.
        let mut roots: Vec<NodeId> =
            doc.children(doc.root()).iter().flat_map(|&c| doc.children(c).to_vec()).collect();
        roots.sort_by_key(|&n| std::cmp::Reverse(doc.descendants_inclusive(n).len()));
        roots.truncate(2);
        let in_hot = |n: NodeId| {
            roots.iter().any(|&r| {
                let mut v = Some(n);
                while let Some(x) = v {
                    if x == r {
                        return true;
                    }
                    v = doc.parent(x);
                }
                false
            })
        };
        // Relabel-only streams never grow the tree, so every target is an
        // original node and ancestry can be checked against `doc`.
        assert!(targets.iter().all(|&n| in_hot(n)), "fully bursty stream escaped its hot subtrees");
        assert!(targets.len() < doc.len() / 4, "hot subtrees must be a small node fraction");
    }

    #[test]
    fn locality_parses_and_displays() {
        let loc: EditLocality = "4:90".parse().expect("parses");
        assert_eq!(loc, EditLocality::new(4, 90));
        assert_eq!(loc.to_string(), "4:90");
        assert_eq!(EditLocality::default(), EditLocality::new(4, 90));
        assert!("4".parse::<EditLocality>().is_err());
        assert!("0:50".parse::<EditLocality>().is_err());
        assert!("4:101".parse::<EditLocality>().is_err());
    }

    #[test]
    fn batches_cover_the_stream() {
        let doc = site_doc(3, 3, 7);
        let stream = edit_stream(&doc, 50, EditMix::default(), 5);
        let batches = edit_batches(&stream, 8);
        assert_eq!(batches.iter().map(Vec::len).sum::<usize>(), 50);
        assert!(batches.len() <= 8);
    }
}
