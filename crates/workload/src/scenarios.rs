//! Synthetic documents with real-world shapes, plus their query/view
//! catalogs.
//!
//! The paper's motivating applications are caching and information
//! integration over document collections like auction sites and
//! bibliographies. We cannot ship XMark or DBLP data, so these generators
//! produce documents with the *same shape* (element hierarchy, fanout
//! skew) at configurable scale — the documented substitution from
//! DESIGN.md §1. Each scenario comes with a catalog of queries and view
//! definitions that exercise the rewriting engine the way the paper's
//! introduction describes (views materialize hot subtrees; queries drill
//! into them).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xpv_model::{Label, Tree};
use xpv_pattern::{parse_xpath, Axis, PatId, Pattern};

use crate::patterns::{PatternGen, PatternGenConfig};

fn l(name: &str) -> Label {
    Label::new(name)
}

fn pat(s: &str) -> Pattern {
    parse_xpath(s).expect("catalog patterns are well-formed")
}

/// An XMark-like auction site: `site/regions*/item*` with descriptions,
/// bidders and categories. `regions` controls the top-level fanout,
/// `items_per_region` the second level; sizes grow linearly.
pub fn site_doc(regions: usize, items_per_region: usize, seed: u64) -> Tree {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Tree::new(l("site"));
    let root = t.root();
    let cats = t.add_child(root, l("categories"));
    for _ in 0..(regions.max(1)) {
        let c = t.add_child(cats, l("category"));
        t.add_child(c, l("name"));
    }
    for _ in 0..regions {
        let region = t.add_child(root, l("region"));
        for _ in 0..items_per_region {
            let item = t.add_child(region, l("item"));
            t.add_child(item, l("name"));
            let desc = t.add_child(item, l("description"));
            let para = t.add_child(desc, l("parlist"));
            for _ in 0..rng.gen_range(1..=3) {
                t.add_child(para, l("listitem"));
            }
            if rng.gen_bool(0.6) {
                let bids = t.add_child(item, l("bids"));
                for _ in 0..rng.gen_range(1..=4) {
                    let bid = t.add_child(bids, l("bid"));
                    t.add_child(bid, l("bidder"));
                    t.add_child(bid, l("price"));
                }
            }
            if rng.gen_bool(0.3) {
                let ship = t.add_child(item, l("shipping"));
                t.add_child(ship, l("cost"));
            }
        }
    }
    t
}

/// A DBLP-like bibliography: `bib/(article|inproceedings)*` with authors,
/// titles, venues and optional cite lists.
pub fn bib_doc(publications: usize, seed: u64) -> Tree {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Tree::new(l("bib"));
    let root = t.root();
    for _ in 0..publications {
        let kind = if rng.gen_bool(0.5) { "article" } else { "inproceedings" };
        let p = t.add_child(root, l(kind));
        t.add_child(p, l("title"));
        for _ in 0..rng.gen_range(1..=4) {
            let a = t.add_child(p, l("author"));
            t.add_child(a, l("name"));
        }
        let venue = t.add_child(p, l("venue"));
        t.add_child(venue, l("year"));
        if rng.gen_bool(0.4) {
            let cites = t.add_child(p, l("cites"));
            for _ in 0..rng.gen_range(1..=3) {
                t.add_child(cites, l("cite"));
            }
        }
    }
    t
}

/// A named query/view workload over a scenario document.
#[derive(Clone, Debug)]
pub struct Catalog {
    /// Scenario name (`site` or `bib`).
    pub name: &'static str,
    /// View definitions to materialize, with names.
    pub views: Vec<(&'static str, Pattern)>,
    /// Queries to answer, with names.
    pub queries: Vec<(&'static str, Pattern)>,
}

/// The auction-site workload: views materialize the hot `item` subtrees;
/// queries drill into names, bids and descriptions.
pub fn site_catalog() -> Catalog {
    Catalog {
        name: "site",
        views: vec![
            ("items", pat("site/region/item")),
            ("all_bids", pat("site//bid")),
            ("descriptions", pat("site/region/item/description")),
        ],
        queries: vec![
            ("item_names", pat("site/region/item/name")),
            ("bid_prices", pat("site//bid/price")),
            ("item_listitems", pat("site/region/item/description/parlist/listitem")),
            ("bidders_of_shipped", pat("site/region/item[shipping]//bidder")),
            ("priced_bidders", pat("site//bid[price]/bidder")),
            ("categories", pat("site/categories/category/name")),
        ],
    }
}

/// An **overlapping-view** workload over the auction site: the views pin
/// *different* predicate branches on the item node (above their shared
/// `name` output), so no single view can rewrite the joint queries — only
/// pairs or triples, through their node-set **intersection**, can. The
/// catalog mixes intersection-only queries with single-view hits and
/// direct-only queries, so Zipf streams over it exercise every route kind
/// (`ViaView`, `Intersect`, `Direct`).
pub fn site_intersect_catalog() -> Catalog {
    Catalog {
        name: "site_intersect",
        views: vec![
            ("bid_names", pat("site/region/item[bids]/name")),
            ("ship_names", pat("site/region/item[shipping]/name")),
            ("desc_names", pat("site/region/item[description]/name")),
        ],
        queries: vec![
            // Hot rank: servable only by the {bids, shipping} pair.
            ("bid_ship_names", pat("site/region/item[bids][shipping]/name")),
            // Single-view hit on `bid_names`.
            ("bid_names_only", pat("site/region/item[bids]/name")),
            // Needs all three views (no pair covers three predicates).
            ("triple_names", pat("site/region/item[bids][shipping][description]/name")),
            // Another pair, deeper compensation work.
            ("ship_desc_names", pat("site/region/item[shipping][description]/name")),
            // No view and no intersection applies: direct evaluation.
            ("shipping_costs", pat("site/region/item/shipping/cost")),
            ("all_item_names", pat("site/region/item/name")),
        ],
    }
}

/// Splits a query into `parts` **overlapping views**: each view keeps the
/// full selection spine of `p` but only a share of its predicate branches,
/// assigned round-robin from a seeded shuffle. The union of the shares is
/// the whole branch set, so the views' exact intersection pattern is
/// equivalent to `p` — a pool that answers `p` jointly even though each
/// member is individually weaker.
///
/// Returns `None` when `p` cannot participate in exact intersections
/// (a descendant edge below the root edge of the selection path), when it
/// has no predicate branches to distribute, or when `parts < 2`.
pub fn split_into_overlapping_views(p: &Pattern, parts: usize, seed: u64) -> Option<Vec<Pattern>> {
    if parts < 2 {
        return None;
    }
    let path = p.selection_path();
    if path[1..].iter().skip(1).any(|&n| p.axis(n) != Axis::Child) {
        return None;
    }
    // Branch roots per selection position.
    let mut branches: Vec<(usize, PatId)> = Vec::new();
    for (j, &sel) in path.iter().enumerate() {
        for &c in p.children(sel) {
            if path.get(j + 1) != Some(&c) {
                branches.push((j, c));
            }
        }
    }
    if branches.is_empty() {
        return None;
    }
    // Seeded shuffle, then round-robin assignment.
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..branches.len()).rev() {
        branches.swap(i, rng.gen_range(0..=i));
    }
    let mut views = Vec::with_capacity(parts);
    for part in 0..parts {
        let mut v = Pattern::single(p.test(path[0]));
        let mut spine = vec![v.root()];
        for &n in &path[1..] {
            let prev = *spine.last().expect("spine nonempty");
            spine.push(v.add_child(prev, p.axis(n), p.test(n)));
        }
        v.set_output(spine[path.len() - 1]);
        let mut scratch: Vec<(PatId, PatId)> = Vec::new();
        for (i, &(j, branch)) in branches.iter().enumerate() {
            if i % parts == part {
                p.copy_subtree_into(branch, &mut v, spine[j], p.axis(branch), &mut scratch);
            }
        }
        views.push(v);
    }
    Some(views)
}

/// A large pool of views **derived** from the queries of several
/// catalogs: `per_query` prefix views per query, possibly
/// wildcard-generalized ([`crate::PatternGen::derived_view`]), named
/// `{catalog}_{query}_v{j}`. This is the plan-miss fast-path workload:
/// against any one query, most of the pool is provably useless (foreign
/// labels, wrong depth, clashing output test, `//` spine the query
/// lacks), so a cold planner pays one containment decision per candidate
/// unless the signature filter (`xpv_pattern::signature`) dismisses them
/// first.
pub fn derived_view_pool(
    catalogs: &[&Catalog],
    per_query: usize,
    seed: u64,
) -> Vec<(String, Pattern)> {
    let mut gen = PatternGen::new(PatternGenConfig::default(), seed);
    let mut pool = Vec::new();
    for catalog in catalogs {
        for (qname, q) in &catalog.queries {
            for j in 0..per_query {
                pool.push((format!("{}_{qname}_v{j}", catalog.name), gen.derived_view(q)));
            }
        }
    }
    pool
}

/// The bibliography workload.
pub fn bib_catalog() -> Catalog {
    Catalog {
        name: "bib",
        views: vec![("articles", pat("bib/article")), ("all_authors", pat("bib/*/author"))],
        queries: vec![
            ("article_titles", pat("bib/article/title")),
            ("author_names", pat("bib/*/author/name")),
            ("cited_articles", pat("bib/article[cites/cite]/title")),
            ("venues", pat("bib/article/venue/year")),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_doc_scales_linearly() {
        let small = site_doc(2, 3, 1);
        let large = site_doc(4, 6, 1);
        assert!(large.len() > small.len() * 2);
        assert_eq!(small.label(small.root()).name(), "site");
    }

    #[test]
    fn site_doc_deterministic() {
        assert!(site_doc(3, 4, 7).structurally_eq(&site_doc(3, 4, 7)));
    }

    #[test]
    fn bib_doc_has_expected_shape() {
        let t = bib_doc(10, 3);
        let pubs = t.children(t.root()).len();
        assert_eq!(pubs, 10);
        // Every publication has a title child.
        for &p in t.children(t.root()) {
            assert!(t.children(p).iter().any(|&c| t.label(c).name() == "title"));
        }
    }

    #[test]
    fn intersect_catalog_views_overlap_but_differ() {
        let cat = site_intersect_catalog();
        assert_eq!(cat.views.len(), 3);
        // Pairwise structurally distinct, same selection depth (the
        // precondition for exact intersections).
        for (i, (_, a)) in cat.views.iter().enumerate() {
            assert_eq!(a.depth(), 3);
            for (_, b) in &cat.views[i + 1..] {
                assert!(!a.structurally_eq(b));
            }
        }
        // The joint queries really are nonempty on the scenario document.
        let doc = site_doc(6, 8, 11);
        let joint = &cat.queries[0].1;
        assert!(!xpv_semantics::evaluate(joint, &doc).is_empty());
    }

    #[test]
    fn split_views_jointly_reconstruct_the_query() {
        let p = pat("site/region[item]/item[bids][shipping]/name");
        let views = split_into_overlapping_views(&p, 2, 7).expect("splits");
        assert_eq!(views.len(), 2);
        let doc = site_doc(6, 10, 3);
        // Each view is weaker (or equal), and their node-set intersection
        // equals the query's answers.
        let direct = xpv_semantics::evaluate(&p, &doc);
        assert!(!direct.is_empty(), "the scenario document must answer the joint query");
        let mut joint: Option<Vec<xpv_model::NodeId>> = None;
        for v in &views {
            let nodes = xpv_semantics::evaluate(v, &doc);
            assert!(direct.iter().all(|n| nodes.contains(n)), "view must cover the query");
            joint = Some(match joint {
                None => nodes,
                Some(j) => j.into_iter().filter(|n| nodes.contains(n)).collect(),
            });
        }
        assert_eq!(joint.expect("two views"), direct);
    }

    #[test]
    fn split_views_reject_unsuitable_shapes() {
        assert!(split_into_overlapping_views(&pat("a[b][c]/d"), 1, 0).is_none());
        assert!(split_into_overlapping_views(&pat("a/b/c"), 2, 0).is_none(), "no branches");
        assert!(
            split_into_overlapping_views(&pat("a/b[x]//c[y]"), 2, 0).is_none(),
            "descendant edge below the root edge"
        );
        // The root edge itself may be descendant.
        assert!(split_into_overlapping_views(&pat("a//b[x][y]"), 2, 0).is_some());
    }

    #[test]
    fn catalogs_parse_and_apply() {
        let doc = site_doc(3, 4, 11);
        let cat = site_catalog();
        for (name, q) in &cat.queries {
            // All catalog queries must be evaluable (some may be empty on
            // small documents, but item_names never is).
            let res = xpv_semantics::evaluate(q, &doc);
            if *name == "item_names" {
                assert_eq!(res.len(), 12);
            }
        }
        let bib = bib_doc(5, 2);
        for (_, q) in &bib_catalog().queries {
            let _ = xpv_semantics::evaluate(q, &bib);
        }
    }
}
