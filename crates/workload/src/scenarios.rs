//! Synthetic documents with real-world shapes, plus their query/view
//! catalogs.
//!
//! The paper's motivating applications are caching and information
//! integration over document collections like auction sites and
//! bibliographies. We cannot ship XMark or DBLP data, so these generators
//! produce documents with the *same shape* (element hierarchy, fanout
//! skew) at configurable scale — the documented substitution from
//! DESIGN.md §1. Each scenario comes with a catalog of queries and view
//! definitions that exercise the rewriting engine the way the paper's
//! introduction describes (views materialize hot subtrees; queries drill
//! into them).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xpv_model::{Label, Tree};
use xpv_pattern::{parse_xpath, Pattern};

fn l(name: &str) -> Label {
    Label::new(name)
}

fn pat(s: &str) -> Pattern {
    parse_xpath(s).expect("catalog patterns are well-formed")
}

/// An XMark-like auction site: `site/regions*/item*` with descriptions,
/// bidders and categories. `regions` controls the top-level fanout,
/// `items_per_region` the second level; sizes grow linearly.
pub fn site_doc(regions: usize, items_per_region: usize, seed: u64) -> Tree {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Tree::new(l("site"));
    let root = t.root();
    let cats = t.add_child(root, l("categories"));
    for _ in 0..(regions.max(1)) {
        let c = t.add_child(cats, l("category"));
        t.add_child(c, l("name"));
    }
    for _ in 0..regions {
        let region = t.add_child(root, l("region"));
        for _ in 0..items_per_region {
            let item = t.add_child(region, l("item"));
            t.add_child(item, l("name"));
            let desc = t.add_child(item, l("description"));
            let para = t.add_child(desc, l("parlist"));
            for _ in 0..rng.gen_range(1..=3) {
                t.add_child(para, l("listitem"));
            }
            if rng.gen_bool(0.6) {
                let bids = t.add_child(item, l("bids"));
                for _ in 0..rng.gen_range(1..=4) {
                    let bid = t.add_child(bids, l("bid"));
                    t.add_child(bid, l("bidder"));
                    t.add_child(bid, l("price"));
                }
            }
            if rng.gen_bool(0.3) {
                let ship = t.add_child(item, l("shipping"));
                t.add_child(ship, l("cost"));
            }
        }
    }
    t
}

/// A DBLP-like bibliography: `bib/(article|inproceedings)*` with authors,
/// titles, venues and optional cite lists.
pub fn bib_doc(publications: usize, seed: u64) -> Tree {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Tree::new(l("bib"));
    let root = t.root();
    for _ in 0..publications {
        let kind = if rng.gen_bool(0.5) { "article" } else { "inproceedings" };
        let p = t.add_child(root, l(kind));
        t.add_child(p, l("title"));
        for _ in 0..rng.gen_range(1..=4) {
            let a = t.add_child(p, l("author"));
            t.add_child(a, l("name"));
        }
        let venue = t.add_child(p, l("venue"));
        t.add_child(venue, l("year"));
        if rng.gen_bool(0.4) {
            let cites = t.add_child(p, l("cites"));
            for _ in 0..rng.gen_range(1..=3) {
                t.add_child(cites, l("cite"));
            }
        }
    }
    t
}

/// A named query/view workload over a scenario document.
#[derive(Clone, Debug)]
pub struct Catalog {
    /// Scenario name (`site` or `bib`).
    pub name: &'static str,
    /// View definitions to materialize, with names.
    pub views: Vec<(&'static str, Pattern)>,
    /// Queries to answer, with names.
    pub queries: Vec<(&'static str, Pattern)>,
}

/// The auction-site workload: views materialize the hot `item` subtrees;
/// queries drill into names, bids and descriptions.
pub fn site_catalog() -> Catalog {
    Catalog {
        name: "site",
        views: vec![
            ("items", pat("site/region/item")),
            ("all_bids", pat("site//bid")),
            ("descriptions", pat("site/region/item/description")),
        ],
        queries: vec![
            ("item_names", pat("site/region/item/name")),
            ("bid_prices", pat("site//bid/price")),
            ("item_listitems", pat("site/region/item/description/parlist/listitem")),
            ("bidders_of_shipped", pat("site/region/item[shipping]//bidder")),
            ("priced_bidders", pat("site//bid[price]/bidder")),
            ("categories", pat("site/categories/category/name")),
        ],
    }
}

/// The bibliography workload.
pub fn bib_catalog() -> Catalog {
    Catalog {
        name: "bib",
        views: vec![("articles", pat("bib/article")), ("all_authors", pat("bib/*/author"))],
        queries: vec![
            ("article_titles", pat("bib/article/title")),
            ("author_names", pat("bib/*/author/name")),
            ("cited_articles", pat("bib/article[cites/cite]/title")),
            ("venues", pat("bib/article/venue/year")),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_doc_scales_linearly() {
        let small = site_doc(2, 3, 1);
        let large = site_doc(4, 6, 1);
        assert!(large.len() > small.len() * 2);
        assert_eq!(small.label(small.root()).name(), "site");
    }

    #[test]
    fn site_doc_deterministic() {
        assert!(site_doc(3, 4, 7).structurally_eq(&site_doc(3, 4, 7)));
    }

    #[test]
    fn bib_doc_has_expected_shape() {
        let t = bib_doc(10, 3);
        let pubs = t.children(t.root()).len();
        assert_eq!(pubs, 10);
        // Every publication has a title child.
        for &p in t.children(t.root()) {
            assert!(t.children(p).iter().any(|&c| t.label(c).name() == "title"));
        }
    }

    #[test]
    fn catalogs_parse_and_apply() {
        let doc = site_doc(3, 4, 11);
        let cat = site_catalog();
        for (name, q) in &cat.queries {
            // All catalog queries must be evaluable (some may be empty on
            // small documents, but item_names never is).
            let res = xpv_semantics::evaluate(q, &doc);
            if *name == "item_names" {
                assert_eq!(res.len(), 12);
            }
        }
        let bib = bib_doc(5, 2);
        for (_, q) in &bib_catalog().queries {
            let _ = xpv_semantics::evaluate(q, &bib);
        }
    }
}
