//! Seeded random pattern generation, fragment-restricted.
//!
//! The theorem-validation experiments (EXPERIMENTS.md, E-T1/E-T5) need large
//! supplies of patterns with controllable shape: selection depth, branching,
//! wildcard/descendant density, and fragment restrictions matching the
//! paper's sub-fragments. Everything is driven by an explicit seed so every
//! experiment is reproducible bit for bit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xpv_model::Label;
use xpv_pattern::{Axis, NodeTest, PatId, Pattern};

/// Which fragment the generator must stay inside.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fragment {
    /// The full fragment `XP{//,[],*}`.
    Full,
    /// `XP{//,[]}` — no wildcards.
    NoWildcard,
    /// `XP{[],*}` — no descendant edges.
    NoDescendant,
    /// `XP{//,*}` — no branches (linear patterns with the output at the
    /// deepest node).
    NoBranch,
}

/// Configuration for [`PatternGen`].
#[derive(Clone, Debug)]
pub struct PatternGenConfig {
    /// Selection depth is drawn uniformly from this inclusive range.
    pub depth: (usize, usize),
    /// Probability that a selection edge is a descendant edge.
    pub descendant_prob: f64,
    /// Probability that a node test is the wildcard.
    pub wildcard_prob: f64,
    /// Probability of attaching a branch at each selection node.
    pub branch_prob: f64,
    /// Maximum nodes per attached branch.
    pub max_branch_size: usize,
    /// Number of distinct labels (`l0`, `l1`, …).
    pub label_count: usize,
    /// Fragment restriction.
    pub fragment: Fragment,
}

impl Default for PatternGenConfig {
    fn default() -> Self {
        PatternGenConfig {
            depth: (1, 4),
            descendant_prob: 0.4,
            wildcard_prob: 0.35,
            branch_prob: 0.5,
            max_branch_size: 3,
            label_count: 4,
            fragment: Fragment::Full,
        }
    }
}

/// A reproducible random pattern generator.
#[derive(Clone, Debug)]
pub struct PatternGen {
    cfg: PatternGenConfig,
    rng: StdRng,
    labels: Vec<Label>,
}

impl PatternGen {
    /// Creates a generator from a config and a seed.
    pub fn new(cfg: PatternGenConfig, seed: u64) -> PatternGen {
        let labels = workload_labels(cfg.label_count);
        PatternGen { cfg, rng: StdRng::seed_from_u64(seed), labels }
    }

    fn axis(&mut self) -> Axis {
        let allow_desc = self.cfg.fragment != Fragment::NoDescendant;
        if allow_desc && self.rng.gen_bool(self.cfg.descendant_prob) {
            Axis::Descendant
        } else {
            Axis::Child
        }
    }

    fn test(&mut self) -> NodeTest {
        let allow_wild = self.cfg.fragment != Fragment::NoWildcard;
        if allow_wild && self.rng.gen_bool(self.cfg.wildcard_prob) {
            NodeTest::Wildcard
        } else {
            let i = self.rng.gen_range(0..self.labels.len());
            NodeTest::Label(self.labels[i])
        }
    }

    fn attach_branch(&mut self, p: &mut Pattern, at: PatId) {
        let size = self.rng.gen_range(1..=self.cfg.max_branch_size);
        let mut nodes = vec![at];
        for _ in 0..size {
            let parent = nodes[self.rng.gen_range(0..nodes.len())];
            let axis = self.axis();
            let test = self.test();
            let id = p.add_child(parent, axis, test);
            nodes.push(id);
        }
    }

    /// Draws one pattern.
    pub fn pattern(&mut self) -> Pattern {
        let depth = self.rng.gen_range(self.cfg.depth.0..=self.cfg.depth.1);
        let mut p = Pattern::single(self.test());
        let mut cur = p.root();
        let mut spine = vec![cur];
        for _ in 0..depth {
            let axis = self.axis();
            let test = self.test();
            cur = p.add_child(cur, axis, test);
            spine.push(cur);
        }
        p.set_output(cur);
        if self.cfg.fragment != Fragment::NoBranch {
            // Attach branches to selection nodes other than the output (the
            // output may get one too; it stays a valid pattern).
            for node in spine {
                if self.rng.gen_bool(self.cfg.branch_prob) {
                    self.attach_branch(&mut p, node);
                }
            }
        }
        p
    }

    /// Draws a view correlated with `p`: a prefix `P≤k` for a random
    /// `k ≤ depth(P)`, optionally generalized by turning some labels into
    /// wildcards and some child edges into descendant edges. Correlated
    /// views make rewritability reasonably likely, which the experiments
    /// need (uncorrelated random pairs almost never admit rewritings).
    pub fn derived_view(&mut self, p: &Pattern) -> Pattern {
        let d = p.depth();
        let k = self.rng.gen_range(0..=d);
        let mut v = p.upper_pattern_leq(k);
        // Generalize some tests to wildcards (keeps V ⊒-ish of P's prefix).
        if self.cfg.fragment != Fragment::NoWildcard {
            for n in v.node_ids().collect::<Vec<PatId>>() {
                if !v.test(n).is_wildcard() && self.rng.gen_bool(0.2) {
                    // Never generalize the output test: rewritability gates
                    // on it matching P's k-node exactly in the common case.
                    if n != v.output() {
                        v.set_test(n, NodeTest::Wildcard);
                    }
                }
            }
        }
        v
    }

    /// Draws a (query, view) instance by generating a pattern and a
    /// correlated view.
    pub fn instance(&mut self) -> (Pattern, Pattern) {
        let p = self.pattern();
        let v = self.derived_view(&p);
        (p, v)
    }
}

/// The deterministic label universe `l0..l{n-1}` used by all generators.
pub fn workload_labels(n: usize) -> Vec<Label> {
    (0..n).map(|i| Label::new(&format!("l{i}"))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpv_pattern::FragmentFlags;

    #[test]
    fn generation_is_deterministic() {
        let cfg = PatternGenConfig::default();
        let mut g1 = PatternGen::new(cfg.clone(), 42);
        let mut g2 = PatternGen::new(cfg, 42);
        for _ in 0..20 {
            assert!(g1.pattern().structurally_eq(&g2.pattern()));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = PatternGenConfig::default();
        let mut g1 = PatternGen::new(cfg.clone(), 1);
        let mut g2 = PatternGen::new(cfg, 2);
        let same = (0..20).filter(|_| g1.pattern().structurally_eq(&g2.pattern())).count();
        assert!(same < 20, "independent seeds should diverge");
    }

    #[test]
    fn depth_bounds_respected() {
        let cfg = PatternGenConfig { depth: (2, 5), ..Default::default() };
        let mut g = PatternGen::new(cfg, 7);
        for _ in 0..50 {
            let d = g.pattern().depth();
            assert!((2..=5).contains(&d), "depth {d} out of range");
        }
    }

    #[test]
    fn fragment_restrictions_hold() {
        for (fragment, check) in
            [(Fragment::NoWildcard, 0usize), (Fragment::NoDescendant, 1), (Fragment::NoBranch, 2)]
        {
            let cfg = PatternGenConfig { fragment, ..Default::default() };
            let mut g = PatternGen::new(cfg, 11);
            for _ in 0..50 {
                let p = g.pattern();
                let f = FragmentFlags::of(&p);
                match check {
                    0 => assert!(!f.wildcard, "wildcard leaked into {p}"),
                    1 => assert!(!f.descendant, "descendant leaked into {p}"),
                    _ => assert!(!f.branching, "branch leaked into {p}"),
                }
            }
        }
    }

    #[test]
    fn derived_views_are_shallower_and_gated_correctly() {
        let mut g = PatternGen::new(PatternGenConfig::default(), 23);
        for _ in 0..50 {
            let (p, v) = g.instance();
            assert!(v.depth() <= p.depth());
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(workload_labels(3), workload_labels(3));
        assert_eq!(workload_labels(2)[1].name(), "l1");
    }
}
