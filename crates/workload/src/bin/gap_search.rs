//! One-off search tool: find containments in XP{//,[],*} that hold without
//! a homomorphism witness (used to pin the `hom_gap_instance` gadget).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xpv_pattern::{Axis, NodeTest, Pattern};

fn random_pattern(rng: &mut StdRng, max_nodes: usize) -> Pattern {
    let labels = ["a", "b", "c"];
    let test = |rng: &mut StdRng| {
        if rng.gen_bool(0.45) {
            NodeTest::Wildcard
        } else {
            NodeTest::label(labels[rng.gen_range(0..labels.len())])
        }
    };
    let mut p = Pattern::single(test(rng));
    let n = rng.gen_range(2..=max_nodes);
    for _ in 1..n {
        let ids: Vec<_> = p.node_ids().collect();
        let parent = ids[rng.gen_range(0..ids.len())];
        let axis = if rng.gen_bool(0.4) { Axis::Descendant } else { Axis::Child };
        p.add_child(parent, axis, test(rng));
    }
    let ids: Vec<_> = p.node_ids().collect();
    let out = ids[rng.gen_range(0..ids.len())];
    p.set_output(out);
    p
}

fn main() {
    let mut rng =
        StdRng::seed_from_u64(std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1));
    let mut found = 0;
    for trial in 0u64..5_000_000 {
        let p1 = random_pattern(&mut rng, 7);
        let p2 = random_pattern(&mut rng, 6);
        // Cheap necessary prefilters to keep the expensive test rare.
        if p1.depth() < p2.depth() {
            continue;
        }
        if xpv_semantics::homomorphism_exists(&p2, &p1, xpv_semantics::HomMode::RootAnchored) {
            continue;
        }
        if xpv_semantics::contained(&p1, &p2) {
            println!("GAP (trial {trial}):\n  P1 = {p1}\n  P2 = {p2}");
            found += 1;
            if found >= 8 {
                return;
            }
        }
    }
    println!("no gap found");
}
