//! Adversarial pattern families.
//!
//! The complexity experiments need families where the cheap machinery fails
//! by construction:
//!
//! * [`hom_gap_instance`] — containment holds but **no homomorphism**
//!   witnesses it, forcing the canonical-model procedure. These exist only
//!   in the full fragment (Miklau–Suciu), and ours isolates the root cause:
//!   a descendant edge semantically guarantees an initial *child* step
//!   (`a//b` implies "the root has a child"), which a homomorphism cannot
//!   use because child edges of the container must map onto child edges of
//!   the containee. This is exactly the "limited form of disjunction" the
//!   paper's introduction attributes to the `//`/`[]`/`*` interplay.
//! * [`conp_stress_instance`] — many descendant edges on the contained side
//!   blow the canonical-model count up to `bound^m` (the coNP exponential).
//! * [`no_condition_instance`] — the certificate-free zone: instances where
//!   none of the paper's completeness conditions applies, exercising the
//!   planner's honest `Unknown` path (wildcard spines, branching unstable
//!   suffixes, a descendant edge deeper than the view's).
//!
//! The `gap_search` binary in this crate is the randomized search tool that
//! found (and the test suite re-verifies) the homomorphism gap.

use xpv_pattern::{parse_xpath, Pattern};

fn pat(s: &str) -> Pattern {
    parse_xpath(s).expect("adversarial patterns are well-formed")
}

/// A containment `P1 ⊑ P2` in `XP{//,[],*}` that holds with **no
/// homomorphism** from `P2` to `P1`, scalable by `n ≥ 1`:
///
/// ```text
/// P1(n) = a/*^(n-1)//b        (child chain of n-1 wildcards, then //b)
/// P2(n) = *[*^n-chain]//b     (branch: rigid child chain of n wildcards)
/// ```
///
/// *Containment*: in any model of `P1`, the path from the root to the `b`
/// witness has at least `n` edges, and every path in a tree is a child
/// chain, so the root has a rigid child chain of length `n` — `P2`'s branch
/// is satisfied, and its `//b` spine reuses `P1`'s witness.
///
/// *No homomorphism*: `P2`'s branch needs `n` consecutive child edges in
/// `P1`, but `P1` only has `n-1` before its descendant edge.
///
/// For `n = 1` this is the minimal gap `a//b ⊑ *[*]//b`.
pub fn hom_gap_instance(n: usize) -> (Pattern, Pattern) {
    assert!(n >= 1, "gap family is defined for n >= 1");
    let p1 = pat(&format!("a{}//b", "/*".repeat(n - 1)));
    let chain = format!("*{}", "/*".repeat(n - 1));
    let p2 = pat(&format!("*[{chain}]//b"));
    (p1, p2)
}

/// Patterns whose containment test must enumerate `bound^m` canonical
/// models: `m` descendant edges on the contained side (`P1`) and a rigid
/// wildcard chain of length `chain` on the container side (`P2`) that pushes
/// the per-edge expansion bound up. The containment holds, and the hom fast
/// path succeeds — disable it (`ContainmentOptions::hom_fast_path = false`)
/// to measure the canonical loop, as the ablation benchmark does.
pub fn conp_stress_instance(m: usize, chain: usize) -> (Pattern, Pattern) {
    let mut p1 = String::from("a");
    for _ in 0..m {
        p1.push_str("//x");
    }
    p1.push_str("/z");
    let mut p2 = String::from("a");
    for _ in 0..chain.max(1) {
        p2.push_str("/*");
    }
    p2.push_str("//z");
    (pat(&p1), pat(&p2))
}

/// The certificate-free instance family (cf. the planner tests): none of the
/// paper's completeness conditions applies. `segments` scales the number of
/// decorated wildcard spine segments.
///
/// ```text
/// P(s) = a//(*[*/m]/)^s *[*/m]//*[m]      V(s) = a//(*/)^s *
/// ```
pub fn no_condition_instance(segments: usize) -> (Pattern, Pattern) {
    let s = segments.max(1);
    let seg = "*[*/m]/".repeat(s);
    let p = pat(&format!("a//{seg}*[*/m]//*[m]"));
    let v = pat(&format!("a//{}*", "*/".repeat(s)));
    (p, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpv_semantics::{contained, homomorphism_exists, HomMode};

    #[test]
    fn hom_gap_is_genuine() {
        for n in 1..=3 {
            let (p1, p2) = hom_gap_instance(n);
            assert!(contained(&p1, &p2), "containment must hold for n={n}: {p1} vs {p2}");
            assert!(
                !homomorphism_exists(&p2, &p1, HomMode::RootAnchored),
                "no homomorphism may exist for n={n}: {p1} vs {p2}"
            );
        }
    }

    #[test]
    fn hom_gap_minimal_instance_shape() {
        let (p1, p2) = hom_gap_instance(1);
        assert_eq!(p1.to_string(), "a//b");
        assert_eq!(p2.to_string(), "*[*]//b");
    }

    #[test]
    fn hom_gap_direction_is_strict() {
        // The reverse containment must NOT hold (P2 has a wildcard root).
        let (p1, p2) = hom_gap_instance(2);
        assert!(!contained(&p2, &p1));
    }

    #[test]
    fn conp_stress_has_many_models() {
        let (p1, p2) = conp_stress_instance(3, 2);
        let bound = xpv_semantics::expansion_bound(&p2);
        let models = xpv_semantics::CanonicalModels::new(&p1, bound).count_models();
        assert!(models >= 7u128.pow(3), "expected many models, got {models}");
    }

    #[test]
    fn conp_stress_containment_holds() {
        for (m, chain) in [(1, 1), (2, 2), (3, 2)] {
            let (p1, p2) = conp_stress_instance(m, chain);
            assert!(contained(&p1, &p2), "containment must hold for m={m}, chain={chain}");
        }
    }

    #[test]
    fn no_condition_instances_parse_and_gate() {
        for segments in 1..=3 {
            let (p, v) = no_condition_instance(segments);
            assert!(v.depth() <= p.depth());
            // The k-node of P and out(V) are both wildcards: label gates stay
            // open, so only the conditions (absent) or brute force can decide.
            assert!(p.test(p.k_node(v.depth())).is_wildcard());
            assert!(v.test(v.output()).is_wildcard());
        }
    }
}
