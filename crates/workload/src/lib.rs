//! # xpv-workload — generators for the reproduction experiments
//!
//! Seeded, reproducible workload generation for the `xpath-views` project:
//!
//! * [`PatternGen`] — random patterns with fragment restrictions
//!   ([`Fragment`]) and correlated (query, view) instances;
//! * [`TreeGen`] — random documents for falsification and scaling;
//! * [`site_doc`] / [`bib_doc`] — XMark/DBLP-shaped synthetic documents with
//!   query/view catalogs ([`site_catalog`], [`bib_catalog`], and the
//!   overlapping-view [`site_intersect_catalog`] whose joint queries only
//!   multi-view intersections can serve; [`split_into_overlapping_views`]
//!   generates such pools from any query);
//! * [`adversarial`] — hom-gap, coNP-stress and certificate-free families;
//! * [`zipf`] — Zipf-skewed query streams over the catalogs (the regime the
//!   throughput benches and the serving front-end measure);
//! * [`edits`] — Zipf-skewed, replayable document **edit streams** over a
//!   configurable insert/delete/relabel mix (the update-bench workload);
//! * [`socket_load`] — a wire-protocol load generator over `xpv-net`
//!   client connections (the socket half of `xpv serve-bench`'s
//!   transport ablation).

pub mod adversarial;
pub mod edits;
pub mod patterns;
pub mod scenarios;
pub mod socket_load;
pub mod trees;
pub mod zipf;

pub use adversarial::{conp_stress_instance, hom_gap_instance, no_condition_instance};
pub use edits::{edit_batches, edit_stream, edit_stream_clustered, EditLocality, EditMix};
pub use patterns::{workload_labels, Fragment, PatternGen, PatternGenConfig};
pub use scenarios::{
    bib_catalog, bib_doc, derived_view_pool, site_catalog, site_doc, site_intersect_catalog,
    split_into_overlapping_views, Catalog,
};
pub use socket_load::{run_socket_load, SocketLoadReport};
pub use trees::{TreeGen, TreeGenConfig};
pub use zipf::{catalog_zipf_stream, zipf_indices, zipf_stream};
