//! # xpv-intersect — rewriting queries over view **intersections**
//!
//! The source paper's open problem 5 asks for rewritings that combine
//! *several* views. Following Cautis, Deutsch, Ileana & Onose (*Rewriting
//! XPath Queries using View Intersections: Tractability versus
//! Completeness*), this crate answers a query from the **node-set
//! intersection** of a small subset of materialized views: a pool in which
//! no single view suffices can still serve the query jointly.
//!
//! The pipeline:
//!
//! 1. **Subset selection** ([`plan_intersection_in`]): enumerate
//!    merge-compatible pairs/triples of pool views (equal selection depth,
//!    child-only spines below the root edge), cheapest subsets first, under
//!    a configurable budget ([`IntersectConfig`]).
//! 2. **Anchor construction**: each subset's views are merged into the
//!    *exact intersection pattern* `M` ([`xpv_pattern::intersect_patterns`])
//!    with `M(t) = ∩ Vi(t)` on every document — `M` is the anchor the
//!    rewriting is planned against. Subsets whose anchor collapses onto a
//!    single participant (`Vi ⊑ M`, decided by the shared
//!    [`xpv_semantics::ContainmentOracle`], hence memoized) are skipped as
//!    redundant: the single-view planner already covers them.
//! 3. **Compensation planning**: the single-view decision procedure
//!    ([`xpv_core::PlanningSession::decide`]) plans `p` against `M`. A
//!    verified rewriting becomes the [`IntersectAnswer::compensation`].
//! 4. **Evaluation**: the compensation is evaluated **anchored on the
//!    node-set intersection** of the participants — virtually via
//!    [`xpv_model::BitSet`] intersection of `NodeId` sets
//!    ([`answer_intersection_virtual`]), or on materialized subtree copies
//!    via canonical-key intersection
//!    ([`answer_intersection_materialized`]).
//!
//! ## Soundness / completeness contract
//!
//! * **Soundness is unconditional**: an [`IntersectAnswer`] with
//!   `equivalent = true` satisfies `R ◦ M ≡ P` where `M(t) = ∩ Vi(t)`, so
//!   the anchored evaluation returns **exactly** `P(t)` — never a wrong
//!   node, never a missing one. With `equivalent = false` (the contained
//!   variant used for partial answers) `R ◦ M ⊑ P`, so every returned node
//!   is a genuine answer but some may be missing.
//! * **Completeness is bounded** (the Cautis et al. tractability trade-off):
//!   only tree-expressible intersections are attempted — participants must
//!   share a forced selection spine; DAG-shaped intersections (differing
//!   view depths, descendant edges below the root of the spine — the
//!   "interleavings" of the full algorithm) are out of scope — and the
//!   subset enumeration is budgeted. A `None` from the planner therefore
//!   does **not** prove that no multi-view rewriting exists.
//!
//! ```
//! use xpv_core::RewritePlanner;
//! use xpv_intersect::{plan_intersection_in, IntersectConfig};
//! use xpv_pattern::parse_xpath;
//!
//! let v1 = parse_xpath("site/region/item[bids]/name").unwrap();
//! let v2 = parse_xpath("site/region/item[shipping]/name").unwrap();
//! let p = parse_xpath("site/region/item[bids][shipping]/name").unwrap();
//! let session = RewritePlanner::default().session();
//! // No single view rewrites p...
//! assert!(session.decide(&p, &v1).rewriting().is_none());
//! assert!(session.decide(&p, &v2).rewriting().is_none());
//! // ...but the pair does, jointly.
//! let (answer, stats) = plan_intersection_in(
//!     &session, &p, &[&v1, &v2], &IntersectConfig::default());
//! let answer = answer.expect("the pair serves the query");
//! assert_eq!(answer.views, vec![0, 1]);
//! assert!(answer.equivalent);
//! assert!(stats.candidates_tried >= 1);
//! ```

pub mod eval;
pub mod plan;

pub use eval::{
    answer_intersection_materialized, answer_intersection_virtual,
    answer_intersection_virtual_flat, intersect_node_sets, intersect_trees_by_key,
};
pub use plan::{
    plan_intersection, plan_intersection_contained_in, plan_intersection_in, plan_intersection_sig,
    IntersectAnswer, IntersectConfig, IntersectStats,
};
