//! Subset selection: which views to intersect, and with what compensation.
//!
//! The planner enumerates small subsets of a view pool (pairs first, then
//! triples, …) whose members can merge into an exact intersection pattern,
//! and plans the query against each merged anchor through the shared
//! [`PlanningSession`] — so every containment verdict, including the
//! redundancy pre-check, is memoized across subsets, queries, and threads.

use std::fmt;

use xpv_core::{contained_rewriting_in, PlanningSession, RewriteAnswer};
use xpv_pattern::{intersect_patterns, Axis, Pattern, QuerySignature, ViewSignature};

/// A verified multi-view rewriting over a node-set intersection.
#[derive(Clone, Debug)]
pub struct IntersectAnswer {
    /// Indices of the participating views in the pool, ascending.
    pub views: Vec<usize>,
    /// The compensation pattern `R`: evaluate it anchored on
    /// `∩ views[i](t)` to obtain the answer.
    pub compensation: Pattern,
    /// The exact intersection pattern `M` the compensation was planned
    /// against (`M(t) = ∩ views[i](t)` on every document).
    pub intersection: Pattern,
    /// `true` when `R ◦ M ≡ P` (the answer equals direct evaluation);
    /// `false` for a *contained* compensation (`R ◦ M ⊑ P`: sound partial
    /// answers).
    pub equivalent: bool,
}

/// Budget knobs for the subset search.
#[derive(Clone, Copy, Debug)]
pub struct IntersectConfig {
    /// Largest subset size tried (≥ 2; pairs are always tried first).
    pub max_arity: usize,
    /// Upper bound on merge attempts per query (the search stops after
    /// examining this many subsets).
    pub max_candidates: usize,
}

impl Default for IntersectConfig {
    fn default() -> IntersectConfig {
        IntersectConfig { max_arity: 3, max_candidates: 64 }
    }
}

/// Counters describing one subset search (all per-call).
#[derive(Clone, Copy, Debug, Default)]
pub struct IntersectStats {
    /// Subsets for which a merge was attempted.
    pub candidates_tried: u64,
    /// Subsets dismissed by the signature-union necessary condition
    /// before any structural merge or containment work (zero when the
    /// caller passed no signatures).
    pub sig_skipped: u64,
    /// Subsets whose views actually merged into an intersection pattern.
    pub merges_built: u64,
    /// Merged anchors skipped because they collapse onto a single
    /// participant (`Vi ⊑ M`), which the single-view planner covers.
    pub redundant_skipped: u64,
    /// Anchors the full decision procedure ran against.
    pub plans_attempted: u64,
    /// Number of participants in the returned answer (0 when none).
    pub participants: u64,
}

impl fmt::Display for IntersectStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} subsets tried ({} sig-skipped, {} merged, {} redundant, {} planned), \
             {} participants chosen",
            self.candidates_tried,
            self.sig_skipped,
            self.merges_built,
            self.redundant_skipped,
            self.plans_attempted,
            self.participants
        )
    }
}

/// `true` when a view can take part in a tree-expressible intersection at
/// all: every selection edge below the root edge is a child edge (see
/// [`intersect_patterns`]).
fn mergeable_shape(v: &Pattern) -> bool {
    v.selection_axes().iter().skip(1).all(|&a| a == Axis::Child)
}

/// Enumerates the index subsets of `group` of size `arity` in lexicographic
/// order, invoking `visit` until it returns `false` (budget exhausted or
/// answer found).
fn for_each_subset(group: &[usize], arity: usize, visit: &mut impl FnMut(&[usize]) -> bool) {
    fn rec(
        group: &[usize],
        arity: usize,
        start: usize,
        current: &mut Vec<usize>,
        visit: &mut impl FnMut(&[usize]) -> bool,
    ) -> bool {
        if current.len() == arity {
            return visit(current);
        }
        for i in start..group.len() {
            current.push(group[i]);
            let keep_going = rec(group, arity, i + 1, current, visit);
            current.pop();
            if !keep_going {
                return false;
            }
        }
        true
    }
    let mut current = Vec::with_capacity(arity);
    rec(group, arity, 0, &mut current, visit);
}

/// The shared search skeleton: enumerate merge-compatible subsets, build
/// each anchor, prune redundant ones, and hand the anchor to `attempt`
/// (which returns a compensation or `None`).
fn search(
    session: &PlanningSession,
    p: &Pattern,
    pool: &[&Pattern],
    sigs: Option<(&QuerySignature, &[ViewSignature])>,
    cfg: &IntersectConfig,
    stats: &mut IntersectStats,
    attempt: &mut impl FnMut(&PlanningSession, &Pattern, &Pattern) -> Option<(Pattern, bool)>,
) -> Option<IntersectAnswer> {
    let d = p.depth();
    // Candidate views, grouped by selection depth: only equal-depth views
    // merge, and the merged anchor inherits that depth, which the planner's
    // depth gate requires to be ≤ the query's.
    let mut by_depth: Vec<(usize, Vec<usize>)> = Vec::new();
    for (i, v) in pool.iter().enumerate() {
        let k = v.depth();
        if k > d || !mergeable_shape(v) {
            continue;
        }
        match by_depth.iter_mut().find(|(depth, _)| *depth == k) {
            Some((_, group)) => group.push(i),
            None => by_depth.push((k, vec![i])),
        }
    }
    // Deeper anchors first: they leave the least compensation work and are
    // the most selective intersections.
    by_depth.sort_by_key(|&(depth, _)| std::cmp::Reverse(depth));

    let mut found: Option<IntersectAnswer> = None;
    let mut budget = cfg.max_candidates;
    for arity in 2..=cfg.max_arity.max(2) {
        for (_, group) in &by_depth {
            if group.len() < arity {
                continue;
            }
            for_each_subset(group, arity, &mut |subset| {
                if budget == 0 {
                    return false;
                }
                budget -= 1;
                stats.candidates_tried += 1;
                // Signature-union prune, *after* the budget decrement so
                // the filtered and unfiltered arms enumerate identical
                // subset sequences (byte-identical routes either way): the
                // union is the merged anchor's signature, and a rejected
                // union proves the subset cannot support an equivalent
                // compensation — or the merge itself would fail.
                if let Some((qsig, vsigs)) = sigs {
                    let unified = subset[1..]
                        .iter()
                        .try_fold(vsigs[subset[0]], |acc, &i| acc.union(&vsigs[i]));
                    if !unified.is_some_and(|u| qsig.admits(&u)) {
                        stats.sig_skipped += 1;
                        return true;
                    }
                }
                let views: Vec<&Pattern> = subset.iter().map(|&i| pool[i]).collect();
                let Some(merged) = intersect_patterns(&views) else {
                    return true;
                };
                stats.merges_built += 1;
                // Redundancy pruning (memoized): M ⊑ Vi holds by
                // construction, so Vi ⊑ M means the anchor is just Vi —
                // single-view territory.
                let oracle = session.oracle();
                if views.iter().any(|v| oracle.contained(v, &merged)) {
                    stats.redundant_skipped += 1;
                    return true;
                }
                stats.plans_attempted += 1;
                if let Some((compensation, equivalent)) = attempt(session, p, &merged) {
                    stats.participants = subset.len() as u64;
                    found = Some(IntersectAnswer {
                        views: subset.to_vec(),
                        compensation,
                        intersection: merged,
                        equivalent,
                    });
                    return false;
                }
                true
            });
            if found.is_some() || budget == 0 {
                break;
            }
        }
        if found.is_some() || budget == 0 {
            break;
        }
    }
    found
}

/// Selects a small subset of `pool` whose intersection supports an
/// **equivalent** rewriting of `p`, trying pairs before triples (up to
/// [`IntersectConfig::max_arity`]) under the
/// [`IntersectConfig::max_candidates`] budget. All containment work flows
/// through `session`'s oracle, so repeated searches are memoized.
///
/// Returns the first answer found (deepest anchors first, then pool order)
/// together with the per-call search counters. See the crate docs for the
/// soundness/completeness contract.
pub fn plan_intersection_in(
    session: &PlanningSession,
    p: &Pattern,
    pool: &[&Pattern],
    cfg: &IntersectConfig,
) -> (Option<IntersectAnswer>, IntersectStats) {
    plan_intersection_sig(session, p, pool, None, cfg)
}

/// [`plan_intersection_in`] with the serving layer's precomputed
/// signatures: each enumerated subset is first checked against the
/// **signature union** (the merged anchor's signature — label masks
/// union, output tests glb), and subsets whose union the query signature
/// rejects skip the structural merge, the redundancy containment check,
/// and the full decision procedure. The prune is a necessary condition,
/// so the returned answer is identical to the unfiltered search's (only
/// [`IntersectStats::sig_skipped`] and the work done differ). Pass
/// `sigs = None` for the unfiltered ablation arm; `sigs` must be
/// parallel to `pool`.
pub fn plan_intersection_sig(
    session: &PlanningSession,
    p: &Pattern,
    pool: &[&Pattern],
    sigs: Option<(&QuerySignature, &[ViewSignature])>,
    cfg: &IntersectConfig,
) -> (Option<IntersectAnswer>, IntersectStats) {
    let mut stats = IntersectStats::default();
    let found =
        search(session, p, pool, sigs, cfg, &mut stats, &mut |session, p, merged| match session
            .decide(p, merged)
        {
            RewriteAnswer::Rewriting(rw) => Some((rw.pattern().clone(), true)),
            _ => None,
        });
    (found, stats)
}

/// [`plan_intersection_in`] with a fresh one-shot session.
pub fn plan_intersection(
    planner: &xpv_core::RewritePlanner,
    p: &Pattern,
    pool: &[&Pattern],
    cfg: &IntersectConfig,
) -> (Option<IntersectAnswer>, IntersectStats) {
    plan_intersection_in(&planner.session(), p, pool, cfg)
}

/// The *contained* variant for partial answers: selects a subset whose
/// intersection supports a compensation with `R ◦ M ⊑ P` (every returned
/// node is a genuine answer; some may be missing). Only subsets with **no**
/// equivalent compensation reach the contained test, so `equivalent` is
/// `true` on the returned answer exactly when the full answer is recovered.
///
/// Never signature-filtered: the signature conditions are necessary for
/// *equivalent* rewritings only — a contained compensation may use views
/// with labels or depth the query lacks.
pub fn plan_intersection_contained_in(
    session: &PlanningSession,
    p: &Pattern,
    pool: &[&Pattern],
    cfg: &IntersectConfig,
) -> (Option<IntersectAnswer>, IntersectStats) {
    let mut stats = IntersectStats::default();
    let found =
        search(session, p, pool, None, cfg, &mut stats, &mut |session, p, merged| match session
            .decide(p, merged)
        {
            RewriteAnswer::Rewriting(rw) => Some((rw.pattern().clone(), true)),
            _ => contained_rewriting_in(session.oracle(), p, merged).map(|r| (r, false)),
        });
    (found, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpv_core::RewritePlanner;
    use xpv_pattern::parse_xpath;
    use xpv_semantics::{contained, equivalent};

    fn pat(s: &str) -> Pattern {
        parse_xpath(s).expect("pattern parses")
    }

    fn pool(defs: &[&str]) -> Vec<Pattern> {
        defs.iter().map(|s| pat(s)).collect()
    }

    #[test]
    fn pair_serves_query_no_single_view_can() {
        let session = RewritePlanner::default().session();
        let views = pool(&["site/region/item[bids]/name", "site/region/item[shipping]/name"]);
        let refs: Vec<&Pattern> = views.iter().collect();
        let p = pat("site/region/item[bids][shipping]/name");
        for v in &refs {
            assert!(session.decide(&p, v).rewriting().is_none(), "{v} must not suffice alone");
        }
        let (ans, stats) = plan_intersection_in(&session, &p, &refs, &IntersectConfig::default());
        let ans = ans.expect("pair answer");
        assert_eq!(ans.views, vec![0, 1]);
        assert!(ans.equivalent);
        let rm = xpv_pattern::compose(&ans.compensation, &ans.intersection).expect("composes");
        assert!(equivalent(&rm, &p));
        assert_eq!(stats.participants, 2);
        assert!(stats.plans_attempted >= 1);
    }

    #[test]
    fn triples_are_reached_when_pairs_fail() {
        let session = RewritePlanner::default().session();
        let views = pool(&[
            "site/region/item[bids]/name",
            "site/region/item[shipping]/name",
            "site/region/item[description]/name",
        ]);
        let refs: Vec<&Pattern> = views.iter().collect();
        let p = pat("site/region/item[bids][shipping][description]/name");
        let (ans, _) = plan_intersection_in(&session, &p, &refs, &IntersectConfig::default());
        let ans = ans.expect("triple answer");
        assert_eq!(ans.views, vec![0, 1, 2]);
        assert!(ans.equivalent);
    }

    #[test]
    fn redundant_subsets_are_pruned() {
        let session = RewritePlanner::default().session();
        // v1 ⊒ v0: their intersection is just v0 — nothing multi-view about
        // it, and the single-view planner already failed on v0.
        let views = pool(&["site/region/item[bids]/name", "site/region/item/name"]);
        let refs: Vec<&Pattern> = views.iter().collect();
        let p = pat("site/region/item[bids][shipping]/name");
        let (ans, stats) = plan_intersection_in(&session, &p, &refs, &IntersectConfig::default());
        assert!(ans.is_none());
        assert_eq!(stats.redundant_skipped, 1);
        assert_eq!(stats.plans_attempted, 0);
    }

    #[test]
    fn budget_stops_the_search() {
        let session = RewritePlanner::default().session();
        let views = pool(&[
            "site/region/item[a1]/name",
            "site/region/item[a2]/name",
            "site/region/item[a3]/name",
            "site/region/item[a4]/name",
        ]);
        let refs: Vec<&Pattern> = views.iter().collect();
        let p = pat("site/region/item[zz]/name");
        let cfg = IntersectConfig { max_arity: 3, max_candidates: 2 };
        let (ans, stats) = plan_intersection_in(&session, &p, &refs, &cfg);
        assert!(ans.is_none());
        assert_eq!(stats.candidates_tried, 2, "budget must cap the enumeration");
    }

    #[test]
    fn contained_variant_yields_sound_partial_compensations() {
        let session = RewritePlanner::default().session();
        // The intersection imposes [extra], which p does not require: no
        // equivalent compensation, but a contained one exists.
        let views =
            pool(&["site/region[extra]/item[bids]/name", "site/region[extra]/item[shipping]/name"]);
        let refs: Vec<&Pattern> = views.iter().collect();
        let p = pat("site/region/item[bids][shipping]/name");
        let (eq_ans, _) = plan_intersection_in(&session, &p, &refs, &IntersectConfig::default());
        assert!(eq_ans.is_none(), "the [extra] branch rules out equivalence");
        let (ans, _) =
            plan_intersection_contained_in(&session, &p, &refs, &IntersectConfig::default());
        let ans = ans.expect("contained answer");
        assert!(!ans.equivalent);
        let rm = xpv_pattern::compose(&ans.compensation, &ans.intersection).expect("composes");
        assert!(contained(&rm, &p));
        assert!(!equivalent(&rm, &p));
    }

    #[test]
    fn unmergeable_pools_are_rejected_quietly() {
        let session = RewritePlanner::default().session();
        let views = pool(&["a//b//c", "a/b/c", "x/y"]);
        let refs: Vec<&Pattern> = views.iter().collect();
        let (ans, stats) =
            plan_intersection_in(&session, &pat("a/b/c[z]"), &refs, &IntersectConfig::default());
        assert!(ans.is_none());
        // a//b//c has a descendant edge below the root edge; x/y has the
        // wrong depth group size (alone in its group) — nothing to try.
        assert_eq!(stats.merges_built, 0);
    }
}
