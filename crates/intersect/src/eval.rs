//! Evaluating a compensation over the intersection of materialized views.
//!
//! Two representations mirror `xpv_engine::MaterializedView`:
//!
//! * **virtual** — each view is an output-*node* set over the shared
//!   document; the intersection is a [`BitSet`] AND over `NodeId`s and the
//!   compensation is evaluated *anchored* at the surviving nodes (never
//!   copies data);
//! * **materialized** — each view is a set of independent subtree copies;
//!   copies have no node identity, so the intersection is by value
//!   (canonical keys) and answers are compared by value, exactly like
//!   `MaterializedView::apply_materialized`.

use std::collections::HashSet;

use xpv_model::{BitSet, FlatTree, NodeId, Tree};
use xpv_pattern::Pattern;
use xpv_semantics::{evaluate, evaluate_anchored, evaluate_anchored_flat};

/// The node-set intersection `∩ sets[i]` over a document with `capacity`
/// nodes, ascending. Returns the empty set when `sets` is empty.
pub fn intersect_node_sets(capacity: usize, sets: &[&[NodeId]]) -> Vec<NodeId> {
    let Some((first, rest)) = sets.split_first() else {
        return Vec::new();
    };
    let mut acc = BitSet::new(capacity);
    for &n in first.iter() {
        acc.insert(n.index());
    }
    let mut other = BitSet::new(capacity);
    for set in rest {
        other.clear();
        for &n in set.iter() {
            other.insert(n.index());
        }
        // Word-parallel any-common-bit test: disjoint participants empty
        // the whole intersection, so stop before scanning further sets.
        if !acc.intersects(&other) {
            return Vec::new();
        }
        acc.intersect_with(&other);
    }
    acc.iter().map(|i| NodeId(i as u32)).collect()
}

/// Evaluates `compensation` anchored on the node-set intersection of the
/// views' virtual answers: `R(V1(t) ∩ … ∩ Vn(t))` as output nodes of `doc`.
///
/// When the compensation came from an *equivalent* intersection plan this
/// returns exactly the query's direct answers (byte-identical, same order);
/// for a *contained* plan it returns a sound subset.
pub fn answer_intersection_virtual(
    doc: &Tree,
    sets: &[&[NodeId]],
    compensation: &Pattern,
) -> Vec<NodeId> {
    // Capacity is the raw arena bound: edited documents keep tombstoned
    // slots, so `arena_len` ≥ every stored `NodeId` index.
    let anchors = intersect_node_sets(doc.arena_len(), sets);
    evaluate_anchored(compensation, doc, &anchors)
}

/// [`answer_intersection_virtual`] against a frozen [`FlatTree`] snapshot:
/// the anchors come from the same word-parallel node-set intersection and
/// the compensation runs through the flat matcher. Byte-identical to the
/// `Tree` path (the flat matcher is equivalence-tested against it).
pub fn answer_intersection_virtual_flat(
    ft: &FlatTree,
    sets: &[&[NodeId]],
    compensation: &Pattern,
) -> Vec<NodeId> {
    let anchors = intersect_node_sets(ft.arena_len(), sets);
    evaluate_anchored_flat(compensation, ft, &anchors)
}

/// The by-value intersection of materialized view results: the trees of
/// `sets[0]` whose canonical key occurs in every other set, deduplicated by
/// key (subtree copies carry no node identity, so value equality is the
/// only meaningful intersection).
pub fn intersect_trees_by_key<'a>(sets: &[&'a [Tree]]) -> Vec<&'a Tree> {
    let Some((first, rest)) = sets.split_first() else {
        return Vec::new();
    };
    let keyed: Vec<HashSet<String>> =
        rest.iter().map(|set| set.iter().map(Tree::canonical_key).collect()).collect();
    let mut seen: HashSet<String> = HashSet::new();
    first
        .iter()
        .filter(|t| {
            let key = t.canonical_key();
            keyed.iter().all(|s| s.contains(&key)) && seen.insert(key)
        })
        .collect()
}

/// Evaluates `compensation` over the **materialized** intersection: the
/// compensation runs inside each surviving subtree copy and the output
/// subtrees come back deduplicated by value.
pub fn answer_intersection_materialized(sets: &[&[Tree]], compensation: &Pattern) -> Vec<Tree> {
    let mut out: Vec<Tree> = Vec::new();
    let mut seen: HashSet<String> = HashSet::new();
    for u in intersect_trees_by_key(sets) {
        for o in evaluate(compensation, u) {
            let (sub, _) = u.subtree(o);
            if seen.insert(sub.canonical_key()) {
                out.push(sub);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpv_model::TreeBuilder;
    use xpv_pattern::parse_xpath;

    fn pat(s: &str) -> Pattern {
        parse_xpath(s).expect("pattern parses")
    }

    /// Three items: one with bids only, one with shipping only, one with
    /// both.
    fn doc() -> Tree {
        TreeBuilder::root("site", |b| {
            b.child("region", |b| {
                b.child("item", |b| {
                    b.leaf("name");
                    b.leaf("bids");
                });
                b.child("item", |b| {
                    b.leaf("name");
                    b.leaf("shipping");
                });
                b.child("item", |b| {
                    b.leaf("name");
                    b.leaf("bids");
                    b.leaf("shipping");
                });
            });
        })
    }

    #[test]
    fn node_intersection_is_exact_and_ordered() {
        let t = doc();
        let v1 = evaluate(&pat("site/region/item[bids]/name"), &t);
        let v2 = evaluate(&pat("site/region/item[shipping]/name"), &t);
        let both = intersect_node_sets(t.len(), &[&v1, &v2]);
        let direct = evaluate(&pat("site/region/item[bids][shipping]/name"), &t);
        assert_eq!(both, direct);
        assert_eq!(both.len(), 1);
        // Empty input and disjoint sets.
        assert!(intersect_node_sets(t.len(), &[]).is_empty());
        let names = evaluate(&pat("site/region/item/name"), &t);
        let bids = evaluate(&pat("site/region/item/bids"), &t);
        assert!(intersect_node_sets(t.len(), &[&names, &bids]).is_empty());
    }

    #[test]
    fn virtual_answer_matches_direct_evaluation() {
        let t = doc();
        let v1 = evaluate(&pat("site/region/item[bids]/name"), &t);
        let v2 = evaluate(&pat("site/region/item[shipping]/name"), &t);
        let ans = answer_intersection_virtual(&t, &[&v1, &v2], &pat("name"));
        assert_eq!(ans, evaluate(&pat("site/region/item[bids][shipping]/name"), &t));
    }

    #[test]
    fn flat_virtual_answer_matches_tree_path() {
        let t = doc();
        let ft = FlatTree::freeze(&t);
        let v1 = evaluate(&pat("site/region/item[bids]/name"), &t);
        let v2 = evaluate(&pat("site/region/item[shipping]/name"), &t);
        assert_eq!(
            answer_intersection_virtual_flat(&ft, &[&v1, &v2], &pat("name")),
            answer_intersection_virtual(&t, &[&v1, &v2], &pat("name"))
        );
        // Disjoint participants: the early-exit path yields empty on both.
        let bids = evaluate(&pat("site/region/item/bids"), &t);
        assert!(answer_intersection_virtual_flat(&ft, &[&v1, &bids], &pat("name")).is_empty());
    }

    #[test]
    fn materialized_intersection_works_by_value() {
        let t = doc();
        let trees = |p: &str| -> Vec<Tree> {
            evaluate(&pat(p), &t).into_iter().map(|n| t.subtree(n).0).collect()
        };
        let v1 = trees("site/region/item[bids]");
        let v2 = trees("site/region/item[shipping]");
        let both = intersect_trees_by_key(&[&v1, &v2]);
        assert_eq!(both.len(), 1, "only the bids+shipping item survives by value");
        let names = answer_intersection_materialized(&[&v1, &v2], &pat("item/name"));
        assert_eq!(names.len(), 1);
        assert_eq!(names[0].label(names[0].root()).name(), "name");
        // Empty inputs.
        assert!(intersect_trees_by_key(&[]).is_empty());
        assert!(answer_intersection_materialized(&[], &pat("item/name")).is_empty());
    }
}
