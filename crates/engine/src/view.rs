//! Materialized views over XML documents.
//!
//! A materialized view (Section 2.4) is the precomputed result `V(t)` of
//! applying a view pattern to a document. Two representations are provided:
//!
//! * **virtual** — the output-node set of `V` on `t`, keeping node
//!   identities. A rewriting `R` is then evaluated *anchored* at those nodes,
//!   which is exactly `R(V(t))` by Proposition 2.4 and never copies data;
//! * **materialized** — independent subtree copies, the representation a
//!   cache that ships results across a wire would use. Answers computed this
//!   way are compared by value (canonical keys), since copies have no node
//!   identity in the source document.
//!
//! Both paths are tested to agree with direct evaluation whenever the planner
//! hands us an equivalent rewriting.

use xpv_maintain::ViewDelta;
use xpv_model::{NodeId, Tree};
use xpv_pattern::Pattern;
use xpv_semantics::{evaluate, evaluate_anchored};

/// The value-level (canonical-key) description of how a maintenance delta
/// changed a view's **materialized** representation: subtree copies have no
/// node identity, so their diff is by value. Produced by
/// [`MaterializedView::apply_delta`].
#[derive(Clone, Debug, Default)]
pub struct MaterializedDelta {
    /// Canonical keys of subtree copies that disappeared (removed answers,
    /// plus the pre-edit contents of refreshed copies).
    pub removed_keys: Vec<String>,
    /// Canonical keys of subtree copies that appeared (added answers, plus
    /// the post-edit contents of refreshed copies).
    pub added_keys: Vec<String>,
    /// Copies rebuilt in place because the edit landed inside them
    /// (membership unchanged, content changed).
    pub refreshed: usize,
}

/// The precomputed result of a view over one document.
#[derive(Clone, Debug)]
pub struct MaterializedView {
    name: String,
    def: Pattern,
    nodes: Vec<NodeId>,
    trees: Vec<Tree>,
}

impl MaterializedView {
    /// Evaluates `def` over `doc` and stores both representations.
    pub fn materialize(name: impl Into<String>, def: Pattern, doc: &Tree) -> MaterializedView {
        let nodes = evaluate(&def, doc);
        let trees = nodes.iter().map(|&n| doc.subtree(n).0).collect();
        MaterializedView { name: name.into(), def, nodes, trees }
    }

    /// The view's name (cache key).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The view definition `V`.
    pub fn definition(&self) -> &Pattern {
        &self.def
    }

    /// `V(t)` as output nodes of the source document (virtual form).
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// `V(t)` as independent subtree copies (materialized form).
    pub fn trees(&self) -> &[Tree] {
        &self.trees
    }

    /// Number of answers in the view.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the view result is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Applies an incremental-maintenance delta: replaces the answer node
    /// set with `new_nodes` (the maintainer's patched, ascending set) and
    /// patches the subtree copies by diff — copies of surviving untouched
    /// answers are **reused**, only added and retagged (content-changed)
    /// answers are re-copied from the edited document. Returns the
    /// canonical-key diff of the materialized representation.
    pub fn apply_delta(
        &mut self,
        doc: &Tree,
        new_nodes: &[NodeId],
        delta: &ViewDelta,
    ) -> MaterializedDelta {
        let mut out = MaterializedDelta::default();
        let mut old: std::collections::HashMap<NodeId, Tree> =
            self.nodes.drain(..).zip(self.trees.drain(..)).collect();
        for &gone in &delta.removed {
            if let Some(tree) = old.remove(&gone) {
                out.removed_keys.push(tree.canonical_key());
            }
        }
        let retag: std::collections::HashSet<NodeId> = delta.retagged.iter().copied().collect();
        self.nodes = new_nodes.to_vec();
        self.trees = new_nodes
            .iter()
            .map(|&n| match old.remove(&n) {
                Some(tree) if !retag.contains(&n) => tree,
                Some(stale) => {
                    // The edit landed inside this answer's subtree: rebuild
                    // the copy and record the value transition.
                    let fresh = doc.subtree(n).0;
                    let (old_key, new_key) = (stale.canonical_key(), fresh.canonical_key());
                    if old_key != new_key {
                        out.removed_keys.push(old_key);
                        out.added_keys.push(new_key);
                    }
                    out.refreshed += 1;
                    fresh
                }
                None => {
                    let fresh = doc.subtree(n).0;
                    out.added_keys.push(fresh.canonical_key());
                    fresh
                }
            })
            .collect();
        out.removed_keys.sort();
        out.added_keys.sort();
        out
    }

    /// Applies a rewriting to the view **virtually**: `R(V(t))` as output
    /// nodes of the source document (Proposition 2.4's right-hand side).
    pub fn apply_virtual(&self, r: &Pattern, doc: &Tree) -> Vec<NodeId> {
        evaluate_anchored(r, doc, &self.nodes)
    }

    /// Applies a rewriting to the **materialized** copies: `R(V(t))` as a
    /// set of result trees, deduplicated by value.
    pub fn apply_materialized(&self, r: &Pattern) -> Vec<Tree> {
        let mut out: Vec<Tree> = Vec::new();
        let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
        for u in &self.trees {
            for o in evaluate(r, u) {
                let (sub, _) = u.subtree(o);
                if seen.insert(sub.canonical_key()) {
                    out.push(sub);
                }
            }
        }
        out
    }
}

/// Normalizes a node-set answer over `doc` to a deduplicated value set
/// (canonical keys), for comparing virtual and materialized answers.
pub fn answer_value_set(doc: &Tree, nodes: &[NodeId]) -> Vec<String> {
    let mut keys: Vec<String> = Vec::with_capacity(nodes.len());
    for &n in nodes {
        let mut key = String::new();
        doc.canonical_key_into(n, &mut key);
        keys.push(key);
    }
    keys.sort();
    keys.dedup();
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpv_model::TreeBuilder;
    use xpv_pattern::parse_xpath;

    fn pat(s: &str) -> Pattern {
        parse_xpath(s).expect("pattern parses")
    }

    fn doc() -> Tree {
        TreeBuilder::root("lib", |b| {
            b.child("shelf", |b| {
                b.child("book", |b| {
                    b.leaf("title");
                    b.leaf("author");
                });
                b.child("book", |b| {
                    b.leaf("title");
                });
            });
            b.child("shelf", |b| {
                b.child("box", |b| {
                    b.child("book", |b| {
                        b.leaf("title");
                        b.leaf("author");
                    });
                });
            });
        })
    }

    #[test]
    fn materialization_counts() {
        let d = doc();
        let v = MaterializedView::materialize("books", pat("lib//book"), &d);
        assert_eq!(v.len(), 3);
        assert_eq!(v.trees().len(), 3);
        assert!(!v.is_empty());
        assert_eq!(v.name(), "books");
    }

    #[test]
    fn virtual_application_matches_direct() {
        let d = doc();
        let v = MaterializedView::materialize("books", pat("lib//book"), &d);
        // R = book/title applied to the view = lib//book/title directly.
        let via_view = v.apply_virtual(&pat("book/title"), &d);
        let direct = evaluate(&pat("lib//book/title"), &d);
        assert_eq!(via_view, direct);
        assert_eq!(via_view.len(), 3);
    }

    #[test]
    fn materialized_application_matches_by_value() {
        let d = doc();
        let v = MaterializedView::materialize("books", pat("lib//book"), &d);
        let r = pat("book[author]/title");
        let via_nodes = v.apply_virtual(&r, &d);
        let via_trees = v.apply_materialized(&r);
        let mut tree_keys: Vec<String> = via_trees.iter().map(Tree::canonical_key).collect();
        tree_keys.sort();
        assert_eq!(answer_value_set(&d, &via_nodes), tree_keys);
    }

    #[test]
    fn empty_view_yields_empty_answers() {
        let d = doc();
        let v = MaterializedView::materialize("none", pat("lib/book"), &d);
        assert!(v.is_empty());
        assert!(v.apply_virtual(&pat("book/title"), &d).is_empty());
        assert!(v.apply_materialized(&pat("book/title")).is_empty());
    }

    #[test]
    fn apply_delta_reuses_untouched_copies_and_refreshes_retagged() {
        let mut d = doc();
        let mut v = MaterializedView::materialize("books", pat("lib//book"), &d);
        assert_eq!(v.len(), 3);
        let old_first = v.nodes()[0];

        // Simulate a maintainer outcome: a new book appended under the
        // first shelf, and the first book's content edited in place.
        let shelf = d.children(d.root())[0];
        let extra = TreeBuilder::root("book", |b| {
            b.leaf("title");
        });
        let new_book = d.attach_tree(shelf, &extra);
        d.add_child(old_first, xpv_model::Label::new("isbn"));
        let mut new_nodes: Vec<NodeId> = v.nodes().to_vec();
        new_nodes.push(new_book);
        new_nodes.sort();
        let delta = xpv_maintain::ViewDelta {
            removed: vec![],
            added: vec![new_book],
            retagged: vec![old_first],
        };
        let mat = v.apply_delta(&d, &new_nodes, &delta);
        assert_eq!(v.len(), 4);
        assert_eq!(mat.refreshed, 1);
        assert_eq!(mat.added_keys.len(), 2, "one genuinely new copy + one refreshed content");
        assert_eq!(mat.removed_keys.len(), 1, "the refreshed copy's old content");
        // Every stored copy now matches a fresh materialization by value.
        let fresh = MaterializedView::materialize("books", pat("lib//book"), &d);
        let keys = |mv: &MaterializedView| {
            let mut ks: Vec<String> = mv.trees().iter().map(Tree::canonical_key).collect();
            ks.sort();
            ks
        };
        assert_eq!(keys(&v), keys(&fresh));
        assert_eq!(v.nodes(), fresh.nodes());
    }

    #[test]
    fn view_with_branch_condition() {
        let d = doc();
        // Books having an author.
        let v = MaterializedView::materialize("authored", pat("lib//book[author]"), &d);
        assert_eq!(v.len(), 2);
        let titles = v.apply_virtual(&pat("book/title"), &d);
        assert_eq!(titles.len(), 2);
    }
}
