//! Observability exposition glue: `xpv-obs` structures ⇄ their wire
//! forms ([`WireMetric`], `WireSeries`, `WireAlert`, `WireTraceEvent`).
//!
//! `xpv-obs` owns the snapshot/history/health model and `xpv-net` owns
//! the frame encoding; neither depends on the other, so the engine —
//! which depends on both — is where a snapshot becomes a `StatsV2Resp`
//! payload, a [`History`] becomes a `HistoryResp` series list, and
//! alerts/trace events become `DebugDumpResp` fields (and the reverse,
//! client side, e.g. the `xpv stats` command rendering
//! [`MetricsSnapshot::to_text`]). The metric conversion is lossless for
//! the wire's vocabulary: counters and gauges carry their value,
//! histograms carry the `[count, sum, max, p50, p90, p99]` summary (raw
//! buckets never travel); history points carry the kind-dependent
//! payloads documented on `WirePoint`.

use xpv_net::{
    WireAlert, WireMetric, WirePoint, WireSeries, WireTraceEvent, METRIC_COUNTER, METRIC_GAUGE,
    METRIC_HISTOGRAM,
};
use xpv_obs::{
    Alert, HistogramSummary, History, MetricsSnapshot, PointValue, Sample, SampleValue, SeriesKind,
    TraceEvent,
};

/// Encodes a snapshot as the `StatsV2Resp` metric list (order preserved).
pub fn wire_metrics(snapshot: &MetricsSnapshot) -> Vec<WireMetric> {
    snapshot
        .samples
        .iter()
        .map(|s| {
            let (kind, values) = match s.value {
                SampleValue::Counter(v) => (METRIC_COUNTER, vec![v]),
                SampleValue::Gauge(v) => (METRIC_GAUGE, vec![v]),
                SampleValue::Histogram(h) => {
                    (METRIC_HISTOGRAM, vec![h.count, h.sum, h.max, h.p50, h.p90, h.p99])
                }
            };
            WireMetric { name: s.name.clone(), labels: s.labels.clone(), kind, values }
        })
        .collect()
}

/// Rebuilds a snapshot from a received metric list (order preserved).
/// Tolerant of short `values` payloads (missing positions read as 0) so a
/// newer server with a wider summary cannot break an older client.
pub fn metrics_from_wire(metrics: &[WireMetric]) -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::new();
    for m in metrics {
        let at = |i: usize| m.values.get(i).copied().unwrap_or(0);
        let value = match m.kind {
            METRIC_GAUGE => SampleValue::Gauge(at(0)),
            METRIC_HISTOGRAM => SampleValue::Histogram(HistogramSummary {
                count: at(0),
                sum: at(1),
                max: at(2),
                p50: at(3),
                p90: at(4),
                p99: at(5),
            }),
            _ => SampleValue::Counter(at(0)),
        };
        snap.samples.push(Sample { name: m.name.clone(), labels: m.labels.clone(), value });
    }
    snap
}

/// Encodes a server-side [`History`] as the `HistoryResp` series list:
/// every retained series, points oldest first, with the kind-dependent
/// point payloads (`[delta]` / `[level]` / `[count, p50, p90, p99]`).
pub fn wire_history(history: &History) -> Vec<WireSeries> {
    history
        .all_series()
        .into_iter()
        .map(|s| {
            let kind = match s.kind {
                SeriesKind::Counter => METRIC_COUNTER,
                SeriesKind::Gauge => METRIC_GAUGE,
                SeriesKind::Histogram => METRIC_HISTOGRAM,
            };
            let points = s
                .points
                .iter()
                .map(|p| WirePoint {
                    at_us: p.at_us,
                    values: match p.value {
                        PointValue::Delta(v) | PointValue::Level(v) => vec![v],
                        PointValue::Quantiles { count, p50, p90, p99 } => {
                            vec![count, p50, p90, p99]
                        }
                    },
                })
                .collect();
            WireSeries { name: s.name, kind, points }
        })
        .collect()
}

/// Encodes watchdog alert states for a `DebugDumpResp`.
pub fn wire_alerts(alerts: &[Alert]) -> Vec<WireAlert> {
    alerts
        .iter()
        .map(|a| WireAlert {
            name: a.name.clone(),
            kind: a.kind.clone(),
            firing: a.firing,
            since_tick: a.since_tick,
            fired_total: a.fired_total,
            detail: a.detail.clone(),
        })
        .collect()
}

/// Encodes drained trace spans for a `DebugDumpResp` (phases travel as
/// their names, so a client needs no `Phase` enum agreement).
pub fn wire_traces(events: &[TraceEvent]) -> Vec<WireTraceEvent> {
    events
        .iter()
        .map(|e| WireTraceEvent {
            kind: e.kind.to_string(),
            total_us: e.total_us,
            phases: e.phases.iter().map(|(p, us)| (p.as_str().to_string(), *us)).collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trips_through_the_wire_form() {
        let mut snap = MetricsSnapshot::new();
        snap.push_counter("xpv_cache_queries", 42);
        snap.push_gauge("xpv_server_connections", 3);
        snap.push_counter_labeled("xpv_tenant_queries", ("tenant", "acme"), 7);
        snap.push_histogram(
            "xpv_phase_eval_us",
            HistogramSummary { count: 100, sum: 12345, max: 900, p50: 80, p90: 300, p99: 800 },
        );
        snap.sort();
        let rebuilt = metrics_from_wire(&wire_metrics(&snap));
        assert_eq!(rebuilt, snap);
        assert_eq!(rebuilt.to_text(), snap.to_text());
    }

    #[test]
    fn history_series_carry_kind_dependent_point_payloads() {
        let history = History::new(8);
        let mut snap = MetricsSnapshot::new();
        snap.push_counter("xpv_cache_queries", 10);
        snap.push_gauge("xpv_server_connections", 3);
        let hist = xpv_obs::Histogram::new();
        hist.record(100);
        history.record_tick(&snap, &[("xpv_phase_eval_us".to_string(), hist.snapshot())]);
        let series = wire_history(&history);
        let names: Vec<&str> = series.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["xpv_cache_queries", "xpv_phase_eval_us", "xpv_server_connections"]);
        assert_eq!((series[0].kind, &series[0].points[0].values), (METRIC_COUNTER, &vec![10]));
        assert_eq!(series[1].kind, METRIC_HISTOGRAM);
        assert_eq!(series[1].points[0].values.len(), 4, "[count, p50, p90, p99]");
        assert_eq!(series[1].points[0].values[0], 1, "one observation this tick");
        assert_eq!((series[2].kind, &series[2].points[0].values), (METRIC_GAUGE, &vec![3]));
    }

    #[test]
    fn alerts_and_traces_convert_structurally() {
        let alerts = vec![Alert {
            name: "maintain_stall".into(),
            kind: "heartbeat_stall".into(),
            firing: true,
            since_tick: 7,
            fired_total: 3,
            detail: "1 in flight".into(),
        }];
        let wired = wire_alerts(&alerts);
        assert_eq!(wired[0].name, "maintain_stall");
        assert!(wired[0].firing);
        assert_eq!(wired[0].since_tick, 7);

        let events = vec![TraceEvent {
            kind: "cache.update",
            total_us: 500,
            phases: vec![(xpv_obs::Phase::Apply, 200), (xpv_obs::Phase::Patch, 300)],
        }];
        let wired = wire_traces(&events);
        assert_eq!(wired[0].kind, "cache.update");
        assert_eq!(wired[0].phases, vec![("apply".to_string(), 200), ("patch".to_string(), 300)]);
    }

    #[test]
    fn short_histogram_payloads_read_as_zero() {
        let m = WireMetric {
            name: "h".into(),
            labels: vec![],
            kind: METRIC_HISTOGRAM,
            values: vec![5, 50],
        };
        let snap = metrics_from_wire(std::slice::from_ref(&m));
        match snap.samples[0].value {
            SampleValue::Histogram(h) => {
                assert_eq!((h.count, h.sum, h.max, h.p99), (5, 50, 0, 0));
            }
            ref other => panic!("wrong kind: {other:?}"),
        }
    }
}
