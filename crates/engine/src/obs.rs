//! Metrics exposition glue: [`MetricsSnapshot`] ⇄ the wire's
//! [`WireMetric`] list.
//!
//! `xpv-obs` owns the snapshot model and `xpv-net` owns the frame
//! encoding; neither depends on the other, so the engine — which depends
//! on both — is where a snapshot becomes a `StatsV2Resp` payload (server
//! side) and a received payload becomes a snapshot again (client side,
//! e.g. the `xpv stats` command rendering
//! [`MetricsSnapshot::to_text`]). The conversion is lossless for the
//! wire's vocabulary: counters and gauges carry their value, histograms
//! carry the `[count, sum, max, p50, p90, p99]` summary (raw buckets
//! never travel).

use xpv_net::{WireMetric, METRIC_COUNTER, METRIC_GAUGE, METRIC_HISTOGRAM};
use xpv_obs::{HistogramSummary, MetricsSnapshot, Sample, SampleValue};

/// Encodes a snapshot as the `StatsV2Resp` metric list (order preserved).
pub fn wire_metrics(snapshot: &MetricsSnapshot) -> Vec<WireMetric> {
    snapshot
        .samples
        .iter()
        .map(|s| {
            let (kind, values) = match s.value {
                SampleValue::Counter(v) => (METRIC_COUNTER, vec![v]),
                SampleValue::Gauge(v) => (METRIC_GAUGE, vec![v]),
                SampleValue::Histogram(h) => {
                    (METRIC_HISTOGRAM, vec![h.count, h.sum, h.max, h.p50, h.p90, h.p99])
                }
            };
            WireMetric { name: s.name.clone(), labels: s.labels.clone(), kind, values }
        })
        .collect()
}

/// Rebuilds a snapshot from a received metric list (order preserved).
/// Tolerant of short `values` payloads (missing positions read as 0) so a
/// newer server with a wider summary cannot break an older client.
pub fn metrics_from_wire(metrics: &[WireMetric]) -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::new();
    for m in metrics {
        let at = |i: usize| m.values.get(i).copied().unwrap_or(0);
        let value = match m.kind {
            METRIC_GAUGE => SampleValue::Gauge(at(0)),
            METRIC_HISTOGRAM => SampleValue::Histogram(HistogramSummary {
                count: at(0),
                sum: at(1),
                max: at(2),
                p50: at(3),
                p90: at(4),
                p99: at(5),
            }),
            _ => SampleValue::Counter(at(0)),
        };
        snap.samples.push(Sample { name: m.name.clone(), labels: m.labels.clone(), value });
    }
    snap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trips_through_the_wire_form() {
        let mut snap = MetricsSnapshot::new();
        snap.push_counter("xpv_cache_queries", 42);
        snap.push_gauge("xpv_server_connections", 3);
        snap.push_counter_labeled("xpv_tenant_queries", ("tenant", "acme"), 7);
        snap.push_histogram(
            "xpv_phase_eval_us",
            HistogramSummary { count: 100, sum: 12345, max: 900, p50: 80, p90: 300, p99: 800 },
        );
        snap.sort();
        let rebuilt = metrics_from_wire(&wire_metrics(&snap));
        assert_eq!(rebuilt, snap);
        assert_eq!(rebuilt.to_text(), snap.to_text());
    }

    #[test]
    fn short_histogram_payloads_read_as_zero() {
        let m = WireMetric {
            name: "h".into(),
            labels: vec![],
            kind: METRIC_HISTOGRAM,
            values: vec![5, 50],
        };
        let snap = metrics_from_wire(std::slice::from_ref(&m));
        match snap.samples[0].value {
            SampleValue::Histogram(h) => {
                assert_eq!((h.count, h.sum, h.max, h.p99), (5, 50, 0, 0));
            }
            ref other => panic!("wrong kind: {other:?}"),
        }
    }
}
