//! Per-tenant accounting shared by both serving front-ends.
//!
//! Every batch — whether it arrives over the in-process compatibility
//! transport ([`CacheServer`](crate::CacheServer)) or a socket connection
//! ([`AsyncCacheServer`](crate::AsyncCacheServer)) — is submitted on
//! behalf of a **tenant** (any string id), and [`TenantRegistry`]
//! accumulates that tenant's lifetime counters. The registry is **sharded
//! and atomic**: tenants hash onto `RwLock<HashMap>` shards whose values
//! are `Arc`s of plain atomic counters, so the steady-state accounting
//! path is a shared read lock plus relaxed atomic adds — no serialization
//! point across workers.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::shard::{CacheAnswer, CacheAnswerRef, Route};

/// Number of tenant-stats lock shards.
const TENANT_SHARDS: usize = 16;

/// Per-tenant serving counters (a point-in-time snapshot; the live
/// counters are sharded atomics).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Batches answered for this tenant.
    pub batches: u64,
    /// Individual queries answered (sum of batch lengths).
    pub queries: u64,
    /// Queries answered from a view through an equivalent rewriting.
    pub view_hits: u64,
    /// Queries answered from a multi-view intersection.
    pub intersect_hits: u64,
    /// Queries answered by direct evaluation.
    pub direct: u64,
    /// Document edits this tenant applied through the server.
    pub updates_applied: u64,
    /// Views incrementally refreshed on behalf of this tenant's updates.
    pub views_refreshed_incrementally: u64,
    /// Submissions that had to wait for admission — the in-process window
    /// was full, so the submitting thread blocked until a batch completed.
    /// The contention signal for sizing `max_pending` and the worker pool.
    pub admission_waits: u64,
}

impl TenantStats {
    /// The canonical counter enumeration: one `(name, value)` pair per
    /// field, in declaration order. The observability registry exposes
    /// these under `xpv_tenant_*{tenant="id"}`, and `Display` renders the
    /// same list — one naming authority, so the rendered line and the
    /// exposition can never drift (see the `xpv-obs` crate docs).
    pub fn visit(&self, f: &mut dyn FnMut(&'static str, u64)) {
        f("batches", self.batches);
        f("queries", self.queries);
        f("view_hits", self.view_hits);
        f("intersect_hits", self.intersect_hits);
        f("direct", self.direct);
        f("updates_applied", self.updates_applied);
        f("views_refreshed_incrementally", self.views_refreshed_incrementally);
        f("admission_waits", self.admission_waits);
    }
}

impl std::fmt::Display for TenantStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        xpv_obs::write_kv_line(f, |emit| self.visit(emit))
    }
}

/// The live, lock-free per-tenant counters behind [`TenantStats`].
#[derive(Debug, Default)]
pub(crate) struct TenantCounters {
    pub batches: AtomicU64,
    pub queries: AtomicU64,
    pub view_hits: AtomicU64,
    pub intersect_hits: AtomicU64,
    pub direct: AtomicU64,
    pub updates_applied: AtomicU64,
    pub views_refreshed_incrementally: AtomicU64,
    pub admission_waits: AtomicU64,
}

impl TenantCounters {
    pub fn snapshot(&self) -> TenantStats {
        TenantStats {
            batches: self.batches.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            view_hits: self.view_hits.load(Ordering::Relaxed),
            intersect_hits: self.intersect_hits.load(Ordering::Relaxed),
            direct: self.direct.load(Ordering::Relaxed),
            updates_applied: self.updates_applied.load(Ordering::Relaxed),
            views_refreshed_incrementally: self
                .views_refreshed_incrementally
                .load(Ordering::Relaxed),
            admission_waits: self.admission_waits.load(Ordering::Relaxed),
        }
    }
}

/// One lock shard of the tenant-counter map.
type TenantShard = RwLock<HashMap<String, Arc<TenantCounters>>>;

/// The sharded tenant-counter table.
#[derive(Debug)]
pub(crate) struct TenantRegistry {
    shards: Box<[TenantShard]>,
}

impl TenantRegistry {
    pub fn new() -> TenantRegistry {
        TenantRegistry { shards: (0..TENANT_SHARDS).map(|_| RwLock::new(HashMap::new())).collect() }
    }

    fn shard(&self, tenant: &str) -> &TenantShard {
        let mut hasher = DefaultHasher::new();
        tenant.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    /// The live counters for `tenant`, creating them on first sight. The
    /// common path is a shared read lock + relaxed atomic adds (a write
    /// lock is taken only on a tenant's first appearance).
    pub fn counters(&self, tenant: &str) -> Arc<TenantCounters> {
        let shard = self.shard(tenant);
        if let Some(counters) = shard.read().expect("tenant stats poisoned").get(tenant) {
            return Arc::clone(counters);
        }
        let mut map = shard.write().expect("tenant stats poisoned");
        Arc::clone(map.entry(tenant.to_string()).or_default())
    }

    /// Accounts one answered batch to `tenant`.
    pub fn account_batch(&self, tenant: &str, answers: &[CacheAnswer]) {
        self.account_routes(tenant, answers.len(), answers.iter().map(|a| &a.route));
    }

    /// [`TenantRegistry::account_batch`] for the arena answer lane.
    pub fn account_batch_refs(&self, tenant: &str, answers: &[CacheAnswerRef]) {
        self.account_routes(tenant, answers.len(), answers.iter().map(|a| a.route.as_ref()));
    }

    fn account_routes<'a>(
        &self,
        tenant: &str,
        queries: usize,
        routes: impl Iterator<Item = &'a Route>,
    ) {
        let counters = self.counters(tenant);
        counters.batches.fetch_add(1, Ordering::Relaxed);
        counters.queries.fetch_add(queries as u64, Ordering::Relaxed);
        for route in routes {
            match route {
                Route::ViaView { .. } => counters.view_hits.fetch_add(1, Ordering::Relaxed),
                Route::Intersect { .. } => counters.intersect_hits.fetch_add(1, Ordering::Relaxed),
                Route::Direct => counters.direct.fetch_add(1, Ordering::Relaxed),
            };
        }
    }

    /// This tenant's lifetime counters (`None` before its first batch).
    pub fn get(&self, tenant: &str) -> Option<TenantStats> {
        let shard = self.shard(tenant);
        let map = shard.read().expect("tenant stats poisoned");
        map.get(tenant).map(|c| c.snapshot())
    }

    /// All tenants with their counters, sorted by tenant id.
    pub fn all(&self) -> Vec<(String, TenantStats)> {
        let mut all: Vec<(String, TenantStats)> = Vec::new();
        for shard in self.shards.iter() {
            let map = shard.read().expect("tenant stats poisoned");
            all.extend(map.iter().map(|(k, v)| (k.clone(), v.snapshot())));
        }
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }
}
