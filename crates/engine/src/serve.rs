//! The synchronous serving façade over the async front-end.
//!
//! [`CacheServer`] is the legacy worker-pool API — `submit` a tenant's
//! query batch, block while the admission window is full, resolve a
//! [`BatchTicket`] — kept **source-compatible** as a thin wrapper over
//! [`AsyncCacheServer`](crate::AsyncCacheServer)'s in-process transport.
//! What used to be a `std::thread` pool draining a `Mutex<VecDeque>` +
//! two-`Condvar` admission queue is now the same fixed CPU pool that
//! serves socket connections: each submitted batch becomes one task on
//! the `xpv-net` executor, the `max_pending` bound becomes the in-process
//! admission semaphore, and blocking-submit backpressure, per-tenant
//! accounting ([`TenantStats`]), and drain-on-drop semantics are
//! unchanged. Batch semantics are exactly those of
//! [`ShardedViewCache::answer_batch`]: answers in input order, in-batch
//! duplicates planned once and fanned out.
//!
//! Embedders that talk to the cache from inside the process keep using
//! this type; anything that serves *remote* traffic (sockets, the wire
//! protocol, per-connection credit windows) uses
//! [`AsyncCacheServer`](crate::AsyncCacheServer) directly.

use std::sync::Arc;

use xpv_maintain::{Edit, EditError};
use xpv_pattern::Pattern;

use crate::aserve::AsyncCacheServer;
pub use crate::aserve::{BatchRejected, BatchTicket, DEFAULT_MAX_PENDING};
use crate::shard::{CacheAnswer, ShardedViewCache, UpdateReport};
pub use crate::tenants::TenantStats;

/// A fixed worker pool answering query batches through one shared
/// [`ShardedViewCache`] — the in-process compatibility face of
/// [`AsyncCacheServer`].
///
/// ```
/// use std::sync::Arc;
/// use xpv_engine::{CacheServer, ShardedViewCache};
/// use xpv_model::TreeBuilder;
/// use xpv_pattern::parse_xpath;
///
/// let doc = TreeBuilder::root("a", |b| {
///     b.leaf("b");
/// });
/// let cache = ShardedViewCache::new(doc);
/// cache.add_view("bs", parse_xpath("a/b").unwrap());
/// let server = CacheServer::start(Arc::new(cache), 2);
/// let answers = server.answer_batch("tenant-1", &[parse_xpath("a/b").unwrap()]);
/// assert_eq!(answers.len(), 1);
/// assert_eq!(server.tenant_stats("tenant-1").unwrap().queries, 1);
/// ```
pub struct CacheServer {
    inner: AsyncCacheServer,
}

impl CacheServer {
    /// Starts `workers` pool threads (minimum 1) over `cache` with the
    /// default admission bound.
    pub fn start(cache: Arc<ShardedViewCache>, workers: usize) -> CacheServer {
        Self::start_bounded(cache, workers, DEFAULT_MAX_PENDING)
    }

    /// [`CacheServer::start`] with an explicit admission bound (minimum
    /// 1): submitters block once `max_pending` batches are in flight.
    pub fn start_bounded(
        cache: Arc<ShardedViewCache>,
        workers: usize,
        max_pending: usize,
    ) -> CacheServer {
        CacheServer { inner: AsyncCacheServer::start_bounded(cache, workers, max_pending) }
    }

    /// The shared cache the pool answers from.
    pub fn cache(&self) -> &Arc<ShardedViewCache> {
        self.inner.cache()
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.inner.workers()
    }

    /// The async front-end underneath — for callers that start in-process
    /// and want to open a socket listener on the same pool.
    pub fn as_async(&self) -> &AsyncCacheServer {
        &self.inner
    }

    /// Admits a batch for `tenant`, blocking while the admission window
    /// is full (the wait is accounted as
    /// [`TenantStats::admission_waits`]). Returns a ticket resolving to
    /// the answers (input order). Accepts any `Into<Vec<Pattern>>`: pass
    /// an owned `Vec` to hand the batch over without copying, or a slice
    /// to clone as before.
    pub fn submit(&self, tenant: &str, queries: impl Into<Vec<Pattern>>) -> BatchTicket {
        self.inner.submit(tenant, queries)
    }

    /// Submits and waits: synchronous batch answering with
    /// [`ShardedViewCache::answer_batch`] semantics. Like
    /// [`CacheServer::submit`], takes `impl Into<Vec<Pattern>>` so owned
    /// batches avoid the defensive copy on the hot path.
    pub fn answer_batch(&self, tenant: &str, queries: impl Into<Vec<Pattern>>) -> Vec<CacheAnswer> {
        self.submit(tenant, queries).wait()
    }

    /// Applies a document edit batch through the shared cache on behalf of
    /// `tenant`: views are refreshed incrementally and only plan-memo
    /// routes whose participants' answers changed are dropped (see
    /// [`ShardedViewCache::apply_edits`]). Queries already admitted keep
    /// answering from the pre-update snapshot; the edit is accounted to the
    /// tenant's [`TenantStats`].
    pub fn apply_edits(&self, tenant: &str, edits: &[Edit]) -> Result<UpdateReport, EditError> {
        self.inner.apply_edits(tenant, edits)
    }

    /// This tenant's lifetime counters (`None` before its first batch).
    pub fn tenant_stats(&self, tenant: &str) -> Option<TenantStats> {
        self.inner.tenant_stats(tenant)
    }

    /// All tenants with their counters, sorted by tenant id.
    pub fn tenants(&self) -> Vec<(String, TenantStats)> {
        self.inner.tenants()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpv_model::{Tree, TreeBuilder};
    use xpv_pattern::parse_xpath;

    fn pat(s: &str) -> Pattern {
        parse_xpath(s).expect("pattern parses")
    }

    fn doc() -> Tree {
        TreeBuilder::root("site", |b| {
            for _ in 0..3 {
                b.child("region", |b| {
                    b.child("item", |b| {
                        b.leaf("name");
                    });
                });
            }
        })
    }

    fn server(workers: usize) -> CacheServer {
        let cache = ShardedViewCache::new(doc()).with_shards(4);
        cache.add_view("items", pat("site/region/item"));
        CacheServer::start(Arc::new(cache), workers)
    }

    #[test]
    fn batches_resolve_in_input_order() {
        let server = server(3);
        let qs = vec![pat("site/region/item/name"), pat("site/region"), pat("site//name")];
        let answers = server.answer_batch("t1", qs.clone());
        assert_eq!(answers.len(), 3);
        for (q, a) in qs.iter().zip(&answers) {
            assert_eq!(a.nodes, server.cache().answer_direct(q), "order broken for {q}");
        }
    }

    #[test]
    fn concurrent_submissions_from_many_tenants() {
        let server = Arc::new(server(4));
        let qs = vec![pat("site/region/item/name"), pat("site/region/item")];
        std::thread::scope(|scope| {
            for t in 0..4 {
                let server = Arc::clone(&server);
                let qs = qs.clone();
                scope.spawn(move || {
                    let tenant = format!("tenant-{t}");
                    for _ in 0..5 {
                        let answers = server.answer_batch(&tenant, qs.clone());
                        assert_eq!(answers.len(), qs.len());
                    }
                });
            }
        });
        let tenants = server.tenants();
        assert_eq!(tenants.len(), 4);
        for (name, stats) in tenants {
            assert_eq!(stats.batches, 5, "{name}");
            assert_eq!(stats.queries, 10, "{name}");
            assert_eq!(stats.view_hits + stats.direct, stats.queries, "{name}");
        }
        assert_eq!(server.cache().stats().queries, 40);
    }

    #[test]
    fn tickets_allow_pipelined_submission() {
        let server = server(2);
        let q = pat("site/region/item/name");
        let tickets: Vec<BatchTicket> =
            (0..8).map(|_| server.submit("pipeline", vec![q.clone()])).collect();
        for ticket in tickets {
            let answers = ticket.wait();
            assert_eq!(answers[0].nodes, server.cache().answer_direct(&q));
        }
        assert_eq!(server.tenant_stats("pipeline").unwrap().batches, 8);
    }

    #[test]
    fn drop_completes_pending_work() {
        let server = server(1);
        let q = pat("site/region/item/name");
        let tickets: Vec<BatchTicket> =
            (0..4).map(|_| server.submit("t", vec![q.clone()])).collect();
        drop(server);
        // The drain completes every admitted batch before stopping.
        for ticket in tickets {
            assert_eq!(ticket.wait().len(), 1);
        }
    }

    #[test]
    fn slice_submissions_still_compile_and_serve() {
        // The old `&[Pattern]` call shape keeps working through
        // `impl Into<Vec<Pattern>>` (cloning, exactly as before).
        let server = server(1);
        let qs = [pat("site/region/item/name")];
        let answers = server.answer_batch("compat", &qs[..]);
        assert_eq!(answers.len(), 1);
    }

    #[test]
    fn tenant_stats_display() {
        let server = server(1);
        let _ = server.answer_batch("acme", &[pat("site/region/item/name")]);
        let stats = server.tenant_stats("acme").unwrap();
        let line = stats.to_string();
        assert!(line.contains("queries=1"), "got: {line}");
        assert!(line.contains("batches=1"), "got: {line}");
        // Display renders the same enumeration `visit` exposes.
        stats.visit(&mut |name, _| {
            assert!(line.contains(&format!("{name}=")), "{name} missing from: {line}");
        });
        assert!(!line.contains('\n'));
    }

    #[test]
    fn updates_flow_through_the_server_and_are_accounted() {
        use xpv_maintain::Edit;
        use xpv_model::TreeBuilder;

        let server = server(2);
        let q = pat("site/region/item/name");
        let before = server.answer_batch("writer", std::slice::from_ref(&q));
        let doc = server.cache().document();
        let region = doc.children(doc.root())[0];
        let graft = TreeBuilder::root("item", |b| {
            b.leaf("name");
        });
        let report = server
            .apply_edits("writer", &[Edit::InsertSubtree { parent: region, subtree: graft }])
            .expect("valid edit");
        assert_eq!(report.edits_applied, 1);
        let after = server.answer_batch("writer", std::slice::from_ref(&q));
        assert_eq!(after[0].nodes.len(), before[0].nodes.len() + 1);
        assert_eq!(after[0].nodes, server.cache().answer_direct(&q));
        let stats = server.tenant_stats("writer").expect("accounted");
        assert_eq!(stats.updates_applied, 1);
        assert_eq!(stats.views_refreshed_incrementally, 1);
        assert_eq!(stats.batches, 2);
    }
}
