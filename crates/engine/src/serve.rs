//! A worker-pool serving front-end over the sharded cache.
//!
//! [`CacheServer`] turns the [`ShardedViewCache`] library into a service: a
//! fixed pool of `std::thread` workers drains a bounded **admission queue**
//! of query batches, answers each batch through the shared cache (planning,
//! plan memo, and containment verdicts pooled across all workers), and
//! replies on a per-batch channel. Batch semantics are exactly those of
//! [`ShardedViewCache::answer_batch`]: answers in input order, in-batch
//! duplicates planned once and fanned out.
//!
//! Every batch is submitted on behalf of a **tenant** (any string id);
//! per-tenant counters ([`TenantStats`]) accumulate across batches for
//! accounting and capacity planning. Backpressure is explicit: when the
//! admission queue is full, [`CacheServer::submit`] blocks until a worker
//! drains a slot, so a misbehaving client slows itself down rather than
//! growing the queue without bound.
//!
//! The pool shuts down cleanly on drop: pending batches are completed,
//! workers are joined, and outstanding [`BatchTicket`]s resolve.
//!
//! This is the synchronous precursor of the ROADMAP's async front-end: the
//! admission queue is the seam where an async reactor would slot in.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use xpv_pattern::Pattern;

use crate::shard::{CacheAnswer, Route, ShardedViewCache};

/// Default bound on queued (admitted but not yet started) batches.
pub const DEFAULT_MAX_PENDING: usize = 1024;

/// Per-tenant serving counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Batches answered for this tenant.
    pub batches: u64,
    /// Individual queries answered (sum of batch lengths).
    pub queries: u64,
    /// Queries answered from a view through an equivalent rewriting.
    pub view_hits: u64,
    /// Queries answered from a multi-view intersection.
    pub intersect_hits: u64,
    /// Queries answered by direct evaluation.
    pub direct: u64,
}

impl std::fmt::Display for TenantStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} queries in {} batches ({} via views, {} via intersections, {} direct)",
            self.queries, self.batches, self.view_hits, self.intersect_hits, self.direct
        )
    }
}

/// One admitted unit of work: a tenant's query batch plus its reply slot.
struct Job {
    tenant: String,
    queries: Vec<Pattern>,
    reply: mpsc::Sender<Vec<CacheAnswer>>,
}

/// State shared between submitters and workers.
struct Shared {
    cache: Arc<ShardedViewCache>,
    queue: Mutex<VecDeque<Job>>,
    /// Signalled when a job is pushed (workers wait on this).
    job_ready: Condvar,
    /// Signalled when a job is popped (submitters blocked on a full queue
    /// wait on this).
    slot_ready: Condvar,
    max_pending: usize,
    shutting_down: AtomicBool,
    tenants: Mutex<HashMap<String, TenantStats>>,
}

/// A pending batch: resolve it with [`BatchTicket::wait`].
#[must_use = "a submitted batch is only observable through its ticket"]
pub struct BatchTicket {
    rx: mpsc::Receiver<Vec<CacheAnswer>>,
}

impl BatchTicket {
    /// Blocks until the batch is answered (answers in input order).
    ///
    /// # Panics
    ///
    /// Panics if the server was dropped before answering this batch — a
    /// programming error, since `Drop` drains the queue first.
    pub fn wait(self) -> Vec<CacheAnswer> {
        self.rx.recv().expect("cache server dropped a pending batch")
    }
}

/// A fixed worker pool answering query batches through one shared
/// [`ShardedViewCache`].
///
/// ```
/// use std::sync::Arc;
/// use xpv_engine::{CacheServer, ShardedViewCache};
/// use xpv_model::TreeBuilder;
/// use xpv_pattern::parse_xpath;
///
/// let doc = TreeBuilder::root("a", |b| {
///     b.leaf("b");
/// });
/// let cache = ShardedViewCache::new(doc);
/// cache.add_view("bs", parse_xpath("a/b").unwrap());
/// let server = CacheServer::start(Arc::new(cache), 2);
/// let answers = server.answer_batch("tenant-1", &[parse_xpath("a/b").unwrap()]);
/// assert_eq!(answers.len(), 1);
/// assert_eq!(server.tenant_stats("tenant-1").unwrap().queries, 1);
/// ```
pub struct CacheServer {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl CacheServer {
    /// Starts `workers` threads (minimum 1) over `cache` with the default
    /// admission-queue bound.
    pub fn start(cache: Arc<ShardedViewCache>, workers: usize) -> CacheServer {
        Self::start_bounded(cache, workers, DEFAULT_MAX_PENDING)
    }

    /// [`CacheServer::start`] with an explicit admission-queue bound
    /// (minimum 1): submitters block once `max_pending` batches are queued.
    pub fn start_bounded(
        cache: Arc<ShardedViewCache>,
        workers: usize,
        max_pending: usize,
    ) -> CacheServer {
        let shared = Arc::new(Shared {
            cache,
            queue: Mutex::new(VecDeque::new()),
            job_ready: Condvar::new(),
            slot_ready: Condvar::new(),
            max_pending: max_pending.max(1),
            shutting_down: AtomicBool::new(false),
            tenants: Mutex::new(HashMap::new()),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("xpv-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn cache server worker")
            })
            .collect();
        CacheServer { shared, workers }
    }

    /// The shared cache the pool answers from.
    pub fn cache(&self) -> &Arc<ShardedViewCache> {
        &self.shared.cache
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Admits a batch for `tenant`, blocking while the admission queue is
    /// full. Returns a ticket resolving to the answers (input order).
    pub fn submit(&self, tenant: &str, queries: Vec<Pattern>) -> BatchTicket {
        let (tx, rx) = mpsc::channel();
        let job = Job { tenant: tenant.to_string(), queries, reply: tx };
        let mut queue = self.shared.queue.lock().expect("admission queue poisoned");
        while queue.len() >= self.shared.max_pending {
            queue = self.shared.slot_ready.wait(queue).expect("admission queue poisoned");
        }
        queue.push_back(job);
        drop(queue);
        self.shared.job_ready.notify_one();
        BatchTicket { rx }
    }

    /// Submits and waits: synchronous batch answering with
    /// [`ShardedViewCache::answer_batch`] semantics.
    pub fn answer_batch(&self, tenant: &str, queries: &[Pattern]) -> Vec<CacheAnswer> {
        self.submit(tenant, queries.to_vec()).wait()
    }

    /// This tenant's lifetime counters (`None` before its first batch).
    pub fn tenant_stats(&self, tenant: &str) -> Option<TenantStats> {
        self.shared.tenants.lock().expect("tenant stats poisoned").get(tenant).copied()
    }

    /// All tenants with their counters, sorted by tenant id.
    pub fn tenants(&self) -> Vec<(String, TenantStats)> {
        let mut all: Vec<(String, TenantStats)> = self
            .shared
            .tenants
            .lock()
            .expect("tenant stats poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }
}

impl Drop for CacheServer {
    fn drop(&mut self) {
        self.shared.shutting_down.store(true, Ordering::Relaxed);
        self.shared.job_ready.notify_all();
        self.shared.slot_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("admission queue poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    shared.slot_ready.notify_one();
                    break job;
                }
                if shared.shutting_down.load(Ordering::Relaxed) {
                    return;
                }
                queue = shared.job_ready.wait(queue).expect("admission queue poisoned");
            }
        };
        let answers = shared.cache.answer_batch(&job.queries);
        {
            let mut tenants = shared.tenants.lock().expect("tenant stats poisoned");
            let stats = tenants.entry(job.tenant).or_default();
            stats.batches += 1;
            stats.queries += answers.len() as u64;
            for a in &answers {
                match a.route {
                    Route::ViaView { .. } => stats.view_hits += 1,
                    Route::Intersect { .. } => stats.intersect_hits += 1,
                    Route::Direct => stats.direct += 1,
                }
            }
        }
        // A dropped ticket (caller gave up) is fine; the work is done.
        let _ = job.reply.send(answers);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpv_model::{Tree, TreeBuilder};
    use xpv_pattern::parse_xpath;

    fn pat(s: &str) -> Pattern {
        parse_xpath(s).expect("pattern parses")
    }

    fn doc() -> Tree {
        TreeBuilder::root("site", |b| {
            for _ in 0..3 {
                b.child("region", |b| {
                    b.child("item", |b| {
                        b.leaf("name");
                    });
                });
            }
        })
    }

    fn server(workers: usize) -> CacheServer {
        let cache = ShardedViewCache::new(doc()).with_shards(4);
        cache.add_view("items", pat("site/region/item"));
        CacheServer::start(Arc::new(cache), workers)
    }

    #[test]
    fn batches_resolve_in_input_order() {
        let server = server(3);
        let qs = vec![pat("site/region/item/name"), pat("site/region"), pat("site//name")];
        let answers = server.answer_batch("t1", &qs);
        assert_eq!(answers.len(), 3);
        for (q, a) in qs.iter().zip(&answers) {
            assert_eq!(a.nodes, server.cache().answer_direct(q), "order broken for {q}");
        }
    }

    #[test]
    fn concurrent_submissions_from_many_tenants() {
        let server = Arc::new(server(4));
        let qs = vec![pat("site/region/item/name"), pat("site/region/item")];
        std::thread::scope(|scope| {
            for t in 0..4 {
                let server = Arc::clone(&server);
                let qs = qs.clone();
                scope.spawn(move || {
                    let tenant = format!("tenant-{t}");
                    for _ in 0..5 {
                        let answers = server.answer_batch(&tenant, &qs);
                        assert_eq!(answers.len(), qs.len());
                    }
                });
            }
        });
        let tenants = server.tenants();
        assert_eq!(tenants.len(), 4);
        for (name, stats) in tenants {
            assert_eq!(stats.batches, 5, "{name}");
            assert_eq!(stats.queries, 10, "{name}");
            assert_eq!(stats.view_hits + stats.direct, stats.queries, "{name}");
        }
        assert_eq!(server.cache().stats().queries, 40);
    }

    #[test]
    fn tickets_allow_pipelined_submission() {
        let server = server(2);
        let q = pat("site/region/item/name");
        let tickets: Vec<BatchTicket> =
            (0..8).map(|_| server.submit("pipeline", vec![q.clone()])).collect();
        for ticket in tickets {
            let answers = ticket.wait();
            assert_eq!(answers[0].nodes, server.cache().answer_direct(&q));
        }
        assert_eq!(server.tenant_stats("pipeline").unwrap().batches, 8);
    }

    #[test]
    fn drop_completes_pending_work() {
        let server = server(1);
        let q = pat("site/region/item/name");
        let tickets: Vec<BatchTicket> =
            (0..4).map(|_| server.submit("t", vec![q.clone()])).collect();
        drop(server);
        // Workers drain every admitted job before exiting.
        for ticket in tickets {
            assert_eq!(ticket.wait().len(), 1);
        }
    }

    #[test]
    fn tenant_stats_display() {
        let server = server(1);
        let _ = server.answer_batch("acme", &[pat("site/region/item/name")]);
        let line = server.tenant_stats("acme").unwrap().to_string();
        assert!(line.contains("1 queries in 1 batches"), "got: {line}");
    }
}
