//! A worker-pool serving front-end over the sharded cache.
//!
//! [`CacheServer`] turns the [`ShardedViewCache`] library into a service: a
//! fixed pool of `std::thread` workers drains a bounded **admission queue**
//! of query batches, answers each batch through the shared cache (planning,
//! plan memo, and containment verdicts pooled across all workers), and
//! replies on a per-batch channel. Batch semantics are exactly those of
//! [`ShardedViewCache::answer_batch`]: answers in input order, in-batch
//! duplicates planned once and fanned out.
//!
//! Every batch is submitted on behalf of a **tenant** (any string id);
//! per-tenant counters ([`TenantStats`]) accumulate across batches for
//! accounting and capacity planning. The counters are **sharded and
//! atomic**: tenants hash onto `RwLock<HashMap>` shards whose values are
//! `Arc`s of plain atomic counters, so the steady-state account path is a
//! shared read lock plus relaxed atomic adds — no serialization point
//! across workers (the old single `Mutex<HashMap>` was the scaling
//! bottleneck the ROADMAP called out). Backpressure is explicit: when the
//! admission queue is full, [`CacheServer::submit`] blocks until a worker
//! drains a slot, so a misbehaving client slows itself down rather than
//! growing the queue without bound.
//!
//! The server is also the front door for **document updates**:
//! [`CacheServer::apply_edits`] applies an edit batch through the shared
//! cache (incremental view maintenance, participant-aware route
//! invalidation) and accounts it to the submitting tenant. Updates
//! serialize on the cache's writer gate and do their maintenance work on
//! clones off-lock; queries keep answering from the previous copy-on-write
//! snapshot while an update is in flight.
//!
//! The pool shuts down cleanly on drop: pending batches are completed,
//! workers are joined, and outstanding [`BatchTicket`]s resolve.
//!
//! This is the synchronous precursor of the ROADMAP's async front-end: the
//! admission queue is the seam where an async reactor would slot in.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;

use xpv_maintain::{Edit, EditError};
use xpv_pattern::Pattern;

use crate::shard::{CacheAnswer, Route, ShardedViewCache, UpdateReport};

/// Default bound on queued (admitted but not yet started) batches.
pub const DEFAULT_MAX_PENDING: usize = 1024;

/// Number of tenant-stats lock shards.
const TENANT_SHARDS: usize = 16;

/// Per-tenant serving counters (a point-in-time snapshot; the live
/// counters are sharded atomics).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Batches answered for this tenant.
    pub batches: u64,
    /// Individual queries answered (sum of batch lengths).
    pub queries: u64,
    /// Queries answered from a view through an equivalent rewriting.
    pub view_hits: u64,
    /// Queries answered from a multi-view intersection.
    pub intersect_hits: u64,
    /// Queries answered by direct evaluation.
    pub direct: u64,
    /// Document edits this tenant applied through
    /// [`CacheServer::apply_edits`].
    pub updates_applied: u64,
    /// Views incrementally refreshed on behalf of this tenant's updates.
    pub views_refreshed_incrementally: u64,
}

impl std::fmt::Display for TenantStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} queries in {} batches ({} via views, {} via intersections, {} direct), \
             {} edits applied / {} views refreshed incrementally",
            self.queries,
            self.batches,
            self.view_hits,
            self.intersect_hits,
            self.direct,
            self.updates_applied,
            self.views_refreshed_incrementally
        )
    }
}

/// The live, lock-free per-tenant counters behind [`TenantStats`].
#[derive(Debug, Default)]
struct TenantCounters {
    batches: AtomicU64,
    queries: AtomicU64,
    view_hits: AtomicU64,
    intersect_hits: AtomicU64,
    direct: AtomicU64,
    updates_applied: AtomicU64,
    views_refreshed_incrementally: AtomicU64,
}

impl TenantCounters {
    fn snapshot(&self) -> TenantStats {
        TenantStats {
            batches: self.batches.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            view_hits: self.view_hits.load(Ordering::Relaxed),
            intersect_hits: self.intersect_hits.load(Ordering::Relaxed),
            direct: self.direct.load(Ordering::Relaxed),
            updates_applied: self.updates_applied.load(Ordering::Relaxed),
            views_refreshed_incrementally: self
                .views_refreshed_incrementally
                .load(Ordering::Relaxed),
        }
    }
}

/// One admitted unit of work: a tenant's query batch plus its reply slot.
struct Job {
    tenant: String,
    queries: Vec<Pattern>,
    reply: mpsc::Sender<Vec<CacheAnswer>>,
}

/// State shared between submitters and workers.
struct Shared {
    cache: Arc<ShardedViewCache>,
    queue: Mutex<VecDeque<Job>>,
    /// Signalled when a job is pushed (workers wait on this).
    job_ready: Condvar,
    /// Signalled when a job is popped (submitters blocked on a full queue
    /// wait on this).
    slot_ready: Condvar,
    max_pending: usize,
    shutting_down: AtomicBool,
    /// Tenant counters, lock-sharded by tenant-id hash; the common path is
    /// a shared read lock + relaxed atomic adds (a write lock is taken only
    /// on a tenant's first appearance).
    tenants: Box<[TenantShard]>,
}

/// One lock shard of the tenant-counter map.
type TenantShard = RwLock<HashMap<String, Arc<TenantCounters>>>;

impl Shared {
    /// The live counters for `tenant`, creating them on first sight.
    fn tenant_counters(&self, tenant: &str) -> Arc<TenantCounters> {
        let mut hasher = DefaultHasher::new();
        tenant.hash(&mut hasher);
        let shard = &self.tenants[(hasher.finish() as usize) % self.tenants.len()];
        if let Some(counters) = shard.read().expect("tenant stats poisoned").get(tenant) {
            return Arc::clone(counters);
        }
        let mut map = shard.write().expect("tenant stats poisoned");
        Arc::clone(map.entry(tenant.to_string()).or_default())
    }
}

/// A pending batch: resolve it with [`BatchTicket::wait`].
#[must_use = "a submitted batch is only observable through its ticket"]
pub struct BatchTicket {
    rx: mpsc::Receiver<Vec<CacheAnswer>>,
}

impl BatchTicket {
    /// Blocks until the batch is answered (answers in input order).
    ///
    /// # Panics
    ///
    /// Panics if the server was dropped before answering this batch — a
    /// programming error, since `Drop` drains the queue first.
    pub fn wait(self) -> Vec<CacheAnswer> {
        self.rx.recv().expect("cache server dropped a pending batch")
    }
}

/// A fixed worker pool answering query batches through one shared
/// [`ShardedViewCache`].
///
/// ```
/// use std::sync::Arc;
/// use xpv_engine::{CacheServer, ShardedViewCache};
/// use xpv_model::TreeBuilder;
/// use xpv_pattern::parse_xpath;
///
/// let doc = TreeBuilder::root("a", |b| {
///     b.leaf("b");
/// });
/// let cache = ShardedViewCache::new(doc);
/// cache.add_view("bs", parse_xpath("a/b").unwrap());
/// let server = CacheServer::start(Arc::new(cache), 2);
/// let answers = server.answer_batch("tenant-1", &[parse_xpath("a/b").unwrap()]);
/// assert_eq!(answers.len(), 1);
/// assert_eq!(server.tenant_stats("tenant-1").unwrap().queries, 1);
/// ```
pub struct CacheServer {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl CacheServer {
    /// Starts `workers` threads (minimum 1) over `cache` with the default
    /// admission-queue bound.
    pub fn start(cache: Arc<ShardedViewCache>, workers: usize) -> CacheServer {
        Self::start_bounded(cache, workers, DEFAULT_MAX_PENDING)
    }

    /// [`CacheServer::start`] with an explicit admission-queue bound
    /// (minimum 1): submitters block once `max_pending` batches are queued.
    pub fn start_bounded(
        cache: Arc<ShardedViewCache>,
        workers: usize,
        max_pending: usize,
    ) -> CacheServer {
        let shared = Arc::new(Shared {
            cache,
            queue: Mutex::new(VecDeque::new()),
            job_ready: Condvar::new(),
            slot_ready: Condvar::new(),
            max_pending: max_pending.max(1),
            shutting_down: AtomicBool::new(false),
            tenants: (0..TENANT_SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("xpv-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn cache server worker")
            })
            .collect();
        CacheServer { shared, workers }
    }

    /// The shared cache the pool answers from.
    pub fn cache(&self) -> &Arc<ShardedViewCache> {
        &self.shared.cache
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Admits a batch for `tenant`, blocking while the admission queue is
    /// full. Returns a ticket resolving to the answers (input order).
    pub fn submit(&self, tenant: &str, queries: Vec<Pattern>) -> BatchTicket {
        let (tx, rx) = mpsc::channel();
        let job = Job { tenant: tenant.to_string(), queries, reply: tx };
        let mut queue = self.shared.queue.lock().expect("admission queue poisoned");
        while queue.len() >= self.shared.max_pending {
            queue = self.shared.slot_ready.wait(queue).expect("admission queue poisoned");
        }
        queue.push_back(job);
        drop(queue);
        self.shared.job_ready.notify_one();
        BatchTicket { rx }
    }

    /// Submits and waits: synchronous batch answering with
    /// [`ShardedViewCache::answer_batch`] semantics.
    pub fn answer_batch(&self, tenant: &str, queries: &[Pattern]) -> Vec<CacheAnswer> {
        self.submit(tenant, queries.to_vec()).wait()
    }

    /// Applies a document edit batch through the shared cache on behalf of
    /// `tenant`: views are refreshed incrementally and only plan-memo
    /// routes whose participants' answers changed are dropped (see
    /// [`ShardedViewCache::apply_edits`]). Queries already admitted keep
    /// answering from the pre-update snapshot; the edit is accounted to the
    /// tenant's [`TenantStats`].
    pub fn apply_edits(&self, tenant: &str, edits: &[Edit]) -> Result<UpdateReport, EditError> {
        let report = self.shared.cache.apply_edits(edits)?;
        let counters = self.shared.tenant_counters(tenant);
        counters.updates_applied.fetch_add(report.edits_applied as u64, Ordering::Relaxed);
        counters
            .views_refreshed_incrementally
            .fetch_add(report.views_refreshed as u64, Ordering::Relaxed);
        Ok(report)
    }

    /// This tenant's lifetime counters (`None` before its first batch).
    pub fn tenant_stats(&self, tenant: &str) -> Option<TenantStats> {
        let mut hasher = DefaultHasher::new();
        tenant.hash(&mut hasher);
        let shard = &self.shared.tenants[(hasher.finish() as usize) % self.shared.tenants.len()];
        let map = shard.read().expect("tenant stats poisoned");
        map.get(tenant).map(|c| c.snapshot())
    }

    /// All tenants with their counters, sorted by tenant id.
    pub fn tenants(&self) -> Vec<(String, TenantStats)> {
        let mut all: Vec<(String, TenantStats)> = Vec::new();
        for shard in self.shared.tenants.iter() {
            let map = shard.read().expect("tenant stats poisoned");
            all.extend(map.iter().map(|(k, v)| (k.clone(), v.snapshot())));
        }
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }
}

impl Drop for CacheServer {
    fn drop(&mut self) {
        self.shared.shutting_down.store(true, Ordering::Relaxed);
        self.shared.job_ready.notify_all();
        self.shared.slot_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("admission queue poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    shared.slot_ready.notify_one();
                    break job;
                }
                if shared.shutting_down.load(Ordering::Relaxed) {
                    return;
                }
                queue = shared.job_ready.wait(queue).expect("admission queue poisoned");
            }
        };
        let answers = shared.cache.answer_batch(&job.queries);
        {
            // Sharded read-mostly accounting: no cross-worker serialization
            // once the tenant exists.
            let counters = shared.tenant_counters(&job.tenant);
            counters.batches.fetch_add(1, Ordering::Relaxed);
            counters.queries.fetch_add(answers.len() as u64, Ordering::Relaxed);
            for a in &answers {
                match a.route {
                    Route::ViaView { .. } => counters.view_hits.fetch_add(1, Ordering::Relaxed),
                    Route::Intersect { .. } => {
                        counters.intersect_hits.fetch_add(1, Ordering::Relaxed)
                    }
                    Route::Direct => counters.direct.fetch_add(1, Ordering::Relaxed),
                };
            }
        }
        // A dropped ticket (caller gave up) is fine; the work is done.
        let _ = job.reply.send(answers);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpv_model::{Tree, TreeBuilder};
    use xpv_pattern::parse_xpath;

    fn pat(s: &str) -> Pattern {
        parse_xpath(s).expect("pattern parses")
    }

    fn doc() -> Tree {
        TreeBuilder::root("site", |b| {
            for _ in 0..3 {
                b.child("region", |b| {
                    b.child("item", |b| {
                        b.leaf("name");
                    });
                });
            }
        })
    }

    fn server(workers: usize) -> CacheServer {
        let cache = ShardedViewCache::new(doc()).with_shards(4);
        cache.add_view("items", pat("site/region/item"));
        CacheServer::start(Arc::new(cache), workers)
    }

    #[test]
    fn batches_resolve_in_input_order() {
        let server = server(3);
        let qs = vec![pat("site/region/item/name"), pat("site/region"), pat("site//name")];
        let answers = server.answer_batch("t1", &qs);
        assert_eq!(answers.len(), 3);
        for (q, a) in qs.iter().zip(&answers) {
            assert_eq!(a.nodes, server.cache().answer_direct(q), "order broken for {q}");
        }
    }

    #[test]
    fn concurrent_submissions_from_many_tenants() {
        let server = Arc::new(server(4));
        let qs = vec![pat("site/region/item/name"), pat("site/region/item")];
        std::thread::scope(|scope| {
            for t in 0..4 {
                let server = Arc::clone(&server);
                let qs = qs.clone();
                scope.spawn(move || {
                    let tenant = format!("tenant-{t}");
                    for _ in 0..5 {
                        let answers = server.answer_batch(&tenant, &qs);
                        assert_eq!(answers.len(), qs.len());
                    }
                });
            }
        });
        let tenants = server.tenants();
        assert_eq!(tenants.len(), 4);
        for (name, stats) in tenants {
            assert_eq!(stats.batches, 5, "{name}");
            assert_eq!(stats.queries, 10, "{name}");
            assert_eq!(stats.view_hits + stats.direct, stats.queries, "{name}");
        }
        assert_eq!(server.cache().stats().queries, 40);
    }

    #[test]
    fn tickets_allow_pipelined_submission() {
        let server = server(2);
        let q = pat("site/region/item/name");
        let tickets: Vec<BatchTicket> =
            (0..8).map(|_| server.submit("pipeline", vec![q.clone()])).collect();
        for ticket in tickets {
            let answers = ticket.wait();
            assert_eq!(answers[0].nodes, server.cache().answer_direct(&q));
        }
        assert_eq!(server.tenant_stats("pipeline").unwrap().batches, 8);
    }

    #[test]
    fn drop_completes_pending_work() {
        let server = server(1);
        let q = pat("site/region/item/name");
        let tickets: Vec<BatchTicket> =
            (0..4).map(|_| server.submit("t", vec![q.clone()])).collect();
        drop(server);
        // Workers drain every admitted job before exiting.
        for ticket in tickets {
            assert_eq!(ticket.wait().len(), 1);
        }
    }

    #[test]
    fn tenant_stats_display() {
        let server = server(1);
        let _ = server.answer_batch("acme", &[pat("site/region/item/name")]);
        let line = server.tenant_stats("acme").unwrap().to_string();
        assert!(line.contains("1 queries in 1 batches"), "got: {line}");
        assert!(line.contains("edits applied"), "got: {line}");
    }

    #[test]
    fn updates_flow_through_the_server_and_are_accounted() {
        use xpv_maintain::Edit;
        use xpv_model::TreeBuilder;

        let server = server(2);
        let q = pat("site/region/item/name");
        let before = server.answer_batch("writer", std::slice::from_ref(&q));
        let doc = server.cache().document();
        let region = doc.children(doc.root())[0];
        let graft = TreeBuilder::root("item", |b| {
            b.leaf("name");
        });
        let report = server
            .apply_edits("writer", &[Edit::InsertSubtree { parent: region, subtree: graft }])
            .expect("valid edit");
        assert_eq!(report.edits_applied, 1);
        let after = server.answer_batch("writer", std::slice::from_ref(&q));
        assert_eq!(after[0].nodes.len(), before[0].nodes.len() + 1);
        assert_eq!(after[0].nodes, server.cache().answer_direct(&q));
        let stats = server.tenant_stats("writer").expect("accounted");
        assert_eq!(stats.updates_applied, 1);
        assert_eq!(stats.views_refreshed_incrementally, 1);
        assert_eq!(stats.batches, 2);
    }
}
