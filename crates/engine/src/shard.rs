//! The sharded, concurrent core of the view cache.
//!
//! [`ShardedViewCache`] is the shared-state engine behind both the
//! single-threaded [`ViewCache`](crate::ViewCache) wrapper (one shard) and
//! the [`CacheServer`](crate::CacheServer) worker pool (many threads over
//! one cache). Every serving method takes **`&self`**:
//!
//! * the **view pool** is a copy-on-write snapshot
//!   (`RwLock<Arc<Vec<MaterializedView>>>`): answering threads clone the
//!   `Arc` and never block behind [`ShardedViewCache::add_view`], and plan
//!   routes index into an append-only pool so memoized routes stay valid;
//! * the **plan memo** is partitioned into `N` lock shards keyed by the
//!   query's structural fingerprint; a repeated query takes a shared read
//!   lock on its shard, bumps an atomic recency tick, and clones its route
//!   out — no write lock on the hot path;
//! * all counters are atomics, aggregated into a [`CacheStats`] snapshot on
//!   demand;
//! * planning flows through one shared [`PlanningSession`] (the
//!   concurrency-safe containment oracle underneath), so every containment
//!   verdict is pooled across all threads and all shards.
//!
//! ## Multi-view intersection routes
//!
//! When no single view rewrites a query, the planner falls through to the
//! **intersection planner** (`xpv-intersect`): a small subset of views whose
//! node-set intersection supports a verified compensation serves the query
//! jointly ([`Route::Intersect`]). The route evaluates the compensation
//! anchored on the `NodeId` intersection of the participants' virtual
//! results — byte-identical to direct evaluation, since only *equivalent*
//! compensations are routed. [`ShardedViewCache::set_intersect_enabled`] is
//! the ablation knob.
//!
//! ## Document updates
//!
//! The cache is not a read-only snapshot: [`ShardedViewCache::apply_edits`]
//! applies a transactional batch of tree edits (`xpv_maintain::Edit`),
//! bumps the document version, and **incrementally refreshes** every
//! registered view from the edits' affected regions (ancestor spine +
//! touched subtree) instead of re-materializing the world — see the
//! `xpv-maintain` crate for the correctness argument. The document and the
//! view pool live in one copy-on-write [`StateSnapshot`] behind a single
//! lock, so answering threads always see a *consistent* (document, views)
//! pair, never an edited document with stale views or vice versa.
//!
//! ## Memo lifecycle
//!
//! The memo is **bounded** (per-shard LRU over a configurable total entry
//! cap, [`ShardedViewCache::with_memo_cap`]) and **selectively
//! invalidated**: each entry records the stable [`ViewId`]s its plan
//! depends on ([`PlanDep`]), and [`ShardedViewCache::add_view`] only drops
//! entries whose plan actually depends on the grown pool — a `Direct` route
//! (which asserted "no registered view rewrites this query"), an
//! `Intersect` route (chosen only after that same failed whole-pool scan),
//! or any route chosen by a whole-pool scan
//! ([`ChoicePolicy::SmallestView`]). Routes found by
//! [`ChoicePolicy::FirstMatch`] stopped at the first usable view; appending
//! a view cannot change them, so they survive registration.
//! [`ShardedViewCache::remove_view`] (now `&self`, like `add_view`, thanks
//! to the stable ids) is the mirror image: `Direct` routes survive
//! (shrinking the pool cannot create a rewriting), and only routes whose
//! participant set contains the removed id — plus whole-pool-scan choices —
//! are dropped, so replacing a participant of an `Intersect` route always
//! invalidates that route. [`ShardedViewCache::apply_edits`] is
//! **participant-aware** in the same way: it drops exactly the routes whose
//! participants' answer sets the batch changed; `Direct` routes and
//! untouched view/intersection routes survive document edits outright.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use xpv_core::{contained_rewriting_in, PlanningSession, RewriteAnswer, RewritePlanner};
use xpv_intersect::{
    answer_intersection_virtual, intersect_node_sets, plan_intersection_contained_in,
    plan_intersection_sig, IntersectConfig,
};
use xpv_maintain::{
    apply_region_results, coalesce_plan, finalize_deltas, maintain_views, prepare_batch,
    region_answers, CoalescedPlan, Edit, EditError, MaintainMode, MaintainStats, RegionTask,
    SubMatcher, ViewDelta,
};
use xpv_model::{AnswerArena, AnswerRef, BitSet, FlatTree, NodeId, Tree};
use xpv_obs::{Heartbeat, Histogram, MetricsSnapshot, Phase, Registry, Span};
use xpv_pattern::{Pattern, PatternKey, QuerySignature, ViewSignature};
use xpv_semantics::{
    evaluate, evaluate_anchored, evaluate_anchored_flat, evaluate_flat, region_answers_flat,
    BatchEval,
};

use crate::view::MaterializedView;

/// Default number of plan-memo lock shards.
pub const DEFAULT_CACHE_SHARDS: usize = 16;

/// A **stable** view identity: survives pool growth and shrinkage (unlike a
/// pool index), which is what lets plan-memo routes name their participants
/// and lets `remove_view`/`replace_view` take `&self`. Ids are never
/// reused within one cache.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ViewId(u64);

impl ViewId {
    /// The raw id value (diagnostic display only).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// One **consistent** document + view-pool state. Readers clone the three
/// `Arc`s under a brief read lock and then work lock-free; writers swap in
/// a new snapshot (copy-on-write), so an answering thread can never observe
/// a document from one version paired with views from another — the
/// torn-read hazard `apply_edits` would otherwise introduce.
#[derive(Clone, Debug)]
struct StateSnapshot {
    doc: Arc<Tree>,
    views: Arc<Vec<MaterializedView>>,
    /// Stable id of each pool entry, parallel to `views`.
    ids: Arc<Vec<ViewId>>,
    /// Precomputed [`ViewSignature`] of each pool entry, parallel to
    /// `views` — the word-sized necessary-condition facts the plan-miss
    /// fast path checks before paying a containment decision. Signatures
    /// are derived from view *definitions* only, so document edits never
    /// touch them; `add_view`/`remove_view` rebuild the vector alongside
    /// the pool.
    sigs: Arc<Vec<ViewSignature>>,
    /// The frozen struct-of-arrays form of `doc` (see
    /// [`xpv_model::FlatTree`]): built once per document swap, *before* the
    /// snapshot is published, so the flat matcher always runs against the
    /// exact document of its snapshot — freezing is what makes the flat
    /// path torn-read-free under concurrent `apply_edits`.
    flat: Arc<FlatTree>,
}

impl StateSnapshot {
    /// Resolves a stable id to its current pool index, trying the memoized
    /// `hint` first (O(1) while the pool is unchanged).
    fn resolve(&self, id: ViewId, hint: usize) -> Option<usize> {
        if self.ids.get(hint) == Some(&id) {
            return Some(hint);
        }
        self.ids.iter().position(|&x| x == id)
    }
}

/// How the cache picks among several usable views.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ChoicePolicy {
    /// The first registered view that admits a rewriting (lowest planning
    /// cost: planning stops at the first hit).
    #[default]
    FirstMatch,
    /// Among all views admitting a rewriting, the one with the smallest
    /// materialized result (lowest evaluation cost; plans against every
    /// view).
    SmallestView,
}

/// How a query was answered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Route {
    /// Answered from the named view through the given rewriting.
    ViaView {
        /// Name of the view used.
        view: String,
        /// The rewriting `R` that was applied to the view result.
        rewriting: String,
    },
    /// Answered from the node-set **intersection** of several views through
    /// a compensation pattern (no single view sufficed).
    Intersect {
        /// Names of the participating views, in pool order.
        views: Vec<String>,
        /// The compensation applied to the intersection.
        compensation: String,
    },
    /// Answered by evaluating the query directly on the document.
    Direct,
}

/// What one [`ShardedViewCache::apply_edits`] batch did.
#[derive(Clone, Debug)]
pub struct UpdateReport {
    /// Edits applied by this batch.
    pub edits_applied: usize,
    /// The document version after the batch.
    pub doc_version: u64,
    /// Views whose stored state was touched at all (answer sets or
    /// materialized subtree contents).
    pub views_refreshed: usize,
    /// Views whose answer **sets** changed (the routes depending on these
    /// were invalidated).
    pub views_changed: usize,
    /// Plan-memo routes dropped by the participant-aware sweep.
    pub routes_dropped: u64,
    /// Counters from the maintainer (regions scanned, label skips, …).
    pub maintain: MaintainStats,
}

/// A cache answer: the output nodes plus provenance.
#[derive(Clone, Debug)]
pub struct CacheAnswer {
    /// Output nodes in the cached document.
    pub nodes: Vec<NodeId>,
    /// How the answer was produced.
    pub route: Route,
    /// Time spent deciding rewritability (planning only; zero for answers
    /// fanned out by batch deduplication).
    pub planning: Duration,
    /// Time spent evaluating (view-based or direct; zero for fanned-out
    /// duplicates).
    pub evaluation: Duration,
}

/// A cache answer whose nodes live in a caller-supplied [`AnswerArena`]
/// — the zero-allocation sibling of [`CacheAnswer`] returned by
/// [`ShardedViewCache::answer_batch_refs`]. The route is shared behind an
/// `Arc`, so batch fan-out of a repeated query copies a handle and bumps
/// a refcount instead of cloning node vectors and route strings.
#[derive(Clone, Debug)]
pub struct CacheAnswerRef {
    /// Handle to the output nodes in the arena the batch call filled.
    pub nodes: AnswerRef,
    /// How the answer was produced (shared across fan-out duplicates).
    pub route: Arc<Route>,
    /// Time spent deciding rewritability (zero for fanned-out duplicates).
    pub planning: Duration,
    /// Time spent evaluating (zero for fanned-out duplicates).
    pub evaluation: Duration,
}

/// Aggregate statistics over the cache's lifetime.
///
/// `queries == plan_memo_hits + plan_memo_misses` holds across
/// [`ShardedViewCache::answer`], [`ShardedViewCache::answer_batch`] and
/// [`ShardedViewCache::answer_partial`]; duplicates deduplicated inside one
/// batch count as `plan_memo_hits` (their route was served without a
/// planner call) and additionally as `batch_dedup_hits`. Fully-answered
/// queries split as `view_hits + intersect_hits + direct`; partial answers
/// served through a *contained* (non-equivalent) rewriting count toward
/// `queries` but toward none of the three.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Queries answered (full and partial).
    pub queries: u64,
    /// Queries answered from a view through an equivalent rewriting.
    pub view_hits: u64,
    /// Queries answered from a multi-view intersection through an
    /// equivalent compensation.
    pub intersect_hits: u64,
    /// Queries answered by direct evaluation.
    pub direct: u64,
    /// Plans that produced an intersection route (each memoized route
    /// counts once; `intersect_hits / intersect_routes` is the fan-out).
    pub intersect_routes: u64,
    /// View subsets the intersection planner examined across all plans.
    pub intersect_candidates_tried: u64,
    /// Total participants across planned intersection routes
    /// (`/ intersect_routes` = average arity).
    pub intersect_participants: u64,
    /// Candidate views the signature filter rejected before any oracle
    /// call (plan misses only; see `xpv_pattern::signature`). Together
    /// with [`CacheStats::sig_passes`] this measures the plan-miss fast
    /// path: `sig_rejects / (sig_rejects + sig_passes)` is the fraction
    /// of pool candidates dismissed with word ops.
    pub sig_rejects: u64,
    /// Candidate views that survived the signature filter and went to the
    /// planner's containment machinery.
    pub sig_passes: u64,
    /// Queries whose route came straight from the plan memo (no planner
    /// call, zero containment tests). Includes batch-deduplicated repeats.
    pub plan_memo_hits: u64,
    /// Queries that had to be planned.
    pub plan_memo_misses: u64,
    /// Repeats answered by fan-out inside a single `answer_batch` call
    /// (also counted in `plan_memo_hits`).
    pub batch_dedup_hits: u64,
    /// Plan-memo entries evicted by the LRU bound.
    pub plan_memo_evictions: u64,
    /// Plan-memo entries dropped by selective `add_view` / policy
    /// invalidation.
    pub plan_memo_invalidations: u64,
    /// Containment verdicts the session oracle served from its memo.
    pub oracle_memo_hits: u64,
    /// Canonical-model loops (coNP containment work) run so far. Flat
    /// between two answers ⇔ the second answer did zero canonical-model
    /// containment work.
    pub oracle_canonical_runs: u64,
    /// Canonical models enumerated inside those loops.
    pub oracle_models_checked: u64,
    /// Document edits applied through `apply_edits` over the cache's
    /// lifetime.
    pub updates_applied: u64,
    /// Views whose answers were refreshed **incrementally** (affected-region
    /// maintenance, not full re-materialization) across all updates.
    pub views_refreshed_incrementally: u64,
    /// Snapshot reads that found the state `RwLock` held (by a writer's
    /// pointer swap) and had to block. The ROADMAP names this lock as a
    /// suspected bottleneck under write-heavy mixes; a rising stall count
    /// under load is the signal it has become real.
    pub snapshot_read_stalls: u64,
    /// Lifetime maintenance counters summed over every `apply_edits` batch
    /// (per-phase timings, coalescing sizes, fan-out widths — see
    /// [`MaintainStats`]).
    pub maintain: MaintainStats,
}

impl CacheStats {
    /// The canonical counter enumeration for the cache's **own** scalar
    /// fields: one `(name, value)` pair per field, in declaration order.
    /// The observability registry exposes these under `xpv_cache_*`, and
    /// `Display` renders the same list — one naming authority, so the
    /// rendered line and the exposition can never drift (see the
    /// `xpv-obs` crate docs).
    ///
    /// The three `oracle_*` fields are mirrors of the session oracle's
    /// counters kept for API compatibility; the registry exposition emits
    /// those numbers only under `xpv_oracle_*` (no counter reaches the
    /// snapshot under two names), which is why
    /// [`ShardedViewCache::metrics_snapshot`] skips the `oracle_` prefix
    /// here. The nested [`CacheStats::maintain`] block enumerates through
    /// its own [`MaintainStats::visit`].
    pub fn visit(&self, f: &mut dyn FnMut(&'static str, u64)) {
        f("queries", self.queries);
        f("view_hits", self.view_hits);
        f("intersect_hits", self.intersect_hits);
        f("direct", self.direct);
        f("intersect_routes", self.intersect_routes);
        f("intersect_candidates_tried", self.intersect_candidates_tried);
        f("intersect_participants", self.intersect_participants);
        f("sig_rejects", self.sig_rejects);
        f("sig_passes", self.sig_passes);
        f("plan_memo_hits", self.plan_memo_hits);
        f("plan_memo_misses", self.plan_memo_misses);
        f("batch_dedup_hits", self.batch_dedup_hits);
        f("plan_memo_evictions", self.plan_memo_evictions);
        f("plan_memo_invalidations", self.plan_memo_invalidations);
        f("oracle_memo_hits", self.oracle_memo_hits);
        f("oracle_canonical_runs", self.oracle_canonical_runs);
        f("oracle_models_checked", self.oracle_models_checked);
        f("updates_applied", self.updates_applied);
        f("views_refreshed_incrementally", self.views_refreshed_incrementally);
        f("snapshot_read_stalls", self.snapshot_read_stalls);
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        xpv_obs::write_kv_line(f, |emit| self.visit(emit))?;
        write!(f, " maintain: {}", self.maintain)
    }
}

/// A memoized routing decision for one query key. Routes reference views by
/// **stable id** (plus a pool-index hint for O(1) resolution), so they stay
/// meaningful while the pool grows, shrinks, or is refreshed in place; a
/// route whose id no longer resolves degrades soundly to direct evaluation.
#[derive(Clone, Debug)]
pub(crate) enum PlannedRoute {
    /// Serve from the view with stable id `id` through `rewriting`.
    ViaView { id: ViewId, hint: usize, rewriting: Pattern },
    /// Serve from the node-set intersection of the views with these stable
    /// ids (pool order) through `compensation`.
    Intersect { ids: Vec<ViewId>, hints: Vec<usize>, compensation: Pattern },
    /// No registered view (or view intersection) admits an equivalent
    /// rewriting.
    Direct,
}

/// What a memoized plan depends on — the invalidation granularity of
/// [`ShardedViewCache::add_view`], [`ShardedViewCache::remove_view`], and
/// [`ShardedViewCache::apply_edits`]. Participants are stable
/// [`ViewId`]s, so unrelated pool changes never touch a route.
#[derive(Clone, Debug, PartialEq, Eq)]
enum PlanDep {
    /// A [`ChoicePolicy::FirstMatch`] commitment to one view: views before
    /// it failed for pattern-level (data-independent) reasons and views
    /// appended later cannot become "first", so only removing the chosen
    /// view itself — or changing its *answers* under document edits —
    /// invalidates the route.
    Chosen(ViewId),
    /// A route only a *whole-pool scan* justifies (a
    /// [`ChoicePolicy::SmallestView`] choice ranks views by answer count):
    /// any append, removal, or answer-set change invalidates it.
    WholePool,
    /// The plan asserted "no view rewrites this query" (a `Direct` route):
    /// a new view can break the assertion; removals and document edits
    /// never can (rewritability is decided on patterns, not data).
    NoUsableView,
    /// The plan intersects exactly these views, *after* a failed whole-pool
    /// single-view scan: any append invalidates it (a single-view route may
    /// become available), as does removing — or editing the answers of —
    /// any participant.
    Intersect(Vec<ViewId>),
}

/// One plan-memo entry.
#[derive(Debug)]
struct MemoEntry {
    route: PlannedRoute,
    dep: PlanDep,
    /// Recency tick for LRU eviction; atomic so read-locked memo hits can
    /// refresh it.
    last_used: AtomicU64,
}

/// Per-shard atomic counters (aggregated into [`CacheStats`]).
#[derive(Debug, Default)]
struct ShardStats {
    queries: AtomicU64,
    view_hits: AtomicU64,
    intersect_hits: AtomicU64,
    direct: AtomicU64,
    plan_memo_hits: AtomicU64,
    plan_memo_misses: AtomicU64,
    batch_dedup_hits: AtomicU64,
    plan_memo_evictions: AtomicU64,
    plan_memo_invalidations: AtomicU64,
    intersect_routes: AtomicU64,
    intersect_candidates_tried: AtomicU64,
    intersect_participants: AtomicU64,
    sig_rejects: AtomicU64,
    sig_passes: AtomicU64,
}

#[derive(Debug, Default)]
struct CacheShard {
    memo: RwLock<HashMap<PatternKey, MemoEntry>>,
    stats: ShardStats,
    /// Plan-time win counts per view (how often a `FirstMatch` plan on
    /// this shard chose the view): the hit-rate-ordered index the miss
    /// path sorts filter survivors by, so the common winner pays the
    /// first containment decision. Keyed by stable id — pool churn never
    /// misattributes a win.
    wins: std::sync::Mutex<HashMap<ViewId, u64>>,
}

#[inline]
fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

/// Scans one merged region for one view — the unit of work the parallel
/// fan-out stripes across scoped threads. Flat path: masked word-parallel
/// matching against the shared post-batch freeze; tree path: the
/// `region_answers` reference walk (kept as the `--no-flat` ablation arm
/// and property-test oracle). Both return the fresh in-region answers and
/// the region's live-subtree mask.
fn scan_region(
    task: RegionTask,
    plan: &CoalescedPlan,
    defs: &[&Pattern],
    doc: &Tree,
    flat: &FlatTree,
    use_flat: bool,
) -> (Vec<NodeId>, BitSet) {
    if use_flat {
        region_answers_flat(defs[task.view], flat, task.root)
    } else {
        let mut m = SubMatcher::new(defs[task.view], doc);
        region_answers(&plan.infos[task.view], doc, task.root, &mut m)
    }
}

/// The cache's observability handles: its private metric [`Registry`]
/// plus the pre-resolved latency histograms the hot paths record into
/// (resolved once at construction — answering never touches the registry
/// table). The serving front-end shares this registry for its own phase
/// histograms, so one snapshot covers the whole request path.
#[derive(Debug)]
pub(crate) struct CacheObs {
    pub registry: Arc<Registry>,
    /// Per-query routing time (plan-memo lookup or planner call), µs.
    pub plan_us: Arc<Histogram>,
    /// Planner time on plan-memo **misses** only, µs — the latency the
    /// signature fast path attacks (memo hits never record here, so the
    /// distribution is not diluted by cheap lookups).
    pub plan_miss_us: Arc<Histogram>,
    /// Per-query evaluation time, µs.
    pub eval_us: Arc<Histogram>,
    /// Whole `answer_batch` wall time, µs.
    pub batch_us: Arc<Histogram>,
    /// Admission wait (credit window / executor queue) per served batch,
    /// µs — recorded by the serving front-end.
    pub admission_us: Arc<Histogram>,
    /// Response-frame encoding time per served batch, µs (wire only).
    pub encode_us: Arc<Histogram>,
    /// Response-frame socket write time, µs (wire only).
    pub flush_us: Arc<Histogram>,
    /// Per-`apply_edits`-batch maintenance phase times, µs (the
    /// distribution behind the lifetime sums in
    /// [`MaintainStats`]'s `*_us` counters).
    pub maintain_apply_us: Arc<Histogram>,
    pub maintain_freeze_us: Arc<Histogram>,
    pub maintain_coalesce_us: Arc<Histogram>,
    pub maintain_scan_us: Arc<Histogram>,
    pub maintain_patch_us: Arc<Histogram>,
    /// Liveness heartbeat around each `apply_edits` batch: in-flight
    /// while a batch holds the write gate, one beat per completed batch.
    /// The watchdog's `maintain` stall rule reads these gauges.
    pub hb_maintain: Heartbeat,
}

impl CacheObs {
    fn new() -> CacheObs {
        let registry = Arc::new(Registry::new());
        CacheObs {
            plan_us: registry.histogram("xpv_phase_plan_us"),
            plan_miss_us: registry.histogram("xpv_phase_plan_miss_us"),
            eval_us: registry.histogram("xpv_phase_eval_us"),
            batch_us: registry.histogram("xpv_phase_batch_us"),
            admission_us: registry.histogram("xpv_phase_admission_us"),
            encode_us: registry.histogram("xpv_phase_encode_us"),
            flush_us: registry.histogram("xpv_phase_flush_us"),
            maintain_apply_us: registry.histogram("xpv_phase_maintain_apply_us"),
            maintain_freeze_us: registry.histogram("xpv_phase_maintain_freeze_us"),
            maintain_coalesce_us: registry.histogram("xpv_phase_maintain_coalesce_us"),
            maintain_scan_us: registry.histogram("xpv_phase_maintain_scan_us"),
            maintain_patch_us: registry.histogram("xpv_phase_maintain_patch_us"),
            hb_maintain: Heartbeat::new(&registry, "maintain"),
            registry,
        }
    }
}

/// A set of materialized views over a single document with **concurrent**
/// rewriting-based query answering: the serving methods take `&self`, so
/// any number of worker threads can answer through one shared cache (see
/// the module docs for the sharding and invalidation design).
///
/// Results are deterministic: a multi-threaded cache returns exactly the
/// nodes and routes the single-threaded [`ViewCache`](crate::ViewCache)
/// returns for the same document, views, and queries.
#[derive(Debug)]
pub struct ShardedViewCache {
    /// The consistent document + view-pool state (see [`StateSnapshot`]).
    state: RwLock<StateSnapshot>,
    /// Serializes state **writers** (`add_view`, `remove_view`,
    /// `apply_edits`): the gate holder is the only mutator, so it can
    /// snapshot, do expensive work (materialization, incremental
    /// maintenance) on clones off-lock, and take the state write lock only
    /// for the pointer swap — readers block for the swap, never for the
    /// work.
    write_gate: std::sync::Mutex<()>,
    session: PlanningSession,
    policy: ChoicePolicy,
    memo_enabled: AtomicBool,
    /// Whether multi-view intersection routes are planned (ablation knob).
    intersect_enabled: AtomicBool,
    /// Whether evaluation runs through the frozen flat snapshot (the
    /// `xpv serve-bench --no-flat` / `eval-bench` ablation knob; disabled,
    /// every route evaluates on the arena `Tree` — answers are identical).
    flat_enabled: AtomicBool,
    /// Whether the plan-miss fast path consults view signatures before
    /// paying containment decisions (the `--no-sig-filter` ablation knob;
    /// routes and answers are identical either way — the filter is a
    /// necessary condition).
    sig_filter_enabled: AtomicBool,
    /// Whether the serving front-ends return answers through the
    /// [`AnswerArena`] lane ([`ShardedViewCache::answer_batch_refs`]) or
    /// the owned-`Vec` wrapper (the `--no-arena` ablation knob; bytes on
    /// the wire are identical either way).
    arena_enabled: AtomicBool,
    /// Budget knobs handed to the intersection planner.
    intersect_cfg: IntersectConfig,
    shards: Box<[CacheShard]>,
    /// Total memo entry bound (`usize::MAX` = unbounded).
    memo_cap: usize,
    /// Live total of memo entries across shards; every map mutation updates
    /// it under the owning shard's write lock, so the [`memo_cap`] bound is
    /// enforced globally, not per shard.
    memo_entries: AtomicU64,
    /// Bumped by every pool or document mutation (after the state swap,
    /// before the invalidation sweep); guards in-flight plans from
    /// memoizing a route computed against the previous state after the
    /// sweep already ran.
    views_version: AtomicU64,
    /// Global recency clock for LRU eviction.
    tick: AtomicU64,
    /// Allocator for stable [`ViewId`]s (never reused).
    next_view_id: AtomicU64,
    /// Bumped by every successful [`ShardedViewCache::apply_edits`] batch.
    doc_version: AtomicU64,
    /// Whether `apply_edits` maintains views incrementally (the
    /// `xpv update-bench` ablation knob; `false` = full re-materialization).
    incremental_maintenance: AtomicBool,
    /// Whether incremental maintenance coalesces the batch into merged
    /// regions (the `--no-coalesce` ablation knob; `false` = the legacy
    /// per-edit path).
    coalesce_enabled: AtomicBool,
    /// Whether independent merged regions are fanned across scoped worker
    /// threads (the `--no-parallel-regions` ablation knob).
    parallel_regions: AtomicBool,
    /// Worker count for the region fan-out (`0` = available parallelism).
    region_workers: AtomicU64,
    /// Lifetime maintenance counters (summed per batch under the write
    /// gate; surfaced through [`CacheStats::maintain`]).
    maintain_totals: std::sync::Mutex<MaintainStats>,
    /// Lifetime total of edits applied.
    updates_applied: AtomicU64,
    /// Lifetime total of views refreshed via the incremental path.
    views_refreshed_incrementally: AtomicU64,
    /// Snapshot reads that could not take the state lock immediately (a
    /// writer was swapping pointers) — see
    /// [`CacheStats::snapshot_read_stalls`].
    snapshot_read_stalls: AtomicU64,
    /// Test-only fault injection: microseconds each `apply_edits` batch
    /// sleeps while holding the write gate (0 = disabled). Lets the
    /// watchdog integration tests manufacture a wedged maintenance pass.
    maintain_pause_us: AtomicU64,
    /// Latency histograms + the metric registry (see [`CacheObs`]).
    pub(crate) obs: CacheObs,
}

impl ShardedViewCache {
    /// Creates an empty cache over `doc` with the default planner, the
    /// default shard count, and an unbounded memo.
    pub fn new(doc: Tree) -> ShardedViewCache {
        Self::with_planner(doc, RewritePlanner::default())
    }

    /// Creates an empty cache with a custom planner configuration.
    pub fn with_planner(doc: Tree, planner: RewritePlanner) -> ShardedViewCache {
        let flat = Arc::new(FlatTree::freeze(&doc));
        ShardedViewCache {
            state: RwLock::new(StateSnapshot {
                doc: Arc::new(doc),
                views: Arc::new(Vec::new()),
                ids: Arc::new(Vec::new()),
                sigs: Arc::new(Vec::new()),
                flat,
            }),
            write_gate: std::sync::Mutex::new(()),
            session: PlanningSession::new(planner),
            policy: ChoicePolicy::default(),
            memo_enabled: AtomicBool::new(true),
            intersect_enabled: AtomicBool::new(true),
            flat_enabled: AtomicBool::new(true),
            sig_filter_enabled: AtomicBool::new(true),
            arena_enabled: AtomicBool::new(true),
            intersect_cfg: IntersectConfig::default(),
            shards: (0..DEFAULT_CACHE_SHARDS).map(|_| CacheShard::default()).collect(),
            memo_cap: usize::MAX,
            memo_entries: AtomicU64::new(0),
            views_version: AtomicU64::new(0),
            tick: AtomicU64::new(0),
            next_view_id: AtomicU64::new(0),
            doc_version: AtomicU64::new(0),
            incremental_maintenance: AtomicBool::new(true),
            coalesce_enabled: AtomicBool::new(true),
            parallel_regions: AtomicBool::new(true),
            region_workers: AtomicU64::new(0),
            maintain_totals: std::sync::Mutex::new(MaintainStats::default()),
            updates_applied: AtomicU64::new(0),
            views_refreshed_incrementally: AtomicU64::new(0),
            snapshot_read_stalls: AtomicU64::new(0),
            maintain_pause_us: AtomicU64::new(0),
            obs: CacheObs::new(),
        }
    }

    /// Sets the plan-memo shard count (builder style, rounded up to a power
    /// of two, minimum 1). Call before sharing the cache across threads.
    pub fn with_shards(mut self, shards: usize) -> ShardedViewCache {
        let n = shards.max(1).next_power_of_two();
        self.shards = (0..n).map(|_| CacheShard::default()).collect();
        self
    }

    /// Bounds the plan memo to at most `cap` entries in total (builder
    /// style; `0` means unbounded). The bound is **global** across shards
    /// — a live atomic entry count gates every insert — with
    /// least-recently-used eviction inside the inserting shard, so a
    /// long-running cache serving an unbounded query universe keeps a
    /// working set instead of growing forever. A full memo whose inserting
    /// shard happens to be empty skips memoizing that route rather than
    /// exceed the bound.
    pub fn with_memo_cap(mut self, cap: usize) -> ShardedViewCache {
        self.memo_cap = if cap == 0 { usize::MAX } else { cap };
        self
    }

    /// Sets the view-selection policy. Invalidates the whole plan memo:
    /// routes chosen under the previous policy are stale.
    pub fn set_policy(&mut self, policy: ChoicePolicy) {
        self.policy = policy;
        for shard in self.shards.iter() {
            let mut memo = shard.memo.write().expect("plan memo poisoned");
            self.memo_entries.fetch_sub(memo.len() as u64, Ordering::Relaxed);
            memo.clear();
        }
    }

    /// The view-selection policy in effect.
    pub fn policy(&self) -> ChoicePolicy {
        self.policy
    }

    /// Number of plan-memo shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total plan-memo entries currently held across all shards.
    pub fn plan_memo_len(&self) -> usize {
        self.shards.iter().map(|s| s.memo.read().expect("plan memo poisoned").len()).sum()
    }

    /// The total memo entry bound (`usize::MAX` when unbounded).
    pub fn memo_cap(&self) -> usize {
        self.memo_cap
    }

    /// Enables or disables **all** memoization — the plan memo and the
    /// session oracle's verdict/homomorphism memos. This is the ablation
    /// knob the throughput bench flips to measure what sharing buys;
    /// disabling clears every memo so a re-enable starts cold.
    pub fn set_memo_enabled(&self, enabled: bool) {
        self.memo_enabled.store(enabled, Ordering::Relaxed);
        if !enabled {
            for shard in self.shards.iter() {
                let mut memo = shard.memo.write().expect("plan memo poisoned");
                self.memo_entries.fetch_sub(memo.len() as u64, Ordering::Relaxed);
                memo.clear();
            }
        }
        self.session.oracle().set_memo_enabled(enabled);
    }

    /// Whether memoization is active.
    pub fn memo_enabled(&self) -> bool {
        self.memo_enabled.load(Ordering::Relaxed)
    }

    /// Sets the intersection-planner budget (builder style): largest subset
    /// size and subsets examined per query.
    pub fn with_intersect_config(mut self, cfg: IntersectConfig) -> ShardedViewCache {
        self.intersect_cfg = cfg;
        self
    }

    /// Enables or disables **multi-view intersection routes** — the
    /// ablation knob behind `xpv serve-bench --no-intersect`. Memoized
    /// routes that the flip invalidates are dropped: disabling removes
    /// `Intersect` routes, enabling removes `Direct` routes (which asserted
    /// "nothing serves this query" while intersections were off).
    pub fn set_intersect_enabled(&self, enabled: bool) {
        let was = self.intersect_enabled.swap(enabled, Ordering::Relaxed);
        if was == enabled {
            return;
        }
        self.views_version.fetch_add(1, Ordering::Release);
        // Single-view routes (Chosen and WholePool) are unaffected either
        // way: the single-view scan runs *before* intersection planning, so
        // the toggle can never change a route a single view justified.
        self.sweep_memo(|dep| match dep {
            PlanDep::Intersect(_) => !enabled,
            PlanDep::NoUsableView => enabled,
            PlanDep::Chosen(_) | PlanDep::WholePool => false,
        });
    }

    /// Whether intersection routes are planned.
    pub fn intersect_enabled(&self) -> bool {
        self.intersect_enabled.load(Ordering::Relaxed)
    }

    /// Enables or disables the **flat evaluation path** — the ablation knob
    /// behind `xpv serve-bench --no-flat`. Routing and planning are
    /// untouched (no memo invalidation needed): the flag only selects which
    /// matcher executes routes, and both matchers return byte-identical
    /// answers.
    pub fn set_flat_enabled(&self, enabled: bool) {
        self.flat_enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether evaluation runs through the frozen flat snapshot.
    pub fn flat_enabled(&self) -> bool {
        self.flat_enabled.load(Ordering::Relaxed)
    }

    /// Enables or disables the **signature fast path** on plan-memo
    /// misses — the ablation knob behind `xpv serve-bench
    /// --no-sig-filter`. The filter is a *necessary condition* (a
    /// rejected candidate provably admits no equivalent rewriting — see
    /// the `xpv_pattern::signature` module docs), and the hit-rate try
    /// order is applied identically in both arms over the same success
    /// set, so routes and answers are byte-identical either way and no
    /// memo invalidation is needed: the flag only selects whether doomed
    /// candidates pay a containment decision before failing.
    pub fn set_sig_filter_enabled(&self, enabled: bool) {
        self.sig_filter_enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether plan misses pre-filter candidates by signature.
    pub fn sig_filter_enabled(&self) -> bool {
        self.sig_filter_enabled.load(Ordering::Relaxed)
    }

    /// Toggles the arena answer lane for the serving front-ends — `xpv
    /// serve-bench --no-arena`. The flag only selects which batch API the
    /// servers call ([`ShardedViewCache::answer_batch_refs`] vs
    /// [`ShardedViewCache::answer_batch`]); both produce the same nodes
    /// and routes, so the wire bytes are identical.
    pub fn set_arena_enabled(&self, enabled: bool) {
        self.arena_enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether the serving front-ends use the arena answer lane.
    pub fn arena_enabled(&self) -> bool {
        self.arena_enabled.load(Ordering::Relaxed)
    }

    /// Drops every memo entry whose [`PlanDep`] matches `stale`, updating
    /// the live entry count and the invalidation counters. Returns the
    /// number of routes dropped.
    fn sweep_memo(&self, stale: impl Fn(&PlanDep) -> bool) -> u64 {
        let mut total = 0u64;
        for shard in self.shards.iter() {
            let mut memo = shard.memo.write().expect("plan memo poisoned");
            let before = memo.len();
            memo.retain(|_, entry| !stale(&entry.dep));
            let dropped = (before - memo.len()) as u64;
            self.memo_entries.fetch_sub(dropped, Ordering::Relaxed);
            shard.stats.plan_memo_invalidations.fetch_add(dropped, Ordering::Relaxed);
            total += dropped;
        }
        total
    }

    /// Takes the state read lock, counting a
    /// [`CacheStats::snapshot_read_stalls`] when the uncontended fast path
    /// fails (a writer holds the lock for its pointer swap).
    fn read_state(&self) -> std::sync::RwLockReadGuard<'_, StateSnapshot> {
        match self.state.try_read() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::WouldBlock) => {
                self.snapshot_read_stalls.fetch_add(1, Ordering::Relaxed);
                self.state.read().expect("cache state poisoned")
            }
            Err(std::sync::TryLockError::Poisoned(_)) => panic!("cache state poisoned"),
        }
    }

    /// A snapshot of the cached document (copy-on-write: cheap `Arc` clone;
    /// [`ShardedViewCache::apply_edits`] swaps in edited documents, so
    /// holders see a stable state rather than a live reference).
    pub fn document(&self) -> Arc<Tree> {
        Arc::clone(&self.read_state().doc)
    }

    /// The number of successful [`ShardedViewCache::apply_edits`] batches
    /// applied so far.
    pub fn doc_version(&self) -> u64 {
        self.doc_version.load(Ordering::Relaxed)
    }

    /// The shared planning session (oracle stats, interner size).
    pub fn session(&self) -> &PlanningSession {
        &self.session
    }

    /// One consistent document + views snapshot (cheap `Arc` clones, never
    /// blocks answering threads for long).
    fn snapshot(&self) -> StateSnapshot {
        self.read_state().clone()
    }

    /// A snapshot of the registered views (copy-on-write: cheap `Arc`
    /// clone, never blocks answering threads).
    pub fn views_snapshot(&self) -> Arc<Vec<MaterializedView>> {
        Arc::clone(&self.read_state().views)
    }

    /// Materializes `def` over the document and registers it under `name`.
    /// Returns the number of answers materialized.
    ///
    /// Selectively invalidates the plan memo: only entries whose plan
    /// depends on the grown pool — `Direct` routes and whole-pool-scan
    /// routes — are dropped; `FirstMatch` view routes survive (see the
    /// module docs). The oracle's containment verdicts are always kept
    /// (they depend only on the pattern pair).
    ///
    /// # Panics
    ///
    /// Panics if a view with the same name is already registered.
    pub fn add_view(&self, name: &str, def: Pattern) -> usize {
        let _gate = self.write_gate.lock().expect("write gate poisoned");
        // Materialize against a snapshot off-lock (the gate keeps the state
        // from moving beneath us); readers only wait for the swap.
        let snap = self.snapshot();
        assert!(snap.views.iter().all(|v| v.name() != name), "duplicate view name {name:?}");
        let sig = ViewSignature::of(&def);
        let view = MaterializedView::materialize(name, def, &snap.doc);
        let n = view.len();
        let mut grown = Vec::with_capacity(snap.views.len() + 1);
        grown.extend(snap.views.iter().cloned());
        grown.push(view);
        let mut ids = Vec::with_capacity(snap.ids.len() + 1);
        ids.extend(snap.ids.iter().copied());
        ids.push(ViewId(self.next_view_id.fetch_add(1, Ordering::Relaxed)));
        let mut sigs = Vec::with_capacity(snap.sigs.len() + 1);
        sigs.extend(snap.sigs.iter().copied());
        sigs.push(sig);
        {
            let mut state = self.state.write().expect("cache state poisoned");
            state.views = Arc::new(grown);
            state.ids = Arc::new(ids);
            state.sigs = Arc::new(sigs);
        }
        // Version bump strictly before the sweep: an in-flight plan either
        // sees the bump (and skips memoizing) or inserts before the sweep
        // (and is caught by it) — stale routes never outlive this call.
        self.views_version.fetch_add(1, Ordering::Release);
        self.sweep_memo(|dep| {
            matches!(dep, PlanDep::WholePool | PlanDep::NoUsableView | PlanDep::Intersect(_))
        });
        n
    }

    /// Deregisters the view named `name`, returning `false` when no such
    /// view exists. Takes **`&self`**, like [`ShardedViewCache::add_view`]:
    /// memoized routes reference views by stable [`ViewId`], so removal
    /// shifts no meaning — in-flight answers finish on their snapshot, and
    /// a route whose id stops resolving degrades to direct evaluation
    /// (sound, since routed answers equal direct answers by construction).
    ///
    /// Selectively invalidates the plan memo: `Direct` routes survive
    /// (shrinking the pool cannot create a rewriting), as does every route
    /// whose participants don't include the removed view; only routes that
    /// committed to the removed view — plus whole-pool-scan choices, which
    /// ranked it against the others — are dropped and re-plan on their next
    /// arrival.
    pub fn remove_view(&self, name: &str) -> bool {
        let _gate = self.write_gate.lock().expect("write gate poisoned");
        let snap = self.snapshot();
        let Some(idx) = snap.views.iter().position(|v| v.name() == name) else {
            return false;
        };
        let mut shrunk: Vec<MaterializedView> = snap.views.iter().cloned().collect();
        shrunk.remove(idx);
        let mut ids: Vec<ViewId> = snap.ids.iter().copied().collect();
        let removed_id = ids.remove(idx);
        let mut sigs: Vec<ViewSignature> = snap.sigs.iter().copied().collect();
        sigs.remove(idx);
        {
            let mut state = self.state.write().expect("cache state poisoned");
            state.views = Arc::new(shrunk);
            state.ids = Arc::new(ids);
            state.sigs = Arc::new(sigs);
        }
        self.views_version.fetch_add(1, Ordering::Release);
        self.sweep_memo(|dep| match dep {
            PlanDep::Chosen(id) => *id == removed_id,
            PlanDep::WholePool => true,
            PlanDep::NoUsableView => false,
            PlanDep::Intersect(parts) => parts.contains(&removed_id),
        });
        true
    }

    /// Replaces the view named `name` with a fresh materialization of
    /// `def` — the cache-maintenance form of "the upstream view definition
    /// changed". Equivalent to [`ShardedViewCache::remove_view`] followed
    /// by [`ShardedViewCache::add_view`] (the replacement lands at the end
    /// of the pool under a **fresh** id), so every route depending on the
    /// old view is invalidated. Returns the number of answers materialized.
    /// For document-driven refreshes that keep definitions intact, use
    /// [`ShardedViewCache::apply_edits`] instead — it patches answers
    /// incrementally and preserves untouched routes.
    ///
    /// # Panics
    ///
    /// Panics if no view named `name` is registered.
    pub fn replace_view(&self, name: &str, def: Pattern) -> usize {
        assert!(self.remove_view(name), "replace_view: no view named {name:?}");
        self.add_view(name, def)
    }

    /// Applies a batch of document edits **transactionally** and keeps every
    /// registered view's materialization exact: per edit, each view is
    /// re-evaluated only against the edit's affected region (the ancestor
    /// spine plus the touched subtree — see `xpv_maintain`) and its answer
    /// sets are patched in place (bitset diff for the virtual form,
    /// canonical-key diff for the subtree copies).
    ///
    /// Readers are never blocked behind the refresh: the whole maintenance
    /// run — edit application, region re-evaluation, view patching — works
    /// on clones **outside** the state lock (writers serialize on a
    /// dedicated gate), and the state lock is taken only to swap the new
    /// `(document, views)` pair in whole. Queries arriving mid-update keep
    /// answering from the previous copy-on-write snapshot, and no query
    /// ever observes a document from one version paired with views from
    /// another.
    ///
    /// Plan-memo invalidation is **participant-aware**: only routes whose
    /// participating views' answer sets actually changed are dropped
    /// (plus whole-pool-scan routes, whose size ranking any change can
    /// reorder). `Direct` routes and untouched `ViaView`/`Intersect` routes
    /// survive and keep serving with zero re-planning — rewritability is
    /// decided on patterns, not data, so surviving routes stay exact over
    /// the refreshed views.
    ///
    /// With incremental maintenance disabled
    /// ([`ShardedViewCache::set_incremental_maintenance`]) every view is
    /// fully re-materialized instead — the `xpv update-bench` baseline.
    ///
    /// On error (an edit targeting a dead node, or deleting the root) the
    /// shared document and every view are left exactly as they were.
    pub fn apply_edits(&self, edits: &[Edit]) -> Result<UpdateReport, EditError> {
        let mut span = Span::begin("cache.update");
        let incremental = self.incremental_maintenance.load(Ordering::Relaxed);
        let coalesce = incremental && self.coalesce_enabled.load(Ordering::Relaxed);
        // Serialize writers on the gate; the gate holder is the only
        // mutator, so the snapshot below cannot go stale beneath us while
        // we maintain clones of it off-lock.
        let _gate = self.write_gate.lock().expect("write gate poisoned");
        // In flight from here; the guard beats when the batch completes
        // (any exit path, including errors). A batch wedged past the
        // watchdog's stall window fires the `maintain` stall rule.
        let _hb = self.obs.hb_maintain.begin();
        let pause_us = self.maintain_pause_us.load(Ordering::Relaxed);
        if pause_us > 0 {
            std::thread::sleep(Duration::from_micros(pause_us));
        }
        let snap = self.snapshot();

        let mut doc = (*snap.doc).clone();
        let defs: Vec<&Pattern> = snap.views.iter().map(|v| v.definition()).collect();
        let mut answers: Vec<Vec<NodeId>> = snap.views.iter().map(|v| v.nodes().to_vec()).collect();
        let (deltas, maintain, new_flat) = if coalesce {
            // Coalesced path: the post-batch freeze happens *before*
            // maintenance and drives the flat region scans; the same
            // snapshot is published by the swap below.
            self.maintain_coalesced(&snap.doc, &mut doc, &defs, &mut answers, edits)?
        } else {
            let mode =
                if incremental { MaintainMode::Incremental } else { MaintainMode::FullRecompute };
            let t = Instant::now();
            let (deltas, mut maintain) =
                maintain_views(&mut doc, &defs, &mut answers, edits, mode)?;
            maintain.apply_us += t.elapsed().as_micros() as u64;
            // Legacy paths freeze after maintenance, for the swap only.
            let t = Instant::now();
            let new_flat = Arc::new(FlatTree::freeze(&doc));
            maintain.freeze_us += t.elapsed().as_micros() as u64;
            (deltas, maintain, new_flat)
        };
        drop(defs);

        let mut changed: Vec<ViewId> = Vec::new();
        let mut refreshed = 0usize;
        let new_views = if deltas.iter().any(|d| !d.is_empty()) {
            let mut views: Vec<MaterializedView> = (*snap.views).clone();
            for (i, delta) in deltas.iter().enumerate() {
                if delta.is_empty() {
                    continue;
                }
                refreshed += 1;
                views[i].apply_delta(&doc, &answers[i], delta);
                if delta.answers_changed() {
                    changed.push(snap.ids[i]);
                }
            }
            Arc::new(views)
        } else {
            Arc::clone(&snap.views)
        };
        // Publication: readers that observe the new document always
        // observe its matching flat snapshot (frozen above — before
        // maintenance on the coalesced path, after it on the legacy ones;
        // tombstones from this batch are masked out either way).
        let new_doc = Arc::new(doc);
        {
            // The only work under the state lock is the pointer swap:
            // readers block for the `Arc` stores, never for maintenance.
            let mut state = self.state.write().expect("cache state poisoned");
            state.doc = new_doc;
            state.views = new_views;
            state.flat = new_flat;
        }
        let doc_version = self.doc_version.fetch_add(1, Ordering::Relaxed) + 1;
        self.updates_applied.fetch_add(edits.len() as u64, Ordering::Relaxed);
        self.maintain_totals.lock().expect("maintain totals poisoned").add(&maintain);
        // Per-batch phase distributions (the histograms behind the
        // lifetime sums above), plus a sampled maintenance span carrying
        // the same externally-timed phases.
        self.obs.maintain_apply_us.record(maintain.apply_us);
        self.obs.maintain_freeze_us.record(maintain.freeze_us);
        self.obs.maintain_coalesce_us.record(maintain.coalesce_us);
        self.obs.maintain_scan_us.record(maintain.scan_us);
        self.obs.maintain_patch_us.record(maintain.patch_us);
        if span.is_enabled() {
            span.mark_us(Phase::Apply, maintain.apply_us);
            span.mark_us(Phase::Freeze, maintain.freeze_us);
            span.mark_us(Phase::Coalesce, maintain.coalesce_us);
            span.mark_us(Phase::Scan, maintain.scan_us);
            span.mark_us(Phase::Patch, maintain.patch_us);
        }
        span.finish();
        if incremental {
            self.views_refreshed_incrementally.fetch_add(refreshed as u64, Ordering::Relaxed);
        }
        // State swapped; now invalidate. Version bump strictly before the
        // sweep, mirroring `add_view`: in-flight plans from the old state
        // either skip memoizing or are caught by the sweep.
        self.views_version.fetch_add(1, Ordering::Release);
        let routes_dropped = if changed.is_empty() {
            0
        } else {
            self.sweep_memo(|dep| match dep {
                PlanDep::Chosen(id) => changed.contains(id),
                PlanDep::WholePool => true,
                PlanDep::NoUsableView => false,
                PlanDep::Intersect(parts) => parts.iter().any(|p| changed.contains(p)),
            })
        };
        Ok(UpdateReport {
            edits_applied: edits.len(),
            doc_version,
            views_refreshed: refreshed,
            views_changed: changed.len(),
            routes_dropped,
            maintain,
        })
    }

    /// Enables or disables **incremental maintenance** under
    /// [`ShardedViewCache::apply_edits`] — the `xpv update-bench` ablation
    /// knob. Disabled, every update fully re-materializes every view (the
    /// rebuild-the-world baseline); answers are identical either way.
    pub fn set_incremental_maintenance(&self, enabled: bool) {
        self.incremental_maintenance.store(enabled, Ordering::Relaxed);
    }

    /// Whether `apply_edits` maintains views incrementally.
    pub fn incremental_maintenance(&self) -> bool {
        self.incremental_maintenance.load(Ordering::Relaxed)
    }

    /// Enables or disables **batch coalescing** under incremental
    /// maintenance — the `xpv update-bench --no-coalesce` ablation knob.
    /// Disabled, the legacy per-edit path runs (one region scan per
    /// (view, edit) pair); answers are identical either way.
    pub fn set_coalesce_enabled(&self, enabled: bool) {
        self.coalesce_enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether incremental maintenance coalesces edit batches.
    pub fn coalesce_enabled(&self) -> bool {
        self.coalesce_enabled.load(Ordering::Relaxed)
    }

    /// Enables or disables the **parallel region fan-out** — the
    /// `xpv update-bench --no-parallel-regions` ablation knob. Merged
    /// regions are disjoint, so scans are combined in `(view, root)` order
    /// and answers, deltas, and counters are identical either way.
    pub fn set_parallel_regions(&self, enabled: bool) {
        self.parallel_regions.store(enabled, Ordering::Relaxed);
    }

    /// Whether region scans fan out across worker threads.
    pub fn parallel_regions(&self) -> bool {
        self.parallel_regions.load(Ordering::Relaxed)
    }

    /// Sets the worker count for the region fan-out (`0` = use
    /// `std::thread::available_parallelism`).
    pub fn set_region_workers(&self, workers: usize) {
        self.region_workers.store(workers as u64, Ordering::Relaxed);
    }

    /// The coalesced maintenance pipeline: apply the whole batch, freeze
    /// the post-batch flat snapshot **once** (shared between the region
    /// scans and the snapshot swap), diff spines against the pre-batch
    /// tree, fan the disjoint merged regions across scoped worker threads,
    /// and patch answers deterministically (results indexed by task order,
    /// so the outcome is schedule-invariant).
    fn maintain_coalesced(
        &self,
        t0: &Tree,
        doc: &mut Tree,
        defs: &[&Pattern],
        answers: &mut [Vec<NodeId>],
        edits: &[Edit],
    ) -> Result<(Vec<ViewDelta>, MaintainStats, Arc<FlatTree>), EditError> {
        let saved: Vec<Vec<NodeId>> = answers.to_vec();

        let t = Instant::now();
        let prep = prepare_batch(doc, edits)?;
        let apply_us = t.elapsed().as_micros() as u64;

        let t = Instant::now();
        let new_flat = Arc::new(FlatTree::freeze(doc));
        let freeze_us = t.elapsed().as_micros() as u64;

        let t = Instant::now();
        let mut plan = coalesce_plan(t0, doc, defs, &prep);
        let tasks = plan.region_tasks();
        plan.stats.coalesce_us = t.elapsed().as_micros() as u64;
        plan.stats.apply_us = apply_us;
        plan.stats.freeze_us = freeze_us;
        plan.stats.freeze_reused = 1;

        let use_flat = self.flat_enabled();
        let parallel = self.parallel_regions.load(Ordering::Relaxed);
        // A width-1 fan-out would pay thread-spawn cost for nothing (e.g.
        // a single-core host, or a single-region batch) — run serial then.
        let width = if parallel && tasks.len() > 1 {
            let configured = self.region_workers.load(Ordering::Relaxed) as usize;
            if configured == 0 {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
            } else {
                configured
            }
            .min(tasks.len())
        } else {
            1
        };
        let t = Instant::now();
        let results: Vec<(Vec<NodeId>, BitSet)> = if width > 1 {
            plan.stats.parallel_tasks = tasks.len() as u64;
            plan.stats.parallel_width = width as u64;
            // Static striping: worker w owns tasks w, w+W, w+2W, …; each
            // returns (index, result) pairs, so the combined vector is in
            // task order no matter how the threads interleave.
            let mut slots: Vec<Option<(Vec<NodeId>, BitSet)>> =
                (0..tasks.len()).map(|_| None).collect();
            let doc_ref: &Tree = doc;
            let flat_ref: &FlatTree = &new_flat;
            let plan_ref: &CoalescedPlan = &plan;
            let tasks_ref: &[RegionTask] = &tasks;
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..width)
                    .map(|w| {
                        s.spawn(move || {
                            let mut out = Vec::new();
                            let mut i = w;
                            while i < tasks_ref.len() {
                                let r = scan_region(
                                    tasks_ref[i],
                                    plan_ref,
                                    defs,
                                    doc_ref,
                                    flat_ref,
                                    use_flat,
                                );
                                out.push((i, r));
                                i += width;
                            }
                            out
                        })
                    })
                    .collect();
                for h in handles {
                    for (i, r) in h.join().expect("region worker panicked") {
                        slots[i] = Some(r);
                    }
                }
            });
            slots.into_iter().map(|o| o.expect("every task scanned")).collect()
        } else {
            tasks
                .iter()
                .map(|&task| scan_region(task, &plan, defs, doc, &new_flat, use_flat))
                .collect()
        };
        plan.stats.scan_us = t.elapsed().as_micros() as u64;

        let t = Instant::now();
        let mut stats = plan.stats;
        apply_region_results(doc, defs, answers, &plan, &tasks, &results, &mut stats);
        let deltas = finalize_deltas(doc, &saved, answers, &plan.retag, &mut stats);
        stats.patch_us = t.elapsed().as_micros() as u64;
        Ok((deltas, stats, new_flat))
    }

    /// Lifetime statistics, aggregated across shards (the oracle counters
    /// are folded in live).
    pub fn stats(&self) -> CacheStats {
        let mut s = CacheStats::default();
        for shard in self.shards.iter() {
            s.queries += shard.stats.queries.load(Ordering::Relaxed);
            s.view_hits += shard.stats.view_hits.load(Ordering::Relaxed);
            s.intersect_hits += shard.stats.intersect_hits.load(Ordering::Relaxed);
            s.direct += shard.stats.direct.load(Ordering::Relaxed);
            s.plan_memo_hits += shard.stats.plan_memo_hits.load(Ordering::Relaxed);
            s.plan_memo_misses += shard.stats.plan_memo_misses.load(Ordering::Relaxed);
            s.batch_dedup_hits += shard.stats.batch_dedup_hits.load(Ordering::Relaxed);
            s.plan_memo_evictions += shard.stats.plan_memo_evictions.load(Ordering::Relaxed);
            s.plan_memo_invalidations +=
                shard.stats.plan_memo_invalidations.load(Ordering::Relaxed);
            s.intersect_routes += shard.stats.intersect_routes.load(Ordering::Relaxed);
            s.intersect_candidates_tried +=
                shard.stats.intersect_candidates_tried.load(Ordering::Relaxed);
            s.intersect_participants += shard.stats.intersect_participants.load(Ordering::Relaxed);
            s.sig_rejects += shard.stats.sig_rejects.load(Ordering::Relaxed);
            s.sig_passes += shard.stats.sig_passes.load(Ordering::Relaxed);
        }
        let oracle = self.session.oracle().stats();
        s.oracle_memo_hits = oracle.verdict_memo_hits;
        s.oracle_canonical_runs = oracle.canonical_runs;
        s.oracle_models_checked = oracle.models_checked;
        s.updates_applied = self.updates_applied.load(Ordering::Relaxed);
        s.views_refreshed_incrementally =
            self.views_refreshed_incrementally.load(Ordering::Relaxed);
        s.snapshot_read_stalls = self.snapshot_read_stalls.load(Ordering::Relaxed);
        s.maintain = *self.maintain_totals.lock().expect("maintain totals poisoned");
        s
    }

    /// The cache's metric [`Registry`] (latency histograms live here).
    /// Benchmarks hold histogram handles from it and diff snapshots
    /// around a run; the serving front-end records its own phase
    /// histograms into the same registry.
    pub fn obs_registry(&self) -> &Arc<Registry> {
        &self.obs.registry
    }

    /// Fault injection for watchdog tests: every subsequent
    /// [`ShardedViewCache::apply_edits`] batch sleeps for `pause` while
    /// holding the write gate (with the maintenance heartbeat in flight),
    /// simulating a wedged maintenance pass. Pass `Duration::ZERO` to
    /// disable. Not part of the public API contract.
    #[doc(hidden)]
    pub fn inject_maintain_pause_for_tests(&self, pause: Duration) {
        self.maintain_pause_us.store(pause.as_micros() as u64, Ordering::Relaxed);
    }

    /// Every cache-side metric as one sorted [`MetricsSnapshot`]:
    /// the registry's latency histograms plus the `xpv_oracle_*`,
    /// `xpv_cache_*`, and `xpv_maintain_*` counter families (each
    /// enumerated by its stats struct's canonical `visit`, so the
    /// snapshot, the wire frame, and the `Display` impls share one
    /// naming authority). The `oracle_*` mirror fields of [`CacheStats`]
    /// are skipped here — those numbers are already present under
    /// `xpv_oracle_*`, and no counter reaches the snapshot under two
    /// names.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.obs.registry.snapshot();
        self.session.oracle().stats().visit(&mut |name, v| {
            snap.push_counter(format!("xpv_oracle_{name}"), v);
        });
        let stats = self.stats();
        stats.visit(&mut |name, v| {
            if !name.starts_with("oracle_") {
                snap.push_counter(format!("xpv_cache_{name}"), v);
            }
        });
        stats.maintain.visit(&mut |name, v| {
            snap.push_counter(format!("xpv_maintain_{name}"), v);
        });
        snap.sort();
        snap
    }

    #[inline]
    fn shard_for(&self, fingerprint: u64) -> &CacheShard {
        &self.shards[(fingerprint as usize) & (self.shards.len() - 1)]
    }

    /// Picks the route for `query` (already interned to `key` / `fp`),
    /// consulting (and feeding) this shard's plan memo. Returns the route
    /// plus the shard that accounted the lookup.
    fn route_for(&self, query: &Pattern, key: PatternKey, fp: u64) -> (PlannedRoute, &CacheShard) {
        let shard = self.shard_for(fp);
        let memo = self.memo_enabled();
        if memo {
            let map = shard.memo.read().expect("plan memo poisoned");
            if let Some(entry) = map.get(&key) {
                entry.last_used.store(self.tick.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
                bump(&shard.stats.plan_memo_hits);
                return (entry.route.clone(), shard);
            }
        }
        bump(&shard.stats.plan_memo_misses);
        // Load the version strictly *before* taking the snapshot we plan
        // against: any mutation (add/remove/apply_edits) completing after
        // this load bumps the version, so the memo insert below is skipped
        // — a route planned against a pre-mutation snapshot can never be
        // memoized after the invalidation sweep and survive it. (Planning
        // deliberately takes its own snapshot rather than reusing the
        // caller's, which may predate the version load.)
        let planned_at = self.views_version.load(Ordering::Acquire);
        let plan_snap = self.snapshot();
        let miss_start = Instant::now();
        let (route, dep) = self.plan(query, shard, &plan_snap);
        self.obs.plan_miss_us.record_duration(miss_start.elapsed());
        if memo {
            let mut map = shard.memo.write().expect("plan memo poisoned");
            if self.views_version.load(Ordering::Acquire) == planned_at && !map.contains_key(&key) {
                // Reserve a slot against the global bound; on overflow,
                // evict this shard's LRU entry instead (net zero), or skip
                // memoizing when the shard is empty — the total entry count
                // never exceeds `memo_cap`.
                let has_slot = {
                    let reserved = self.memo_entries.fetch_add(1, Ordering::Relaxed);
                    if (reserved as usize) < self.memo_cap {
                        true
                    } else {
                        self.memo_entries.fetch_sub(1, Ordering::Relaxed);
                        // LRU eviction: drop the stalest entry. Linear scan
                        // — capped memos are small, and this path only runs
                        // on misses against a saturated memo.
                        let stale = map
                            .iter()
                            .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                            .map(|(&k, _)| k);
                        // Evict-and-replace is net zero entries, so the
                        // counter stays untouched.
                        match stale {
                            Some(stale) => {
                                map.remove(&stale);
                                bump(&shard.stats.plan_memo_evictions);
                                true
                            }
                            None => false,
                        }
                    }
                };
                if has_slot {
                    map.insert(
                        key,
                        MemoEntry {
                            route: route.clone(),
                            dep,
                            last_used: AtomicU64::new(self.tick.fetch_add(1, Ordering::Relaxed)),
                        },
                    );
                }
            }
        }
        (route, shard)
    }

    /// Plans `query` against the snapshot's view pool (no memo
    /// involvement): the single-view scan first, then — when no view
    /// suffices and intersections are enabled — the multi-view intersection
    /// planner.
    ///
    /// The scan is the **plan-miss fast path**: the query's
    /// [`QuerySignature`] is computed once, every pool candidate is first
    /// checked against its precomputed [`ViewSignature`] (a few word ops;
    /// rejected candidates provably admit no equivalent rewriting and
    /// never reach the containment oracle), and the survivors are tried
    /// in this shard's hit-rate order so a `FirstMatch` plan usually pays
    /// exactly one containment decision. Since filtered-out candidates
    /// can never produce a rewriting and the try order ignores the filter
    /// knob, the chosen route is identical with the filter on or off.
    fn plan(
        &self,
        query: &Pattern,
        shard: &CacheShard,
        snap: &StateSnapshot,
    ) -> (PlannedRoute, PlanDep) {
        let views = &snap.views;
        let use_filter = self.sig_filter_enabled();
        let qsig = (use_filter && !views.is_empty()).then(|| QuerySignature::of(query));
        let mut order: Vec<usize> = Vec::with_capacity(views.len());
        for i in 0..views.len() {
            if let Some(qsig) = &qsig {
                if !qsig.admits(&snap.sigs[i]) {
                    continue;
                }
            }
            order.push(i);
        }
        if use_filter {
            let rejected = (views.len() - order.len()) as u64;
            shard.stats.sig_rejects.fetch_add(rejected, Ordering::Relaxed);
            shard.stats.sig_passes.fetch_add(order.len() as u64, Ordering::Relaxed);
        }
        // Winner-first try order (stable sort, pool order breaks ties):
        // under `FirstMatch` the historically winning view is decided
        // first, so a recurring miss pattern costs one oracle call instead
        // of a prefix scan. `SmallestView` ranks every survivor anyway.
        if self.policy == ChoicePolicy::FirstMatch && order.len() > 1 {
            let wins = shard.wins.lock().expect("win index poisoned");
            if !wins.is_empty() {
                order.sort_by_key(|&i| {
                    std::cmp::Reverse(wins.get(&snap.ids[i]).copied().unwrap_or(0))
                });
            }
        }
        let mut chosen: Option<(usize, Pattern)> = None;
        for &i in &order {
            let view = &views[i];
            if let RewriteAnswer::Rewriting(rw) = self.session.decide(query, view.definition()) {
                let better = match (&chosen, self.policy) {
                    (None, _) => true,
                    (Some(_), ChoicePolicy::FirstMatch) => false,
                    (Some((j, _)), ChoicePolicy::SmallestView) => view.len() < views[*j].len(),
                };
                if better {
                    chosen = Some((i, rw.pattern().clone()));
                }
                if self.policy == ChoicePolicy::FirstMatch {
                    break;
                }
            }
        }
        if let Some((index, rewriting)) = chosen {
            let dep = match self.policy {
                // The route is justified by the chosen view alone (its
                // rewriting was verified pairwise), so it depends on that
                // view's presence and answers — not on the scan order that
                // found it.
                ChoicePolicy::FirstMatch => {
                    *shard
                        .wins
                        .lock()
                        .expect("win index poisoned")
                        .entry(snap.ids[index])
                        .or_insert(0) += 1;
                    PlanDep::Chosen(snap.ids[index])
                }
                ChoicePolicy::SmallestView => PlanDep::WholePool,
            };
            return (PlannedRoute::ViaView { id: snap.ids[index], hint: index, rewriting }, dep);
        }
        // No single view rewrites the query: try a multi-view intersection.
        if self.intersect_enabled() && views.len() >= 2 {
            let pool: Vec<&Pattern> = views.iter().map(|v| v.definition()).collect();
            let (answer, istats) = plan_intersection_sig(
                &self.session,
                query,
                &pool,
                qsig.as_ref().map(|q| (q, snap.sigs.as_slice())),
                &self.intersect_cfg,
            );
            shard
                .stats
                .intersect_candidates_tried
                .fetch_add(istats.candidates_tried, Ordering::Relaxed);
            if let Some(answer) = answer {
                debug_assert!(answer.equivalent, "only equivalent compensations are routed");
                bump(&shard.stats.intersect_routes);
                shard
                    .stats
                    .intersect_participants
                    .fetch_add(answer.views.len() as u64, Ordering::Relaxed);
                let ids: Vec<ViewId> = answer.views.iter().map(|&i| snap.ids[i]).collect();
                let dep = PlanDep::Intersect(ids.clone());
                return (
                    PlannedRoute::Intersect {
                        ids,
                        hints: answer.views,
                        compensation: answer.compensation,
                    },
                    dep,
                );
            }
        }
        (PlannedRoute::Direct, PlanDep::NoUsableView)
    }

    /// Executes a planned route against the snapshot, producing the answer
    /// nodes and provenance. A route whose stable ids no longer resolve in
    /// the snapshot (its views were removed after the route was fetched)
    /// degrades to direct evaluation — always sound, since routed answers
    /// equal direct answers by construction.
    ///
    /// Evaluation runs through the snapshot's frozen [`FlatTree`] when the
    /// flat path is enabled; `batch` additionally threads one fused
    /// [`BatchEval`] through the deduped survivors of `answer_batch`, so
    /// sub-match tables are shared across the batch. All three arms return
    /// byte-identical nodes (the equivalence suite pins this down).
    fn execute(
        &self,
        query: &Pattern,
        route: PlannedRoute,
        shard: &CacheShard,
        snap: &StateSnapshot,
        mut batch: Option<&mut BatchEval<'_>>,
    ) -> (Vec<NodeId>, Route) {
        let flat = self.flat_enabled();
        // One evaluation seam for every arm: `anchors == None` means "from
        // the document root" (plain evaluation).
        let mut eval = |p: &Pattern, anchors: Option<&[NodeId]>| -> Vec<NodeId> {
            match (batch.as_deref_mut(), anchors) {
                (Some(b), Some(a)) => b.evaluate_anchored(p, a),
                (Some(b), None) => b.evaluate(p),
                (None, Some(a)) if flat => evaluate_anchored_flat(p, &snap.flat, a),
                (None, None) if flat => evaluate_flat(p, &snap.flat),
                (None, Some(a)) => evaluate_anchored(p, &snap.doc, a),
                (None, None) => evaluate(p, &snap.doc),
            }
        };
        self.execute_route(query, route, shard, snap, &mut eval)
    }

    /// [`ShardedViewCache::execute`] writing the answer nodes into a
    /// caller-supplied arena: on the fused batch path the output bitset is
    /// drained straight into the arena (no intermediate `Vec`); the
    /// non-fused fallbacks evaluate to a `Vec` and append it, so every arm
    /// stays byte-identical to the owned path.
    fn execute_refs(
        &self,
        query: &Pattern,
        route: PlannedRoute,
        shard: &CacheShard,
        snap: &StateSnapshot,
        mut batch: Option<&mut BatchEval<'_>>,
        arena: &mut AnswerArena,
    ) -> (AnswerRef, Route) {
        let flat = self.flat_enabled();
        let mut eval = |p: &Pattern, anchors: Option<&[NodeId]>| -> AnswerRef {
            match (batch.as_deref_mut(), anchors) {
                (Some(b), Some(a)) => b.evaluate_anchored_into(p, a, arena),
                (Some(b), None) => b.evaluate_into(p, arena),
                (None, Some(a)) if flat => arena.push_run(evaluate_anchored_flat(p, &snap.flat, a)),
                (None, None) if flat => arena.push_run(evaluate_flat(p, &snap.flat)),
                (None, Some(a)) => arena.push_run(evaluate_anchored(p, &snap.doc, a)),
                (None, None) => arena.push_run(evaluate(p, &snap.doc)),
            }
        };
        self.execute_route(query, route, shard, snap, &mut eval)
    }

    /// The route-resolution core shared by the owned and arena execution
    /// paths: resolves stable ids against the snapshot, bumps the route
    /// counters, computes intersection anchors, and calls `eval` exactly
    /// once per answer.
    fn execute_route<T>(
        &self,
        query: &Pattern,
        route: PlannedRoute,
        shard: &CacheShard,
        snap: &StateSnapshot,
        eval: &mut dyn FnMut(&Pattern, Option<&[NodeId]>) -> T,
    ) -> (T, Route) {
        match route {
            PlannedRoute::ViaView { id, hint, rewriting } => {
                if let Some(index) = snap.resolve(id, hint) {
                    bump(&shard.stats.view_hits);
                    let view = &snap.views[index];
                    let nodes = eval(&rewriting, Some(view.nodes()));
                    return (
                        nodes,
                        Route::ViaView {
                            view: view.name().to_string(),
                            rewriting: rewriting.to_string(),
                        },
                    );
                }
                bump(&shard.stats.direct);
                (eval(query, None), Route::Direct)
            }
            PlannedRoute::Intersect { ids, hints, compensation } => {
                let indices: Option<Vec<usize>> =
                    ids.iter().zip(&hints).map(|(&id, &hint)| snap.resolve(id, hint)).collect();
                if let Some(indices) = indices {
                    bump(&shard.stats.intersect_hits);
                    let sets: Vec<&[NodeId]> =
                        indices.iter().map(|&i| snap.views[i].nodes()).collect();
                    let anchors = intersect_node_sets(snap.doc.arena_len(), &sets);
                    let nodes = eval(&compensation, Some(&anchors));
                    return (
                        nodes,
                        Route::Intersect {
                            views: indices
                                .iter()
                                .map(|&i| snap.views[i].name().to_string())
                                .collect(),
                            compensation: compensation.to_string(),
                        },
                    );
                }
                bump(&shard.stats.direct);
                (eval(query, None), Route::Direct)
            }
            PlannedRoute::Direct => {
                bump(&shard.stats.direct);
                (eval(query, None), Route::Direct)
            }
        }
    }

    /// Answers `query`, preferring an equivalent rewriting over any
    /// registered view and falling back to direct evaluation. Which view
    /// wins when several apply is governed by the [`ChoicePolicy`].
    ///
    /// From its second occurrence on, a query's route is served from the
    /// plan memo under a shared read lock: no planner call and **zero**
    /// canonical-model containment calls
    /// ([`CacheStats::plan_memo_hits`] counts these).
    pub fn answer(&self, query: &Pattern) -> CacheAnswer {
        let (key, fp) = self.session.oracle().intern_fingerprinted(query);
        self.answer_keyed(query, key, fp)
    }

    /// [`ShardedViewCache::answer`] with the interning already done (batch
    /// callers intern once for dedup and routing). One consistent
    /// document+views snapshot serves both planning and evaluation.
    fn answer_keyed(&self, query: &Pattern, key: PatternKey, fp: u64) -> CacheAnswer {
        let snap = self.snapshot();
        self.answer_on(query, key, fp, &snap, None)
    }

    /// Routes and executes one query against a caller-held snapshot,
    /// optionally through a fused batch evaluator bound to that snapshot.
    fn answer_on(
        &self,
        query: &Pattern,
        key: PatternKey,
        fp: u64,
        snap: &StateSnapshot,
        batch: Option<&mut BatchEval<'_>>,
    ) -> CacheAnswer {
        let plan_start = Instant::now();
        let (route, shard) = self.route_for(query, key, fp);
        bump(&shard.stats.queries);
        let planning = plan_start.elapsed();

        let eval_start = Instant::now();
        let (nodes, route) = self.execute(query, route, shard, snap, batch);
        let evaluation = eval_start.elapsed();
        self.obs.plan_us.record_duration(planning);
        self.obs.eval_us.record_duration(evaluation);
        CacheAnswer { nodes, route, planning, evaluation }
    }

    /// [`ShardedViewCache::answer_on`] for the arena lane: identical
    /// routing and accounting, nodes written into `arena`.
    fn answer_on_refs(
        &self,
        query: &Pattern,
        key: PatternKey,
        fp: u64,
        snap: &StateSnapshot,
        batch: Option<&mut BatchEval<'_>>,
        arena: &mut AnswerArena,
    ) -> CacheAnswerRef {
        let plan_start = Instant::now();
        let (route, shard) = self.route_for(query, key, fp);
        bump(&shard.stats.queries);
        let planning = plan_start.elapsed();

        let eval_start = Instant::now();
        let (nodes, route) = self.execute_refs(query, route, shard, snap, batch, arena);
        let evaluation = eval_start.elapsed();
        self.obs.plan_us.record_duration(planning);
        self.obs.eval_us.record_duration(evaluation);
        CacheAnswerRef { nodes, route: Arc::new(route), planning, evaluation }
    }

    /// Answers a whole workload slice in one pass; answers come back in
    /// input order.
    ///
    /// While memoization is enabled, queries repeated **within the batch**
    /// (including sibling-reordered isomorphs) are answered once and fanned
    /// out: the repeat positions receive a clone of the first occurrence's
    /// `CacheAnswer` (with zeroed timings) without re-running even the
    /// plan-memo lookup. Fan-outs count as [`CacheStats::plan_memo_hits`]
    /// and [`CacheStats::batch_dedup_hits`]. With the memo disabled
    /// ([`ShardedViewCache::set_memo_enabled`]) every position replans, so
    /// the ablation baseline measures genuinely unshared work.
    pub fn answer_batch(&self, queries: &[Pattern]) -> Vec<CacheAnswer> {
        let mut span = Span::begin("cache.batch");
        let answers = self.answer_batch_spanned(queries, &mut span);
        span.finish();
        answers
    }

    /// [`ShardedViewCache::answer_batch`] with a caller-owned trace
    /// [`Span`]: the batch's aggregate plan and eval phase times are
    /// marked onto `span` (when it is enabled), letting a serving
    /// front-end thread one request-lifecycle span through admission,
    /// routing, evaluation, encoding, and flush. The batch-level latency
    /// histograms record regardless of the span.
    pub fn answer_batch_spanned(&self, queries: &[Pattern], span: &mut Span) -> Vec<CacheAnswer> {
        let batch_start = Instant::now();
        let answers = self.answer_batch_inner(queries);
        self.obs.batch_us.record_duration(batch_start.elapsed());
        if span.is_enabled() {
            let plan: Duration = answers.iter().map(|a| a.planning).sum();
            let eval: Duration = answers.iter().map(|a| a.evaluation).sum();
            span.mark_us(Phase::Plan, plan.as_micros() as u64);
            span.mark_us(Phase::Eval, eval.as_micros() as u64);
        }
        answers
    }

    fn answer_batch_inner(&self, queries: &[Pattern]) -> Vec<CacheAnswer> {
        if !self.memo_enabled() {
            return queries.iter().map(|q| self.answer(q)).collect();
        }
        // One consistent snapshot serves the whole batch, and one fused
        // evaluator (when the flat path is on) shares scratch buffers and
        // sub-match tables across every deduped survivor.
        let snap = self.snapshot();
        let mut fused = self.flat_enabled().then(|| BatchEval::new(&snap.flat));
        let mut answers: Vec<CacheAnswer> = Vec::with_capacity(queries.len());
        let mut first_seen: HashMap<PatternKey, usize> = HashMap::new();
        for (i, query) in queries.iter().enumerate() {
            let (key, fp) = self.session.oracle().intern_fingerprinted(query);
            match first_seen.get(&key) {
                Some(&j) => {
                    let original = &answers[j];
                    let fanned = CacheAnswer {
                        nodes: original.nodes.clone(),
                        route: original.route.clone(),
                        planning: Duration::ZERO,
                        evaluation: Duration::ZERO,
                    };
                    let shard = self.shard_for(fp);
                    bump(&shard.stats.queries);
                    bump(&shard.stats.plan_memo_hits);
                    bump(&shard.stats.batch_dedup_hits);
                    match fanned.route {
                        Route::ViaView { .. } => bump(&shard.stats.view_hits),
                        Route::Intersect { .. } => bump(&shard.stats.intersect_hits),
                        Route::Direct => bump(&shard.stats.direct),
                    }
                    answers.push(fanned);
                }
                None => {
                    first_seen.insert(key, i);
                    answers.push(self.answer_on(query, key, fp, &snap, fused.as_mut()));
                }
            }
        }
        answers
    }

    /// [`ShardedViewCache::answer_batch`] through the **arena lane**: the
    /// answers' node runs are bump-allocated into the caller's `arena`
    /// (cleared first), and each [`CacheAnswerRef`] holds an 8-byte handle
    /// plus an `Arc`'d route. On the memoized hot path — route from the
    /// plan memo, fused flat evaluation — an answer touches the heap only
    /// through the arena's amortized growth; batch-deduplicated repeats
    /// share the first occurrence's run outright (the handle is `Copy`),
    /// so fan-out allocates nothing at all. Nodes, routes, and counter
    /// effects are identical to the owned API (the ablation suite pins the
    /// encoded bytes).
    pub fn answer_batch_refs(
        &self,
        queries: &[Pattern],
        arena: &mut AnswerArena,
    ) -> Vec<CacheAnswerRef> {
        let mut span = Span::begin("cache.batch");
        let answers = self.answer_batch_refs_spanned(queries, &mut span, arena);
        span.finish();
        answers
    }

    /// [`ShardedViewCache::answer_batch_refs`] with a caller-owned trace
    /// [`Span`] (see [`ShardedViewCache::answer_batch_spanned`]).
    pub fn answer_batch_refs_spanned(
        &self,
        queries: &[Pattern],
        span: &mut Span,
        arena: &mut AnswerArena,
    ) -> Vec<CacheAnswerRef> {
        let batch_start = Instant::now();
        let answers = self.answer_batch_refs_inner(queries, arena);
        self.obs.batch_us.record_duration(batch_start.elapsed());
        if span.is_enabled() {
            let plan: Duration = answers.iter().map(|a| a.planning).sum();
            let eval: Duration = answers.iter().map(|a| a.evaluation).sum();
            span.mark_us(Phase::Plan, plan.as_micros() as u64);
            span.mark_us(Phase::Eval, eval.as_micros() as u64);
        }
        answers
    }

    fn answer_batch_refs_inner(
        &self,
        queries: &[Pattern],
        arena: &mut AnswerArena,
    ) -> Vec<CacheAnswerRef> {
        arena.clear();
        let snap = self.snapshot();
        let mut fused = self.flat_enabled().then(|| BatchEval::new(&snap.flat));
        if !self.memo_enabled() {
            // Ablation baseline: every position replans and re-evaluates
            // (same per-position work as the owned path's fallback, one
            // consistent snapshot either way).
            return queries
                .iter()
                .map(|q| {
                    let (key, fp) = self.session.oracle().intern_fingerprinted(q);
                    self.answer_on_refs(q, key, fp, &snap, fused.as_mut(), arena)
                })
                .collect();
        }
        let mut answers: Vec<CacheAnswerRef> = Vec::with_capacity(queries.len());
        let mut first_seen: HashMap<PatternKey, usize> = HashMap::new();
        for (i, query) in queries.iter().enumerate() {
            let (key, fp) = self.session.oracle().intern_fingerprinted(query);
            match first_seen.get(&key) {
                Some(&j) => {
                    let original = &answers[j];
                    let fanned = CacheAnswerRef {
                        nodes: original.nodes,
                        route: Arc::clone(&original.route),
                        planning: Duration::ZERO,
                        evaluation: Duration::ZERO,
                    };
                    let shard = self.shard_for(fp);
                    bump(&shard.stats.queries);
                    bump(&shard.stats.plan_memo_hits);
                    bump(&shard.stats.batch_dedup_hits);
                    match *fanned.route {
                        Route::ViaView { .. } => bump(&shard.stats.view_hits),
                        Route::Intersect { .. } => bump(&shard.stats.intersect_hits),
                        Route::Direct => bump(&shard.stats.direct),
                    }
                    answers.push(fanned);
                }
                None => {
                    first_seen.insert(key, i);
                    answers.push(self.answer_on_refs(query, key, fp, &snap, fused.as_mut(), arena));
                }
            }
        }
        answers
    }

    /// Answers `query` by direct evaluation only (baseline for benchmarks).
    pub fn answer_direct(&self, query: &Pattern) -> Vec<NodeId> {
        evaluate(query, &self.document())
    }

    /// A **partial** answer from the views when no equivalent rewriting
    /// exists: uses a *contained* rewriting (`R ∘ V ⊑ P`, the sound half of
    /// the paper's open problem 3), so every returned node is a genuine
    /// answer of `query`, but some answers may be missing. Returns `None`
    /// when no view yields even a contained rewriting.
    ///
    /// The `complete` flag is `true` only when the rewriting is equivalent
    /// (in which case this behaves like [`ShardedViewCache::answer`]).
    pub fn answer_partial(&self, query: &Pattern) -> Option<(Vec<NodeId>, bool)> {
        // Equivalent rewriting first (shares the plan memo with `answer`).
        let snap = self.snapshot();
        let (key, fp) = self.session.oracle().intern_fingerprinted(query);
        let (route, shard) = self.route_for(query, key, fp);
        bump(&shard.stats.queries);
        let views = &snap.views;
        match route {
            PlannedRoute::ViaView { id, hint, rewriting } => {
                if let Some(index) = snap.resolve(id, hint) {
                    bump(&shard.stats.view_hits);
                    return Some((views[index].apply_virtual(&rewriting, &snap.doc), true));
                }
            }
            PlannedRoute::Intersect { ids, hints, compensation } => {
                let indices: Option<Vec<usize>> =
                    ids.iter().zip(&hints).map(|(&id, &hint)| snap.resolve(id, hint)).collect();
                if let Some(indices) = indices {
                    bump(&shard.stats.intersect_hits);
                    let sets: Vec<&[NodeId]> = indices.iter().map(|&i| views[i].nodes()).collect();
                    return Some((
                        answer_intersection_virtual(&snap.doc, &sets, &compensation),
                        true,
                    ));
                }
            }
            PlannedRoute::Direct => {}
        }
        // Contained rewriting: pick the view yielding the most answers.
        let mut best: Option<Vec<NodeId>> = None;
        for view in views.iter() {
            if let Some(r) = contained_rewriting_in(self.session.oracle(), query, view.definition())
            {
                let nodes = view.apply_virtual(&r, &snap.doc);
                if best.as_ref().is_none_or(|b| nodes.len() > b.len()) {
                    best = Some(nodes);
                }
            }
        }
        // A contained *intersection* can recover more answers than any
        // single view's contained rewriting (it imposes fewer spurious
        // constraints): take it when it wins on size.
        if self.intersect_enabled() && views.len() >= 2 {
            let pool: Vec<&Pattern> = views.iter().map(|v| v.definition()).collect();
            let (answer, _) =
                plan_intersection_contained_in(&self.session, query, &pool, &self.intersect_cfg);
            if let Some(answer) = answer {
                let sets: Vec<&[NodeId]> = answer.views.iter().map(|&i| views[i].nodes()).collect();
                let nodes = answer_intersection_virtual(&snap.doc, &sets, &answer.compensation);
                if answer.equivalent {
                    // Possible only when the route memo predates the pool or
                    // ablation state; the answer is complete regardless.
                    return Some((nodes, true));
                }
                if best.as_ref().is_none_or(|b| nodes.len() > b.len()) {
                    best = Some(nodes);
                }
            }
        }
        best.map(|nodes| (nodes, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpv_model::TreeBuilder;
    use xpv_pattern::parse_xpath;

    fn pat(s: &str) -> Pattern {
        parse_xpath(s).expect("pattern parses")
    }

    fn doc() -> Tree {
        TreeBuilder::root("site", |b| {
            for _ in 0..3 {
                b.child("region", |b| {
                    b.child("item", |b| {
                        b.leaf("name");
                        b.child("desc", |b| {
                            b.leaf("keyword");
                        });
                    });
                    b.child("item", |b| {
                        b.leaf("name");
                    });
                });
            }
        })
    }

    #[test]
    fn concurrent_answers_match_serial_answers() {
        let cache = ShardedViewCache::new(doc()).with_shards(4);
        cache.add_view("items", pat("site/region/item"));
        cache.add_view("names", pat("site/region/item/name"));
        let queries: Vec<Pattern> = [
            "site/region/item/name",
            "site//keyword",
            "site/region/item[desc]/name",
            "site/region/item",
        ]
        .iter()
        .map(|s| pat(s))
        .collect();
        let expected: Vec<Vec<NodeId>> = queries.iter().map(|q| cache.answer_direct(q)).collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..5 {
                        for (q, want) in queries.iter().zip(&expected) {
                            assert_eq!(&cache.answer(q).nodes, want, "wrong answer for {q}");
                        }
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.queries, 4 * 5 * queries.len() as u64);
        assert_eq!(s.queries, s.plan_memo_hits + s.plan_memo_misses);
        assert!(s.plan_memo_hits > 0);
    }

    #[test]
    fn add_view_keeps_first_match_routes() {
        let cache = ShardedViewCache::new(doc());
        cache.add_view("names", pat("site/region/item/name"));
        let via_view = pat("site/region/item/name");
        let direct = pat("site/region/item");
        assert!(matches!(cache.answer(&via_view).route, Route::ViaView { .. }));
        assert_eq!(cache.answer(&direct).route, Route::Direct);
        assert_eq!(cache.plan_memo_len(), 2);

        let runs_before = cache.stats().oracle_canonical_runs;
        cache.add_view("items", pat("site/region/item"));

        // Only the Direct entry was invalidated.
        assert_eq!(cache.plan_memo_len(), 1);
        assert_eq!(cache.stats().plan_memo_invalidations, 1);

        // The surviving ViaView route serves from the memo: zero coNP work.
        assert!(matches!(cache.answer(&via_view).route, Route::ViaView { .. }));
        assert_eq!(cache.stats().oracle_canonical_runs, runs_before);
        // The Direct query replans and picks up the new view.
        match cache.answer(&direct).route {
            Route::ViaView { view, .. } => assert_eq!(view, "items"),
            other => panic!("expected the fresh view to serve, got {other:?}"),
        }
    }

    #[test]
    fn memo_cap_bounds_entries_and_evicts_lru() {
        let cache = ShardedViewCache::new(doc()).with_shards(1).with_memo_cap(2);
        cache.add_view("items", pat("site/region/item"));
        let queries = ["site/region/item/name", "site//keyword", "site/region/item", "site//name"];
        for q in queries {
            let _ = cache.answer(&pat(q));
            assert!(cache.plan_memo_len() <= 2, "cap must hold after every insert");
        }
        let s = cache.stats();
        assert_eq!(s.plan_memo_evictions, 2);
        assert_eq!(s.plan_memo_misses, 4);
        // The memo still answers correctly after evictions.
        let q = pat("site/region/item/name");
        assert_eq!(cache.answer(&q).nodes, cache.answer_direct(&q));
    }

    #[test]
    fn smallest_view_routes_invalidate_on_add_view() {
        // set_policy needs exclusive access — configure before sharing.
        let mut cache = ShardedViewCache::new(doc());
        cache.set_policy(ChoicePolicy::SmallestView);
        cache.add_view("items", pat("site/region/item"));
        let q = pat("site/region/item/name");
        assert!(matches!(cache.answer(&q).route, Route::ViaView { .. }));
        assert_eq!(cache.plan_memo_len(), 1);
        // A whole-pool scan depends on every view: the entry must drop.
        cache.add_view("regions", pat("site/region"));
        assert_eq!(cache.plan_memo_len(), 0);
        match cache.answer(&q).route {
            Route::ViaView { view, .. } => {
                assert_eq!(view, "regions", "regions is the smaller view")
            }
            other => panic!("expected view hit, got {other:?}"),
        }
    }

    #[test]
    fn batch_dedup_fans_out_identical_queries() {
        let cache = ShardedViewCache::new(doc());
        cache.add_view("items", pat("site/region/item"));
        let q = pat("site/region/item/name");
        let batch = vec![q.clone(), q.clone(), q.clone()];
        let answers = cache.answer_batch(&batch);
        assert_eq!(answers.len(), 3);
        for a in &answers {
            assert_eq!(a.nodes, answers[0].nodes);
            assert_eq!(a.route, answers[0].route);
        }
        let s = cache.stats();
        assert_eq!(s.queries, 3);
        assert_eq!(s.plan_memo_misses, 1, "planned exactly once");
        assert_eq!(s.batch_dedup_hits, 2);
        assert_eq!(s.plan_memo_hits, 2);
        assert_eq!(s.view_hits, 3, "every position counts toward its route");
    }

    #[test]
    fn memo_disabled_batches_do_not_dedupe() {
        // The ablation baseline must measure unshared work: with the memo
        // off, in-batch repeats replan instead of fanning out.
        let cache = ShardedViewCache::new(doc());
        cache.set_memo_enabled(false);
        cache.add_view("items", pat("site/region/item"));
        let q = pat("site/region/item/name");
        let answers = cache.answer_batch(&[q.clone(), q.clone(), q.clone()]);
        assert_eq!(answers.len(), 3);
        for a in &answers {
            assert_eq!(a.nodes, answers[0].nodes);
        }
        let s = cache.stats();
        assert_eq!(s.batch_dedup_hits, 0);
        assert_eq!(s.plan_memo_hits, 0);
        assert_eq!(s.plan_memo_misses, 3, "every repeat must replan without the memo");
    }

    #[test]
    fn stats_display_is_one_line() {
        let cache = ShardedViewCache::new(doc());
        cache.add_view("items", pat("site/region/item"));
        let _ = cache.answer(&pat("site/region/item/name"));
        let line = cache.stats().to_string();
        assert!(line.contains("queries"), "got: {line}");
        assert!(line.contains("intersect"), "got: {line}");
        assert!(!line.contains('\n'));
    }

    /// A document where bids-only, shipping-only and bids+shipping items
    /// coexist, so the intersection is a strict subset of each view.
    fn overlap_doc() -> Tree {
        TreeBuilder::root("site", |b| {
            b.child("region", |b| {
                b.child("item", |b| {
                    b.leaf("name");
                    b.leaf("bids");
                });
                b.child("item", |b| {
                    b.leaf("name");
                    b.leaf("shipping");
                });
                b.child("item", |b| {
                    b.leaf("name");
                    b.leaf("bids");
                    b.leaf("shipping");
                });
            });
        })
    }

    fn overlap_cache() -> ShardedViewCache {
        let cache = ShardedViewCache::new(overlap_doc()).with_shards(4);
        cache.add_view("bid_names", pat("site/region/item[bids]/name"));
        cache.add_view("ship_names", pat("site/region/item[shipping]/name"));
        cache
    }

    #[test]
    fn jointly_sufficient_views_serve_via_intersection() {
        let cache = overlap_cache();
        let q = pat("site/region/item[bids][shipping]/name");
        let ans = cache.answer(&q);
        match &ans.route {
            Route::Intersect { views, compensation } => {
                assert_eq!(views, &["bid_names", "ship_names"]);
                assert_eq!(compensation, "name");
            }
            other => panic!("expected an intersection route, got {other:?}"),
        }
        assert_eq!(ans.nodes, cache.answer_direct(&q), "intersection answer must be exact");
        assert_eq!(ans.nodes.len(), 1);
        let s = cache.stats();
        assert_eq!(s.intersect_hits, 1);
        assert_eq!(s.intersect_routes, 1);
        assert_eq!(s.intersect_participants, 2);
        assert!(s.intersect_candidates_tried >= 1);
    }

    #[test]
    fn intersection_routes_are_memoized_with_zero_conp_work() {
        let cache = overlap_cache();
        let q = pat("site/region/item[bids][shipping]/name");
        let first = cache.answer(&q);
        let runs = cache.stats().oracle_canonical_runs;
        let second = cache.answer(&q);
        assert_eq!(second.nodes, first.nodes);
        assert_eq!(second.route, first.route);
        let s = cache.stats();
        assert_eq!(s.plan_memo_hits, 1, "second ask must come from the plan memo");
        assert_eq!(
            s.oracle_canonical_runs, runs,
            "second ask must run zero canonical-model containment calls"
        );
        assert_eq!(s.intersect_routes, 1, "the route was planned exactly once");
    }

    #[test]
    fn disabling_intersections_falls_back_to_direct() {
        let cache = overlap_cache();
        cache.set_intersect_enabled(false);
        let q = pat("site/region/item[bids][shipping]/name");
        let ans = cache.answer(&q);
        assert_eq!(ans.route, Route::Direct);
        assert_eq!(ans.nodes, cache.answer_direct(&q));
        assert_eq!(cache.stats().intersect_routes, 0);
        // Re-enabling drops the memoized Direct route and finds the
        // intersection again.
        cache.set_intersect_enabled(true);
        assert!(matches!(cache.answer(&q).route, Route::Intersect { .. }));
    }

    #[test]
    fn intersect_toggle_leaves_single_view_routes_alone() {
        // A WholePool (SmallestView) route is justified by the single-view
        // scan, which runs before intersection planning: flipping the
        // intersect knob must not drop it.
        let mut cache = ShardedViewCache::new(doc());
        cache.set_policy(ChoicePolicy::SmallestView);
        cache.add_view("items", pat("site/region/item"));
        let q = pat("site/region/item/name");
        assert!(matches!(cache.answer(&q).route, Route::ViaView { .. }));
        let runs = cache.stats().oracle_canonical_runs;
        cache.set_intersect_enabled(false);
        cache.set_intersect_enabled(true);
        assert!(matches!(cache.answer(&q).route, Route::ViaView { .. }));
        assert_eq!(cache.stats().oracle_canonical_runs, runs, "route must serve from the memo");
        assert_eq!(cache.stats().plan_memo_invalidations, 0);
    }

    #[test]
    fn replacing_a_participant_invalidates_the_intersection_route() {
        let cache = overlap_cache();
        let q = pat("site/region/item[bids][shipping]/name");
        assert!(matches!(cache.answer(&q).route, Route::Intersect { .. }));
        let invalidations_before = cache.stats().plan_memo_invalidations;

        // Replace one participant with a view that no longer covers the
        // query: the memoized route must not survive.
        cache.replace_view("ship_names", pat("site/region/item[shipping]/bids"));
        assert!(
            cache.stats().plan_memo_invalidations > invalidations_before,
            "the intersection route must be dropped"
        );
        let ans = cache.answer(&q);
        assert_eq!(ans.nodes, cache.answer_direct(&q), "re-planned answer stays correct");
        assert_eq!(ans.route, Route::Direct, "the replaced view no longer supports the route");

        // Replacing it back restores the intersection route.
        cache.replace_view("ship_names", pat("site/region/item[shipping]/name"));
        assert!(matches!(cache.answer(&q).route, Route::Intersect { .. }));
    }

    #[test]
    fn remove_view_keeps_direct_and_untouched_routes() {
        let cache = ShardedViewCache::new(doc());
        cache.add_view("items", pat("site/region/item"));
        cache.add_view("names", pat("site/region/item/name"));
        let via_first = pat("site/region/item[desc]/name"); // FirstMatch hit on "items"
                                                            // Output above every view's output: no rewriting can exist.
        let direct = pat("site/region[item]");
        assert!(matches!(cache.answer(&via_first).route, Route::ViaView { .. }));
        assert_eq!(cache.answer(&direct).route, Route::Direct);
        let runs = cache.stats().oracle_canonical_runs;

        // Removing the *later* view touches neither memoized route.
        assert!(cache.remove_view("names"));
        assert!(matches!(cache.answer(&via_first).route, Route::ViaView { .. }));
        assert_eq!(cache.answer(&direct).route, Route::Direct);
        assert_eq!(cache.stats().oracle_canonical_runs, runs, "both served from the memo");

        // Removing the committed view drops its route; Direct still
        // survives (a smaller pool cannot create a rewriting).
        assert!(cache.remove_view("items"));
        assert_eq!(cache.answer(&via_first).route, Route::Direct);
        assert_eq!(cache.answer(&direct).route, Route::Direct);
        assert!(!cache.remove_view("items"), "double removal reports false");
    }

    #[test]
    fn apply_edits_refreshes_views_and_keeps_untouched_routes() {
        use xpv_maintain::Edit;
        use xpv_model::TreeBuilder as TB;

        let cache = ShardedViewCache::new(doc());
        cache.add_view("items", pat("site/region/item"));
        cache.add_view("keywords", pat("site//keyword"));
        let via_items = pat("site/region/item/name");
        let via_keywords = pat("site//keyword");
        let direct = pat("site/region[item]");
        assert!(matches!(cache.answer(&via_items).route, Route::ViaView { .. }));
        assert!(matches!(cache.answer(&via_keywords).route, Route::ViaView { .. }));
        assert_eq!(cache.answer(&direct).route, Route::Direct);
        let runs = cache.stats().oracle_canonical_runs;

        // Graft one more item (with a name) into the first region: only the
        // `items` view's answers change.
        let snap = cache.document();
        let region = snap.children(snap.root())[0];
        let graft = TB::root("item", |b| {
            b.leaf("name");
        });
        let report = cache
            .apply_edits(&[Edit::InsertSubtree { parent: region, subtree: graft }])
            .expect("valid edit");
        assert_eq!(report.edits_applied, 1);
        assert_eq!(report.doc_version, 1);
        assert_eq!(report.views_changed, 1, "only `items` gained answers");
        assert!(report.routes_dropped >= 1, "the items route must drop");

        // Both queries still answer exactly; the keyword route survived the
        // update (zero coNP work), the items route re-planned.
        let ans = cache.answer(&via_items);
        assert_eq!(ans.nodes, cache.answer_direct(&via_items));
        assert!(matches!(ans.route, Route::ViaView { .. }));
        let ans = cache.answer(&via_keywords);
        assert_eq!(ans.nodes, cache.answer_direct(&via_keywords));
        assert_eq!(cache.stats().oracle_canonical_runs, runs, "survivors replan nothing");
        assert_eq!(cache.answer(&direct).route, Route::Direct, "Direct routes survive edits");

        let s = cache.stats();
        assert_eq!(s.updates_applied, 1);
        assert_eq!(s.views_refreshed_incrementally, 1);
    }

    #[test]
    fn apply_edits_full_recompute_matches_incremental() {
        use xpv_maintain::Edit;

        let incremental = ShardedViewCache::new(doc());
        let full = ShardedViewCache::new(doc());
        full.set_incremental_maintenance(false);
        assert!(!full.incremental_maintenance());
        for c in [&incremental, &full] {
            c.add_view("items", pat("site/region/item"));
            c.add_view("names", pat("site/region/item/name"));
        }
        let snap = incremental.document();
        let region = snap.children(snap.root())[1];
        let victim = snap.children(region)[0];
        let edits = vec![
            Edit::DeleteSubtree { node: victim },
            Edit::Relabel { node: region, label: xpv_model::Label::new("region") },
        ];
        incremental.apply_edits(&edits).expect("valid");
        full.apply_edits(&edits).expect("valid");
        assert_eq!(full.stats().views_refreshed_incrementally, 0, "baseline never counts");
        for q in ["site/region/item/name", "site//keyword", "site/region/item"] {
            let q = pat(q);
            let a = incremental.answer(&q);
            let b = full.answer(&q);
            assert_eq!(a.nodes, b.nodes, "modes disagree on {q}");
            assert_eq!(a.nodes, incremental.answer_direct(&q));
        }
    }

    #[test]
    fn invalid_edit_batches_leave_the_cache_untouched() {
        use xpv_maintain::Edit;

        let cache = ShardedViewCache::new(doc());
        cache.add_view("items", pat("site/region/item"));
        let q = pat("site/region/item/name");
        let before = cache.answer(&q).nodes;
        let key = cache.document().canonical_key();
        let err = cache.apply_edits(&[Edit::DeleteSubtree { node: NodeId(u32::MAX) }]).unwrap_err();
        assert!(matches!(err, xpv_maintain::EditError::NotLive { .. }));
        assert_eq!(cache.document().canonical_key(), key);
        assert_eq!(cache.doc_version(), 0);
        assert_eq!(cache.answer(&q).nodes, before);
        assert_eq!(cache.stats().updates_applied, 0);
    }

    #[test]
    fn partial_answers_can_use_contained_intersections() {
        // Both views impose [bids] on the *region*: the intersection is
        // contained in the query's answers but not equivalent.
        let t = TreeBuilder::root("site", |b| {
            b.child("region", |b| {
                b.leaf("bids");
                b.child("item", |b| {
                    b.leaf("name");
                    b.leaf("x");
                    b.leaf("y");
                });
            });
            b.child("region", |b| {
                b.child("item", |b| {
                    b.leaf("name");
                    b.leaf("x");
                    b.leaf("y");
                });
            });
        });
        let cache = ShardedViewCache::new(t);
        cache.add_view("vx", pat("site/region[bids]/item[x]/name"));
        cache.add_view("vy", pat("site/region[bids]/item[y]/name"));
        let q = pat("site/region/item[x][y]/name");
        assert_eq!(cache.answer(&q).route, Route::Direct, "no equivalent route exists");
        let (partial, complete) = cache.answer_partial(&q).expect("contained intersection");
        assert!(!complete);
        let full = cache.answer_direct(&q);
        assert!(partial.iter().all(|n| full.contains(n)), "partial answers must be sound");
        assert_eq!(partial.len(), 1, "only the bids-region item is recovered");
        assert_eq!(full.len(), 2);
    }
}
