//! # xpv-engine — answering XPath queries using materialized views
//!
//! The application layer of the `xpath-views` workspace (Afrati et al.,
//! EDBT 2009 reproduction): materialize view patterns over XML documents
//! ([`MaterializedView`]) and answer queries from them whenever the
//! [`xpv_core::RewritePlanner`] certifies an equivalent rewriting. Both the
//! virtual (node-identity) and materialized (subtree-copy) representations
//! of `V(t)` are supported, and Proposition 2.4 — `R ◦ V (t) = R(V(t))` —
//! is the correctness contract the tests enforce end to end.
//!
//! ## Architecture: shard → cache → serve
//!
//! The serving path is built for shared-state concurrency, in three layers:
//!
//! * [`ShardedViewCache`] (**[`shard`]**) — the concurrent core. One
//!   document, a copy-on-write view pool, and a plan memo partitioned into
//!   lock shards by query fingerprint; every serving method takes `&self`.
//!   Planning flows through one shared [`xpv_core::PlanningSession`] whose
//!   containment oracle is itself sharded and `&self`-safe, so all threads
//!   pool all coNP work. Queries no single view can answer are routed
//!   through **multi-view intersections** (`xpv-intersect`,
//!   [`Route::Intersect`]): a small view subset whose node-set intersection
//!   supports a verified compensation serves them jointly. The memo is
//!   LRU-bounded ([`ShardedViewCache::with_memo_cap`]); `add_view`
//!   invalidates only the entries whose plan depends on the grown pool, and
//!   `remove_view` / `replace_view` only those whose participants the
//!   removal touches — answers are byte-identical to the single-threaded
//!   cache on any schedule.
//! * [`ViewCache`] (**[`cache`]**) — the familiar single-threaded API, now
//!   a thin wrapper over one shard: same planning, memo, stats, and
//!   answers, with `&mut self` ergonomics and no cross-thread traffic.
//! * [`AsyncCacheServer`] (**[`aserve`]**) — the service front-end: any
//!   number of wire-protocol connections (TCP / Unix-domain, via the
//!   `xpv-net` reactor) plus the in-process transport, multiplexed onto a
//!   fixed CPU worker pool over one shared `ShardedViewCache`. Idle
//!   connections are suspended tasks, not pinned threads; admission is
//!   credit-based per connection (see the `xpv-net` crate docs for the
//!   wire protocol and backpressure spec); per-tenant accounting
//!   ([`TenantStats`]) and graceful drain are built in.
//! * [`CacheServer`] (**[`serve`]**) — the synchronous façade kept for
//!   in-process embedders: the old blocking-submit worker-pool API as a
//!   thin wrapper over `AsyncCacheServer`'s in-process transport.
//!
//! Pick the innermost layer that fits: library callers embedding a cache in
//! one thread use `ViewCache`; multi-threaded embedders share a
//! `ShardedViewCache`; in-process services front it with `CacheServer`;
//! network services with `AsyncCacheServer`.
//!
//! ## Observability
//!
//! Every layer reports through the `xpv-obs` registry (see that crate's
//! docs for the metric naming scheme and trace-sampling semantics):
//! [`ShardedViewCache::metrics_snapshot`] exposes the cache-side families
//! (`xpv_oracle_*`, `xpv_cache_*`, `xpv_maintain_*`, `xpv_phase_*_us`),
//! [`AsyncCacheServer::metrics_snapshot`] adds the serving families
//! (`xpv_tenant_*`, `xpv_net_*`, `xpv_server_*`), and the **[`obs`]**
//! module converts snapshots to and from the wire's `StatsV2Resp` form.
//! The server also runs the `xpv-obs` history sampler and health
//! watchdog by default ([`ObsConfig`]): per-metric time-series rings
//! served over `HistoryReq`, heartbeat stall rules over the maintenance
//! and flush paths, and a flight-recorder `DebugDumpReq` bundling
//! metrics + history + alerts + drained traces (the full metric
//! catalogue lives in `docs/METRICS.md`).

pub mod aserve;
pub mod cache;
pub mod obs;
pub mod serve;
pub mod shard;
pub mod tenants;
pub mod view;

pub use aserve::{
    AsyncCacheServer, BatchRejected, BatchTicket, ObsConfig, DEFAULT_CONN_WINDOW,
    DEFAULT_MAX_PENDING,
};
pub use cache::ViewCache;
pub use obs::{metrics_from_wire, wire_alerts, wire_history, wire_metrics, wire_traces};
pub use serve::CacheServer;
pub use shard::{
    CacheAnswer, CacheAnswerRef, CacheStats, ChoicePolicy, Route, ShardedViewCache, UpdateReport,
    ViewId, DEFAULT_CACHE_SHARDS,
};
pub use tenants::TenantStats;
pub use view::{answer_value_set, MaterializedDelta, MaterializedView};
// Re-exported so embedders can tune the intersection planner without a
// direct `xpv-intersect` dependency.
pub use xpv_intersect::IntersectConfig;
// Re-exported so embedders can drive document updates without a direct
// `xpv-maintain` dependency.
pub use xpv_maintain::{Edit, EditError, MaintainStats};
