//! # xpv-engine — answering XPath queries using materialized views
//!
//! The application layer of the `xpath-views` workspace (Afrati et al.,
//! EDBT 2009 reproduction): materialize view patterns over XML documents
//! ([`MaterializedView`]) and answer queries from them whenever the
//! [`xpv_core::RewritePlanner`] certifies an equivalent rewriting
//! ([`ViewCache`]). Both the virtual (node-identity) and materialized
//! (subtree-copy) representations of `V(t)` are supported, and
//! Proposition 2.4 — `R ◦ V (t) = R(V(t))` — is the correctness contract
//! the tests enforce end to end.

pub mod cache;
pub mod view;

pub use cache::{CacheAnswer, CacheStats, ChoicePolicy, Route, ViewCache};
pub use view::{answer_value_set, MaterializedView};
